// Options for opening a vtp::session (api/session.hpp).
//
// A session is configured with (1) the service profile to propose —
// reliability, loss-estimation locus, QoS awareness — and (2) the
// capabilities this endpoint is willing to run, which bound what a peer
// can renegotiate the connection to later. The presets mirror the
// paper's published protocol instances.
#pragma once

#include <cstdint>

#include "core/connection.hpp"
#include "core/profile.hpp"

namespace vtp {

struct session_options {
    /// Service profile proposed at connect (the peer may downgrade it).
    qtp::profile profile = qtp::qtp_default_profile();

    /// What this endpoint supports; also the answer given to any
    /// mid-connection renegotiation proposal from the peer.
    qtp::capabilities capabilities{};

    /// Flow identifier; 0 picks a fresh one automatically.
    std::uint32_t flow_id = 0;

    std::uint32_t packet_size = 1000; ///< payload bytes per data packet

    /// Message framing for partial reliability: the stream is cut into
    /// `message_size`-byte messages, each expiring `message_deadline`
    /// after first transmission. 0 disables framing.
    std::uint32_t message_size = 0;
    util::sim_time message_deadline = util::time_never;

    /// Retransmission cap for partial reliability (0 = unlimited).
    std::uint32_t max_transmissions = 0;

    /// Cap on offered-but-unsent bytes across all streams of the
    /// session; send() returns how much was accepted, and a clamped
    /// send() arms the edge-triggered `writable` event. 0 = unlimited.
    std::uint64_t max_buffered_bytes = 0;

    /// Capacity of the per-session event ring drained by poll(). A full
    /// ring drops the new event and counts it in
    /// session_stats::events_dropped.
    std::size_t event_queue_capacity = 256;

    /// Receiver side: cap on payload bytes buffered for recv(); chunks
    /// beyond it are dropped and counted (recv_dropped_bytes). 0 =
    /// unlimited.
    std::uint64_t recv_buffer_bytes = 16u << 20;

    /// Stream scheduler knobs (weights quantum, deadline promotion).
    stream::stream_scheduler_config scheduler{};

    /// Handshake / renegotiation retransmission interval.
    util::sim_time handshake_rtx = util::milliseconds(500);

    /// Advanced congestion-control / reliability knobs.
    tfrc::rate_controller_config rate{};
    tfrc::sender_estimator_config estimator{};
    sack::scoreboard_config scoreboard{};

    /// Flight-recorder tracing (trace/record.hpp): per-connection ring
    /// capacity in 32-byte records, 0 disables every hook. Without a
    /// sink the ring keeps the most recent events (overwrites counted in
    /// session_stats::trace_events_dropped); with `trace_sink` set
    /// (trace/writer.hpp) full rings spill losslessly and flush at
    /// close. The sink must outlive the session.
    std::size_t trace_ring_records = 0;
    trace::sink* trace_sink = nullptr;

    /// Connection migration / multipath (path/path.hpp). Off by default;
    /// enable with with_migration() / with_multipath() or by setting
    /// path.enabled directly. Both endpoints must enable it — a disabled
    /// peer silently ignores path probes.
    path::manager_config path{};

    /// QTPAF: full reliability + receiver-side estimation + a gTFRC
    /// committed rate (the QoS-network instance).
    static session_options af(double target_rate_bps) {
        session_options o;
        o.profile = qtp::qtp_af_profile(target_rate_bps);
        return o;
    }

    /// QTPlight: sender-side estimation, optional partial reliability
    /// (the resource-limited receiver instance).
    static session_options light(
        sack::reliability_mode reliability = sack::reliability_mode::none) {
        session_options o;
        o.profile = qtp::qtp_light_profile(reliability);
        o.capabilities.support_receiver_estimation = false;
        return o;
    }

    /// Full reliability over plain TFRC (no QoS contract).
    static session_options reliable() {
        session_options o;
        o.profile = qtp::qtp_af_profile(0.0);
        return o;
    }

    /// Pin the proposed congestion-control algorithm (chainable on any
    /// preset): session_options::reliable().with_cc(cc::algorithm_id::westwood).
    session_options& with_cc(cc::algorithm_id alg) {
        profile.congestion = alg;
        return *this;
    }

    /// Enable validated migration (passive rebind detection plus
    /// session::migrate()); chainable on any preset.
    session_options& with_migration() {
        path.enabled = true;
        return *this;
    }

    /// Enable migration plus dual-path data steering across every
    /// validated path (session::add_path + path::scheduler).
    session_options& with_multipath() {
        path.enabled = true;
        path.multipath = true;
        return *this;
    }

    /// Lower the options into a core connection_config (the facade's
    /// glue; applications should not need this).
    qtp::connection_config to_connection_config() const {
        qtp::connection_config cfg;
        cfg.packet_size = packet_size;
        cfg.proposal = profile;
        cfg.caps = capabilities;
        cfg.rate = rate;
        cfg.estimator = estimator;
        cfg.scoreboard = scoreboard;
        cfg.max_transmissions = max_transmissions;
        cfg.message_size = message_size;
        cfg.message_deadline = message_deadline;
        cfg.max_buffered_bytes = max_buffered_bytes;
        cfg.event_queue_capacity = event_queue_capacity;
        cfg.recv_buffer_bytes = recv_buffer_bytes;
        cfg.scheduler = scheduler;
        cfg.handshake_rtx = handshake_rtx;
        cfg.trace_ring_records = trace_ring_records;
        cfg.trace_sink = trace_sink;
        cfg.path = path;
        return cfg;
    }
};

} // namespace vtp
