// vtp::server — passive endpoint of the socket-style API.
//
// Wraps qtp::listener: installed as a substrate's default agent, it
// accepts one QTP connection per incoming SYN, applies a per-accept
// capability policy (what reliability / estimation locus / rate tier to
// grant *this* client), and hands the application a receiver-role
// vtp::session:
//
//   vtp::server srv(host, opts);
//   srv.set_on_session([](vtp::session& s) {
//       s.set_on_delivered([](std::uint64_t off, std::uint32_t len) { ... });
//   });
//
// Works identically on sim::host and net::udp_host. Stray packets for
// unknown flows (including renegotiation segments of dead connections)
// are counted, never answered — a reneg must never spawn an endpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "api/session.hpp"
#include "core/listener.hpp"

namespace vtp {

struct server_options {
    /// Capabilities granted to every client (the negotiation downgrade
    /// bound for the SYN and for later renegotiations).
    qtp::capabilities capabilities{};

    /// Per-accept policy: (flow id, peer address) -> capabilities for
    /// that client. Overrides `capabilities` when set — e.g. cap
    /// target_rate by customer tier, or refuse receiver-side estimation
    /// under memory pressure.
    std::function<qtp::capabilities(std::uint32_t, std::uint32_t)> capability_policy;

    std::uint32_t packet_size = 1000;
    /// Handshake / renegotiation retransmission interval for accepted
    /// endpoints.
    util::sim_time handshake_rtx = util::milliseconds(500);

    /// Event ring capacity / recv payload buffer cap of accepted
    /// sessions (see session_options for semantics).
    std::size_t event_queue_capacity = 256;
    std::uint64_t recv_buffer_bytes = 16u << 20;

    /// Flight-recorder tracing for accepted sessions (see
    /// session_options::trace_ring_records / trace_sink). When set, the
    /// listener's accept-path guard decisions are traced too (flow 0,
    /// record_type::guard).
    std::size_t trace_ring_records = 0;
    trace::sink* trace_sink = nullptr;

    // --- DoS hardening ---------------------------------------------------
    /// Accept-path guard: stateless retry cookies, per-source token
    /// buckets, anti-amplification (qtp::listener_guard_config; all off
    /// by default).
    qtp::listener_guard_config guard{};
    /// Hard cap on live sessions; a SYN past it is shed (0 = unlimited).
    std::size_t max_sessions = 0;
    /// Cap on accepted-but-unproven (half-open) sessions (0 = unlimited).
    std::size_t max_half_open = 0;
    /// Liveness deadline for accepted endpoints: no data / reneg / FIN
    /// within the window closes the endpoint so reap_closed() collects
    /// it (connection_config::handshake_deadline; 0 disables).
    util::sim_time handshake_deadline = util::seconds(30);
    /// Per-session budget for incoming reneg-proposal processing
    /// (0 = unbounded; see session_stats::reneg_rate_limited).
    double reneg_rate_bps = 0.0;
    std::size_t reneg_burst_bytes = 0;

    /// Connection migration for accepted sessions (path/path.hpp): with
    /// `path.enabled` the server validates a client that reappears from
    /// a new source address (NAT rebind / handover) and re-points its
    /// feedback there, under the anti-amplification budget. Off by
    /// default.
    path::manager_config path{};
};

/// One-call snapshot of the listener's accept/stray accounting (the
/// renegotiation-hygiene counters live here because stray renegs are a
/// listener-level observation: segments for flows with no endpoint).
struct server_stats {
    std::uint64_t accepted = 0;
    std::uint64_t stray_packets = 0;
    /// reneg/reneg_ack segments for unknown flows, counted and dropped —
    /// a reneg must never spawn an endpoint.
    std::uint64_t stray_renegs = 0;
    std::size_t sessions = 0;
    /// Accepted sessions whose peer has not yet proven liveness.
    std::size_t half_open = 0;
    // Accept-path guard counters (qtp::listener_guard_stats).
    std::uint64_t retries_sent = 0;
    std::uint64_t cookies_validated = 0;
    std::uint64_t cookies_rejected = 0;
    std::uint64_t syn_rate_limited = 0;
    std::uint64_t stray_rate_limited = 0;
    std::uint64_t amplification_limited = 0;
    std::uint64_t shed = 0;
    /// Inbound reneg proposals dropped by the per-connection token bucket,
    /// summed over live and reaped sessions (monotonic).
    std::uint64_t reneg_rate_limited = 0;
    /// Path migration accounting, summed over live and reaped sessions
    /// (monotonic; all zero while server_options::path.enabled is off).
    std::uint64_t path_migrations = 0;
    std::uint64_t path_validations = 0;
    std::uint64_t path_validation_failures = 0;
    std::uint64_t path_responses_rejected = 0; ///< forged/stale tokens
};

class server {
public:
    /// Register on `env` as the passive endpoint. The server must
    /// outlive the substrate's use of it.
    server(qtp::environment& env, server_options opts = {});

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Called with each freshly accepted session. The session reference
    /// stays valid for the server's lifetime.
    void set_on_session(std::function<void(session&)> cb) { on_session_ = std::move(cb); }

    std::size_t session_count() const { return sessions_.size(); }
    session* find(std::uint32_t flow_id);

    /// Visit every live session (flow id, session). Same threading rule
    /// as everything else here: call from the substrate's own thread —
    /// on an engine shard, through engine::server::with_server(). Do not
    /// reap from inside the visitor.
    void for_each_session(const std::function<void(std::uint32_t, session&)>& fn);

    /// Reclaim sessions whose peer has closed (FIN seen): destroys their
    /// endpoints and handles, returns how many were reaped. Call from
    /// application context (an event-loop turn or a scheduler callback),
    /// never from inside a session callback. Session references obtained
    /// earlier for reaped flows become invalid. Note: reaping immediately
    /// after close forfeits FIN-ACK retransmission for that flow (a peer
    /// whose FIN-ACK was lost retries against the listener as a stray),
    /// so a production loop reaps periodically, not per-packet.
    std::size_t reap_closed();

    std::uint64_t accepted() const { return listener_.accepted(); }
    std::uint64_t stray_packets() const { return listener_.stray_packets(); }
    std::uint64_t stray_renegs() const { return listener_.stray_renegs(); }
    /// Accepted sessions whose peer has not yet proven liveness with
    /// data (what max_half_open caps). O(sessions).
    std::size_t half_open() const;
    server_stats stats() const;

    /// Escape hatch to the underlying acceptor.
    const qtp::listener& acceptor() const { return listener_; }

private:
    qtp::environment& env_;
    server_options opts_;
    std::unique_ptr<trace::tracer> guard_tracer_; ///< listener guard trace (flow 0)
    qtp::listener listener_;
    std::function<void(session&)> on_session_;
    std::unordered_map<std::uint32_t, std::unique_ptr<session>> sessions_;
    /// Reneg-bucket denials carried over from reaped sessions, so the
    /// aggregate in stats() stays monotonic across reaps.
    std::uint64_t reneg_rate_limited_reaped_ = 0;
    /// Same carry-over for the path counters of reaped sessions.
    path::manager_stats path_reaped_{};
};

} // namespace vtp
