#include "api/server.hpp"

namespace vtp {

namespace {

qtp::listener_config make_listener_config(const server_options& opts,
                                          trace::tracer* guard_tracer) {
    qtp::listener_config cfg;
    cfg.caps = opts.capabilities;
    cfg.capability_policy = opts.capability_policy;
    cfg.guard = opts.guard;
    cfg.tracer = guard_tracer;
    cfg.endpoint.packet_size = opts.packet_size;
    cfg.endpoint.handshake_rtx = opts.handshake_rtx;
    cfg.endpoint.handshake_deadline = opts.handshake_deadline;
    cfg.endpoint.reneg_rate_bps = opts.reneg_rate_bps;
    cfg.endpoint.reneg_burst_bytes = opts.reneg_burst_bytes;
    cfg.endpoint.event_queue_capacity = opts.event_queue_capacity;
    cfg.endpoint.recv_buffer_bytes = opts.recv_buffer_bytes;
    cfg.endpoint.trace_ring_records = opts.trace_ring_records;
    cfg.endpoint.trace_sink = opts.trace_sink;
    cfg.endpoint.path = opts.path;
    return cfg;
}

} // namespace

server::server(qtp::environment& env, server_options opts)
    : env_(env),
      opts_(std::move(opts)),
      guard_tracer_(opts_.trace_ring_records > 0 && opts_.guard.tracking_enabled()
                        ? std::make_unique<trace::tracer>(0, opts_.trace_ring_records,
                                                          opts_.trace_sink)
                        : nullptr),
      listener_(make_listener_config(opts_, guard_tracer_.get())) {
    listener_.set_on_accept([this](std::uint32_t flow, qtp::connection_receiver& rx) {
        auto handle = std::unique_ptr<session>(new session(&rx, flow));
        session& ref = *handle;
        sessions_[flow] = std::move(handle);
        if (on_session_) on_session_(ref);
    });
    if (opts_.max_sessions > 0 || opts_.max_half_open > 0) {
        listener_.set_admission([this](std::uint32_t, std::uint32_t) {
            // A refusal is a counted shed of a validated client — the
            // caps bound the memory a flood that clears the cookie gate
            // (or a legitimate stampede) can pin.
            if (opts_.max_sessions > 0 && sessions_.size() >= opts_.max_sessions)
                return false;
            if (opts_.max_half_open > 0 && half_open() >= opts_.max_half_open)
                return false;
            return true;
        });
    }
    listener_.start(env);
    env.set_default_agent(&listener_);
}

void server::for_each_session(const std::function<void(std::uint32_t, session&)>& fn) {
    for (auto& [flow, s] : sessions_) fn(flow, *s);
}

session* server::find(std::uint32_t flow_id) {
    const auto it = sessions_.find(flow_id);
    return it == sessions_.end() ? nullptr : it->second.get();
}

std::size_t server::half_open() const {
    std::size_t n = 0;
    for (const auto& [flow, s] : sessions_)
        if (s->half_open()) ++n;
    return n;
}

server_stats server::stats() const {
    const qtp::listener_guard_stats& g = listener_.guard_stats();
    server_stats s;
    s.accepted = listener_.accepted();
    s.stray_packets = listener_.stray_packets();
    s.stray_renegs = listener_.stray_renegs();
    s.sessions = sessions_.size();
    s.half_open = half_open();
    s.retries_sent = g.retries_sent;
    s.cookies_validated = g.cookies_validated;
    s.cookies_rejected = g.cookies_rejected;
    s.syn_rate_limited = g.syn_rate_limited;
    s.stray_rate_limited = g.stray_rate_limited;
    s.amplification_limited = g.amplification_limited;
    s.shed = g.shed;
    s.reneg_rate_limited = reneg_rate_limited_reaped_;
    s.path_migrations = path_reaped_.migrations;
    s.path_validations = path_reaped_.validations;
    s.path_validation_failures = path_reaped_.validation_failures;
    s.path_responses_rejected = path_reaped_.responses_rejected;
    for (const auto& [flow, sess] : sessions_) {
        const session_stats st = sess->stats();
        s.reneg_rate_limited += st.reneg_rate_limited;
        s.path_migrations += st.path.migrations;
        s.path_validations += st.path.validations;
        s.path_validation_failures += st.path.validation_failures;
        s.path_responses_rejected += st.path.responses_rejected;
    }
    return s;
}

std::size_t server::reap_closed() {
    std::size_t reaped = 0;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second->closed()) {
            const session_stats st = it->second->stats();
            reneg_rate_limited_reaped_ += st.reneg_rate_limited;
            path_reaped_.migrations += st.path.migrations;
            path_reaped_.validations += st.path.validations;
            path_reaped_.validation_failures += st.path.validation_failures;
            path_reaped_.responses_rejected += st.path.responses_rejected;
            env_.detach_dynamic(it->first);
            it = sessions_.erase(it);
            ++reaped;
        } else {
            ++it;
        }
    }
    return reaped;
}

} // namespace vtp
