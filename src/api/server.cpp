#include "api/server.hpp"

namespace vtp {

namespace {

qtp::listener_config make_listener_config(const server_options& opts) {
    qtp::listener_config cfg;
    cfg.caps = opts.capabilities;
    cfg.capability_policy = opts.capability_policy;
    cfg.endpoint.packet_size = opts.packet_size;
    cfg.endpoint.handshake_rtx = opts.handshake_rtx;
    cfg.endpoint.event_queue_capacity = opts.event_queue_capacity;
    cfg.endpoint.recv_buffer_bytes = opts.recv_buffer_bytes;
    cfg.endpoint.trace_ring_records = opts.trace_ring_records;
    cfg.endpoint.trace_sink = opts.trace_sink;
    return cfg;
}

} // namespace

server::server(qtp::environment& env, server_options opts)
    : env_(env), listener_(make_listener_config(opts)) {
    listener_.set_on_accept([this](std::uint32_t flow, qtp::connection_receiver& rx) {
        auto handle = std::unique_ptr<session>(new session(&rx, flow));
        session& ref = *handle;
        sessions_[flow] = std::move(handle);
        if (on_session_) on_session_(ref);
    });
    listener_.start(env);
    env.set_default_agent(&listener_);
}

void server::for_each_session(const std::function<void(std::uint32_t, session&)>& fn) {
    for (auto& [flow, s] : sessions_) fn(flow, *s);
}

session* server::find(std::uint32_t flow_id) {
    const auto it = sessions_.find(flow_id);
    return it == sessions_.end() ? nullptr : it->second.get();
}

std::size_t server::reap_closed() {
    std::size_t reaped = 0;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second->closed()) {
            env_.detach_dynamic(it->first);
            it = sessions_.erase(it);
            ++reaped;
        } else {
            ++it;
        }
    }
    return reaped;
}

} // namespace vtp
