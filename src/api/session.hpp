// vtp::session — the socket-style public API of the versatile transport.
//
// A session is one endpoint of one QTP connection, hosted on any
// substrate implementing qtp::environment (the discrete-event simulator's
// sim::host, the live UDP datapath's net::udp_host, or a server-engine
// shard — the code is identical on all of them). The API is
// non-blocking with a polled event queue and a real data plane:
//
//   vtp::session s = vtp::session::connect(host, peer_addr,
//                                          vtp::session_options::af(4e6));
//   std::uint64_t n = s.send(0, bytes);   // real payload; short return =
//                                         // backpressure, wait for writable
//   s.close();                            // FIN once everything is delivered
//
//   vtp::event evs[16];                   // receiver (or sender) side
//   for (std::size_t i = 0, k = s.poll(evs, 16); i < k; ++i)
//       if (evs[i].type == vtp::event_type::readable)
//           while (std::size_t got = s.recv(evs[i].stream_id, buf))
//               consume(buf, got);        // delivered bytes, stream order
//
// Events (core/events.hpp): established, stream_opened, readable,
// writable, profile_changed, fin, closed. readable/writable are
// edge-triggered; every queue is bounded with counted overflow. The
// set_on_* callbacks below are a deprecated compatibility shim over the
// same event stream.
//
// One session multiplexes up to 256 application streams, each with its
// own reliability mode, scheduler weight and optional delivery deadline
// (stream/stream.hpp). Stream 0 is the session's legacy byte stream —
// send(bytes) is send(0, bytes) — so single-stream code never changes:
//
//   vtp::stream::stream_options media;
//   media.reliability = sack::reliability_mode::partial;
//   media.weight = 3;
//   media.message_size = 1000;
//   media.message_deadline = util::milliseconds(150);
//   const std::uint32_t sid = s.open_stream(media);
//   s.send(sid, frame_bytes);    // deadline-scheduled alongside stream 0
//   s.finish(sid);               // per-stream half-close
//
// The headline capability is *runtime renegotiation*: at any point either
// endpoint may call renegotiate() with a new profile; the peer answers
// through its capability policy and both sides atomically swap
// micro-mechanisms (estimator locus, reliability policy, gTFRC floor) at
// the acknowledged sequence boundary — no teardown, no handshake rerun,
// congestion state intact:
//
//   s.renegotiate(qtp::qtp_light_profile(sack::reliability_mode::partial));
//
// Receiver-role sessions are produced by vtp::server (api/server.hpp);
// they deliver stream bytes through set_on_delivered() and may equally
// initiate renegotiation (the paper's mobile-receiver scenario).
//
// Lifetime: the underlying agent is owned by the substrate and lives as
// long as it does; a session is a cheap movable handle. The legacy
// make_qtp_* factories in core/qtp.hpp remain as deprecated shims.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "api/session_options.hpp"
#include "core/connection.hpp"
#include "core/environment.hpp"
#include "core/events.hpp"
#include "stream/stream.hpp"

namespace vtp {

/// Poll-based session events (see core/events.hpp for semantics).
using event = qtp::event;
using event_type = qtp::event_type;
using event_sink = qtp::event_sink;

/// One-call snapshot of everything an application usually polls.
struct session_stats {
    bool established = false;
    bool closed = false;
    qtp::profile profile{};
    std::uint32_t renegotiations = 0;
    /// Renegotiation proposals this endpoint initiated / got answered.
    std::uint64_t reneg_proposals_sent = 0;
    std::uint64_t reneg_proposals_accepted = 0;
    /// Incoming reneg proposals dropped by the per-connection processing
    /// budget (server_options::reneg_rate_bps / session reneg knobs).
    std::uint64_t reneg_rate_limited = 0;
    /// Streams multiplexed on the connection (sender: opened, including
    /// stream 0; receiver: seen so far).
    std::size_t streams = 0;

    // Sending side (zero on receiver-role sessions).
    std::uint64_t stream_bytes_queued = 0; ///< offered by the application
    std::uint64_t stream_bytes_sent = 0;   ///< first transmissions
    std::uint64_t stream_bytes_acked = 0;  ///< confirmed delivered
    std::uint64_t rtx_bytes_sent = 0;
    std::uint64_t packets_sent = 0;
    double allowed_rate_bps = 0.0;
    double loss_event_rate = 0.0;
    util::sim_time rtt = 0;
    /// Congestion control (sender role): the algorithm currently pacing
    /// the flow, how many mid-flow swaps renegotiation has applied, and
    /// the algorithm's own path-bandwidth estimate.
    cc::algorithm_id cc_algorithm = cc::algorithm_id::tfrc;
    std::uint32_t cc_swaps_applied = 0;
    double bandwidth_estimate_bps = 0.0;

    // Receiving side (zero on sender-role sessions).
    std::uint64_t bytes_received = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t feedback_sent = 0;

    // Event/backpressure observability (both roles).
    /// Events lost to a full event queue (poll ring or engine export).
    std::uint64_t events_dropped = 0;
    /// Receiver: payload bytes buffered for recv() / dropped because the
    /// recv buffer cap was hit.
    std::uint64_t recv_buffered_bytes = 0;
    std::uint64_t recv_dropped_bytes = 0;
    /// Sender: payload bytes retained for retransmission, and bytes a
    /// (re)transmission needed but the retention buffer no longer held
    /// (sent as zeroes — nonzero only when length-only and payload
    /// sends were mixed on one stream; see session::send).
    std::uint64_t tx_payload_buffered = 0;
    std::uint64_t tx_payload_miss_bytes = 0;

    /// Flight recorder (zero when tracing is disabled): events recorded,
    /// and events lost to ring overwrite (flight-recorder mode without a
    /// sink — a spill sink makes the ring lossless).
    std::uint64_t trace_events_recorded = 0;
    std::uint64_t trace_events_dropped = 0;

    /// Path migration / multipath (zero while path.enabled is off).
    /// `active_path_remote` is where this endpoint currently sends.
    std::uint32_t active_path_remote = 0;
    std::size_t path_count = 0; ///< tracked paths (any state)
    path::manager_stats path{};
};

/// Cross-thread snapshot of one hosted session, as served by the admin
/// plane's /sessions endpoint. Collected on the owning shard thread
/// (engine::server::snapshot_sessions), so every field is a consistent
/// point-in-time read.
struct session_snapshot {
    std::uint32_t flow = 0;
    std::size_t shard = 0;
    bool sender_role = false;
    bool half_open = false;
    session_stats stats{};
    /// Per-path detail (empty while path.enabled is off).
    std::vector<path::path_info> paths{};
};

class session {
public:
    session() = default;
    session(session&&) = default;
    session& operator=(session&&) = default;
    session(const session&) = delete;
    session& operator=(const session&) = delete;

    /// Open a connection from `env` to the peer at `peer_addr` (a node id
    /// on the simulator, a UDP port on the live datapath). The returned
    /// session is the sending endpoint; the handshake proposing
    /// `opts.profile` starts immediately.
    static session connect(qtp::environment& env, std::uint32_t peer_addr,
                           session_options opts = {});

    bool valid() const { return sender_ != nullptr || receiver_ != nullptr; }
    bool can_send() const { return sender_ != nullptr; }
    std::uint32_t flow_id() const { return flow_id_; }

    /// Queue `bytes` application bytes on stream 0. The transport paces
    /// them out at the TFRC-controlled rate. Returns how many bytes were
    /// accepted (bounded by session_options::max_buffered_bytes).
    std::uint64_t send(std::uint64_t bytes);

    /// Open an additional stream with its own service profile
    /// (reliability, weight, message framing / deadline). Returns the
    /// stream id, or stream::invalid_stream when out of ids (256).
    std::uint32_t open_stream(const stream::stream_options& opts);
    /// Queue `bytes` on stream `stream_id`; returns the accepted count.
    std::uint64_t send(std::uint32_t stream_id, std::uint64_t bytes);

    /// Queue real application bytes on stream `stream_id`: the accepted
    /// prefix is carried end-to-end and handed to the peer through
    /// recv(). Returns the accepted byte count — when it is short, wait
    /// for the `writable` event (or poll writable()) before retrying the
    /// rest. Avoid mixing with the length-only send(id, n) on the same
    /// stream: the synthetic bytes read back as zeroes at the receiver
    /// (session_stats::tx_payload_miss_bytes counts any fallout).
    std::uint64_t send(std::uint32_t stream_id, std::span<const std::uint8_t> data);
    /// Gather-list variant: queues the spans back-to-back, stopping at
    /// the first clamped one. Returns total bytes accepted.
    std::uint64_t sendv(std::uint32_t stream_id,
                        std::span<const std::span<const std::uint8_t>> bufs);
    /// send() would accept at least one byte right now.
    bool writable() const;

    /// Half-close one stream; the connection stays open for the rest.
    void finish(std::uint32_t stream_id);
    /// Sender-side per-stream accounting (one entry per opened stream).
    std::vector<stream::stream_info> stream_infos() const;

    // --- poll-based events & payload receive -----------------------------
    /// Drain up to `max` queued events. Returns how many were written to
    /// `out`. Sessions that registered any set_on_* callback dispatch
    /// through those instead (the compatibility shim) and poll() stays
    /// empty; don't mix the two styles on one session.
    std::size_t poll(event* out, std::size_t max);
    /// Receiver role: read up to `out.size()` delivered payload bytes of
    /// `stream_id` in delivery order. `readable` is edge-triggered —
    /// drain until 0.
    std::size_t recv(std::uint32_t stream_id, std::span<std::uint8_t> out);
    /// Receiver role: pop one delivered chunk of any stream with its
    /// delivery metadata (offset, substrate timestamp). The
    /// trace-faithful consumption the conformance harness uses.
    bool recv_chunk(std::uint32_t& stream_id_out, stream::ready_chunk& out);
    /// Export events (readable ones carrying their payload) to `sink`
    /// instead of the poll queue — the engine's cross-thread binding.
    void set_event_sink(event_sink* sink);

    /// Half-close: no more send() calls will follow on any stream; the
    /// connection runs the FIN handshake once every queued byte has been
    /// delivered (under each stream's reliability policy).
    void close();

    /// Propose a new service profile mid-connection. The peer downgrades
    /// it through its capabilities; on acceptance both endpoints swap
    /// micro-mechanisms and on_profile_changed fires with the profile
    /// actually agreed.
    void renegotiate(const qtp::profile& p);
    bool renegotiation_pending() const;

    /// Validated live migration (sender role; requires
    /// session_options::path.enabled on both endpoints): re-validate the
    /// current 4-tuple (`new_peer == 0`, the after-rebind case — call it
    /// after the substrate's local address changed) or prove and switch
    /// to a different peer address. Congestion state, stream scoreboards
    /// and sequence space all survive; a `path_changed` event fires once
    /// the new path is proven.
    void migrate(std::uint32_t new_peer = 0);
    /// Probe `remote` as an additional validated path; with
    /// session_options::path.multipath the dual-path scheduler starts
    /// steering data across it.
    void add_path(std::uint32_t remote);

    bool established() const;
    /// Sender role: FIN acknowledged. Receiver role: peer's FIN seen.
    bool closed() const;
    /// Receiver role: accepted, but the peer has not yet proven liveness
    /// with data — the state a SYN flood inflates. A half-open session
    /// either graduates (first data) or self-closes at the handshake
    /// deadline for reaping.
    bool half_open() const;
    const qtp::profile& active_profile() const;
    session_stats stats() const;
    /// stats() plus role/half-open identity, for admin-plane snapshots
    /// (the caller fills in `shard`).
    session_snapshot snapshot() const;

    /// Attach a flight-recorder tap at runtime: subsequent transport
    /// events spill to `sink` through a fresh `ring_records`-record ring
    /// (0 = default 4096). Replaces any tracer configured at session
    /// creation; `sink` must outlive the tap. Call on the owning thread.
    void trace_start(std::size_t ring_records, trace::sink* sink);
    /// Flush and drop the active tracer (the creation-time tracer is not
    /// restored — the tap is a one-way override).
    void trace_stop();

    // --- legacy callbacks (deprecated) -----------------------------------
    // A compatibility shim over the event queue: registering any of these
    // puts the session in callback mode — its events dispatch through the
    // callbacks at emit time and poll() stays empty. New code should use
    // poll()/recv(); these remain for pre-v2 callers and are slated for
    // removal together with the make_qtp_* factories.
    void set_on_established(std::function<void(const qtp::profile&)> cb);
    /// Receiver role: (stream-0 offset, length) handed to the
    /// application (legacy single-stream hook; payload is not retained).
    void set_on_delivered(std::function<void(std::uint64_t, std::uint32_t)> cb);
    /// Receiver role: (stream id, stream offset, length) for every
    /// stream, including stream 0.
    void set_on_stream_delivered(
        std::function<void(std::uint32_t, std::uint64_t, std::uint32_t)> cb);
    /// Receiver role: a new stream appeared (id, its reliability mode).
    void set_on_stream_open(
        std::function<void(std::uint32_t, sack::reliability_mode)> cb);
    void set_on_closed(std::function<void()> cb);
    void set_on_profile_changed(std::function<void(const qtp::profile&)> cb);

    /// Escape hatches to the composed endpoint (stats beyond
    /// session_stats; nullptr for the role the session does not have).
    qtp::connection_sender* sender() { return sender_; }
    const qtp::connection_sender* sender() const { return sender_; }
    qtp::connection_receiver* receiver() { return receiver_; }
    const qtp::connection_receiver* receiver() const { return receiver_; }

private:
    friend class server;
    session(qtp::connection_sender* s, std::uint32_t flow) : sender_(s), flow_id_(flow) {}
    session(qtp::connection_receiver* r, std::uint32_t flow)
        : receiver_(r), flow_id_(flow) {}

    qtp::connection_sender* sender_ = nullptr;     ///< owned by the substrate
    qtp::connection_receiver* receiver_ = nullptr; ///< owned by the substrate
    std::uint32_t flow_id_ = 0;
};

} // namespace vtp
