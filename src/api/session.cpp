#include "api/session.hpp"

#include <atomic>

namespace vtp {

namespace {

// Auto-assigned flow ids live in their own range so they never collide
// with hand-numbered flows in mixed (facade + raw factory) setups.
std::uint32_t next_auto_flow_id() {
    static std::atomic<std::uint32_t> counter{0x40000000};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

const qtp::profile& empty_profile() {
    static const qtp::profile p{};
    return p;
}

} // namespace

session session::connect(qtp::environment& env, std::uint32_t peer_addr,
                         session_options opts) {
    qtp::connection_config cfg = opts.to_connection_config();
    cfg.flow_id = opts.flow_id != 0 ? opts.flow_id : next_auto_flow_id();
    cfg.peer_addr = peer_addr;
    // Application-driven source: the stream grows through send() and ends
    // at close().
    cfg.total_bytes = 0;
    cfg.stream_open = true;

    auto agent = std::make_unique<qtp::connection_sender>(cfg);
    qtp::connection_sender* raw = agent.get();
    env.attach_dynamic(cfg.flow_id, std::move(agent));
    return session(raw, cfg.flow_id);
}

std::uint64_t session::send(std::uint64_t bytes) { return send(0, bytes); }

std::uint64_t session::send(std::uint32_t stream_id, std::uint64_t bytes) {
    return sender_ != nullptr ? sender_->offer(stream_id, bytes) : 0;
}

std::uint64_t session::send(std::uint32_t stream_id,
                            std::span<const std::uint8_t> data) {
    return sender_ != nullptr
               ? sender_->offer_bytes(stream_id, data.data(), data.size())
               : 0;
}

std::uint64_t session::sendv(std::uint32_t stream_id,
                             std::span<const std::span<const std::uint8_t>> bufs) {
    if (sender_ == nullptr) return 0;
    std::uint64_t total = 0;
    for (const auto& buf : bufs) {
        const std::uint64_t accepted =
            sender_->offer_bytes(stream_id, buf.data(), buf.size());
        total += accepted;
        if (accepted < buf.size()) break; // clamped: wait for writable
    }
    return total;
}

bool session::writable() const {
    return sender_ != nullptr && sender_->writable();
}

std::size_t session::poll(event* out, std::size_t max) {
    if (sender_ != nullptr) return sender_->poll(out, max);
    if (receiver_ != nullptr) return receiver_->poll(out, max);
    return 0;
}

std::size_t session::recv(std::uint32_t stream_id, std::span<std::uint8_t> out) {
    return receiver_ != nullptr ? receiver_->recv(stream_id, out.data(), out.size())
                                : 0;
}

bool session::recv_chunk(std::uint32_t& stream_id_out, stream::ready_chunk& out) {
    return receiver_ != nullptr && receiver_->recv_chunk(stream_id_out, out);
}

void session::set_event_sink(event_sink* sink) {
    if (sender_ != nullptr) sender_->set_event_sink(sink);
    if (receiver_ != nullptr) receiver_->set_event_sink(sink);
}

std::uint32_t session::open_stream(const stream::stream_options& opts) {
    return sender_ != nullptr ? sender_->open_stream(opts) : stream::invalid_stream;
}

void session::finish(std::uint32_t stream_id) {
    if (sender_ != nullptr) sender_->finish_stream(stream_id);
}

std::vector<stream::stream_info> session::stream_infos() const {
    return sender_ != nullptr ? sender_->stream_infos()
                              : std::vector<stream::stream_info>{};
}

void session::close() {
    if (sender_ != nullptr) sender_->finish_stream();
}

void session::renegotiate(const qtp::profile& p) {
    if (sender_ != nullptr) sender_->request_renegotiate(p);
    if (receiver_ != nullptr) receiver_->request_renegotiate(p);
}

void session::migrate(std::uint32_t new_peer) {
    if (sender_ != nullptr) sender_->migrate(new_peer);
}

void session::add_path(std::uint32_t remote) {
    if (sender_ != nullptr) sender_->add_path(remote);
}

bool session::renegotiation_pending() const {
    if (sender_ != nullptr) return sender_->renegotiation_pending();
    if (receiver_ != nullptr) return receiver_->renegotiation_pending();
    return false;
}

bool session::established() const {
    if (sender_ != nullptr) return sender_->established();
    if (receiver_ != nullptr) return receiver_->established();
    return false;
}

bool session::closed() const {
    if (sender_ != nullptr) return sender_->closed();
    if (receiver_ != nullptr) return receiver_->remote_closed();
    return false;
}

const qtp::profile& session::active_profile() const {
    if (sender_ != nullptr) return sender_->active_profile();
    if (receiver_ != nullptr) return receiver_->active_profile();
    return empty_profile();
}

bool session::half_open() const {
    return receiver_ != nullptr && !closed() && receiver_->received_packets() == 0;
}

session_stats session::stats() const {
    session_stats s;
    s.established = established();
    s.closed = closed();
    s.profile = active_profile();
    // Receiver-role sessions report the negotiated id (the controller
    // itself runs at the sender); the sender branch refines this below.
    s.cc_algorithm = s.profile.congestion;
    if (sender_ != nullptr) {
        s.renegotiations = sender_->renegotiations();
        s.reneg_proposals_sent = sender_->reneg_proposals_sent();
        s.reneg_proposals_accepted = sender_->reneg_proposals_accepted();
        s.reneg_rate_limited = sender_->reneg_rate_limited();
        s.streams = sender_->mux().stream_count();
        s.stream_bytes_queued =
            sender_->stream_length() == UINT64_MAX ? 0 : sender_->stream_length();
        s.stream_bytes_sent = sender_->new_bytes_sent();
        s.stream_bytes_acked = sender_->reliability().delivered_bytes();
        s.rtx_bytes_sent = sender_->rtx_bytes_sent();
        s.packets_sent = sender_->packets_sent();
        const cc::send_algorithm& cc = sender_->cc();
        s.allowed_rate_bps = cc.pacing_rate() * 8.0;
        s.loss_event_rate =
            s.profile.estimation == tfrc::estimation_mode::sender_side
                ? sender_->estimator().loss_event_rate()
                : cc.loss_rate();
        s.rtt = cc.has_rtt() ? cc.smoothed_rtt() : 0;
        s.cc_algorithm = cc.id();
        s.cc_swaps_applied = sender_->cc_swaps();
        s.bandwidth_estimate_bps = cc.bandwidth_estimate_bps();
    }
    if (sender_ != nullptr) {
        s.events_dropped = sender_->events_dropped();
        std::uint64_t tx_buffered = 0;
        for (std::size_t i = 0; i < sender_->mux().stream_count(); ++i)
            if (const auto* st = sender_->mux().find(static_cast<std::uint32_t>(i)))
                tx_buffered += st->tx_payload_bytes();
        s.tx_payload_buffered = tx_buffered;
        s.tx_payload_miss_bytes = sender_->mux().payload_miss_bytes_total();
        s.trace_events_recorded = sender_->trace_recorded();
        s.trace_events_dropped = sender_->trace_dropped();
    }
    if (receiver_ != nullptr) {
        s.renegotiations = receiver_->renegotiations();
        s.reneg_proposals_sent = receiver_->reneg_proposals_sent();
        s.reneg_proposals_accepted = receiver_->reneg_proposals_accepted();
        s.reneg_rate_limited = receiver_->reneg_rate_limited();
        s.bytes_received = receiver_->received_bytes();
        s.packets_received = receiver_->received_packets();
        if (const auto* demux = receiver_->demux()) {
            s.streams = demux->stream_count();
            s.bytes_delivered = demux->delivered_bytes_total();
        }
        s.feedback_sent = receiver_->feedback_sent();
        s.events_dropped = receiver_->events_dropped();
        s.recv_buffered_bytes = receiver_->recv_buffered_bytes();
        s.recv_dropped_bytes = receiver_->recv_dropped_bytes();
        s.trace_events_recorded = receiver_->trace_recorded();
        s.trace_events_dropped = receiver_->trace_dropped();
    }
    if (const path::manager* pm = sender_ != nullptr    ? &sender_->paths()
                                  : receiver_ != nullptr ? &receiver_->paths()
                                                         : nullptr;
        pm != nullptr && pm->enabled()) {
        s.active_path_remote = pm->active_remote();
        s.path_count = pm->table().size();
        s.path = pm->stats();
    }
    return s;
}

session_snapshot session::snapshot() const {
    session_snapshot sn;
    sn.flow = flow_id_;
    sn.sender_role = sender_ != nullptr;
    sn.half_open = half_open();
    sn.stats = stats();
    if (const path::manager* pm = sender_ != nullptr    ? &sender_->paths()
                                  : receiver_ != nullptr ? &receiver_->paths()
                                                         : nullptr;
        pm != nullptr && pm->enabled())
        sn.paths = pm->paths();
    return sn;
}

void session::trace_start(std::size_t ring_records, trace::sink* sink) {
    if (sender_ != nullptr) sender_->attach_tracer(ring_records, sink);
    else if (receiver_ != nullptr) receiver_->attach_tracer(ring_records, sink);
}

void session::trace_stop() {
    if (sender_ != nullptr) sender_->detach_tracer();
    else if (receiver_ != nullptr) receiver_->detach_tracer();
}

void session::set_on_established(std::function<void(const qtp::profile&)> cb) {
    if (sender_ != nullptr) sender_->set_on_established(std::move(cb));
    else if (receiver_ != nullptr) receiver_->set_on_established(std::move(cb));
}

void session::set_on_delivered(std::function<void(std::uint64_t, std::uint32_t)> cb) {
    if (receiver_ != nullptr) receiver_->set_delivery(std::move(cb));
}

void session::set_on_stream_delivered(
    std::function<void(std::uint32_t, std::uint64_t, std::uint32_t)> cb) {
    if (receiver_ != nullptr) receiver_->set_stream_delivery(std::move(cb));
}

void session::set_on_stream_open(
    std::function<void(std::uint32_t, sack::reliability_mode)> cb) {
    if (receiver_ != nullptr) receiver_->set_on_stream_open(std::move(cb));
}

void session::set_on_closed(std::function<void()> cb) {
    if (sender_ != nullptr) sender_->set_on_closed(std::move(cb));
    else if (receiver_ != nullptr) receiver_->set_on_closed(std::move(cb));
}

void session::set_on_profile_changed(std::function<void(const qtp::profile&)> cb) {
    if (sender_ != nullptr) sender_->set_on_profile_changed(std::move(cb));
    else if (receiver_ != nullptr) receiver_->set_on_profile_changed(std::move(cb));
}

} // namespace vtp
