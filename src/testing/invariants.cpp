#include "testing/invariants.hpp"

#include <sstream>

#include "tfrc/equation.hpp"

namespace vtp::testing {

namespace {

void violate(scenario_result& result, const std::string& invariant, std::string detail) {
    result.violations.push_back({invariant, std::move(detail)});
}

std::string stream_label(const flow_observation& f, std::uint32_t stream) {
    std::ostringstream os;
    os << "flow " << f.flow_id << " stream " << stream;
    return os.str();
}

/// Decoder-accepted garbage can only reach the transport when a corrupt
/// impairment explicitly opts into mutant delivery; the default
/// (checksum-drop) mode gets no integrity exemptions.
bool scenario_delivers_mutants(const scenario_spec& spec) {
    for (const auto& imp : spec.impairments)
        if (imp.what == impairment_spec::kind::corrupt && imp.probability > 0 &&
            imp.deliver_mutants)
            return true;
    return false;
}

} // namespace

void check_delivery_integrity(const scenario_spec& spec, scenario_result& result) {
    const std::string inv = "delivery-integrity";
    const bool corrupting = scenario_delivers_mutants(spec);
    for (const auto& f : result.flows) {
        for (const auto& [id, s] : f.streams) {
            const std::string label = stream_label(f, id);
            if (!s.opened_by_sender) {
                // A stream the sender never opened can only come from
                // decoder-accepted garbage; without a corrupt impairment
                // its existence is itself a violation.
                if (!corrupting)
                    violate(result, inv, label + ": delivered on a stream the sender never opened");
                continue;
            }
            if (s.overlap_bytes > 0) {
                std::ostringstream os;
                os << label << ": " << s.overlap_bytes << " bytes delivered more than once";
                violate(result, inv, os.str());
            }
            if (s.check_mode == sack::reliability_mode::full && s.ooo_deliveries > 0) {
                std::ostringstream os;
                os << label << ": " << s.ooo_deliveries
                   << " out-of-order deliveries on a fully reliable stream";
                violate(result, inv, os.str());
            }
            switch (s.check_mode) {
            case sack::reliability_mode::full:
                // With mutants delivered into the transport, byte-
                // exactness is unachievable by design (mutated seq/offset
                // fields forge phantom acks — the wire format carries no
                // integrity protection); those scenarios assert liveness
                // and the ordering/duplication checks above instead.
                if (s.delivered != s.offered && !corrupting) {
                    std::ostringstream os;
                    os << label << ": fully reliable stream delivered " << s.delivered
                       << " of " << s.offered << " offered bytes";
                    violate(result, inv, os.str());
                }
                break;
            case sack::reliability_mode::partial:
                if (s.delivered > s.offered && !corrupting) {
                    std::ostringstream os;
                    os << label << ": delivered " << s.delivered << " > offered " << s.offered;
                    violate(result, inv, os.str());
                }
                // Hole bound: every byte is delivered, abandoned by the
                // partial policy, or part of the small unsettled tail —
                // ranges whose retransmission was itself in flight (loss
                // not yet finalised) when the sender declared completion.
                // That tail is bounded by a few packets; anything larger
                // is a real reliability hole.
                if (s.delivered + s.abandoned + 8ull * f.packet_size < s.offered) {
                    std::ostringstream os;
                    os << label << ": hole not bounded by the partial policy — delivered "
                       << s.delivered << " + abandoned " << s.abandoned
                       << " + unsettled-tail allowance < offered " << s.offered;
                    violate(result, inv, os.str());
                }
                break;
            case sack::reliability_mode::none:
                if (s.delivered > s.offered && !corrupting) {
                    std::ostringstream os;
                    os << label << ": delivered " << s.delivered << " > offered " << s.offered;
                    violate(result, inv, os.str());
                }
                break;
            }
        }
        // Total-blackhole detection: a stream that offered bytes must
        // have delivered *something* — even no-reliability streams under
        // heavy impairment get a nonzero fraction through. (Checked via
        // the delivered counter, not map membership: the runner creates
        // an accounting entry for every sender stream.)
        for (const auto& info : f.sender_streams) {
            if (info.bytes_offered == 0) continue;
            const auto it = f.streams.find(info.id);
            if (it == f.streams.end() || it->second.delivered == 0) {
                std::ostringstream os;
                os << "flow " << f.flow_id << " stream " << info.id << ": "
                   << info.bytes_offered << " bytes offered but nothing ever delivered";
                violate(result, inv, os.str());
            }
        }
    }
}

void check_close_termination(const scenario_spec& spec, scenario_result& result) {
    const std::string inv = "close-termination";
    for (const auto& f : result.flows) {
        if (!f.established) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": never established";
            violate(result, inv, os.str());
            continue;
        }
        if (!f.client_closed) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": client close() did not terminate within "
               << util::to_seconds(spec.deadline()) << "s";
            violate(result, inv, os.str());
        }
        if (!f.server_closed) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": server never saw the peer's FIN";
            violate(result, inv, os.str());
        }
    }
}

void check_tfrc_equation_bound(const scenario_spec& spec, scenario_result& result) {
    if (spec.tfrc_bound_factor <= 0) return;
    const std::string inv = "tfrc-equation-bound";
    for (const auto& f : result.flows) {
        const auto& st = f.client_stats;
        // Window-based senders (NewReno/Westwood) are not bound by the
        // TFRC equation; the check only judges equation-controlled flows.
        if (st.cc_algorithm != cc::algorithm_id::tfrc) continue;
        const double p = st.loss_event_rate;
        const double rtt_s = util::to_seconds(st.rtt);
        if (p <= 0 || rtt_s <= 0 || st.allowed_rate_bps <= 0) continue;
        tfrc::equation_params eq;
        eq.packet_size_bytes = static_cast<double>(f.packet_size);
        const double x_bps = tfrc::throughput_bytes_per_second(eq, rtt_s, p) * 8.0;
        const double floor_bps = f.guaranteed_rate_bps;
        const double bound = spec.tfrc_bound_factor * std::max(x_bps, floor_bps);
        if (st.allowed_rate_bps > bound) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": allowed rate " << st.allowed_rate_bps
               << " b/s exceeds " << spec.tfrc_bound_factor << "x equation bound " << bound
               << " b/s (p=" << p << ", rtt=" << rtt_s << "s, gTFRC floor=" << floor_bps
               << ")";
            violate(result, inv, os.str());
        }
    }
}

void check_stats_consistency(const scenario_spec& spec, scenario_result& result) {
    (void)spec;
    const std::string inv = "stats-consistency";
    for (const auto& f : result.flows) {
        const auto& cs = f.client_stats;
        const auto& ss = f.server_stats;
        if (cs.stream_bytes_acked > cs.stream_bytes_sent) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": acked " << cs.stream_bytes_acked << " > sent "
               << cs.stream_bytes_sent;
            violate(result, inv, os.str());
        }
        if (cs.stream_bytes_sent > cs.stream_bytes_queued) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": sent " << cs.stream_bytes_sent << " > queued "
               << cs.stream_bytes_queued;
            violate(result, inv, os.str());
        }
        if (f.established && cs.packets_sent == 0) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": established but no packets sent";
            violate(result, inv, os.str());
        }
        for (const auto& info : f.sender_streams) {
            std::ostringstream os;
            if (info.bytes_acked > info.bytes_sent) {
                os << stream_label(f, info.id) << ": acked " << info.bytes_acked << " > sent "
                   << info.bytes_sent;
                violate(result, inv, os.str());
            } else if (info.bytes_sent > info.bytes_offered) {
                os << stream_label(f, info.id) << ": sent " << info.bytes_sent << " > offered "
                   << info.bytes_offered;
                violate(result, inv, os.str());
            } else if (info.abandoned_bytes > info.bytes_offered) {
                os << stream_label(f, info.id) << ": abandoned " << info.abandoned_bytes
                   << " > offered " << info.bytes_offered;
                violate(result, inv, os.str());
            }
        }
        if (ss.bytes_delivered > ss.bytes_received) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": delivered " << ss.bytes_delivered
               << " > received " << ss.bytes_received;
            violate(result, inv, os.str());
        }
        if (f.established && ss.packets_received == 0) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": established but server received no packets";
            violate(result, inv, os.str());
        }
        // The delivery callbacks and the stats counter must agree: what
        // the application was handed is what the endpoint accounted.
        std::uint64_t callback_bytes = 0;
        for (const auto& [id, s] : f.streams) callback_bytes += s.delivered;
        if (callback_bytes != ss.bytes_delivered) {
            std::ostringstream os;
            os << "flow " << f.flow_id << ": delivery callbacks handed " << callback_bytes
               << " bytes but the stats counter says " << ss.bytes_delivered;
            violate(result, inv, os.str());
        }
    }
}

void check_flood_containment(const scenario_spec& spec, scenario_result& result) {
    if (!spec.synflood.enabled() || !result.flood.enabled) return;
    const std::string inv = "flood-containment";
    const flood_observation& fl = result.flood;
    // Zero unvalidated-source sessions: every spoofed SYN must die at the
    // cookie gate, so the only sessions ever spawned are the legitimate
    // flows (each of which cleared a retry round-trip).
    if (fl.total_accepted != result.flows.size()) {
        std::ostringstream os;
        os << "servers accepted " << fl.total_accepted << " sessions but only "
           << result.flows.size() << " legitimate flows exist (" << fl.syns_injected
           << " spoofed SYNs injected)";
        violate(result, inv, os.str());
    }
    if (fl.retries_sent == 0) {
        std::ostringstream os;
        os << "no retry cookies were ever sent despite " << fl.syns_injected
           << " injected SYNs — the guard never engaged";
        violate(result, inv, os.str());
    }
    if (fl.cookies_validated < result.flows.size()) {
        std::ostringstream os;
        os << "only " << fl.cookies_validated << " cookies validated for "
           << result.flows.size() << " legitimate flows";
        violate(result, inv, os.str());
    }
    if (fl.half_open_cap > 0 && fl.max_half_open_seen > fl.half_open_cap) {
        std::ostringstream os;
        os << "half-open gauge peaked at " << fl.max_half_open_seen
           << " above the configured cap " << fl.half_open_cap;
        violate(result, inv, os.str());
    }
}

void check_migration_continuity(const scenario_spec& spec, scenario_result& result) {
    if (!spec.mobility.enabled || !spec.mobility.expect_migration()) return;
    if (result.flows.empty()) return;
    const std::string inv = "migration-continuity";
    const flow_observation& f = result.flows[0];
    const std::uint64_t migrations =
        f.client_stats.path.migrations + f.server_stats.path.migrations;
    if (migrations == 0) {
        violate(result, inv,
                "no endpoint ever switched its active path despite a scheduled "
                "rebind/migrate event");
    }
    // A passive rebind is detected and followed by the *server* (the
    // client's address changed under it); an explicit migrate() switches
    // the *client*. Check the side the event targets.
    if (spec.mobility.rebind_at > 0 && f.server_stats.path.migrations == 0)
        violate(result, inv, "server never followed the client's rebound address");
    if (spec.mobility.migrate_at > 0 && f.client_stats.path.migrations == 0)
        violate(result, inv, "client migrate() never switched the active path");
    // CC continuity: the same controller instance must keep pacing across
    // the switch — no mid-flow algorithm swap was applied by migration,
    // and the allowed rate did not crater to a slow-start restart.
    if (f.client_stats.cc_swaps_applied != result.mobility.cc_swaps_at_event) {
        std::ostringstream os;
        os << "cc controller was swapped across the migration (swaps "
           << result.mobility.cc_swaps_at_event << " -> "
           << f.client_stats.cc_swaps_applied << ")";
        violate(result, inv, os.str());
    }
    if (result.mobility.rate_before_bps > 0 &&
        result.mobility.rate_after_bps < 0.2 * result.mobility.rate_before_bps) {
        std::ostringstream os;
        os << "allowed rate cratered across the migration: "
           << result.mobility.rate_before_bps << " b/s before, "
           << result.mobility.rate_after_bps
           << " b/s 1.5s after (slow-start restart signature)";
        violate(result, inv, os.str());
    }
}

void check_path_containment(const scenario_spec& spec, scenario_result& result) {
    if (!spec.mobility.enabled || !spec.mobility.spoof_enabled()) return;
    if (result.flows.empty()) return;
    const std::string inv = "path-containment";
    const double factor = spec.flows[0].options.path.amplification_factor;
    auto audit = [&](const char* side, const std::vector<path::path_info>& paths) {
        for (const auto& p : paths) {
            const bool spoofed = p.remote >= 0xB0000000u;
            if (spoofed && p.state == path::path_state::validated) {
                std::ostringstream os;
                os << side << ": spoofed address " << p.remote
                   << " was validated — a forged token was accepted";
                violate(result, inv, os.str());
            }
            // The amplification bound applies to every path we did not
            // probe on our own initiative until it validates.
            if (!p.locally_initiated && p.state != path::path_state::validated &&
                static_cast<double>(p.bytes_sent) >
                    factor * static_cast<double>(p.bytes_received)) {
                std::ostringstream os;
                os << side << ": unvalidated path " << p.remote << " was sent "
                   << p.bytes_sent << " bytes against " << p.bytes_received
                   << " received (budget factor " << factor << ")";
                violate(result, inv, os.str());
            }
        }
    };
    for (const auto& f : result.flows) {
        audit("client", f.client_paths);
        audit("server", f.server_paths);
    }
    // The attack surface actually engaged: forged tokens were seen and
    // rejected, and no spoofed path ever carried steered data.
    const flow_observation& f0 = result.flows[0];
    if (result.mobility.spoofs_injected > 0 &&
        f0.server_stats.path.responses_rejected == 0) {
        violate(result, inv,
                "forged path_responses were injected but none was counted as "
                "rejected — the token check never ran");
    }
    for (const auto& p : f0.server_paths) {
        if (p.remote >= 0xB0000000u && p.packets_sent > 0) {
            std::ostringstream os;
            os << "server steered " << p.packets_sent
               << " data packets to spoofed address " << p.remote;
            violate(result, inv, os.str());
        }
    }
}

void check_dualpath_goodput(const scenario_spec& spec, scenario_result& result) {
    if (!spec.mobility.enabled || spec.mobility.min_goodput_factor <= 0) return;
    if (result.flows.empty()) return;
    const std::string inv = "dualpath-goodput";
    const flow_observation& f = result.flows[0];
    // Both legs must have validated and actually carried acked data.
    std::size_t carrying = 0;
    for (const auto& p : f.client_paths)
        if (p.state == path::path_state::validated && p.packets_acked > 0) ++carrying;
    if (carrying < 2) {
        std::ostringstream os;
        os << "only " << carrying
           << " validated path(s) carried acked data; dual-path striping never engaged";
        violate(result, inv, os.str());
        return;
    }
    const double seconds = util::to_seconds(result.finished_at);
    const double goodput_bps =
        seconds > 0 ? static_cast<double>(f.server_stats.bytes_delivered) * 8.0 / seconds
                    : 0.0;
    const double best_single =
        std::max(spec.bottleneck_rate_bps, spec.mobility.alt_rate_bps);
    const double bar = spec.mobility.min_goodput_factor * best_single;
    if (goodput_bps < bar) {
        std::ostringstream os;
        os << "aggregate goodput " << goodput_bps << " b/s below "
           << spec.mobility.min_goodput_factor << "x best single link (" << bar
           << " b/s)";
        violate(result, inv, os.str());
    }
    // Per-path friendliness: each leg's delivered rate must stay inside
    // the TFRC band for its own measured (p, rtt) — striping must not
    // turn one leg into an unresponsive firehose.
    for (const auto& p : f.client_paths) {
        if (p.state != path::path_state::validated) continue;
        if (p.loss_rate < 1e-3 || p.srtt == 0 || p.delivery_rate_bps <= 0) continue;
        tfrc::equation_params eq;
        eq.packet_size_bytes = static_cast<double>(f.packet_size);
        const double x_bps =
            tfrc::throughput_bytes_per_second(eq, util::to_seconds(p.srtt), p.loss_rate) *
            8.0;
        if (p.delivery_rate_bps > 3.0 * x_bps) {
            std::ostringstream os;
            os << "path " << p.remote << " delivered " << p.delivery_rate_bps
               << " b/s, above 3x its TFRC equation rate " << x_bps << " b/s (p="
               << p.loss_rate << ", srtt=" << util::to_seconds(p.srtt) << "s)";
            violate(result, inv, os.str());
        }
    }
}

const std::vector<named_invariant>& default_invariants() {
    static const std::vector<named_invariant> all = {
        {"delivery-integrity", check_delivery_integrity},
        {"close-termination", check_close_termination},
        {"tfrc-equation-bound", check_tfrc_equation_bound},
        {"stats-consistency", check_stats_consistency},
        {"flood-containment", check_flood_containment},
        {"migration-continuity", check_migration_continuity},
        {"path-containment", check_path_containment},
        {"dualpath-goodput", check_dualpath_goodput},
    };
    return all;
}

} // namespace vtp::testing
