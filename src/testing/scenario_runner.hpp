// Execute a scenario_spec on sim::host sessions and judge it.
//
// The runner builds a dumbbell (one pair per flow), threads the spec's
// impairment chain into the bottleneck datapath (sim/impairment.hpp),
// schedules handover phases and per-flow renegotiation/close events,
// records every delivery callback, and — once every flow closed or the
// deadline hit — evaluates the invariant checkers. Everything is driven
// by the discrete-event scheduler, so a (spec, seed) pair reproduces the
// identical run bit-for-bit, including the trace hash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cc/algorithm_id.hpp"
#include "testing/invariants.hpp"
#include "testing/scenario.hpp"
#include "trace/tracer.hpp"

namespace vtp::testing {

struct scenario_run_options {
    /// 0 = the spec's own seed.
    std::uint64_t seed = 0;
    /// Keep the per-delivery event list (the failure dump); counters and
    /// the trace hash are always computed.
    bool collect_trace = true;
    /// Drive every flow through the poll/event API with real payload
    /// (deterministic pattern bytes, verified chunk-by-chunk at the
    /// receiver) instead of legacy callbacks over synthetic lengths.
    /// Deliveries are recorded from recv_chunk() metadata — stamped at
    /// delivery time — so the trace hash of a poll run must equal the
    /// callback run's for the same (spec, seed).
    bool poll_api = false;
    /// Force every flow (and every scheduled renegotiation profile) onto
    /// this congestion-control algorithm. nullopt runs the spec as
    /// written — the default TFRC path whose trace hashes are the frozen
    /// regression oracle. Overridden runs are judged by the same
    /// invariants but carry their own (non-frozen) hashes.
    std::optional<cc::algorithm_id> cc_override;
    /// Flight recorder (trace/record.hpp): every endpoint of the run —
    /// clients and accepted sessions — records into a per-connection
    /// ring spilling to this shared sink. The simulator is
    /// single-threaded, so a (spec, seed) pair reproduces the
    /// byte-identical record stream; nullptr (the default) leaves every
    /// hook off, which is the frozen-trace-hash oracle configuration.
    trace::sink* trace_sink = nullptr;
    /// Ring capacity per connection; 0 picks a spill-friendly default
    /// when `trace_sink` is set and keeps tracing off otherwise.
    std::size_t trace_ring_records = 0;
};

/// Run `spec` with `seed` (0 = the spec's own seed). `collect_trace`
/// keeps the per-delivery event list (the failure dump); counters and
/// the trace hash are always computed.
scenario_result run_scenario(const scenario_spec& spec, std::uint64_t seed = 0,
                             bool collect_trace = true);
scenario_result run_scenario(const scenario_spec& spec,
                             const scenario_run_options& opts);

/// Write the delivery trace and violations as CSV (the artifact CI
/// uploads on failure). Returns false when the file cannot be written.
bool write_trace_csv(const scenario_result& result, const std::string& path);

/// One-line verdict ("PASS name seed=… hash=…" / "FAIL name … 3 violations").
std::string summarize(const scenario_result& result);

} // namespace vtp::testing
