// Machine-checked protocol invariants for scenario conformance runs.
//
// A scenario run produces a `scenario_result`: the full delivery trace,
// per-flow endpoint observations and a deterministic trace hash. The
// invariant checkers walk that evidence:
//
//   delivery-integrity   full-reliability streams are byte-exact and
//                        strictly in-order at the application; partial
//                        streams are hole-bounded (delivered + abandoned
//                        covers everything offered); no stream ever hands
//                        the application the same byte twice, and no
//                        ordered stream delivers out of order
//   close-termination    close() always terminates: every flow reaches
//                        closed on both endpoints before the deadline
//   tfrc-equation-bound  after convergence the sender's allowed rate is
//                        within a factor of the RFC 3448 equation rate
//                        for its measured (p, RTT) — or the gTFRC floor
//   stats-consistency    counters cannot contradict each other or the
//                        observed trace (acked <= sent <= queued, the
//                        delivery callbacks sum to the delivered counter, …)
//
// Checkers are pluggable: `default_invariants()` is the standard set the
// runner applies; tests and tools can append their own.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "path/path.hpp"
#include "sack/reassembly.hpp"
#include "testing/scenario.hpp"

namespace vtp::testing {

struct invariant_violation {
    std::string invariant; ///< checker name
    std::string detail;    ///< human-readable evidence
};

/// One delivery callback observed at a receiver.
struct delivery_event {
    std::uint32_t flow = 0;
    std::uint32_t stream = 0;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    util::sim_time at = 0;
};

/// Receive-side accounting for one stream of one flow, accumulated by
/// the runner as deliveries arrive.
struct stream_delivery {
    /// Strictest reliability check this stream must satisfy: the weakest
    /// reliability mode it ran under at any point (a follow-profile
    /// stream renegotiated full -> partial is checked as partial).
    sack::reliability_mode check_mode = sack::reliability_mode::full;
    bool opened_by_sender = false; ///< false: phantom (decoder-accepted garbage)
    std::uint64_t offered = 0;     ///< sender-side bytes offered
    std::uint64_t abandoned = 0;   ///< sender-side bytes expired under partial policy
    std::uint64_t delivered = 0;   ///< bytes handed to the application
    std::uint64_t next_expected = 0;
    std::uint64_t overlap_bytes = 0;  ///< bytes delivered more than once
    std::uint64_t ooo_deliveries = 0; ///< out-of-order deliveries on an ordered stream
    sack::interval_set ranges;        ///< delivered [begin,end) ranges
};

/// Everything observed about one flow by the end of the run.
struct flow_observation {
    std::uint32_t flow_id = 0;
    bool established = false;
    bool client_closed = false;
    bool server_closed = false;
    vtp::session_stats client_stats{};
    vtp::session_stats server_stats{};
    std::vector<stream::stream_info> sender_streams;
    std::map<std::uint32_t, stream_delivery> streams;
    std::uint32_t packet_size = 1000;
    double guaranteed_rate_bps = 0.0; ///< active gTFRC floor at run end
    /// End-of-run path tables (empty unless the spec arms mobility).
    std::vector<path::path_info> client_paths;
    std::vector<path::path_info> server_paths;
};

/// Mobility accounting observed during a path-enabled run
/// (scenario_spec::mobility). Like the flood block, deliberately outside
/// the trace hash: estimator-level fields (rates, srtt) may evolve
/// without invalidating the frozen delivery oracle.
struct mobility_observation {
    bool enabled = false;
    /// Sender allowed rate sampled just before the rebind/migrate event
    /// and again 1.5 s later — the CC-continuity evidence (a slow-start
    /// restart would crater the second sample).
    double rate_before_bps = 0.0;
    double rate_after_bps = 0.0;
    std::uint32_t cc_swaps_at_event = 0; ///< client cc_swaps_applied at sample time
    std::uint64_t spoofs_injected = 0;   ///< forged datagrams the runner injected
};

/// Accept-path guard accounting observed during a SYN-flooded run
/// (scenario_spec::synflood). Deliberately outside the trace hash.
struct flood_observation {
    bool enabled = false;
    std::uint64_t syns_injected = 0;   ///< spoofed SYNs the runner injected
    std::uint64_t retries_sent = 0;    ///< stateless cookies minted
    std::uint64_t cookies_validated = 0;
    std::uint64_t cookies_rejected = 0;
    std::uint64_t rate_limited = 0;    ///< SYN + stray bucket denials
    std::uint64_t amp_limited = 0;     ///< retries withheld by the 3x budget
    std::uint64_t shed = 0;            ///< admission refusals (caps)
    std::uint64_t total_accepted = 0;  ///< sessions spawned across all servers
    std::size_t max_half_open_seen = 0; ///< peak of the sampled gauge
    std::size_t half_open_cap = 0;      ///< configured max_half_open
};

struct scenario_result {
    std::string name;
    std::uint64_t seed = 0;
    bool passed = false;
    std::vector<invariant_violation> violations;
    std::vector<delivery_event> trace;
    /// FNV-1a over every delivery event and the final per-flow counters:
    /// two same-seed runs must agree bit-for-bit.
    std::uint64_t trace_hash = 0;
    std::uint64_t events = 0; ///< scheduler events executed
    util::sim_time finished_at = 0;
    bool hit_deadline = false; ///< the run was cut off before every flow closed
    std::vector<flow_observation> flows;

    /// Poll-API runs (scenario_run_options::poll_api): received payload
    /// bytes checked against the deterministic send pattern.
    std::uint64_t payload_bytes_verified = 0;
    std::uint64_t payload_bytes_mismatched = 0;

    /// SYN-flood accounting (all zeros unless the spec enables a flood).
    flood_observation flood{};

    /// Mobility accounting (inert unless the spec arms mobility).
    mobility_observation mobility{};
};

/// A checker appends violations to `result.violations`.
using invariant_checker = std::function<void(const scenario_spec&, scenario_result&)>;

struct named_invariant {
    std::string name;
    invariant_checker check;
};

/// The standard checker set, in evaluation order.
const std::vector<named_invariant>& default_invariants();

// Individual checkers (exposed for focused tests).
void check_delivery_integrity(const scenario_spec& spec, scenario_result& result);
void check_close_termination(const scenario_spec& spec, scenario_result& result);
void check_tfrc_equation_bound(const scenario_spec& spec, scenario_result& result);
void check_stats_consistency(const scenario_spec& spec, scenario_result& result);
void check_flood_containment(const scenario_spec& spec, scenario_result& result);
/// Migration happened, the CC controller survived it (no swap, no
/// slow-start crater) and every validation counter is coherent.
void check_migration_continuity(const scenario_spec& spec, scenario_result& result);
/// No spoofed (never-validated) path ever received more than
/// amplification_factor x the bytes heard from it, and no forged token
/// validated anything.
void check_path_containment(const scenario_spec& spec, scenario_result& result);
/// Dual-path: aggregate goodput >= min_goodput_factor x the best single
/// link, both paths actually carried data, and each path's delivered
/// rate stayed inside the TFRC-friendly band for its measured (p, rtt).
void check_dualpath_goodput(const scenario_spec& spec, scenario_result& result);

} // namespace vtp::testing
