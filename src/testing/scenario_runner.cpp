#include "testing/scenario_runner.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "api/server.hpp"
#include "api/session.hpp"
#include "diffserv/conditioner.hpp"
#include "diffserv/rio.hpp"
#include "sim/handover.hpp"
#include "sim/impairment.hpp"
#include "sim/nat.hpp"
#include "sim/topology.hpp"
#include "util/pattern.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace vtp::testing {

namespace {

constexpr std::size_t max_trace_events = 500'000;

/// Weakest-reliability ordering: none < partial < full.
int mode_rank(sack::reliability_mode m) {
    switch (m) {
    case sack::reliability_mode::none: return 0;
    case sack::reliability_mode::partial: return 1;
    case sack::reliability_mode::full: return 2;
    }
    return 0;
}

sack::reliability_mode weakest(sack::reliability_mode a, sack::reliability_mode b) {
    return mode_rank(a) <= mode_rank(b) ? a : b;
}

/// The weakest reliability a profile-following stream ran under at any
/// point of the flow's life: initial profile, every proposed profile,
/// and whatever was finally active (proposals may be downgraded).
sack::reliability_mode weakest_profile_mode(const flow_spec& flow,
                                            const qtp::profile& final_active) {
    sack::reliability_mode m = flow.options.profile.reliability;
    for (const auto& r : flow.renegs) m = weakest(m, r.profile.reliability);
    return weakest(m, final_active.reliability);
}

std::unique_ptr<sim::loss_model> make_loss(const impairment_spec& imp, std::uint64_t seed) {
    if (imp.what == impairment_spec::kind::burst)
        return std::make_unique<sim::gilbert_elliott_loss>(imp.burst, seed);
    return std::make_unique<sim::bernoulli_loss>(imp.probability, seed);
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xFF;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}
constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ULL;

} // namespace

using util::pattern_buffer;
using util::pattern_byte;

scenario_result run_scenario(const scenario_spec& spec, std::uint64_t seed,
                             bool collect_trace) {
    scenario_run_options opts;
    opts.seed = seed;
    opts.collect_trace = collect_trace;
    return run_scenario(spec, opts);
}

scenario_result run_scenario(const scenario_spec& spec, const scenario_run_options& opts) {
    scenario_result result;
    result.name = spec.name;
    result.seed = opts.seed == 0 ? spec.seed : opts.seed;
    const bool collect_trace = opts.collect_trace;
    const std::uint64_t run_seed = result.seed;

    // Deterministic seed derivation chain: every random element gets its
    // own splitmix64-derived stream, so adding an impairment never
    // perturbs the seeds of the others.
    std::uint64_t mix = run_seed * 0x9e3779b97f4a7c15ULL + 0x1234567;
    auto next_seed = [&mix] { return util::splitmix64(mix); };

    sim::dumbbell_config cfg;
    cfg.pairs = spec.flows.size();
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = util::milliseconds(1);
    cfg.bottleneck_rate_bps = spec.bottleneck_rate_bps;
    cfg.bottleneck_delay = spec.bottleneck_delay;
    cfg.bottleneck_queue_packets = spec.queue_packets;
    cfg.seed = run_seed;
    if (spec.rio_queue) {
        const std::uint64_t rio_seed = next_seed();
        cfg.bottleneck_queue = [rio_seed] {
            return std::make_unique<diffserv::rio_queue>(diffserv::default_rio_params(60, 1050),
                                                         rio_seed);
        };
    }
    sim::dumbbell net(cfg);

    // --- impairment chains, one per direction ---------------------------
    std::vector<std::unique_ptr<sim::impairment_node>> impairments;
    auto build_chain = [&](bool ack_path) {
        sim::impairment_node* head = nullptr;
        sim::impairment_node* tail = nullptr;
        for (const auto& imp : spec.impairments) {
            if (imp.on_ack_path != ack_path) continue;
            auto node = std::make_unique<sim::impairment_node>(
                static_cast<std::uint32_t>((ack_path ? 20000 : 10000) + impairments.size()),
                net.sched(), next_seed());
            switch (imp.what) {
            case impairment_spec::kind::bernoulli:
            case impairment_spec::kind::burst:
                node->set_loss_model(make_loss(imp, next_seed()));
                break;
            case impairment_spec::kind::reorder:
                node->set_reorder({imp.probability, imp.min_delay, imp.max_delay});
                break;
            case impairment_spec::kind::duplicate:
                node->set_duplicate({imp.probability, 0});
                break;
            case impairment_spec::kind::corrupt:
                node->set_corrupt({imp.probability, imp.max_bit_flips, imp.deliver_mutants});
                break;
            }
            node->set_active_window(imp.start, imp.stop);
            if (tail != nullptr) tail->set_downstream(node.get());
            if (head == nullptr) head = node.get();
            tail = node.get();
            impairments.push_back(std::move(node));
        }
        if (head == nullptr) return;
        if (!ack_path) {
            tail->set_downstream(&net.right_router());
            net.forward_bottleneck().set_destination(head);
        } else {
            tail->set_downstream(&net.left_router());
            net.reverse_bottleneck().set_destination(head);
        }
    };
    build_chain(false);
    build_chain(true);

    // --- handover schedule ---------------------------------------------
    sim::handover_link handover(net.sched(), net.forward_bottleneck(),
                                &net.reverse_bottleneck());
    for (const auto& h : spec.handovers) {
        sim::handover_phase phase;
        phase.at = h.at;
        phase.rate_bps = h.rate_bps;
        phase.delay = h.delay;
        phase.replace_loss = h.replace_loss;
        if (h.replace_loss && h.loss_probability > 0) {
            const double p = h.loss_probability;
            // Stateful factory: forward and reverse instances get
            // distinct (but seed-determined) streams.
            auto calls = std::make_shared<std::uint64_t>(0);
            const std::uint64_t base = next_seed();
            phase.loss = [p, base, calls]() -> std::unique_ptr<sim::loss_model> {
                return std::make_unique<sim::bernoulli_loss>(p, base + (*calls)++);
            };
        }
        handover.add_phase(std::move(phase));
    }
    handover.start();

    // --- mobility: NAT rebind + alternate link -------------------------
    // The NAT interposes on flow 0's access links (both directions) and
    // flips its mapping at rebind_at: the server suddenly sees the
    // client's packets from a new source address and must migrate. The
    // alternate link is a second, asymmetric route from the left router
    // straight to an alias of flow 0's server host — the explicit
    // migrate()/add_path() target.
    const std::uint32_t alias_addr = 900;
    std::unique_ptr<sim::nat_node> nat;
    std::unique_ptr<sim::node> alias;
    std::unique_ptr<sim::link> alt_link;
    if (spec.mobility.enabled && spec.mobility.rebind_at > 0 && !spec.flows.empty()) {
        const std::uint32_t internal = net.left_addr(0);
        const std::uint32_t external = internal + spec.mobility.rebind_shift;
        nat = std::make_unique<sim::nat_node>(30000, internal, external);
        nat->set_inside(&net.left_node(0));
        nat->set_outside(&net.left_router());
        net.left_uplink(0).set_destination(nat.get());
        net.left_downlink(0).set_destination(nat.get());
        net.left_router().add_route(external, &net.left_downlink(0));
        net.sched().at(spec.mobility.rebind_at, [&nat] { nat->activate(); });
    }
    if (spec.mobility.enabled && spec.mobility.alt_link && !spec.flows.empty()) {
        alias = std::make_unique<sim::node>(alias_addr);
        net.right_host(0).attach_alias(*alias);
        const sim::link::config alt_cfg{spec.mobility.alt_rate_bps,
                                        spec.mobility.alt_delay};
        alt_link = std::make_unique<sim::link>(
            net.sched(), alt_cfg, sim::make_drop_tail(spec.queue_packets, 1500));
        alt_link->set_destination(alias.get());
        net.left_router().add_route(alias_addr, alt_link.get());
    }

    // --- DiffServ edge (AF marking for flow 0) -------------------------
    diffserv::conditioner edge(net.sched());
    if (spec.af_commit_bps > 0) {
        edge.set_profile(1, spec.af_commit_bps,
                         static_cast<std::size_t>(spec.af_commit_bps / 8.0 * 0.03));
        edge.install_egress(net.left_node(0));
    }

    // --- flows ----------------------------------------------------------
    const std::size_t n = spec.flows.size();
    std::vector<std::unique_ptr<vtp::server>> servers;
    std::vector<vtp::session> clients(n);
    std::vector<vtp::session*> accepted(n, nullptr);
    result.flows.resize(n);

    std::uint64_t hash = fnv_offset;
    auto record = [&](std::size_t i, std::uint32_t stream, std::uint64_t offset,
                      std::uint32_t len, util::sim_time at) {
        if (len == 0) return;
        auto& obs = result.flows[i];
        auto& s = obs.streams[stream];
        s.overlap_bytes += s.ranges.covered_in(offset, offset + len);
        s.ranges.add(offset, offset + len);
        if (offset != s.next_expected) ++s.ooo_deliveries;
        s.next_expected = std::max(s.next_expected, offset + len);
        s.delivered += len;
        hash = fnv1a(hash, obs.flow_id);
        hash = fnv1a(hash, stream);
        hash = fnv1a(hash, offset);
        hash = fnv1a(hash, len);
        hash = fnv1a(hash, static_cast<std::uint64_t>(at));
        if (collect_trace && result.trace.size() < max_trace_events)
            result.trace.push_back({obs.flow_id, stream, offset, len, at});
    };

    // Flight recorder: both endpoints of every flow share one sink (the
    // simulator is single-threaded, so the interleaving — and therefore
    // the spilled byte stream — is seed-deterministic).
    std::size_t trace_ring = opts.trace_ring_records;
    if (opts.trace_sink != nullptr && trace_ring == 0) trace_ring = 4096;

    for (std::size_t i = 0; i < n; ++i) {
        server_options server_opts{};
        server_opts.trace_ring_records = trace_ring;
        server_opts.trace_sink = opts.trace_sink;
        if (spec.mobility.enabled) {
            // Accepted sessions need a live path manager to answer
            // challenges, detect the client's rebind passively and keep
            // spoofed sources inside the amplification budget.
            server_opts.path.enabled = true;
            // The receiver must know the peer may stripe: its loss
            // detector needs the multipath reorder tolerance.
            server_opts.path.multipath = spec.mobility.multipath;
        }
        if (spec.synflood.enabled()) {
            // Flooded runs arm the full accept-path guard: stateless
            // retry cookies (legitimate clients pay one extra RTT), a
            // half-open cap, and a short handshake deadline so any
            // half-open that does form is reaped quickly.
            server_opts.guard.retry_cookies = true;
            server_opts.max_half_open = spec.synflood.max_half_open;
            server_opts.handshake_deadline = util::seconds(2);
        }
        servers.push_back(
            std::make_unique<vtp::server>(net.right_host(i), server_opts));
        servers.back()->set_on_session([&, i](vtp::session& s) {
            // First accept wins: under a flood a rogue session slipping
            // the gate must not clobber the legitimate flow's handle
            // (check_flood_containment counts it separately).
            if (accepted[i] != nullptr) return;
            accepted[i] = &s;
            // Poll-API runs leave the session callback-free: deliveries
            // are drained below through recv_chunk(), whose metadata is
            // stamped at delivery time — same trace, no callbacks.
            if (!opts.poll_api)
                s.set_on_stream_delivered(
                    [&, i](std::uint32_t id, std::uint64_t off, std::uint32_t len) {
                        record(i, id, off, len, net.sched().now());
                    });
        });
    }

    // Poll-API runs: drain delivered chunks of every accepted session,
    // record them trace-faithfully and verify the payload pattern.
    auto drain_polled = [&] {
        if (!opts.poll_api) return;
        stream::ready_chunk chunk;
        std::uint32_t sid = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (accepted[i] == nullptr) continue;
            while (accepted[i]->recv_chunk(sid, chunk)) {
                record(i, sid,
                       chunk.offset, static_cast<std::uint32_t>(chunk.bytes.size()),
                       chunk.at);
                const std::uint32_t flow_id = result.flows[i].flow_id;
                for (std::size_t k = 0; k < chunk.bytes.size(); ++k) {
                    if (chunk.bytes[k] == pattern_byte(flow_id, sid, chunk.offset + k))
                        ++result.payload_bytes_verified;
                    else
                        ++result.payload_bytes_mismatched;
                }
            }
        }
    };

    for (std::size_t i = 0; i < n; ++i) {
        const flow_spec& flow = spec.flows[i];
        session_options sopts = flow.options;
        if (spec.mobility.enabled) {
            sopts.path.enabled = true;
            sopts.path.multipath = spec.mobility.multipath;
        }
        if (opts.cc_override) sopts.profile.congestion = *opts.cc_override;
        sopts.trace_ring_records = trace_ring;
        sopts.trace_sink = opts.trace_sink;
        sopts.flow_id = static_cast<std::uint32_t>(i + 1);
        result.flows[i].flow_id = sopts.flow_id;
        result.flows[i].packet_size = sopts.packet_size;

        clients[i] = vtp::session::connect(net.left_host(i), net.right_addr(i), sopts);
        if (opts.poll_api) {
            const std::vector<std::uint8_t> buf =
                pattern_buffer(sopts.flow_id, 0, flow.bytes);
            clients[i].send(0, std::span<const std::uint8_t>(buf));
        } else {
            clients[i].send(flow.bytes);
        }
        for (const auto& extra : flow.extra_streams) {
            const std::uint32_t sid = clients[i].open_stream(extra.options);
            if (sid == stream::invalid_stream) continue;
            if (opts.poll_api) {
                const std::vector<std::uint8_t> buf =
                    pattern_buffer(sopts.flow_id, sid, extra.bytes);
                clients[i].send(sid, std::span<const std::uint8_t>(buf));
            } else {
                clients[i].send(sid, extra.bytes);
            }
        }
        for (reneg_spec reneg : flow.renegs) {
            // A forced-algorithm run must stay on that algorithm across
            // renegotiations, or the override would silently revert.
            if (opts.cc_override) reneg.profile.congestion = *opts.cc_override;
            net.sched().at(reneg.at, [&, i, reneg] {
                if (reneg.from_receiver) {
                    if (accepted[i] != nullptr) accepted[i]->renegotiate(reneg.profile);
                } else {
                    clients[i].renegotiate(reneg.profile);
                }
            });
        }
        if (flow.close_at > 0) {
            net.sched().at(flow.close_at, [&, i] { clients[i].close(); });
        } else {
            clients[i].close();
        }
    }

    // --- mobility events ------------------------------------------------
    result.mobility.enabled = spec.mobility.enabled;
    std::uint64_t spoofs_injected = 0;
    if (spec.mobility.enabled && n > 0) {
        if (spec.mobility.migrate_at > 0) {
            net.sched().at(spec.mobility.migrate_at,
                           [&clients, alias_addr] { clients[0].migrate(alias_addr); });
        }
        if (spec.mobility.add_path_at > 0) {
            net.sched().at(spec.mobility.add_path_at,
                           [&clients, alias_addr] { clients[0].add_path(alias_addr); });
        }
        // CC-continuity evidence: sample the sender's allowed rate just
        // before the mobility event and again 1.5 s later. A slow-start
        // restart would crater the second sample; a carried controller
        // keeps pacing through the switch.
        if (spec.mobility.expect_migration()) {
            const util::sim_time ev = spec.mobility.rebind_at > 0
                                          ? spec.mobility.rebind_at
                                          : spec.mobility.migrate_at;
            const util::sim_time before =
                ev > util::milliseconds(50) ? ev - util::milliseconds(50) : 0;
            net.sched().at(before, [&result, &clients] {
                const vtp::session_stats st = clients[0].stats();
                result.mobility.rate_before_bps = st.allowed_rate_bps;
                result.mobility.cc_swaps_at_event = st.cc_swaps_applied;
            });
            net.sched().at(ev + util::milliseconds(1500), [&result, &clients] {
                result.mobility.rate_after_bps = clients[0].stats().allowed_rate_bps;
            });
        }
        // Spoofed-migration attack: forged frames echoing flow 0's flow
        // id from spoofed sources, aimed at the server. Challenges force
        // the server to spend (budgeted) probe bytes; responses carry
        // tokens that match nothing and must all be rejected.
        if (spec.mobility.spoof_enabled()) {
            const auto interval =
                static_cast<util::sim_time>(1e9 / spec.mobility.spoof_rate_hz);
            auto tick = std::make_shared<std::function<void()>>();
            *tick = [&spec, &net, &spoofs_injected, &result,
                     weak = std::weak_ptr(tick), interval] {
                if (net.sched().now() >= spec.mobility.spoof_stop) return;
                const std::uint32_t k = static_cast<std::uint32_t>(spoofs_injected++);
                const std::uint32_t src = 0xB0000000u + k % spec.mobility.spoof_sources;
                packet::segment seg =
                    k % 2 == 0
                        ? packet::segment{packet::path_challenge_segment{0x5eed0000ULL + k}}
                        : packet::segment{packet::path_response_segment{0xF00D0000ULL + k}};
                net.left_node(0).inject(packet::make_packet(
                    result.flows[0].flow_id, src, net.right_addr(0), std::move(seg)));
                if (auto self = weak.lock())
                    net.sched().at(net.sched().now() + interval, [self] { (*self)(); });
            };
            net.sched().at(spec.mobility.spoof_start, [tick] { (*tick)(); });
        }
    }

    // --- SYN flood ------------------------------------------------------
    // Spoofed SYNs are injected at flow 0's client-side node (past the
    // host, so no sender state exists for them) with fresh flow ids and
    // unroutable source addresses: the servers' retry replies vanish,
    // exactly as they would toward a spoofed Internet source.
    std::uint64_t flood_injected = 0;
    if (spec.synflood.enabled()) {
        const auto interval = static_cast<util::sim_time>(
            1e9 / spec.synflood.syn_rate_hz);
        // The function object holds only a weak self-reference; each
        // pending scheduler event carries the strong one, so the chain
        // dies with its last event instead of leaking a ref cycle.
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [&spec, &net, &flood_injected,
                 weak = std::weak_ptr(tick), interval] {
            if (net.sched().now() >= spec.synflood.stop) return;
            packet::handshake_segment syn;
            syn.type = packet::handshake_segment::kind::syn;
            const std::uint32_t k = static_cast<std::uint32_t>(flood_injected++);
            const std::uint32_t src = 0xA0000000u + k % spec.synflood.sources;
            const std::uint32_t flow = 0x7F000000u + k;
            net.left_node(0).inject(packet::make_packet(
                flow, src, net.right_addr(0), packet::segment{syn}));
            if (auto self = weak.lock())
                net.sched().at(net.sched().now() + interval,
                               [self] { (*self)(); });
        };
        net.sched().at(spec.synflood.start, [tick] { (*tick)(); });
    }

    // --- drive ----------------------------------------------------------
    auto all_closed = [&] {
        for (std::size_t i = 0; i < n; ++i) {
            if (!clients[i].closed()) return false;
            if (accepted[i] == nullptr || !accepted[i]->closed()) return false;
        }
        return true;
    };
    auto sample_flood = [&] {
        if (!spec.synflood.enabled()) return;
        std::size_t ho = 0;
        for (const auto& srv : servers) ho += srv->half_open();
        result.flood.max_half_open_seen =
            std::max(result.flood.max_half_open_seen, ho);
    };
    const util::sim_time step = util::milliseconds(250);
    util::sim_time t = 0;
    while (t < spec.deadline() && !all_closed()) {
        t += step;
        net.sched().run_until(t);
        drain_polled();
        sample_flood();
    }
    drain_polled(); // tail chunks delivered on the final step
    result.hit_deadline = !all_closed();
    result.finished_at = net.sched().now();
    result.events = net.sched().executed();

    // --- gather ---------------------------------------------------------
    for (std::size_t i = 0; i < n; ++i) {
        const flow_spec& flow = spec.flows[i];
        flow_observation& obs = result.flows[i];
        obs.established = clients[i].established();
        obs.client_closed = clients[i].closed();
        obs.server_closed = accepted[i] != nullptr && accepted[i]->closed();
        obs.client_stats = clients[i].stats();
        if (accepted[i] != nullptr) obs.server_stats = accepted[i]->stats();
        if (spec.mobility.enabled) {
            obs.client_paths = clients[i].snapshot().paths;
            if (accepted[i] != nullptr) obs.server_paths = accepted[i]->snapshot().paths;
        }
        obs.sender_streams = clients[i].stream_infos();
        const qtp::profile active = clients[i].valid() ? clients[i].active_profile()
                                                       : qtp::profile{};
        if (active.qos_aware) obs.guaranteed_rate_bps = active.target_rate_bps;

        const sack::reliability_mode profile_mode = weakest_profile_mode(flow, active);
        // Which extra-stream ids follow the profile (by open order: the
        // runner opens them in spec order right after stream 0).
        for (const auto& info : obs.sender_streams) {
            auto& s = obs.streams[info.id]; // creates entries for silent streams too
            s.opened_by_sender = true;
            s.offered = info.bytes_offered;
            s.abandoned = info.abandoned_bytes;
            bool follows = info.id == 0;
            if (info.id != 0) {
                const std::size_t idx = static_cast<std::size_t>(info.id) - 1;
                if (idx < flow.extra_streams.size())
                    follows = flow.extra_streams[idx].options.follow_profile;
            }
            s.check_mode = follows ? profile_mode : info.reliability;
        }
        // Fold the endgame counters into the hash so "identical trace"
        // really means identical protocol behaviour, not just identical
        // delivery order.
        hash = fnv1a(hash, obs.client_stats.packets_sent);
        hash = fnv1a(hash, obs.client_stats.rtx_bytes_sent);
        hash = fnv1a(hash, obs.server_stats.packets_received);
        hash = fnv1a(hash, obs.server_stats.bytes_delivered);
        hash = fnv1a(hash, obs.client_stats.renegotiations);
    }
    hash = fnv1a(hash, result.events);
    result.trace_hash = hash;
    // Mobility accounting stays OUT of the trace hash, like the flood
    // block: estimator-level fields may evolve without invalidating the
    // frozen delivery oracle. check_migration_continuity and friends
    // judge them instead.
    result.mobility.spoofs_injected = spoofs_injected;

    // Flood accounting stays OUT of the trace hash: guard counters may
    // evolve (new shed reasons, different retry pacing) without
    // invalidating the frozen delivery oracle. check_flood_containment
    // judges them instead.
    if (spec.synflood.enabled()) {
        flood_observation& fl = result.flood;
        fl.enabled = true;
        fl.syns_injected = flood_injected;
        fl.half_open_cap = spec.synflood.max_half_open;
        for (const auto& srv : servers) {
            const server_stats ss = srv->stats();
            fl.retries_sent += ss.retries_sent;
            fl.cookies_validated += ss.cookies_validated;
            fl.cookies_rejected += ss.cookies_rejected;
            fl.rate_limited += ss.syn_rate_limited + ss.stray_rate_limited;
            fl.amp_limited += ss.amplification_limited;
            fl.shed += ss.shed;
            fl.total_accepted += ss.accepted;
        }
    }

    for (const auto& inv : default_invariants()) inv.check(spec, result);
    result.passed = result.violations.empty();
    return result;
}

bool write_trace_csv(const scenario_result& result, const std::string& path) {
    util::csv_trace trace(path, {"t_s", "flow", "stream", "offset", "len"});
    if (!trace.ok()) return false;
    for (const auto& v : result.violations)
        trace.row_text({"violation", v.invariant, v.detail, "", ""});
    for (const auto& e : result.trace)
        trace.row({util::to_seconds(e.at), static_cast<double>(e.flow),
                   static_cast<double>(e.stream), static_cast<double>(e.offset),
                   static_cast<double>(e.len)});
    trace.flush();
    return trace.ok();
}

std::string summarize(const scenario_result& result) {
    std::ostringstream os;
    os << (result.passed ? "PASS " : "FAIL ") << result.name << " seed=" << result.seed
       << " events=" << result.events << " t=" << util::to_seconds(result.finished_at)
       << "s hash=" << std::hex << result.trace_hash << std::dec;
    if (!result.passed) os << " (" << result.violations.size() << " violations)";
    return os.str();
}

} // namespace vtp::testing
