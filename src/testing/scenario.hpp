// Declarative protocol scenarios for the conformance harness.
//
// A `scenario_spec` is everything needed to reproduce one adversarial
// end-to-end run: the path (rate/delay/queue, optionally a DiffServ RIO
// bottleneck with an edge conditioner), an impairment schedule (burst
// loss, reordering, duplication, corruption, handovers — sim/impairment
// and sim/handover), and per-flow setup (profile, extra mux streams,
// renegotiation timeline, close time). `scenario_runner.hpp` executes a
// spec on sim::host sessions and evaluates the invariant checkers in
// `invariants.hpp`; every run is fully determined by (spec, seed).
//
// The canonical matrix below (`scenario_matrix()`) is the regression net
// every PR runs through: each entry is registered as its own ctest case
// (CMakeLists.txt) and can be replayed by name with `vtpscenario`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/session_options.hpp"
#include "sim/impairment.hpp"
#include "sim/loss.hpp"
#include "stream/stream.hpp"
#include "util/time.hpp"

namespace vtp::testing {

/// One impairment installed on the bottleneck datapath.
struct impairment_spec {
    enum class kind {
        bernoulli, ///< independent loss (probability)
        burst,     ///< Gilbert–Elliott burst loss (burst params)
        reorder,   ///< random extra holding delay (probability, delays)
        duplicate, ///< packet cloning (probability)
        corrupt,   ///< wire-codec bit flips (probability, max_bit_flips)
    };
    kind what = kind::bernoulli;
    double probability = 0.0;
    sim::gilbert_elliott_loss::params burst{};
    util::sim_time min_delay = 0; ///< reorder: extra delay window
    util::sim_time max_delay = 0;
    int max_bit_flips = 4;
    /// corrupt: forward decoder-accepted mutants into the transport
    /// (adversarial mode — relaxes the phantom/over-delivery integrity
    /// checks) instead of dropping every corrupted packet post-decode.
    bool deliver_mutants = false;
    bool on_ack_path = false; ///< install on the reverse (feedback) direction
    util::sim_time start = 0; ///< active window [start, stop)
    util::sim_time stop = util::time_never;
};

/// One handover phase applied to the bottleneck (both directions).
struct handover_spec {
    util::sim_time at = 0;
    double rate_bps = 0.0;        ///< 0 keeps current
    util::sim_time delay = 0;     ///< 0 keeps current
    bool replace_loss = false;    ///< switch loss regime at the boundary
    double loss_probability = 0.0; ///< bernoulli loss of the new regime (0 = clean)
};

/// An additional mux stream opened on a flow at establishment.
struct stream_spec {
    stream::stream_options options{};
    std::uint64_t bytes = 0;
};

/// A mid-flow profile renegotiation event.
struct reneg_spec {
    util::sim_time at = 0;
    qtp::profile profile{};
    bool from_receiver = false; ///< the accepted (server-side) session proposes
};

/// A spoofed-source SYN flood aimed at the servers while the legitimate
/// flows run. The runner injects raw SYN packets (random unroutable
/// source addresses, fresh flow ids) past flow 0's client node, turns on
/// the accept-path guard (stateless retry cookies, half-open cap, short
/// handshake deadline) and samples the servers' half-open gauge every
/// drive step. Flood accounting is reported in
/// scenario_result::flood and judged by check_flood_containment — it is
/// NOT folded into the trace hash (guard counters are allowed to evolve
/// without invalidating the frozen delivery oracle).
struct synflood_spec {
    double syn_rate_hz = 0;       ///< injected SYNs per second (0 disables)
    std::uint32_t sources = 64;   ///< spoofed source address pool
    util::sim_time start = 0;     ///< active window [start, stop)
    util::sim_time stop = 0;
    std::size_t max_half_open = 32; ///< server cap under attack
    bool enabled() const { return syn_rate_hz > 0 && stop > start; }
};

/// Path mobility / multipath regime (src/path/). When `enabled`, every
/// flow's endpoints arm their path managers; the runner then drives one
/// (or more) of three shapes against flow 0:
///
///   rebind    an address-rewriting NAT (sim/nat.hpp) on flow 0's access
///             links flips at `rebind_at`: the client's packets suddenly
///             carry a new source address and the server must detect,
///             validate and follow (passive rebind migration)
///   alt link  a second, asymmetric link from the left router straight
///             to an alias address of flow 0's server (sim::host
///             multi-homing) — the explicit-migrate target
///             (`migrate_at`, the wifi->lte handover) or the second leg
///             of dual-path striping (`add_path_at` + `multipath`)
///   spoof     datagrams echoing flow 0's flow id injected from spoofed
///             source addresses toward the server: the attack the
///             validation + anti-amplification machinery must contain
struct mobility_spec {
    bool enabled = false;  ///< arm path managers on every flow's endpoints
    bool multipath = false; ///< dual-path striping (path::scheduler on)

    /// NAT rebind: flow 0's client address becomes old + `rebind_shift`
    /// at `rebind_at` (0 disables).
    util::sim_time rebind_at = 0;
    std::uint32_t rebind_shift = 1000;

    /// Alternate link: left router -> alias of flow 0's server.
    bool alt_link = false;
    double alt_rate_bps = 6e6;
    util::sim_time alt_delay = util::milliseconds(35);
    /// Explicit client migrate() onto the alternate link (0 disables).
    util::sim_time migrate_at = 0;
    /// add_path() time for dual-path striping (0 disables).
    util::sim_time add_path_at = 0;

    /// Spoofed-migration attack (0 rate disables).
    double spoof_rate_hz = 0;
    std::uint32_t spoof_sources = 8;
    util::sim_time spoof_start = 0;
    util::sim_time spoof_stop = 0;

    /// Dual-path bar: aggregate goodput must reach at least this factor
    /// x the best single link's capacity (0 disables the check).
    double min_goodput_factor = 0.0;

    /// check_migration_continuity: expect at least one active-path
    /// switch somewhere (client or server) by the end of the run.
    bool expect_migration() const { return rebind_at > 0 || migrate_at > 0; }
    bool spoof_enabled() const { return spoof_rate_hz > 0 && spoof_stop > spoof_start; }
};

/// One client->server flow on its own dumbbell pair.
struct flow_spec {
    session_options options{};
    std::uint64_t bytes = 1'000'000; ///< queued on stream 0 at connect
    std::vector<stream_spec> extra_streams;
    std::vector<reneg_spec> renegs;
    /// When the client calls close() (0 = right after queuing the sends;
    /// the FIN still waits for delivery under each stream's policy).
    util::sim_time close_at = 0;
};

struct scenario_spec {
    std::string name;    ///< ctest / CLI identifier (kebab-free, [a-z0-9_])
    std::string summary; ///< one line for --list output

    // Path (a dumbbell with one pair per flow).
    double bottleneck_rate_bps = 10e6;
    util::sim_time bottleneck_delay = util::milliseconds(20);
    std::size_t queue_packets = 50;
    bool rio_queue = false;    ///< DiffServ RIO bottleneck queue
    double af_commit_bps = 0.0; ///< edge-conditioner commit for flow 0 (AF marking)

    std::vector<impairment_spec> impairments;
    std::vector<handover_spec> handovers;
    std::vector<flow_spec> flows;
    synflood_spec synflood{};
    mobility_spec mobility{};

    /// Wall of the simulation: every flow must be closed by
    /// `deadline()`; the runner stops early once all flows close.
    util::sim_time duration = util::seconds(30);
    util::sim_time close_grace = util::seconds(120);

    /// TFRC equation bound: at the end of the run every sender's allowed
    /// rate must be within `tfrc_bound_factor` x the RFC 3448 equation
    /// rate for its measured (p, rtt). 0 disables the check (regimes
    /// where p/rtt are stale by construction, e.g. right after handover).
    double tfrc_bound_factor = 3.0;

    std::uint64_t seed = 1;

    util::sim_time deadline() const { return duration + close_grace; }
};

/// The canonical scenario matrix (>= 12 entries, at least one per
/// impairment type). Stable order; names are unique.
const std::vector<scenario_spec>& scenario_matrix();

/// nullptr when no scenario has that name.
const scenario_spec* find_scenario(const std::string& name);

std::vector<std::string> scenario_names();

/// The reduced matrix run under ASan/UBSan in CI (one scenario per
/// impairment family, shortest durations).
std::vector<std::string> reduced_matrix_names();

} // namespace vtp::testing
