// The canonical scenario matrix.
//
// Each entry is one adversarial regime the versatile transport must
// survive with its invariants intact (delivery integrity, bounded TFRC
// rate, terminating close, consistent counters). The matrix covers every
// impairment type at least once, the handover/renegotiation interaction,
// multi-stream mux under oscillating bandwidth, and a DiffServ AF
// bottleneck under congestion. Scenarios run as individual ctest cases
// (CMakeLists.txt registers scenario_<name>) and by name through the
// vtpscenario CLI; keep seeds fixed — a scenario is also a determinism
// regression.
#include "testing/scenario.hpp"

namespace vtp::testing {

namespace {

using util::milliseconds;
using util::seconds;

flow_spec bulk_reliable(std::uint64_t bytes) {
    flow_spec f;
    f.options = session_options::reliable();
    f.bytes = bytes;
    return f;
}

scenario_spec wired_baseline_reliable() {
    scenario_spec s;
    s.name = "wired_baseline_reliable";
    s.summary = "clean 20 Mb/s path, one fully reliable bulk flow (sanity anchor)";
    s.bottleneck_rate_bps = 20e6;
    s.flows = {bulk_reliable(4'000'000)};
    return s;
}

scenario_spec wireless_burst_loss() {
    scenario_spec s;
    s.name = "wireless_burst_loss";
    s.summary = "Gilbert-Elliott burst loss on the data path, full reliability";
    impairment_spec ge;
    ge.what = impairment_spec::kind::burst;
    ge.burst = {0.02, 0.25, 0.0, 0.4};
    s.impairments = {ge};
    s.flows = {bulk_reliable(3'000'000)};
    s.duration = seconds(60);
    return s;
}

scenario_spec burst_loss_partial_media() {
    scenario_spec s;
    s.name = "burst_loss_partial_media";
    s.summary = "burst loss vs a deadline-framed partially reliable media flow";
    impairment_spec ge;
    ge.what = impairment_spec::kind::burst;
    ge.burst = {0.03, 0.3, 0.0, 0.5};
    s.impairments = {ge};
    flow_spec f;
    f.options = session_options::light(sack::reliability_mode::partial);
    f.options.message_size = 1000;
    f.options.message_deadline = milliseconds(120);
    f.bytes = 2'000'000;
    s.flows = {f};
    s.duration = seconds(60);
    return s;
}

scenario_spec reorder_heavy_path() {
    scenario_spec s;
    s.name = "reorder_heavy_path";
    s.summary = "25% of packets held back 2-25 ms (multi-path/wireless reordering)";
    s.bottleneck_rate_bps = 20e6;
    impairment_spec ro;
    ro.what = impairment_spec::kind::reorder;
    ro.probability = 0.25;
    ro.min_delay = milliseconds(2);
    ro.max_delay = milliseconds(25);
    s.impairments = {ro};
    s.flows = {bulk_reliable(3'000'000)};
    return s;
}

scenario_spec reorder_streaming_none() {
    scenario_spec s;
    s.name = "reorder_streaming_none";
    s.summary = "no-reliability streaming flow under heavy reordering";
    impairment_spec ro;
    ro.what = impairment_spec::kind::reorder;
    ro.probability = 0.3;
    ro.min_delay = milliseconds(5);
    ro.max_delay = milliseconds(40);
    s.impairments = {ro};
    flow_spec f;
    f.options = session_options::light(sack::reliability_mode::none);
    f.bytes = 2'000'000;
    s.flows = {f};
    return s;
}

scenario_spec duplicate_path() {
    scenario_spec s;
    s.name = "duplicate_path";
    s.summary = "15% packet duplication; the app must never see a byte twice";
    impairment_spec dup;
    dup.what = impairment_spec::kind::duplicate;
    dup.probability = 0.15;
    s.impairments = {dup};
    s.flows = {bulk_reliable(3'000'000)};
    return s;
}

scenario_spec corruption_at_decoder() {
    scenario_spec s;
    s.name = "corruption_at_decoder";
    s.summary = "bit flips pushed through the real wire decoder on every corrupted frame";
    impairment_spec cr;
    cr.what = impairment_spec::kind::corrupt;
    cr.probability = 0.04;
    cr.max_bit_flips = 4;
    s.impairments = {cr};
    s.flows = {bulk_reliable(3'000'000)};
    s.duration = seconds(60);
    return s;
}

scenario_spec ack_path_loss() {
    scenario_spec s;
    s.name = "ack_path_loss";
    s.summary = "8% loss on the feedback direction only (SACK/report robustness)";
    impairment_spec bl;
    bl.what = impairment_spec::kind::bernoulli;
    bl.probability = 0.08;
    bl.on_ack_path = true;
    s.impairments = {bl};
    s.flows = {bulk_reliable(3'000'000)};
    s.duration = seconds(60);
    return s;
}

scenario_spec loss_episode_window() {
    scenario_spec s;
    s.name = "loss_episode_window";
    s.summary = "30% loss episode limited to t in [3s,6s) (outage-and-recover)";
    impairment_spec ep;
    ep.what = impairment_spec::kind::bernoulli;
    ep.probability = 0.3;
    ep.start = seconds(3);
    ep.stop = seconds(6);
    s.impairments = {ep};
    s.flows = {bulk_reliable(3'000'000)};
    s.duration = seconds(60);
    return s;
}

scenario_spec handover_rate_cliff() {
    scenario_spec s;
    s.name = "handover_rate_cliff";
    s.summary = "WLAN->3G->WLAN handovers: rate cliff, RTT jump, new loss regime";
    s.bottleneck_rate_bps = 20e6;
    s.bottleneck_delay = milliseconds(10);
    s.handovers = {
        {seconds(1), 3e6, milliseconds(40), true, 0.01},
        {seconds(5), 15e6, milliseconds(15), true, 0.0},
    };
    s.flows = {bulk_reliable(6'000'000)};
    s.duration = seconds(60);
    s.tfrc_bound_factor = 0.0; // p/rtt are stale across regime switches
    return s;
}

scenario_spec handover_during_renegotiation() {
    scenario_spec s;
    s.name = "handover_during_renegotiation";
    s.summary = "link hands over while a profile renegotiation is in flight";
    s.bottleneck_rate_bps = 16e6;
    s.handovers = {{milliseconds(5200), 4e6, milliseconds(35), true, 0.005}};
    flow_spec f = bulk_reliable(12'000'000);
    // The receiver sheds its loss-history state mid-transfer (estimation
    // locus moves to the sender); reliability stays full so the transfer
    // must remain byte-exact across both transitions.
    qtp::profile light_full;
    light_full.reliability = sack::reliability_mode::full;
    light_full.estimation = tfrc::estimation_mode::sender_side;
    f.renegs = {{seconds(5), light_full, true}};
    f.close_at = seconds(6);
    s.flows = {f};
    s.duration = seconds(90);
    s.tfrc_bound_factor = 0.0;
    return s;
}

scenario_spec mux_bulk_deadline_oscillation() {
    scenario_spec s;
    s.name = "mux_bulk_deadline_oscillation";
    s.summary = "bulk + deadline mux streams on one connection, oscillating bandwidth";
    s.bottleneck_rate_bps = 12e6;
    s.handovers = {
        {milliseconds(1500), 2.5e6, 0, false, 0.0},
        {seconds(3), 12e6, 0, false, 0.0},
        {milliseconds(4500), 2.5e6, 0, false, 0.0},
        {seconds(6), 12e6, 0, false, 0.0},
    };
    flow_spec f = bulk_reliable(4'000'000);
    stream_spec media;
    media.options.reliability = sack::reliability_mode::partial;
    media.options.weight = 3;
    media.options.message_size = 1000;
    media.options.message_deadline = milliseconds(150);
    media.bytes = 3'000'000;
    f.extra_streams = {media};
    s.flows = {f};
    s.duration = seconds(90);
    s.tfrc_bound_factor = 0.0;
    return s;
}

scenario_spec diffserv_af_congestion() {
    scenario_spec s;
    s.name = "diffserv_af_congestion";
    s.summary = "AF-marked gTFRC flow holds its commit on a congested RIO bottleneck";
    s.rio_queue = true;
    s.af_commit_bps = 4e6;
    flow_spec af;
    af.options = session_options::af(4e6);
    af.bytes = 4'000'000;
    s.flows = {af, bulk_reliable(4'000'000)};
    s.duration = seconds(60);
    return s;
}

scenario_spec kitchen_sink_adversarial() {
    scenario_spec s;
    s.name = "kitchen_sink_adversarial";
    s.summary = "burst loss + reorder + duplicate + corrupt + ack loss, all at once";
    impairment_spec ge;
    ge.what = impairment_spec::kind::burst;
    ge.burst = {0.01, 0.3, 0.0, 0.3};
    impairment_spec ro;
    ro.what = impairment_spec::kind::reorder;
    ro.probability = 0.1;
    ro.min_delay = milliseconds(2);
    ro.max_delay = milliseconds(15);
    impairment_spec dup;
    dup.what = impairment_spec::kind::duplicate;
    dup.probability = 0.05;
    impairment_spec cr;
    cr.what = impairment_spec::kind::corrupt;
    cr.probability = 0.02;
    cr.max_bit_flips = 4;
    impairment_spec ack;
    ack.what = impairment_spec::kind::bernoulli;
    ack.probability = 0.03;
    ack.on_ack_path = true;
    s.impairments = {ge, ro, dup, cr, ack};
    s.flows = {bulk_reliable(2'000'000)};
    s.duration = seconds(90);
    s.tfrc_bound_factor = 0.0;
    return s;
}

scenario_spec syn_flood_during_transfer() {
    scenario_spec s;
    s.name = "syn_flood_during_transfer";
    s.summary = "spoofed SYN flood vs the accept guard while two bulk flows transfer";
    s.bottleneck_rate_bps = 20e6;
    s.flows = {bulk_reliable(6'000'000), bulk_reliable(6'000'000)};
    s.synflood.syn_rate_hz = 200;
    s.synflood.sources = 64;
    s.synflood.start = milliseconds(500);
    s.synflood.stop = seconds(8);
    s.synflood.max_half_open = 32;
    s.duration = seconds(30);
    return s;
}

scenario_spec nat_rebind_mid_transfer() {
    scenario_spec s;
    s.name = "nat_rebind_mid_transfer";
    s.summary = "client NAT mapping flips at 2s; server validates + follows the new 4-tuple";
    s.bottleneck_rate_bps = 16e6;
    s.flows = {bulk_reliable(10'000'000)};
    s.mobility.enabled = true;
    s.mobility.rebind_at = seconds(2);
    s.duration = seconds(60);
    return s;
}

scenario_spec wifi_to_lte_handover() {
    scenario_spec s;
    s.name = "wifi_to_lte_handover";
    s.summary = "explicit migrate() onto a slower/longer second link mid-flow, CC carried";
    s.bottleneck_rate_bps = 12e6;
    s.bottleneck_delay = milliseconds(15);
    s.flows = {bulk_reliable(8'000'000)};
    s.mobility.enabled = true;
    s.mobility.alt_link = true;
    s.mobility.alt_rate_bps = 5e6;       // the "LTE" leg: half the rate...
    s.mobility.alt_delay = milliseconds(45); // ...three times the delay
    s.mobility.migrate_at = seconds(2);
    s.duration = seconds(60);
    s.tfrc_bound_factor = 0.0; // p/rtt are stale across the path switch
    return s;
}

scenario_spec dual_path_striping() {
    scenario_spec s;
    s.name = "dual_path_striping";
    s.summary = "dual-path scheduler stripes one flow over two asymmetric validated links";
    // Rates sized so 1.5x the best leg stays inside the TFRC equation
    // envelope for the blended RTT — the aggregate is still paced by ONE
    // connection-wide TFRC controller; striping buys capacity, not a
    // license to outrun the equation.
    s.bottleneck_rate_bps = 4e6;
    s.bottleneck_delay = milliseconds(8);
    s.queue_packets = 120; // deep enough to absorb striping bursts as delay, not drops
    s.flows = {bulk_reliable(60'000'000)};
    s.mobility.enabled = true;
    s.mobility.multipath = true;
    s.mobility.alt_link = true;
    s.mobility.alt_rate_bps = 3.8e6;
    s.mobility.alt_delay = milliseconds(10);
    s.mobility.add_path_at = milliseconds(500);
    s.mobility.min_goodput_factor = 1.5; // aggregate must beat 1.5x the best leg
    s.duration = seconds(90);
    s.tfrc_bound_factor = 0.0; // the connection-level (p, rtt) mixes two paths
    return s;
}

scenario_spec spoofed_migration_attack() {
    scenario_spec s;
    s.name = "spoofed_migration_attack";
    s.summary = "forged frames echo the flow id from spoofed sources; validation contains them";
    s.bottleneck_rate_bps = 16e6;
    s.flows = {bulk_reliable(6'000'000)};
    s.mobility.enabled = true;
    s.mobility.spoof_rate_hz = 100;
    s.mobility.spoof_sources = 8; // > max_paths, so the table-cap path runs too
    s.mobility.spoof_start = milliseconds(500);
    s.mobility.spoof_stop = seconds(6);
    s.duration = seconds(60);
    return s;
}

} // namespace

const std::vector<scenario_spec>& scenario_matrix() {
    static const std::vector<scenario_spec> all = {
        wired_baseline_reliable(),
        wireless_burst_loss(),
        burst_loss_partial_media(),
        reorder_heavy_path(),
        reorder_streaming_none(),
        duplicate_path(),
        corruption_at_decoder(),
        ack_path_loss(),
        loss_episode_window(),
        handover_rate_cliff(),
        handover_during_renegotiation(),
        mux_bulk_deadline_oscillation(),
        diffserv_af_congestion(),
        kitchen_sink_adversarial(),
        syn_flood_during_transfer(),
        nat_rebind_mid_transfer(),
        wifi_to_lte_handover(),
        dual_path_striping(),
        spoofed_migration_attack(),
    };
    return all;
}

const scenario_spec* find_scenario(const std::string& name) {
    for (const auto& s : scenario_matrix())
        if (s.name == name) return &s;
    return nullptr;
}

std::vector<std::string> scenario_names() {
    std::vector<std::string> names;
    names.reserve(scenario_matrix().size());
    for (const auto& s : scenario_matrix()) names.push_back(s.name);
    return names;
}

std::vector<std::string> reduced_matrix_names() {
    return {"wireless_burst_loss",   "reorder_heavy_path",  "duplicate_path",
            "corruption_at_decoder", "handover_rate_cliff", "mux_bulk_deadline_oscillation",
            "nat_rebind_mid_transfer", "spoofed_migration_attack"};
}

} // namespace vtp::testing
