// Dual-path send steering.
//
// Called by the sender once per TFRC-paced transmission slot, after the
// congestion controller has already decided *when* and *how much* —
// the scheduler only decides *where*. Policy:
//
//   - the validated path with the lowest smoothed RTT is primary;
//     deadline-urgent traffic always takes it (lowest latency to the
//     receiver's reassembly deadline)
//   - bulk traffic drains the primary's per-path pacing budget first
//     and overflows to the secondary when the primary has proven all
//     the capacity it can (budget = measured per-path delivery rate x
//     headroom, with a probe floor so an idle validated path gets
//     enough traffic to build a rate estimate)
//   - aggregate volume is still the connection controller's single
//     TFRC-paced rate; the per-path budgets only split it, so each
//     path's share stays inside what that path has demonstrated — the
//     per-path TCP-friendly band
//
// Single-validated-path connections short-circuit to the active remote;
// the whole call is skipped entirely when multipath is off.
#pragma once

#include <cstdint>

#include "path/manager.hpp"

namespace vtp::path {

class scheduler {
public:
    /// Pick the destination address for the next data packet of
    /// `bytes`. `pacing_rate_bps` is the connection controller's
    /// current aggregate pacing rate (probe-floor input);
    /// `deadline_urgent` marks a transmission promoted by a message
    /// deadline. Never returns 0 (falls back to the active remote).
    std::uint32_t pick(manager& m, util::sim_time now, double pacing_rate_bps,
                       std::uint32_t bytes, bool deadline_urgent);

private:
    /// Last pick, for quantum hysteresis: switching paths on every slot
    /// would interleave unequal-delay paths packet-by-packet, putting
    /// dozens of sequence holes in flight at once — enough to overflow
    /// the SACK wire block budget, which the sender then misreads as
    /// loss. Sending in runs keeps the in-flight hole count at ~1.
    std::uint32_t last_remote_ = 0;
};

} // namespace vtp::path
