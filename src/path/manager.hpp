// Per-connection path manager: validation state machine + estimators.
//
// Owned by each connection endpoint (sender and receiver role alike).
// The connection forwards three kinds of evidence:
//
//   on_datagram()   every inbound packet's source address + size —
//                   feeds per-path receive accounting and turns an
//                   unknown source on an established connection into a
//                   migration candidate (passive rebind detection)
//   on_challenge()/ the path validation probes themselves
//   on_response()
//   on_data_sent()/ the sender's per-packet fate, so acked/lost bytes
//   on_feedback()   are attributed to the path each packet travelled
//
// and the manager calls back through `on_path_changed` when the active
// path switches, so the connection can re-point its transmit address,
// emit the API event and bump metrics. All probe traffic (challenges,
// responses) is sent by the manager itself through the connection's
// environment.
//
// Determinism contract: with cfg.enabled == false every method is an
// inert early-return and the manager draws no randomness — frozen
// scenario trace hashes cannot be perturbed. Enabled, all randomness
// comes from the substrate's seeded RNG stream.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/environment.hpp"
#include "packet/segment.hpp"
#include "path/path.hpp"
#include "trace/tracer.hpp"

namespace vtp::path {

class manager {
public:
    /// cause values handed to on_path_changed / trace path_changed aux.
    static constexpr std::uint8_t cause_migrate = 0;    ///< explicit migrate()
    static constexpr std::uint8_t cause_rebind = 1;     ///< passive peer rebind
    static constexpr std::uint8_t cause_path_added = 2; ///< add_path() validated

    manager() = default;

    void configure(const manager_config& cfg, std::uint32_t flow_id) {
        cfg_ = cfg;
        flow_id_ = flow_id;
    }
    bool enabled() const { return cfg_.enabled; }
    const manager_config& config() const { return cfg_; }

    /// Install the initial peer address as the validated active path.
    /// Call once the environment is known (agent start / first packet).
    void start(qtp::environment& env, std::uint32_t initial_peer);
    /// Cancel the validation timer (connection close/destruction).
    void stop();

    void set_tracer(trace::tracer* t) { tracer_ = t; }
    /// (old_remote, new_remote, cause) — fired on active-path switches
    /// only, after the manager's own state is consistent.
    void set_on_path_changed(std::function<void(std::uint32_t, std::uint32_t, std::uint8_t)> cb) {
        on_path_changed_ = std::move(cb);
    }

    /// Destination for control traffic (and data, single-path mode).
    std::uint32_t active_remote() const { return active_remote_; }

    // -- inbound evidence ------------------------------------------------

    /// Every inbound packet. `established` gates candidate creation: a
    /// source change before the handshake completes is never a
    /// migration (pre-established traffic is the accept guard's job).
    void on_datagram(std::uint32_t src, std::uint32_t size_bytes, bool established);

    /// A path_challenge arrived (from `src`). Answers with a response
    /// (budget permitting) and, on an established connection, treats an
    /// unknown source as a migration candidate to validate ourselves.
    void on_challenge(const packet::path_challenge_segment& c, std::uint32_t src,
                      bool established);

    /// A path_response arrived. Token must match a pending challenge;
    /// matching is by token, not source, because NATs may rewrite the
    /// return path. A mutated or replayed token is counted and ignored.
    void on_response(const packet::path_response_segment& r, std::uint32_t src);

    // -- local intent ----------------------------------------------------

    /// Probe an additional remote address (multipath). No active switch
    /// on validation; the scheduler starts steering to it.
    void add_path(std::uint32_t remote);

    /// Validate `remote` and switch the active path to it once proven.
    /// `remote == active_remote()` re-probes the current path (the
    /// client-after-rebind case: prove the new 4-tuple end to end).
    void migrate(std::uint32_t remote);

    // -- sender accounting ----------------------------------------------

    /// A data packet of `bytes` was steered to `remote`.
    void on_data_sent(std::uint64_t seq, std::uint32_t remote, std::uint32_t bytes);

    /// Feedback digested: per-packet fates attributed back to the path
    /// each sequence travelled. `rtt_sample` (0 = none) updates the
    /// srtt of the acked packets' path.
    void on_acked(std::uint64_t seq, util::sim_time rtt_sample);
    void on_lost(std::uint64_t seq);

    // -- introspection ---------------------------------------------------

    const manager_stats& stats() const { return stats_; }
    std::vector<path_info> paths() const;
    /// Validated paths only, active first (scheduler input).
    std::size_t validated_count() const;

    // One tracked path. Public so path::scheduler can steer without a
    // copy per pick; treat as read-only outside path/.
    struct entry {
        std::uint32_t remote = 0;
        path_state state = path_state::candidate;
        bool locally_initiated = false;
        std::uint64_t token = 0; ///< pending challenge token (validating)
        util::sim_time challenge_sent_at = 0;
        util::sim_time deadline = 0; ///< current attempt expires then
        std::uint32_t attempts = 0;
        util::sim_time srtt = 0;
        std::uint64_t bytes_sent = 0;
        std::uint64_t bytes_received = 0;
        std::uint64_t packets_sent = 0;
        std::uint64_t packets_acked = 0;
        std::uint64_t packets_lost = 0;
        double loss_ewma = 0.0;
        // Windowed delivery-rate estimator (acked bytes / window).
        util::sim_time window_start = 0;
        std::uint64_t window_bytes = 0;
        double delivery_rate_bps = 0.0;
        // Scheduler token bucket (bytes); refilled in scheduler::pick.
        double budget_bytes = 0.0;
        util::sim_time budget_refill_at = 0;
    };
    const std::deque<entry>& table() const { return paths_; }
    std::deque<entry>& table() { return paths_; }

private:
    entry* find(std::uint32_t remote);
    entry* find_by_token(std::uint64_t token);
    /// Send (or re-send) the challenge for `e`, arming the timer.
    void probe(entry& e);
    /// True when `bytes` more toward `e` fits the amplification budget
    /// (always true for validated or locally initiated paths).
    bool budget_allows(const entry& e, std::uint32_t bytes) const;
    void switch_active(entry& e, std::uint8_t cause);
    void on_validation_timer();
    void arm_timer();
    std::uint64_t fresh_token();
    void send_segment(std::uint32_t dst, packet::segment seg);
    void trace(trace::record_type type, std::uint8_t aux, std::uint64_t a, std::uint64_t b);

    manager_config cfg_{};
    std::uint32_t flow_id_ = 0;
    qtp::environment* env_ = nullptr;
    trace::tracer* tracer_ = nullptr;
    std::function<void(std::uint32_t, std::uint32_t, std::uint8_t)> on_path_changed_;

    std::deque<entry> paths_;
    std::uint32_t active_remote_ = 0;
    /// Non-zero while an explicit migrate() awaits validation of this
    /// remote; distinguishes migrate from add_path at validation time.
    std::uint32_t migrate_pending_ = 0;
    bool started_ = false;
    qtp::timer_id timer_ = qtp::no_timer;
    manager_stats stats_{};

    // seq -> path attribution for in-flight data. Sequences are
    // monotone (retransmissions get fresh sequence numbers), so a deque
    // + binary search is enough; entries are tombstoned on ack/loss and
    // trimmed from the front. Bounded as a backstop.
    struct sent_entry {
        std::uint64_t seq;
        std::uint32_t remote;
        std::uint32_t bytes;
    };
    static constexpr std::size_t max_sent_entries = 1u << 16;
    std::deque<sent_entry> sent_;
    sent_entry* find_sent(std::uint64_t seq);
    void settle_sent(std::uint64_t seq, bool acked, util::sim_time rtt_sample);
};

} // namespace vtp::path
