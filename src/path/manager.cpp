#include "path/manager.hpp"

#include <algorithm>

namespace vtp::path {

const char* to_string(path_state s) {
    switch (s) {
    case path_state::candidate: return "candidate";
    case path_state::validating: return "validating";
    case path_state::validated: return "validated";
    case path_state::failed: return "failed";
    }
    return "path_state?";
}

void manager::start(qtp::environment& env, std::uint32_t initial_peer) {
    env_ = &env;
    active_remote_ = initial_peer;
    if (!cfg_.enabled || started_) return;
    started_ = true;
    // The handshake path is implicitly validated: the peer proved
    // reachability by completing (or driving) the handshake on it.
    entry e;
    e.remote = initial_peer;
    e.state = path_state::validated;
    e.locally_initiated = true;
    paths_.push_back(e);
}

void manager::stop() {
    if (env_ != nullptr && timer_ != qtp::no_timer) {
        env_->cancel(timer_);
        timer_ = qtp::no_timer;
    }
}

manager::entry* manager::find(std::uint32_t remote) {
    for (entry& e : paths_)
        if (e.remote == remote) return &e;
    return nullptr;
}

manager::entry* manager::find_by_token(std::uint64_t token) {
    if (token == 0) return nullptr;
    for (entry& e : paths_)
        if (e.state == path_state::validating && e.token == token) return &e;
    return nullptr;
}

std::uint64_t manager::fresh_token() {
    // Zero is reserved on the wire; draw until non-zero (p ~ 2^-64 of
    // even one retry).
    std::uint64_t t = 0;
    while (t == 0) t = env_->random().next_u64();
    return t;
}

void manager::send_segment(std::uint32_t dst, packet::segment seg) {
    env_->send(packet::make_packet(flow_id_, env_->local_addr(), dst, std::move(seg)));
}

void manager::trace(trace::record_type type, std::uint8_t aux, std::uint64_t a,
                    std::uint64_t b) {
    if (tracer_ != nullptr) tracer_->push(env_->now(), type, aux, 0, a, b);
}

bool manager::budget_allows(const entry& e, std::uint32_t bytes) const {
    if (e.locally_initiated || e.state == path_state::validated) return true;
    const double budget = cfg_.amplification_factor * static_cast<double>(e.bytes_received);
    return static_cast<double>(e.bytes_sent + bytes) <= budget;
}

void manager::probe(entry& e) {
    packet::path_challenge_segment c;
    c.token = e.token;
    const std::uint32_t bytes = packet::wire_size(c);
    if (!budget_allows(e, bytes)) {
        // Withheld, not failed: more bytes from the address re-trigger
        // the probe from on_datagram (challenge_sent_at stays 0), and
        // the attempt timer still runs so a silent address fails out.
        ++stats_.amplification_limited;
        e.challenge_sent_at = 0;
    } else {
        e.bytes_sent += bytes;
        ++stats_.challenges_sent;
        trace(trace::record_type::path_challenge, 0, c.token, e.remote);
        send_segment(e.remote, c);
        e.challenge_sent_at = env_->now();
    }
    e.deadline = env_->now() + cfg_.validation_timeout;
    ++e.attempts;
    arm_timer();
}

void manager::arm_timer() {
    util::sim_time next = util::time_never;
    for (const entry& e : paths_)
        if (e.state == path_state::validating) next = std::min(next, e.deadline);
    if (timer_ != qtp::no_timer) {
        env_->cancel(timer_);
        timer_ = qtp::no_timer;
    }
    if (next == util::time_never) return;
    const util::sim_time delay = next > env_->now() ? next - env_->now() : 0;
    timer_ = env_->schedule(delay, [this] {
        timer_ = qtp::no_timer;
        on_validation_timer();
    });
}

void manager::on_validation_timer() {
    const util::sim_time now = env_->now();
    for (entry& e : paths_) {
        if (e.state != path_state::validating || e.deadline > now) continue;
        if (e.attempts >= cfg_.max_validation_attempts) {
            e.state = path_state::failed;
            e.token = 0;
            ++stats_.validation_failures;
        } else {
            e.token = fresh_token(); // never reuse a timed-out token
            probe(e);
        }
    }
    arm_timer();
}

void manager::on_datagram(std::uint32_t src, std::uint32_t size_bytes, bool established) {
    if (!cfg_.enabled || env_ == nullptr) return;
    entry* e = find(src);
    if (e != nullptr) {
        e->bytes_received += size_bytes;
        // A candidate whose probe was amplification-limited earns more
        // budget with every byte it sends us; retry as soon as one fits.
        if (e->state == path_state::validating && e->token != 0 &&
            e->challenge_sent_at == 0) {
            probe(*e);
        }
        return;
    }
    if (!established || src == active_remote_) return;
    if (paths_.size() >= cfg_.max_paths) {
        ++stats_.candidates_ignored;
        return;
    }
    entry fresh;
    fresh.remote = src;
    fresh.state = path_state::validating;
    fresh.locally_initiated = false;
    fresh.bytes_received = size_bytes;
    fresh.token = fresh_token();
    paths_.push_back(fresh);
    probe(paths_.back());
}

void manager::on_challenge(const packet::path_challenge_segment& c, std::uint32_t src,
                           bool established) {
    if (!cfg_.enabled || env_ == nullptr) return;
    ++stats_.challenges_received;
    trace(trace::record_type::path_challenge, 1, c.token, src);
    // Account the challenge bytes to the source path (and let an unknown
    // source become a candidate like any other datagram would).
    on_datagram(src, packet::wire_size(packet::segment(c)), established);
    // Echo the token to the address that asked. For an unvalidated
    // source the response spends its amplification budget; the ratio is
    // 1:1 (equal-size frames), far inside any sane factor.
    entry* e = find(src);
    packet::path_response_segment r;
    r.token = c.token;
    const std::uint32_t bytes = packet::wire_size(packet::segment(r));
    if (e != nullptr && !budget_allows(*e, bytes)) {
        ++stats_.amplification_limited;
        return;
    }
    if (e != nullptr) e->bytes_sent += bytes;
    ++stats_.responses_sent;
    trace(trace::record_type::path_response, 0, r.token, src);
    send_segment(src, r);
}

void manager::on_response(const packet::path_response_segment& r, std::uint32_t src) {
    if (!cfg_.enabled || env_ == nullptr) return;
    entry* e = find_by_token(r.token);
    if (e == nullptr) {
        // Mutated, replayed or plain-forged token: never validates
        // anything. Counted so scenarios can assert containment.
        ++stats_.responses_rejected;
        trace(trace::record_type::path_response, 2, r.token, src);
        return;
    }
    ++stats_.responses_received;
    trace(trace::record_type::path_response, 1, r.token, src);
    e->state = path_state::validated;
    e->token = 0;
    ++stats_.validations;
    if (e->challenge_sent_at > 0) {
        const util::sim_time rtt = env_->now() - e->challenge_sent_at;
        e->srtt = e->srtt == 0 ? rtt : (e->srtt * 7 + rtt) / 8;
    }
    arm_timer();
    if (e->remote == active_remote_) return; // re-validated current path
    if (e->locally_initiated) {
        if (e->state == path_state::validated && migrate_pending_ == e->remote) {
            switch_active(*e, cause_migrate);
        } else {
            trace(trace::record_type::path_changed, cause_path_added, active_remote_,
                  e->remote);
        }
    } else if (cfg_.passive_migration) {
        switch_active(*e, cause_rebind);
    }
}

void manager::switch_active(entry& e, std::uint8_t cause) {
    const std::uint32_t old = active_remote_;
    active_remote_ = e.remote;
    migrate_pending_ = 0;
    ++stats_.migrations;
    trace(trace::record_type::path_changed, cause, old, e.remote);
    if (on_path_changed_) on_path_changed_(old, e.remote, cause);
}

void manager::add_path(std::uint32_t remote) {
    if (!cfg_.enabled || env_ == nullptr || remote == 0) return;
    entry* e = find(remote);
    if (e != nullptr) {
        if (e->state == path_state::failed) {
            e->state = path_state::validating;
            e->attempts = 0;
            e->locally_initiated = true;
            e->token = fresh_token();
            probe(*e);
        }
        return;
    }
    if (paths_.size() >= cfg_.max_paths) {
        ++stats_.candidates_ignored;
        return;
    }
    entry fresh;
    fresh.remote = remote;
    fresh.state = path_state::validating;
    fresh.locally_initiated = true;
    fresh.token = fresh_token();
    paths_.push_back(fresh);
    probe(paths_.back());
}

void manager::migrate(std::uint32_t remote) {
    if (!cfg_.enabled || env_ == nullptr) return;
    if (remote == 0 || remote == active_remote_) {
        // Re-probe the active path: the local socket rebound, so prove
        // the fresh 4-tuple end to end (the peer sees our new source
        // and runs its own passive validation meanwhile).
        entry* e = find(active_remote_);
        if (e == nullptr) return;
        e->state = path_state::validating;
        e->attempts = 0;
        e->token = fresh_token();
        probe(*e);
        return;
    }
    migrate_pending_ = remote;
    entry* e = find(remote);
    if (e != nullptr && e->state == path_state::validated) {
        switch_active(*e, cause_migrate);
        return;
    }
    add_path(remote);
    if (entry* fresh = find(remote); fresh != nullptr) fresh->locally_initiated = true;
}

manager::sent_entry* manager::find_sent(std::uint64_t seq) {
    auto it = std::lower_bound(sent_.begin(), sent_.end(), seq,
                               [](const sent_entry& e, std::uint64_t s) { return e.seq < s; });
    if (it == sent_.end() || it->seq != seq || it->remote == 0) return nullptr;
    return &*it;
}

void manager::on_data_sent(std::uint64_t seq, std::uint32_t remote, std::uint32_t bytes) {
    if (!cfg_.enabled) return;
    entry* e = find(remote);
    if (e != nullptr) {
        e->bytes_sent += bytes;
        ++e->packets_sent;
    }
    if (sent_.size() >= max_sent_entries) sent_.pop_front();
    // Sequences are monotone across fresh sends and retransmissions;
    // tolerate an out-of-order stamp by dropping it (attribution is an
    // estimator, not an oracle).
    if (!sent_.empty() && sent_.back().seq >= seq) return;
    sent_.push_back({seq, remote, bytes});
}

void manager::settle_sent(std::uint64_t seq, bool acked, util::sim_time rtt_sample) {
    sent_entry* s = find_sent(seq);
    if (s == nullptr) return;
    entry* e = find(s->remote);
    if (e != nullptr) {
        if (acked) {
            ++e->packets_acked;
            e->loss_ewma = e->loss_ewma * 0.95;
            if (rtt_sample > 0) {
                e->srtt = e->srtt == 0 ? rtt_sample : (e->srtt * 7 + rtt_sample) / 8;
            }
            // Windowed delivery rate from acked bytes.
            const util::sim_time now = env_ != nullptr ? env_->now() : 0;
            if (e->window_start == 0) e->window_start = now;
            e->window_bytes += s->bytes;
            const util::sim_time dt = now - e->window_start;
            if (dt >= cfg_.rate_window) {
                e->delivery_rate_bps =
                    static_cast<double>(e->window_bytes) * 8e9 / static_cast<double>(dt);
                e->window_start = now;
                e->window_bytes = 0;
            }
        } else {
            ++e->packets_lost;
            e->loss_ewma = e->loss_ewma * 0.95 + 0.05;
        }
    }
    s->remote = 0; // tombstone
    while (!sent_.empty() && sent_.front().remote == 0) sent_.pop_front();
}

void manager::on_acked(std::uint64_t seq, util::sim_time rtt_sample) {
    if (!cfg_.enabled) return;
    settle_sent(seq, true, rtt_sample);
}

void manager::on_lost(std::uint64_t seq) {
    if (!cfg_.enabled) return;
    settle_sent(seq, false, 0);
}

std::vector<path_info> manager::paths() const {
    std::vector<path_info> out;
    out.reserve(paths_.size());
    for (const entry& e : paths_) {
        path_info p;
        p.remote = e.remote;
        p.state = e.state;
        p.active = e.remote == active_remote_;
        p.locally_initiated = e.locally_initiated;
        p.srtt = e.srtt;
        p.bytes_sent = e.bytes_sent;
        p.bytes_received = e.bytes_received;
        p.packets_sent = e.packets_sent;
        p.packets_acked = e.packets_acked;
        p.packets_lost = e.packets_lost;
        p.delivery_rate_bps = e.delivery_rate_bps;
        p.loss_rate = e.loss_ewma;
        out.push_back(p);
    }
    return out;
}

std::size_t manager::validated_count() const {
    std::size_t n = 0;
    for (const entry& e : paths_)
        if (e.state == path_state::validated) ++n;
    return n;
}

} // namespace vtp::path
