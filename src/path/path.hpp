// Network-path model for connection migration and multipath.
//
// A connection historically had exactly one remote address for its whole
// life; `src/path/` makes the remote address a *set* of paths, each with
// its own validation state, RTT, loss and delivery-rate estimators:
//
//   candidate   an address we have seen traffic from (passive rebind
//               detection) or were asked to use (session::add_path /
//               migrate) but have not proven two-way reachability for
//   validating  a path_challenge with a random 8-byte token is in
//               flight; retried up to max_validation_attempts
//   validated   a response echoed the exact token: the path forwards in
//               both directions and may carry traffic
//   failed      every validation attempt timed out
//
// Exactly one validated path is *active* (the default destination for
// everything the connection sends); with `multipath` enabled the
// path::scheduler steers data packets across every validated path by
// per-path quality while control traffic stays on the active one.
//
// Spoofed-migration defence: a passively discovered path (unknown source
// address echoing our flow id) never receives more than
// `amplification_factor` x the bytes received from that address until it
// is validated — the same anti-amplification discipline the accept-path
// guard applies to unvalidated SYN sources — so an attacker who can
// inject but not observe cannot redirect the flow or use it as an
// amplifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace vtp::path {

enum class path_state : std::uint8_t {
    candidate = 0,
    validating = 1,
    validated = 2,
    failed = 3,
};

const char* to_string(path_state s);

struct manager_config {
    /// Master switch. Off (the default) the manager is inert: no state,
    /// no timers, no random draws — the frozen-trace-hash configuration.
    bool enabled = false;

    /// Bounded path table per connection; further candidates are
    /// counted (candidates_ignored) and dropped.
    std::size_t max_paths = 4;

    /// Per-attempt challenge timeout and the retry cap. A path whose
    /// every attempt times out is marked failed.
    util::sim_time validation_timeout = util::milliseconds(250);
    std::uint32_t max_validation_attempts = 3;

    /// Unvalidated passively-discovered paths may be sent at most this
    /// factor x bytes received from the address (anti-amplification,
    /// mirrors the accept-guard budget). Locally initiated probes
    /// (migrate / add_path) are exempt: we are the traffic source.
    double amplification_factor = 3.0;

    /// Adopt a passively validated path as the new active path (the NAT
    /// rebind case). Off, validated candidates sit unused until an
    /// explicit migrate().
    bool passive_migration = true;

    /// Steer data across every validated path (path::scheduler). Off,
    /// data follows the active path only.
    bool multipath = false;

    /// Receiver-side loss detection: packets after a sequence hole
    /// before it is declared lost, when the peer may stripe (multipath).
    /// Paths with unequal one-way delay interleave arrivals out of
    /// sequence order; the single-path tolerance (3, RFC 3448) reads
    /// that as loss and inflates the reported loss-event rate by an
    /// order of magnitude, collapsing the aggregate TFRC rate. The
    /// sender widens its SACK finalize horizon to twice this, for the
    /// same reason (a slow-path packet overtaken by the fast path must
    /// not be finalised lost and retransmitted).
    int multipath_reorder_tolerance = 32;

    /// Scheduler: share of the connection pacing rate a validated path
    /// with no delivery history yet may claim (capacity probing).
    double probe_fraction = 0.25;
    /// Scheduler: per-path budget = measured delivery rate x headroom,
    /// so a path can grow its share but not flood far beyond what it
    /// has proven it can carry (keeps each path inside the
    /// TFRC-friendly band the connection controller negotiated). The
    /// headroom is also the per-window ramp factor for a fresh path, so
    /// it must be comfortably above 1 or a second path takes many RTTs
    /// to claim its fair share.
    double budget_headroom = 1.25;
    /// Delivery-rate estimation window per path.
    util::sim_time rate_window = util::milliseconds(250);
};

/// Point-in-time view of one path (session_stats / ops snapshots).
struct path_info {
    std::uint32_t remote = 0;
    path_state state = path_state::candidate;
    bool active = false;
    bool locally_initiated = false;
    util::sim_time srtt = 0;               ///< 0 until a sample exists
    std::uint64_t bytes_sent = 0;          ///< toward this address
    std::uint64_t bytes_received = 0;      ///< from this address
    std::uint64_t packets_sent = 0;        ///< data packets steered here
    std::uint64_t packets_acked = 0;
    std::uint64_t packets_lost = 0;
    double delivery_rate_bps = 0.0;        ///< windowed acked-bytes rate
    double loss_rate = 0.0;                ///< EWMA lost/(acked+lost)
};

/// Monotonic counters; exported through session_stats and aggregated
/// into vtp_path_* engine metrics.
struct manager_stats {
    std::uint64_t migrations = 0;            ///< active-path switches
    std::uint64_t challenges_sent = 0;
    std::uint64_t challenges_received = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t responses_received = 0;
    std::uint64_t responses_rejected = 0;    ///< token matched no pending challenge
    std::uint64_t validations = 0;           ///< paths proven two-way reachable
    std::uint64_t validation_failures = 0;   ///< paths failed after all retries
    std::uint64_t amplification_limited = 0; ///< probe/response withheld by budget
    std::uint64_t candidates_ignored = 0;    ///< path table full
};

} // namespace vtp::path
