#include "path/scheduler.hpp"

#include <algorithm>

namespace vtp::path {

namespace {

// One DRR round in bytes (~64 MTU packets). Each validated path gets a
// weight-proportional quantum of every round, so runs are long enough
// to keep the in-flight sequence-hole count near 1 (see last_remote_)
// but short enough that the split converges within a few RTTs.
constexpr double round_bytes = 96'000.0;

// A path's scheduling weight: what it has proven it can deliver
// (x headroom, so it can probe for more), floored by the probe share of
// the aggregate pacing rate so a fresh path bootstraps an estimate.
double weight(const manager::entry& e, const manager_config& cfg,
              double pacing_rate_bps) {
    const double floor_bps = cfg.probe_fraction * pacing_rate_bps;
    return std::max(e.delivery_rate_bps * cfg.budget_headroom, floor_bps);
}

} // namespace

std::uint32_t scheduler::pick(manager& m, util::sim_time now, double pacing_rate_bps,
                              std::uint32_t bytes, bool deadline_urgent) {
    (void)now;
    if (!m.enabled() || !m.config().multipath) return m.active_remote();

    manager::entry* primary = nullptr;
    manager::entry* secondary = nullptr;
    for (manager::entry& e : m.table()) {
        if (e.state != path_state::validated) continue;
        // Untested paths (srtt 0) rank behind any measured path for
        // primary, ahead of nothing: treat missing srtt as +inf.
        auto better = [](const manager::entry& a, const manager::entry& b) {
            const util::sim_time ra = a.srtt == 0 ? util::time_never : a.srtt;
            const util::sim_time rb = b.srtt == 0 ? util::time_never : b.srtt;
            if (ra != rb) return ra < rb;
            return a.remote < b.remote; // deterministic tie-break
        };
        if (primary == nullptr || better(e, *primary)) {
            secondary = primary;
            primary = &e;
        } else if (secondary == nullptr || better(e, *secondary)) {
            secondary = &e;
        }
    }
    if (primary == nullptr) return m.active_remote();
    if (secondary == nullptr) return primary->remote;

    // Deadline traffic takes the lowest-RTT path regardless of deficits.
    if (deadline_urgent) return primary->remote;

    // Weighted deficit round robin. Budget-rate schemes (send where the
    // token bucket is fullest, or primary-first-overflow) deadlock here:
    // when the primary's budget refills faster than the aggregate TFRC
    // pacer drains it, its bucket never empties, the secondary never
    // gets a slot, and its delivery estimate — the very thing its budget
    // grows from — decays to nothing. DRR rotation is unconditional:
    // each path gets a weight-proportional quantum of every round, so
    // the split tracks proven per-path delivery whatever the pacing
    // rate, and each path's share stays inside its TCP-friendly band.
    manager::entry* cur = last_remote_ == secondary->remote ? secondary : primary;
    manager::entry* other = cur == primary ? secondary : primary;
    if (cur->budget_bytes < static_cast<double>(bytes)) {
        const double wc = weight(*cur, m.config(), pacing_rate_bps);
        const double wo = weight(*other, m.config(), pacing_rate_bps);
        const double quantum = round_bytes * wo / (wc + wo);
        cur = other;
        // Cap the deficit at one quantum: a path must not bank unused
        // rounds into a later burst.
        cur->budget_bytes = std::min(cur->budget_bytes + quantum, quantum);
    }
    cur->budget_bytes -= static_cast<double>(bytes);
    last_remote_ = cur->remote;
    return cur->remote;
}

} // namespace vtp::path
