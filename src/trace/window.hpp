// Sliding-window telemetry: a bounded ring of periodic registry
// snapshots so cumulative counters become rates and histograms become
// windowed percentiles.
//
// The owning shard calls capture() from its own thread on the reap
// tick; readers (the admin plane, metrics aggregation) call window()
// from any thread. A snapshot stores counter values plus each
// histogram's sparse non-zero buckets — bucket upper bounds are
// strictly monotonic in bucket index, so subtracting two snapshots'
// counts keyed by upper bound yields the exact per-bucket delta, and
// percentiles over that delta are percentiles of only the
// observations made inside the window.
//
// Everything here is off the datapath: capture() runs at reap-tick
// frequency (default 500 ms) and window() at scrape frequency, so a
// plain mutex is the right tool.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "trace/metrics.hpp"

namespace vtp::trace {

/// One histogram's state at snapshot time: sparse per-bucket counts
/// keyed by the bucket's inclusive upper bound, ascending.
struct window_hist {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
};

/// Point-in-time capture of a registry plus caller-supplied counters.
struct window_snapshot {
    std::uint64_t at_ns = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, window_hist>> hists;
};

/// One histogram's delta over a window.
struct window_hist_delta {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// (upper bound, observations in window), ascending, non-zero only.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

    /// Quantile over the windowed observations (0 when empty).
    std::uint64_t percentile(double q) const;
    /// Largest bucket upper bound with a windowed observation (peak).
    std::uint64_t max_upper() const {
        return buckets.empty() ? 0 : buckets.back().first;
    }
};

/// Difference between the newest snapshot and the snapshot closest to
/// `window_ns` ago. span_ns == 0 means "not enough snapshots yet".
struct window_delta {
    std::uint64_t span_ns = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<window_hist_delta> hists;

    std::uint64_t counter_delta(const std::string& name) const;
    double rate_per_s(const std::string& name) const;
    const window_hist_delta* hist(const std::string& name) const;
};

/// Merge per-shard deltas into one engine-wide delta: counters sum by
/// name, histogram buckets sum by (name, upper), span is the max.
window_delta merge_window_deltas(const std::vector<window_delta>& parts);

class window_ring {
public:
    /// `span_ns` bounds how far back window() can reach; snapshots
    /// older than ~2x span are evicted, as are any beyond
    /// `max_snapshots` (whichever trips first).
    explicit window_ring(std::uint64_t span_ns = 60ull * 1000 * 1000 * 1000,
                         std::size_t max_snapshots = 128);

    /// Snapshot `reg` (histograms) plus the caller's counter values.
    /// Called from the owning shard thread.
    void capture(std::uint64_t at_ns, const registry& reg,
                 std::vector<std::pair<std::string, std::uint64_t>> counters);

    /// Delta over the last `window_ns` (0 = the ring's full span).
    window_delta window(std::uint64_t window_ns = 0) const;

    std::size_t size() const;
    std::uint64_t span_ns() const { return span_ns_; }

private:
    std::uint64_t span_ns_;
    std::size_t max_;
    mutable std::mutex mu_;
    std::deque<window_snapshot> snaps_;
};

} // namespace vtp::trace
