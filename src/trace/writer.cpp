#include "trace/writer.hpp"

#include <cstring>

namespace vtp::trace {

namespace {

void put_u16(std::FILE* f, std::uint16_t v) {
    const std::uint8_t b[2] = {static_cast<std::uint8_t>(v & 0xff),
                               static_cast<std::uint8_t>(v >> 8)};
    std::fwrite(b, 1, 2, f);
}

void put_u32(std::FILE* f, std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::fwrite(b, 1, 4, f);
}

} // namespace

file_writer::file_writer(const std::string& path) {
    f_ = std::fopen(path.c_str(), "wb");
    if (f_ == nullptr) return;
    std::fwrite(file_magic, 1, sizeof(file_magic), f_);
    put_u16(f_, file_version);
    put_u16(f_, static_cast<std::uint16_t>(sizeof(record)));
}

file_writer::~file_writer() { close(); }

void file_writer::on_records(const record* r, std::size_t n) {
    if (f_ == nullptr || n == 0) return;
    put_u32(f_, static_cast<std::uint32_t>(n));
    std::fwrite(r, sizeof(record), n, f_);
    ++frames_;
    records_ += n;
}

void file_writer::close() {
    if (f_ != nullptr) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

async_writer::async_writer(const std::string& path, std::size_t max_queued_frames)
    : out_(path), max_queued_(max_queued_frames == 0 ? 1 : max_queued_frames) {
    if (out_.ok()) thread_ = std::thread([this] { run(); });
}

async_writer::~async_writer() { close(); }

void async_writer::on_records(const record* r, std::size_t n) {
    if (!out_.ok() || n == 0) return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closing_ || queue_.size() >= max_queued_) {
            ++dropped_;
            return;
        }
        queue_.emplace_back(r, r + n);
        accepted_records_ += n;
    }
    cv_.notify_one();
}

void async_writer::close() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closing_) return;
        closing_ = true;
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
    out_.close();
}

std::uint64_t async_writer::frames_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::uint64_t async_writer::records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return accepted_records_;
}

void async_writer::run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_.wait(lock, [this] { return closing_ || !queue_.empty(); });
        while (!queue_.empty()) {
            std::vector<record> frame = std::move(queue_.front());
            queue_.pop_front();
            lock.unlock();
            out_.on_records(frame.data(), frame.size());
            lock.lock();
        }
        if (closing_) return;
    }
}

bool read_trace_file(const std::string& path, std::vector<record>& out) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::uint8_t header[8];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header) ||
        std::memcmp(header, file_magic, sizeof(file_magic)) != 0) {
        std::fclose(f);
        return false;
    }
    const std::uint16_t version =
        static_cast<std::uint16_t>(header[4] | (header[5] << 8));
    const std::uint16_t rec_size =
        static_cast<std::uint16_t>(header[6] | (header[7] << 8));
    if (version != file_version || rec_size != sizeof(record)) {
        std::fclose(f);
        return false;
    }
    std::uint8_t lenb[4];
    while (std::fread(lenb, 1, 4, f) == 4) {
        std::uint32_t n = 0;
        for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(lenb[i]) << (8 * i);
        const std::size_t base = out.size();
        out.resize(base + n);
        if (std::fread(out.data() + base, sizeof(record), n, f) != n) {
            // Truncated tail frame (e.g. a crash mid-write): keep the
            // prefix that did land — that is the flight-recorder promise.
            out.resize(base);
            break;
        }
    }
    std::fclose(f);
    return true;
}

} // namespace vtp::trace
