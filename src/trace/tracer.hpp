// Per-connection flight recorder.
//
// A `tracer` owns a bounded ring of trace records. Two operating modes:
//
//  - flight recorder (no sink): the ring holds the most recent
//    `capacity` records, overwriting the oldest; overwrites are counted
//    as dropped (session_stats::trace_events_dropped). snapshot() reads
//    the surviving window in chronological order.
//
//  - spill (sink attached): a full ring is flushed to the sink as one
//    frame and cleared, so nothing is lost; flush() pushes the partial
//    tail (call at connection close). The sink is typically a
//    trace::file_writer or the engine's per-shard writer thread.
//
// The push path is branch-light on purpose: the connection hooks guard
// with `if (tracer_)`, so a connection without tracing configured pays
// one predictable null test per hook and nothing else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace vtp::trace {

/// Consumer of spilled record frames. Implementations: file_writer /
/// async_writer (trace/writer.hpp), memory_sink (tests).
class sink {
public:
    virtual ~sink() = default;
    /// One frame of chronologically ordered records. Called from the
    /// connection's thread; implementations decide their own threading.
    virtual void on_records(const record* r, std::size_t n) = 0;
};

/// Collects frames in memory — the determinism tests' sink.
class memory_sink final : public sink {
public:
    void on_records(const record* r, std::size_t n) override {
        records_.insert(records_.end(), r, r + n);
    }
    const std::vector<record>& records() const { return records_; }
    /// The raw byte stream a file writer would have produced (frame
    /// payloads concatenated) — what bit-identical means.
    std::vector<std::uint8_t> bytes() const {
        std::vector<std::uint8_t> out(records_.size() * sizeof(record));
        if (!records_.empty())
            std::memcpy(out.data(), records_.data(), out.size());
        return out;
    }

private:
    std::vector<record> records_;
};

class tracer {
public:
    tracer(std::uint32_t flow, std::size_t capacity, sink* out = nullptr)
        : flow_(flow), out_(out) {
        ring_.resize(capacity == 0 ? 1 : capacity);
    }

    tracer(const tracer&) = delete;
    tracer& operator=(const tracer&) = delete;

    ~tracer() { flush(); }

    void push(util::sim_time at, record_type type, std::uint8_t aux,
              std::uint16_t stream, std::uint64_t a, std::uint64_t b) {
        record& r = ring_[head_];
        r.at = static_cast<std::uint64_t>(at);
        r.a = a;
        r.b = b;
        r.flow = flow_;
        r.stream = stream;
        r.type = static_cast<std::uint8_t>(type);
        r.aux = aux;
        ++recorded_;
        if (++head_ == ring_.size()) {
            if (out_ != nullptr) {
                out_->on_records(ring_.data(), ring_.size());
            } else {
                wrapped_ = true;
            }
            head_ = 0;
        }
    }

    /// Spill the buffered tail to the sink (no-op in flight-recorder
    /// mode). Safe to call repeatedly; the destructor calls it too.
    void flush() {
        if (out_ == nullptr || head_ == 0) return;
        out_->on_records(ring_.data(), head_);
        head_ = 0;
    }

    /// Flight-recorder window, oldest first.
    std::vector<record> snapshot() const {
        std::vector<record> out;
        if (wrapped_) {
            out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
                       ring_.end());
            out.insert(out.end(), ring_.begin(),
                       ring_.begin() + static_cast<std::ptrdiff_t>(head_));
        } else {
            out.insert(out.end(), ring_.begin(),
                       ring_.begin() + static_cast<std::ptrdiff_t>(head_));
        }
        return out;
    }

    std::uint32_t flow() const { return flow_; }
    std::uint64_t recorded() const { return recorded_; }
    /// Records lost to ring overwrite (flight-recorder mode only; a sink
    /// makes the ring lossless).
    std::uint64_t dropped() const {
        if (out_ != nullptr) return 0;
        const std::uint64_t kept = wrapped_ ? ring_.size() : head_;
        return recorded_ - kept;
    }

private:
    std::uint32_t flow_;
    sink* out_;
    std::vector<record> ring_;
    std::size_t head_ = 0;
    bool wrapped_ = false;
    std::uint64_t recorded_ = 0;
};

} // namespace vtp::trace
