// Per-shard metrics: lock-free counters/gauges and log-linear
// (HDR-style) histograms, aggregated on demand and rendered as
// Prometheus text exposition format.
//
// Design point: every series is updated wait-free with relaxed atomics
// (one fetch_add / store on the hot path), so a shard can record
// turn durations and timer latencies at datapath frequency. Series are
// created under a mutex (rare, at wiring time) and live in node-stable
// storage, so the pointer a shard caches at construction stays valid for
// the registry's lifetime. Aggregation (engine::server::metrics())
// snapshots and merges the per-shard registries by series name — no
// cross-shard sharing ever happens on the update path.
//
// The histogram is log-linear: values up to 2^sub_bits are exact, above
// that each power of two splits into 2^sub_bits linear sub-buckets, so
// quantile error is bounded by 1/2^sub_bits (6.25% at sub_bits = 4)
// across the full u64 range with ~1 KB of buckets per histogram.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vtp::trace {

class counter {
public:
    void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

class gauge {
public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> v_{0};
};

/// Floating-point gauge for derived series (rates, ratios). Stored as
/// an atomic double; merge sums, matching the per-shard-partition
/// convention of `gauge`.
class fgauge {
public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    void add(double n) {
        double prev = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(prev, prev + n,
                                         std::memory_order_relaxed)) {
        }
    }
    double value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> v_{0.0};
};

class histogram {
public:
    static constexpr int sub_bits = 4;
    static constexpr std::size_t sub_count = std::size_t{1} << sub_bits;
    /// Exponent groups above the exact range (values up to 2^62).
    static constexpr std::size_t groups = 64 - sub_bits;
    static constexpr std::size_t bucket_count = sub_count + groups * sub_count;

    static std::size_t bucket_index(std::uint64_t v) {
        if (v < sub_count) return static_cast<std::size_t>(v);
        const int msb = 63 - std::countl_zero(v);
        const int shift = msb - sub_bits;
        const std::size_t sub =
            static_cast<std::size_t>(v >> shift) - sub_count;
        return static_cast<std::size_t>(shift + 1) * sub_count + sub;
    }

    /// Inclusive upper bound of bucket `i` (what percentile() reports —
    /// a conservative over-estimate by at most one sub-bucket width).
    static std::uint64_t bucket_upper(std::size_t i) {
        if (i < sub_count) return i;
        const std::size_t e = i / sub_count; // = shift + 1 >= 1
        const std::size_t sub = i % sub_count;
        return ((sub_count + sub + 1) << (e - 1)) - 1;
    }

    void observe(std::uint64_t v) {
        buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        std::uint64_t prev = max_.load(std::memory_order_relaxed);
        while (v > prev &&
               !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
        }
    }

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

    /// Value at quantile `q` in [0,1]: the upper bound of the bucket the
    /// q-th observation falls in (0 when empty).
    std::uint64_t percentile(double q) const;

    /// Fold `other` into this histogram (aggregation path; not
    /// linearizable against concurrent observers, like any snapshot).
    void merge(const histogram& other);

    /// Non-empty buckets as (upper bound, count) pairs, ascending.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> nonzero_buckets() const;

private:
    std::atomic<std::uint64_t> buckets_[bucket_count] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/// Named-series registry. One per shard; engine::server merges them.
class registry {
public:
    /// Find-or-create; pointers are stable for the registry's lifetime.
    /// A `help` string is attached on first creation (Prometheus # HELP).
    counter& get_counter(const std::string& name, const std::string& help = "");
    gauge& get_gauge(const std::string& name, const std::string& help = "");
    fgauge& get_fgauge(const std::string& name, const std::string& help = "");
    histogram& get_histogram(const std::string& name, const std::string& help = "");

    /// Read-only view of one series during enumeration. At most one of
    /// the pointers per kind is non-null.
    struct series_view {
        const std::string& name;
        const std::string& help;
        const counter* c;
        const gauge* g;
        const fgauge* f;
        const histogram* h;
    };

    /// Visit every series under the shape lock (values are still live
    /// atomics — reads are relaxed snapshots, like any aggregation).
    /// `fn` must not call back into this registry.
    template <typename Fn>
    void for_each_series(Fn&& fn) const {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [name, s] : series_) {
            fn(series_view{name, s.help, s.c.get(), s.g.get(), s.f.get(),
                           s.h.get()});
        }
    }

    /// Merge every series of `other` into this registry by name (missing
    /// series are created). Counters/histograms accumulate; gauges sum —
    /// per-shard gauges are partitions of an engine-wide quantity.
    void merge(const registry& other);

    /// Prometheus text exposition format (one # HELP/# TYPE block per
    /// series; histograms emit only non-empty cumulative buckets).
    std::string prometheus_text() const;

    std::size_t series_count() const;

private:
    struct series {
        std::string help;
        std::unique_ptr<counter> c;
        std::unique_ptr<gauge> g;
        std::unique_ptr<fgauge> f;
        std::unique_ptr<histogram> h;
    };

    mutable std::mutex mu_; ///< guards map shape only, never updates
    std::map<std::string, series> series_;
};

/// Escape a string for use after `# HELP name ` in the exposition
/// format: backslash and newline are escaped.
std::string prometheus_escape_help(const std::string& s);

/// Escape a string for use inside a double-quoted label value:
/// backslash, double-quote and newline are escaped.
std::string prometheus_escape_label(const std::string& s);

} // namespace vtp::trace
