#include "trace/window.hpp"

#include <algorithm>
#include <map>

namespace vtp::trace {

std::uint64_t window_hist_delta::percentile(double q) const {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank == 0) rank = 1;
    if (rank > count) rank = count;
    std::uint64_t seen = 0;
    for (const auto& [upper, n] : buckets) {
        seen += n;
        if (seen >= rank) return upper;
    }
    return max_upper();
}

std::uint64_t window_delta::counter_delta(const std::string& name) const {
    for (const auto& [n, v] : counters)
        if (n == name) return v;
    return 0;
}

double window_delta::rate_per_s(const std::string& name) const {
    if (span_ns == 0) return 0.0;
    return static_cast<double>(counter_delta(name)) * 1e9 /
           static_cast<double>(span_ns);
}

const window_hist_delta* window_delta::hist(const std::string& name) const {
    for (const auto& h : hists)
        if (h.name == name) return &h;
    return nullptr;
}

window_delta merge_window_deltas(const std::vector<window_delta>& parts) {
    window_delta out;
    std::map<std::string, std::uint64_t> counters;
    struct hist_acc {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::map<std::uint64_t, std::uint64_t> buckets;
    };
    std::map<std::string, hist_acc> hists;
    for (const window_delta& d : parts) {
        if (d.span_ns == 0) continue;
        out.span_ns = std::max(out.span_ns, d.span_ns);
        for (const auto& [name, v] : d.counters) counters[name] += v;
        for (const auto& h : d.hists) {
            hist_acc& a = hists[h.name];
            a.count += h.count;
            a.sum += h.sum;
            for (const auto& [upper, n] : h.buckets) a.buckets[upper] += n;
        }
    }
    out.counters.assign(counters.begin(), counters.end());
    for (auto& [name, a] : hists) {
        window_hist_delta h;
        h.name = name;
        h.count = a.count;
        h.sum = a.sum;
        h.buckets.assign(a.buckets.begin(), a.buckets.end());
        out.hists.push_back(std::move(h));
    }
    return out;
}

window_ring::window_ring(std::uint64_t span_ns, std::size_t max_snapshots)
    : span_ns_(span_ns), max_(max_snapshots == 0 ? 1 : max_snapshots) {}

void window_ring::capture(
    std::uint64_t at_ns, const registry& reg,
    std::vector<std::pair<std::string, std::uint64_t>> counters) {
    window_snapshot snap;
    snap.at_ns = at_ns;
    snap.counters = std::move(counters);
    reg.for_each_series([&](const registry::series_view& v) {
        if (v.c) snap.counters.emplace_back(v.name, v.c->value());
        if (v.h) {
            window_hist wh;
            wh.buckets = v.h->nonzero_buckets();
            wh.count = v.h->count();
            wh.sum = v.h->sum();
            snap.hists.emplace_back(v.name, std::move(wh));
        }
    });
    std::lock_guard<std::mutex> lock(mu_);
    snaps_.push_back(std::move(snap));
    while (snaps_.size() > max_ ||
           (snaps_.size() > 2 &&
            at_ns - snaps_.front().at_ns > 2 * span_ns_)) {
        snaps_.pop_front();
    }
}

namespace {

// Cumulative-at-snapshot minus cumulative-at-base, matched by bucket
// upper bound (strictly monotonic in bucket index, so a plain merge
// walk is exact). Buckets absent from the base contribute in full.
window_hist_delta hist_delta(const std::string& name, const window_hist& now,
                             const window_hist* base) {
    window_hist_delta d;
    d.name = name;
    d.count = now.count - (base != nullptr ? base->count : 0);
    d.sum = now.sum - (base != nullptr ? base->sum : 0);
    std::size_t bi = 0;
    for (const auto& [upper, n] : now.buckets) {
        std::uint64_t prev = 0;
        if (base != nullptr) {
            while (bi < base->buckets.size() && base->buckets[bi].first < upper)
                ++bi;
            if (bi < base->buckets.size() && base->buckets[bi].first == upper)
                prev = base->buckets[bi].second;
        }
        if (n > prev) d.buckets.emplace_back(upper, n - prev);
    }
    return d;
}

} // namespace

window_delta window_ring::window(std::uint64_t window_ns) const {
    if (window_ns == 0) window_ns = span_ns_;
    window_delta out;
    std::lock_guard<std::mutex> lock(mu_);
    if (snaps_.size() < 2) return out;
    const window_snapshot& now = snaps_.back();
    // Oldest snapshot still inside the requested window; if none is,
    // fall back to the one just before the boundary so short rings
    // still produce a (wider) window instead of nothing.
    const window_snapshot* base = &snaps_.front();
    for (const window_snapshot& s : snaps_) {
        if (&s == &now) break;
        if (now.at_ns - s.at_ns <= window_ns) {
            base = &s;
            break;
        }
        base = &s;
    }
    if (base == &now || now.at_ns == base->at_ns) return out;
    out.span_ns = now.at_ns - base->at_ns;
    for (const auto& [name, v] : now.counters) {
        std::uint64_t prev = 0;
        for (const auto& [bn, bv] : base->counters) {
            if (bn == name) {
                prev = bv;
                break;
            }
        }
        out.counters.emplace_back(name, v >= prev ? v - prev : 0);
    }
    for (const auto& [name, wh] : now.hists) {
        const window_hist* bh = nullptr;
        for (const auto& [bn, b] : base->hists) {
            if (bn == name) {
                bh = &b;
                break;
            }
        }
        out.hists.push_back(hist_delta(name, wh, bh));
    }
    return out;
}

std::size_t window_ring::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snaps_.size();
}

} // namespace vtp::trace
