// qlog-inspired JSON export of flight-recorder traces.
//
// qlog (draft-ietf-quic-qlog) is the structured endpoint-tracing format
// the QUIC ecosystem settled on once in-network visibility disappeared —
// the same motivation this flight recorder has. We emit the same overall
// shape (one trace per flow with named, timestamped events and a data
// object per event) without claiming schema conformance: VTP's event
// vocabulary (profile renegotiation, gTFRC floors, estimation locus) has
// no QUIC equivalent.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <vector>

#include "trace/record.hpp"

namespace vtp::trace {

/// Write the records as qlog-inspired JSON: one trace per flow (or only
/// `flow_filter`), events in record order. Returns the number of flows
/// exported.
std::size_t write_qlog_json(const std::vector<record>& records, std::ostream& os,
                            std::optional<std::uint32_t> flow_filter = std::nullopt);

} // namespace vtp::trace
