// Flight-recorder trace records: the compact binary event stream of one
// connection.
//
// A `record` is a fixed 32-byte POD: substrate timestamp, flow id, event
// type, and three type-specific arguments. Connections append records to
// a bounded per-connection ring (trace/tracer.hpp); with a sink attached
// the ring spills as length-prefixed frames to a trace file
// (trace/writer.hpp), otherwise it keeps the last `capacity` events in
// memory like an aircraft flight recorder. `vtptrace` decodes the file
// into a summary, per-flow timeline CSV or qlog-inspired JSON
// (trace/qlog.hpp).
//
// Records carry only integers (timestamps are substrate nanoseconds,
// rates are rounded bytes/s or bits/s, probabilities are scaled by 1e9)
// so that a same-seed simulator run reproduces the byte-identical trace
// stream — the determinism property the conformance harness asserts.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/time.hpp"

namespace vtp::trace {

enum class record_type : std::uint8_t {
    none = 0,
    /// Data packet left the sender. a=sequence, b=payload bytes,
    /// stream=stream id, aux: bit0 retransmission, bit1 probe/eos marker.
    packet_tx = 1,
    /// Data packet ingested by the receiver. a=sequence, b=payload bytes,
    /// stream=stream id.
    packet_rx = 2,
    /// Receiver emitted a SACK feedback report. a=highest sequence seen,
    /// b=packets covered since the previous report.
    feedback_tx = 3,
    /// Sender processed a feedback report. a=RTT sample (ns, 0 = none),
    /// b=receiver rate x_recv (bytes/s).
    ack_rx = 4,
    /// Feedback reported fresh losses. a=newly lost packets,
    /// b=loss event rate p scaled by 1e9.
    loss_event = 5,
    /// Congestion-controller operating point after a feedback/RTO event.
    /// a=pacing rate (bytes/s), b=bandwidth estimate (bits/s),
    /// aux=cc::algorithm_id.
    cc_sample = 6,
    /// Window-based controller detail. a=cwnd bytes, b=bytes in flight
    /// before the event, aux: bit0 in slow start.
    cc_window = 7,
    /// This endpoint proposed a renegotiation. a=profile::encode() bits,
    /// b=target rate (bits/s).
    reneg_proposed = 8,
    /// A renegotiated profile took effect. a=profile::encode() bits,
    /// b=sequence boundary, aux=new cc::algorithm_id.
    reneg_applied = 9,
    /// Handshake completed. a=profile::encode() bits of the agreed
    /// profile, aux=cc::algorithm_id.
    established = 10,
    /// Connection fully closed (FIN acknowledged / peer FIN seen).
    closed = 11,
    /// A protocol timer fired. aux=timer_kind, a=attempt count.
    timer_fire = 12,
    /// Stream scheduler promoted a stream ahead of round-robin order.
    /// stream=promoted stream id, a=nanoseconds until its deadline.
    stream_sched = 13,
    /// Listener accept-path guard decision (DoS hardening). Emitted by
    /// the listener's tracer (flow = packet's flow id). aux=guard_event,
    /// a=source address, b=detail (cookie value for the cookie events,
    /// denied bytes for the rate/amplification events).
    guard = 14,
    /// Path validation probe carrying a random token (migration /
    /// multipath). a=token, b=remote address, aux: 0 sent, 1 received.
    path_challenge = 15,
    /// Echo of a challenge token. a=token, b=remote address,
    /// aux: 0 sent, 1 received (2: received but token rejected).
    path_response = 16,
    /// The connection's active path switched. a=old remote address,
    /// b=new remote address, aux: 0 explicit migrate, 1 passive rebind,
    /// 2 path added (multipath).
    path_changed = 17,
};

/// guard aux values.
enum class guard_event : std::uint8_t {
    retry_sent = 1,            ///< answered an unvalidated SYN with a cookie
    cookie_validated = 2,      ///< retried SYN echoed a valid cookie
    cookie_rejected = 3,       ///< SYN carried a stale/forged cookie
    syn_rate_limited = 4,      ///< per-source SYN token bucket denial
    stray_rate_limited = 5,    ///< per-source stray-traffic bucket denial
    amplification_limited = 6, ///< retry withheld: would exceed tx budget
    shed = 7,                  ///< admission refused (session / half-open cap)
};

/// timer_fire aux values.
enum class timer_kind : std::uint8_t {
    nofeedback = 1, ///< TFRC nofeedback / RTO
    handshake = 2,  ///< SYN / reneg retransmission
    fin = 3,        ///< FIN retransmission
};

struct record {
    std::uint64_t at = 0; ///< substrate time (ns)
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t flow = 0;
    std::uint16_t stream = 0;
    std::uint8_t type = 0; ///< record_type
    std::uint8_t aux = 0;
};

static_assert(sizeof(record) == 32, "trace records are fixed 32-byte PODs");

inline const char* type_name(record_type t) {
    switch (t) {
    case record_type::packet_tx: return "packet_tx";
    case record_type::packet_rx: return "packet_rx";
    case record_type::feedback_tx: return "feedback_tx";
    case record_type::ack_rx: return "ack_rx";
    case record_type::loss_event: return "loss_event";
    case record_type::cc_sample: return "cc_sample";
    case record_type::cc_window: return "cc_window";
    case record_type::reneg_proposed: return "reneg_proposed";
    case record_type::reneg_applied: return "reneg_applied";
    case record_type::established: return "established";
    case record_type::closed: return "closed";
    case record_type::timer_fire: return "timer_fire";
    case record_type::stream_sched: return "stream_sched";
    case record_type::guard: return "guard";
    case record_type::path_challenge: return "path_challenge";
    case record_type::path_response: return "path_response";
    case record_type::path_changed: return "path_changed";
    default: return "unknown";
    }
}

/// nullopt-free lookup for the CLI: record_type::none when unknown.
record_type type_from_string(const char* name);

} // namespace vtp::trace
