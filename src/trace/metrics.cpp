#include "trace/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace vtp::trace {

std::uint64_t histogram::percentile(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target observation (1-based, ceil).
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bucket_count; ++i) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= rank) return bucket_upper(i);
    }
    return max();
}

void histogram::merge(const histogram& other) {
    for (std::size_t i = 0; i < bucket_count; ++i) {
        const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
        if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    const std::uint64_t om = other.max();
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (om > prev &&
           !max_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
    }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
histogram::nonzero_buckets() const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < bucket_count; ++i) {
        const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        if (n != 0) out.emplace_back(bucket_upper(i), n);
    }
    return out;
}

counter& registry::get_counter(const std::string& name, const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    series& s = series_[name];
    if (!s.c) {
        s.c = std::make_unique<counter>();
        if (s.help.empty()) s.help = help;
    }
    return *s.c;
}

gauge& registry::get_gauge(const std::string& name, const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    series& s = series_[name];
    if (!s.g) {
        s.g = std::make_unique<gauge>();
        if (s.help.empty()) s.help = help;
    }
    return *s.g;
}

fgauge& registry::get_fgauge(const std::string& name, const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    series& s = series_[name];
    if (!s.f) {
        s.f = std::make_unique<fgauge>();
        if (s.help.empty()) s.help = help;
    }
    return *s.f;
}

histogram& registry::get_histogram(const std::string& name,
                                   const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    series& s = series_[name];
    if (!s.h) {
        s.h = std::make_unique<histogram>();
        if (s.help.empty()) s.help = help;
    }
    return *s.h;
}

void registry::merge(const registry& other) {
    // Snapshot the other registry's shape, then fold series by name.
    std::vector<std::pair<std::string, const series*>> theirs;
    {
        std::lock_guard<std::mutex> lock(other.mu_);
        for (const auto& [name, s] : other.series_) theirs.emplace_back(name, &s);
    }
    for (const auto& [name, s] : theirs) {
        if (s->c) get_counter(name, s->help).add(s->c->value());
        if (s->g) get_gauge(name, s->help).add(s->g->value());
        if (s->f) get_fgauge(name, s->help).add(s->f->value());
        if (s->h) get_histogram(name, s->help).merge(*s->h);
    }
}

std::size_t registry::series_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return series_.size();
}

std::string prometheus_escape_help(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        if (ch == '\\') out += "\\\\";
        else if (ch == '\n') out += "\\n";
        else out += ch;
    }
    return out;
}

std::string prometheus_escape_label(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        if (ch == '\\') out += "\\\\";
        else if (ch == '"') out += "\\\"";
        else if (ch == '\n') out += "\\n";
        else out += ch;
    }
    return out;
}

std::string registry::prometheus_text() const {
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, s] : series_) {
        if (!s.help.empty())
            os << "# HELP " << name << ' ' << prometheus_escape_help(s.help)
               << '\n';
        if (s.c) {
            os << "# TYPE " << name << " counter\n";
            os << name << ' ' << s.c->value() << '\n';
        }
        if (s.g) {
            os << "# TYPE " << name << " gauge\n";
            os << name << ' ' << s.g->value() << '\n';
        }
        if (s.f) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.6g", s.f->value());
            os << "# TYPE " << name << " gauge\n";
            os << name << ' ' << buf << '\n';
        }
        if (s.h) {
            os << "# TYPE " << name << " histogram\n";
            std::uint64_t cum = 0;
            for (const auto& [upper, n] : s.h->nonzero_buckets()) {
                cum += n;
                os << name << "_bucket{le=\"" << upper << "\"} " << cum << '\n';
            }
            os << name << "_bucket{le=\"+Inf\"} " << s.h->count() << '\n';
            os << name << "_sum " << s.h->sum() << '\n';
            os << name << "_count " << s.h->count() << '\n';
        }
    }
    return os.str();
}

} // namespace vtp::trace
