// Trace file I/O: length-prefixed frames of flight-recorder records.
//
// File layout (all little-endian):
//   header : magic "VTPT" | u16 version (1) | u16 record size (32)
//   frame* : u32 record count | count * record
//
// Frames are whatever the tracers spilled — the reader flattens them
// back into one chronologically interleaved record stream (a shared
// writer serializes multiple flows; per-flow order is always preserved,
// and on the single-threaded simulator the global order is the event
// order, which is what makes same-seed traces bit-identical).
//
// `file_writer` writes synchronously on the caller's thread (simulator,
// tools). `async_writer` is the engine's per-shard spool: the shard
// thread enqueues frames on a mutex-guarded queue and a dedicated writer
// thread drains them to disk, so trace I/O never blocks the datapath
// turn. A bounded queue drops whole frames under backpressure (counted,
// like every other overflow in the engine).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/tracer.hpp"

namespace vtp::trace {

inline constexpr char file_magic[4] = {'V', 'T', 'P', 'T'};
inline constexpr std::uint16_t file_version = 1;

/// Synchronous writer; flows sharing it interleave in call order.
class file_writer final : public sink {
public:
    explicit file_writer(const std::string& path);
    ~file_writer() override;

    file_writer(const file_writer&) = delete;
    file_writer& operator=(const file_writer&) = delete;

    bool ok() const { return f_ != nullptr; }
    void on_records(const record* r, std::size_t n) override;
    /// Frames and records written so far.
    std::uint64_t frames() const { return frames_; }
    std::uint64_t records() const { return records_; }
    void close();

private:
    std::FILE* f_ = nullptr;
    std::uint64_t frames_ = 0;
    std::uint64_t records_ = 0;
};

/// Per-shard writer thread: on_records() copies the frame into a bounded
/// queue and returns; the spool thread owns the file.
class async_writer final : public sink {
public:
    /// `max_queued_frames` bounds datapath-side memory; overflow drops
    /// the frame and counts it (frames_dropped).
    explicit async_writer(const std::string& path,
                          std::size_t max_queued_frames = 1024);
    ~async_writer() override;

    async_writer(const async_writer&) = delete;
    async_writer& operator=(const async_writer&) = delete;

    bool ok() const { return out_.ok(); }
    void on_records(const record* r, std::size_t n) override;
    /// Drain the queue and close the file (idempotent; the destructor
    /// calls it). After close() further frames are dropped.
    void close();
    std::uint64_t frames_dropped() const;
    /// Records accepted into the queue so far (whether or not the spool
    /// thread has flushed them yet).
    std::uint64_t records() const;

private:
    void run();

    file_writer out_;
    std::size_t max_queued_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::vector<record>> queue_;
    std::uint64_t dropped_ = 0;
    std::uint64_t accepted_records_ = 0;
    bool closing_ = false;
    std::thread thread_;
};

/// Whole-file load; returns false on missing/corrupt header. Frames are
/// flattened into `out` in file order.
bool read_trace_file(const std::string& path, std::vector<record>& out);

} // namespace vtp::trace
