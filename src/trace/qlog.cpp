#include "trace/qlog.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "cc/algorithm_id.hpp"

namespace vtp::trace {

namespace {

const char* qlog_name(record_type t) {
    switch (t) {
    case record_type::packet_tx: return "transport:packet_sent";
    case record_type::packet_rx: return "transport:packet_received";
    case record_type::feedback_tx: return "transport:feedback_sent";
    case record_type::ack_rx: return "transport:feedback_received";
    case record_type::loss_event: return "recovery:loss_event";
    case record_type::cc_sample: return "recovery:metrics_updated";
    case record_type::cc_window: return "recovery:congestion_window_updated";
    case record_type::reneg_proposed: return "negotiation:profile_proposed";
    case record_type::reneg_applied: return "negotiation:profile_applied";
    case record_type::established: return "connectivity:connection_started";
    case record_type::closed: return "connectivity:connection_closed";
    case record_type::timer_fire: return "recovery:timer_fired";
    case record_type::stream_sched: return "transport:stream_promoted";
    case record_type::guard: return "security:accept_guard";
    case record_type::path_challenge: return "path:challenge";
    case record_type::path_response: return "path:response";
    case record_type::path_changed: return "path:changed";
    default: return "unknown";
    }
}

void write_data(std::ostream& os, const record& r) {
    const auto t = static_cast<record_type>(r.type);
    os << '{';
    switch (t) {
    case record_type::packet_tx:
        os << "\"seq\":" << r.a << ",\"stream_id\":" << r.stream
           << ",\"payload_length\":" << r.b
           << ",\"is_retransmission\":" << ((r.aux & 1) != 0 ? "true" : "false")
           << ",\"is_probe\":" << ((r.aux & 2) != 0 ? "true" : "false");
        break;
    case record_type::packet_rx:
        os << "\"seq\":" << r.a << ",\"stream_id\":" << r.stream
           << ",\"payload_length\":" << r.b;
        break;
    case record_type::feedback_tx:
        os << "\"highest_seq\":" << r.a << ",\"packets_covered\":" << r.b;
        break;
    case record_type::ack_rx:
        os << "\"rtt_ns\":" << r.a << ",\"x_recv_bytes_per_s\":" << r.b;
        break;
    case record_type::loss_event:
        os << "\"packets_lost\":" << r.a << ",\"loss_event_rate\":" << (r.b / 1e9);
        break;
    case record_type::cc_sample:
        os << "\"pacing_rate_bytes_per_s\":" << r.a
           << ",\"bandwidth_estimate_bps\":" << r.b << ",\"algorithm\":\""
           << cc::to_string(static_cast<cc::algorithm_id>(r.aux)) << '"';
        break;
    case record_type::cc_window:
        os << "\"cwnd_bytes\":" << r.a << ",\"bytes_in_flight\":" << r.b
           << ",\"in_slow_start\":" << ((r.aux & 1) != 0 ? "true" : "false");
        break;
    case record_type::reneg_proposed:
        os << "\"profile_bits\":" << r.a << ",\"target_rate_bps\":" << r.b;
        break;
    case record_type::reneg_applied:
        os << "\"profile_bits\":" << r.a << ",\"boundary_seq\":" << r.b
           << ",\"algorithm\":\""
           << cc::to_string(static_cast<cc::algorithm_id>(r.aux)) << '"';
        break;
    case record_type::established:
        os << "\"profile_bits\":" << r.a << ",\"algorithm\":\""
           << cc::to_string(static_cast<cc::algorithm_id>(r.aux)) << '"';
        break;
    case record_type::timer_fire:
        os << "\"kind\":" << static_cast<unsigned>(r.aux)
           << ",\"attempt\":" << r.a;
        break;
    case record_type::stream_sched:
        os << "\"stream_id\":" << r.stream << ",\"deadline_in_ns\":" << r.a;
        break;
    case record_type::guard:
        os << "\"event\":" << static_cast<unsigned>(r.aux) << ",\"src\":" << r.a
           << ",\"detail\":" << r.b;
        break;
    case record_type::path_challenge:
    case record_type::path_response:
        os << "\"token\":" << r.a << ",\"remote\":" << r.b
           << ",\"direction\":\"" << (r.aux == 0 ? "sent" : r.aux == 1 ? "received" : "rejected")
           << '"';
        break;
    case record_type::path_changed:
        os << "\"old_remote\":" << r.a << ",\"new_remote\":" << r.b
           << ",\"cause\":\""
           << (r.aux == 0 ? "migrate" : r.aux == 1 ? "rebind" : "path_added") << '"';
        break;
    default:
        os << "\"a\":" << r.a << ",\"b\":" << r.b;
        break;
    }
    os << '}';
}

} // namespace

std::size_t write_qlog_json(const std::vector<record>& records, std::ostream& os,
                            std::optional<std::uint32_t> flow_filter) {
    // Group per flow, preserving record order within each flow.
    std::map<std::uint32_t, std::vector<const record*>> flows;
    for (const record& r : records) {
        if (flow_filter && r.flow != *flow_filter) continue;
        flows[r.flow].push_back(&r);
    }
    os << "{\"qlog_format\":\"JSON\",\"qlog_version\":\"0.4\","
          "\"title\":\"vtp flight recorder\",\"traces\":[";
    bool first_trace = true;
    for (const auto& [flow, recs] : flows) {
        if (!first_trace) os << ',';
        first_trace = false;
        os << "{\"common_fields\":{\"flow_id\":" << flow
           << ",\"time_format\":\"relative_ns\"},"
              "\"vantage_point\":{\"type\":\"endpoint\"},\"events\":[";
        bool first_ev = true;
        for (const record* r : recs) {
            if (!first_ev) os << ',';
            first_ev = false;
            os << "{\"time\":" << r->at << ",\"name\":\""
               << qlog_name(static_cast<record_type>(r->type)) << "\",\"data\":";
            write_data(os, *r);
            os << '}';
        }
        os << "]}";
    }
    os << "]}\n";
    return flows.size();
}

record_type type_from_string(const char* name) {
    static constexpr record_type all[] = {
        record_type::packet_tx,      record_type::packet_rx,
        record_type::feedback_tx,    record_type::ack_rx,
        record_type::loss_event,     record_type::cc_sample,
        record_type::cc_window,      record_type::reneg_proposed,
        record_type::reneg_applied,  record_type::established,
        record_type::closed,         record_type::timer_fire,
        record_type::stream_sched,   record_type::guard,
        record_type::path_challenge, record_type::path_response,
        record_type::path_changed,
    };
    const std::string want(name);
    for (record_type t : all)
        if (want == type_name(t)) return t;
    return record_type::none;
}

} // namespace vtp::trace
