// Live UDP implementation of the transport environment.
//
// Addressing: a transport address is a UDP port on 127.0.0.1 (the demo
// topology). Each datagram is [flow_id:u32][src_addr:u32] followed by
// the wire-encoded segment (packet/wire.hpp) — the same bytes
// header_size() accounts for in simulation.
//
// This substrate exists to demonstrate that every agent in the library
// (TFRC flows, QTP connections, the TCP baseline) runs unmodified outside
// the simulator; see examples/live_udp_transfer.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/environment.hpp"
#include "net/event_loop.hpp"
#include "util/rng.hpp"

namespace vtp::net {

class udp_host : public qtp::environment {
public:
    /// Bind 127.0.0.1:port. Throws std::runtime_error on failure.
    udp_host(event_loop& loop, std::uint16_t port, std::uint64_t rng_seed = 1);
    ~udp_host() override;

    udp_host(const udp_host&) = delete;
    udp_host& operator=(const udp_host&) = delete;

    /// Attach an agent terminating `flow_id` here; the host owns it.
    template <typename agent_type>
    agent_type* attach(std::uint32_t flow_id, std::unique_ptr<agent_type> a) {
        agent_type* raw = a.get();
        attach_erased(flow_id, std::move(a));
        return raw;
    }

    // --- qtp::environment ---
    util::sim_time now() const override { return loop_.now(); }
    qtp::timer_id schedule(util::sim_time delay, std::function<void()> fn) override;
    void cancel(qtp::timer_id id) override;
    void send(packet::packet pkt) override;
    std::uint32_t local_addr() const override { return port_; }
    util::rng& random() override { return rng_; }
    void attach_dynamic(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a) override {
        attach_erased(flow_id, std::move(a));
    }
    void detach_dynamic(std::uint32_t flow_id) override { agents_.erase(flow_id); }

    /// Packets for flows with no attached agent go here (listener hook).
    void set_default_agent(qtp::agent* a) override { default_agent_ = a; }

    /// Move the host to a new local UDP port (the live "NAT rebind" /
    /// interface change): closes the socket, binds `new_port`, and
    /// subsequent datagrams carry the new source address. Agents stay
    /// attached and keep their state — pair with session::migrate() so
    /// the peer re-validates the fresh 4-tuple. Throws on bind failure
    /// (the old socket is already gone — retry with another port).
    void rebind(std::uint16_t new_port);

    std::uint64_t sent_datagrams() const { return sent_; }
    std::uint64_t received_datagrams() const { return received_; }
    std::uint64_t decode_errors() const { return decode_errors_; }
    /// Datagrams too large for the host's buffers (a payload frame built
    /// with packet_size near/above engine::max_datagram), dropped at send.
    std::uint64_t oversized_dropped() const { return oversized_dropped_; }

private:
    void attach_erased(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a);
    void on_readable();

    event_loop& loop_;
    std::uint16_t port_;
    int fd_ = -1;
    util::rng rng_;
    qtp::agent* default_agent_ = nullptr;
    std::unordered_map<std::uint32_t, std::unique_ptr<qtp::agent>> agents_;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
    std::uint64_t decode_errors_ = 0;
    std::uint64_t oversized_dropped_ = 0;
};

} // namespace vtp::net
