#include "net/udp_host.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "engine/udp_io.hpp"
#include "packet/wire.hpp"
#include "util/logging.hpp"

namespace vtp::net {

udp_host::udp_host(event_loop& loop, std::uint16_t port, std::uint64_t rng_seed)
    : loop_(loop), port_(port), rng_(rng_seed) {
    // Shares the engine's socket setup but deliberately keeps the
    // one-datagram-per-syscall receive/transmit path below: this host is
    // the legacy baseline the engine is measured against
    // (bench_e12_engine_throughput) and the simple client substrate.
    fd_ = engine::open_udp_socket(port);
    loop_.add_fd(fd_, [this] { on_readable(); });
}

void udp_host::rebind(std::uint16_t new_port) {
    loop_.remove_fd(fd_);
    ::close(fd_);
    fd_ = -1;
    fd_ = engine::open_udp_socket(new_port);
    port_ = new_port;
    loop_.add_fd(fd_, [this] { on_readable(); });
    util::log(util::log_level::info, "udp_host", "rebound to port ", new_port);
}

udp_host::~udp_host() {
    if (fd_ >= 0) {
        loop_.remove_fd(fd_);
        ::close(fd_);
    }
}

void udp_host::attach_erased(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a) {
    qtp::agent* raw = a.get();
    agents_[flow_id] = std::move(a);
    raw->start(*this);
}

qtp::timer_id udp_host::schedule(util::sim_time delay, std::function<void()> fn) {
    return loop_.schedule_after(delay, std::move(fn));
}

void udp_host::cancel(qtp::timer_id id) { loop_.cancel(id); }

void udp_host::send(packet::packet pkt) {
    std::vector<std::uint8_t> dgram;
    dgram.reserve(8 + 64);
    for (int shift = 24; shift >= 0; shift -= 8)
        dgram.push_back(static_cast<std::uint8_t>(pkt.flow_id >> shift));
    const std::uint32_t src = port_;
    for (int shift = 24; shift >= 0; shift -= 8)
        dgram.push_back(static_cast<std::uint8_t>(src >> shift));
    const std::vector<std::uint8_t> body = packet::encode_segment(*pkt.body);
    dgram.insert(dgram.end(), body.begin(), body.end());

    // Payload frames can exceed the receive buffers (both sides use
    // engine::max_datagram) when packet_size is set near/above it; a
    // truncated datagram would fail decode on every arrival, so drop and
    // count here where the cause is visible.
    if (dgram.size() > engine::max_datagram) {
        ++oversized_dropped_;
        util::log(util::log_level::warn, "udp_host",
                  "oversized datagram dropped (packet_size vs max_datagram)");
        return;
    }

    sockaddr_in to = engine::loopback_addr(static_cast<std::uint16_t>(pkt.dst));
    if (::sendto(fd_, dgram.data(), dgram.size(), 0, reinterpret_cast<sockaddr*>(&to),
                 sizeof to) >= 0) {
        ++sent_;
    }
}

void udp_host::on_readable() {
    std::uint8_t buf[engine::max_datagram];
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
        if (n < 0) break;
        if (n < 8) continue;
        ++received_;
        std::uint32_t flow_id = 0;
        std::uint32_t src = 0;
        for (int i = 0; i < 4; ++i) flow_id = (flow_id << 8) | buf[i];
        for (int i = 4; i < 8; ++i) src = (src << 8) | buf[i];
        try {
            packet::packet pkt;
            pkt.flow_id = flow_id;
            pkt.src = src;
            pkt.dst = port_;
            pkt.body = std::make_shared<const packet::segment>(
                packet::decode_segment(buf + 8, static_cast<std::size_t>(n - 8)));
            pkt.size_bytes = packet::wire_size(*pkt.body);
            auto it = agents_.find(flow_id);
            if (it != agents_.end())
                it->second->on_packet(pkt);
            else if (default_agent_ != nullptr)
                default_agent_->on_packet(pkt);
        } catch (const std::exception& e) {
            ++decode_errors_;
            util::log(util::log_level::warn, "udp_host", "decode error: ", e.what());
        }
    }
}

} // namespace vtp::net
