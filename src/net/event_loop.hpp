// Minimal real-time event loop (poll(2) + monotonic timers) for the live
// UDP datapath. Single-threaded by design: transport agents are not
// thread-safe and do not need to be — exactly like the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "util/time.hpp"

namespace vtp::net {

class event_loop {
public:
    event_loop();

    /// Nanoseconds since loop creation (CLOCK_MONOTONIC based).
    util::sim_time now() const;

    /// Watch `fd` for readability.
    void add_fd(int fd, std::function<void()> on_readable);
    void remove_fd(int fd);

    std::uint64_t schedule_after(util::sim_time delay, std::function<void()> fn);
    void cancel(std::uint64_t id);

    /// Run until stop() or (optionally) until `deadline` relative to now.
    void run(util::sim_time for_duration = util::time_never);
    void stop() { running_ = false; }

private:
    void fire_due_timers();
    util::sim_time next_timer_delay() const;

    util::sim_time epoch_;
    bool running_ = false;
    std::uint64_t next_timer_id_ = 1;
    struct timer_entry {
        util::sim_time deadline;
        std::function<void()> fn;
    };
    std::map<std::uint64_t, timer_entry> timers_; ///< id -> entry
    std::vector<std::pair<int, std::function<void()>>> fds_;
};

} // namespace vtp::net
