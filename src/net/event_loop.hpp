// Minimal real-time event loop for the live UDP datapath. Single-
// threaded by design: transport agents are not thread-safe and do not
// need to be — exactly like the simulator.
//
// I/O readiness comes from engine::reactor (epoll on Linux, poll(2)
// elsewhere), so watching many fds costs O(1) per wait instead of a
// per-iteration fd-set rebuild. Timers sit in a deadline-ordered binary
// heap with lazy cancellation: schedule and cancel are O(log n) /
// O(1), and each loop iteration pops only what is due — the old
// std::map store scanned every timer per iteration. For thousands of
// connections on one thread, use an engine::shard instead (timer wheel,
// batched I/O); this loop stays the simple substrate for clients,
// examples and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "engine/reactor.hpp"
#include "util/time.hpp"

namespace vtp::net {

class event_loop {
public:
    event_loop();

    /// Nanoseconds since loop creation (CLOCK_MONOTONIC based).
    util::sim_time now() const;

    /// Watch `fd` for readability.
    void add_fd(int fd, std::function<void()> on_readable);
    void remove_fd(int fd);

    std::uint64_t schedule_after(util::sim_time delay, std::function<void()> fn);
    void cancel(std::uint64_t id);

    /// Run until stop() or (optionally) until `deadline` relative to now.
    void run(util::sim_time for_duration = util::time_never);
    void stop() { running_ = false; }

private:
    void fire_due_timers();
    util::sim_time next_timer_delay();
    void pop_stale();

    util::sim_time epoch_;
    bool running_ = false;
    std::uint64_t next_timer_id_ = 1;

    struct timer_entry {
        util::sim_time deadline;
        std::function<void()> fn;
    };
    /// Live timers by id; cancel() simply erases here and the heap entry
    /// goes stale (skipped when it surfaces).
    std::unordered_map<std::uint64_t, timer_entry> timers_;
    using heap_item = std::pair<util::sim_time, std::uint64_t>; ///< (deadline, id)
    std::priority_queue<heap_item, std::vector<heap_item>, std::greater<heap_item>>
        heap_;

    engine::reactor reactor_;
};

} // namespace vtp::net
