#include "net/event_loop.hpp"

#include <poll.h>
#include <time.h>

#include <algorithm>

namespace vtp::net {

namespace {
util::sim_time monotonic_ns() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<util::sim_time>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}
} // namespace

event_loop::event_loop() : epoch_(monotonic_ns()) {}

util::sim_time event_loop::now() const { return monotonic_ns() - epoch_; }

void event_loop::add_fd(int fd, std::function<void()> on_readable) {
    fds_.emplace_back(fd, std::move(on_readable));
}

void event_loop::remove_fd(int fd) {
    fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                              [fd](const auto& e) { return e.first == fd; }),
               fds_.end());
}

std::uint64_t event_loop::schedule_after(util::sim_time delay, std::function<void()> fn) {
    const std::uint64_t id = next_timer_id_++;
    timers_[id] = timer_entry{now() + std::max<util::sim_time>(delay, 0), std::move(fn)};
    return id;
}

void event_loop::cancel(std::uint64_t id) { timers_.erase(id); }

util::sim_time event_loop::next_timer_delay() const {
    if (timers_.empty()) return util::milliseconds(100);
    util::sim_time earliest = util::time_never;
    for (const auto& [id, t] : timers_) earliest = std::min(earliest, t.deadline);
    return std::max<util::sim_time>(earliest - now(), 0);
}

void event_loop::fire_due_timers() {
    const util::sim_time t = now();
    // Collect due ids first: callbacks may add/cancel timers.
    std::vector<std::uint64_t> due;
    for (const auto& [id, entry] : timers_)
        if (entry.deadline <= t) due.push_back(id);
    for (std::uint64_t id : due) {
        auto it = timers_.find(id);
        if (it == timers_.end()) continue;
        auto fn = std::move(it->second.fn);
        timers_.erase(it);
        fn();
    }
}

void event_loop::run(util::sim_time for_duration) {
    running_ = true;
    const util::sim_time deadline =
        for_duration == util::time_never ? util::time_never : now() + for_duration;

    while (running_) {
        if (deadline != util::time_never && now() >= deadline) break;

        util::sim_time wait = next_timer_delay();
        if (deadline != util::time_never) wait = std::min(wait, deadline - now());
        const int timeout_ms =
            static_cast<int>(std::clamp<util::sim_time>(wait / 1'000'000, 0, 1000));

        std::vector<pollfd> pfds;
        pfds.reserve(fds_.size());
        for (const auto& [fd, cb] : fds_) pfds.push_back(pollfd{fd, POLLIN, 0});

        const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
        if (ready > 0) {
            for (std::size_t i = 0; i < pfds.size() && i < fds_.size(); ++i) {
                if (pfds[i].revents & POLLIN) fds_[i].second();
            }
        }
        fire_due_timers();
    }
    running_ = false;
}

} // namespace vtp::net
