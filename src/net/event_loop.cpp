#include "net/event_loop.hpp"

#include <time.h>

#include <algorithm>

namespace vtp::net {

namespace {
util::sim_time monotonic_ns() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<util::sim_time>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}
} // namespace

event_loop::event_loop() : epoch_(monotonic_ns()) {}

util::sim_time event_loop::now() const { return monotonic_ns() - epoch_; }

void event_loop::add_fd(int fd, std::function<void()> on_readable) {
    reactor_.add_fd(fd, std::move(on_readable));
}

void event_loop::remove_fd(int fd) { reactor_.remove_fd(fd); }

std::uint64_t event_loop::schedule_after(util::sim_time delay, std::function<void()> fn) {
    const std::uint64_t id = next_timer_id_++;
    const util::sim_time deadline = now() + std::max<util::sim_time>(delay, 0);
    timers_.emplace(id, timer_entry{deadline, std::move(fn)});
    heap_.emplace(deadline, id);
    return id;
}

void event_loop::cancel(std::uint64_t id) { timers_.erase(id); }

void event_loop::pop_stale() {
    // Heap entries whose timer was cancelled (no longer in timers_).
    while (!heap_.empty() && timers_.find(heap_.top().second) == timers_.end())
        heap_.pop();
}

util::sim_time event_loop::next_timer_delay() {
    pop_stale();
    if (heap_.empty()) return util::milliseconds(100);
    return std::max<util::sim_time>(heap_.top().first - now(), 0);
}

void event_loop::fire_due_timers() {
    // Snapshot `t` once: a callback scheduling an immediate follow-up
    // fires it next iteration, never in this pass (same as the old
    // collect-then-run behaviour).
    const util::sim_time t = now();
    for (;;) {
        pop_stale();
        if (heap_.empty() || heap_.top().first > t) break;
        const std::uint64_t id = heap_.top().second;
        heap_.pop();
        const auto it = timers_.find(id);
        if (it == timers_.end()) continue; // cancelled after pop_stale
        auto fn = std::move(it->second.fn);
        timers_.erase(it);
        fn();
    }
}

void event_loop::run(util::sim_time for_duration) {
    running_ = true;
    const util::sim_time deadline =
        for_duration == util::time_never ? util::time_never : now() + for_duration;

    while (running_) {
        if (deadline != util::time_never && now() >= deadline) break;

        util::sim_time wait = next_timer_delay();
        if (deadline != util::time_never) wait = std::min(wait, deadline - now());
        wait = std::clamp<util::sim_time>(wait, 0, util::seconds(1));

        reactor_.poll_once(wait);
        fire_due_timers();
    }
    running_ = false;
}

} // namespace vtp::net
