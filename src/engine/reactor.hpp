// Readiness reactor: epoll(7) on Linux (O(1) per wait, no per-iteration
// fd-set rebuild), poll(2) elsewhere. One reactor per shard thread and
// one behind the legacy net::event_loop. Level-triggered: a callback
// that does not fully drain its fd simply runs again next turn, which
// is how shards bound their per-turn receive work without losing data.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace vtp::engine {

class reactor {
public:
    reactor();
    ~reactor();

    reactor(const reactor&) = delete;
    reactor& operator=(const reactor&) = delete;

    /// Watch `fd` for readability. One callback per fd.
    void add_fd(int fd, std::function<void()> on_readable);
    void remove_fd(int fd);

    /// Block up to `timeout` (nanoseconds; 0 = poll, util::time_never =
    /// block indefinitely), then dispatch every readable fd's callback.
    /// Returns the number of callbacks dispatched.
    int poll_once(util::sim_time timeout);

private:
    std::unordered_map<int, std::function<void()>> handlers_;
#ifdef __linux__
    int epfd_ = -1;
#endif
};

} // namespace vtp::engine
