// Flow-id → shard mapping. Every shard (and every forwarding decision)
// must agree on which shard owns a flow, so the mapping is a pure
// function of the flow id: a splitmix64 finalizer to decorrelate
// adjacent ids (auto-assigned session ids are sequential), then a
// modulo. Agents for a flow are only ever attached on its owner shard,
// which is what keeps the per-shard runtime lock-free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vtp::engine {

class flow_shard_map {
public:
    explicit flow_shard_map(std::size_t shards) : shards_(shards ? shards : 1) {}

    std::size_t owner(std::uint32_t flow_id) const {
        return static_cast<std::size_t>(mix(flow_id) % shards_);
    }

    std::size_t shards() const { return shards_; }

    /// splitmix64 finalizer (public domain constants).
    static std::uint64_t mix(std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

private:
    std::size_t shards_;
};

} // namespace vtp::engine
