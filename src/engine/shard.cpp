#include "engine/shard.hpp"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "packet/wire.hpp"
#include "util/logging.hpp"

namespace vtp::engine {

namespace {

util::sim_time monotonic_ns() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<util::sim_time>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    // Single writer (the shard thread); relaxed is enough for readers
    // sampling monotonic counters.
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

} // namespace

shard::shard(shard_config cfg)
    : cfg_(cfg),
      map_(cfg.shard_count),
      rng_(cfg.rng_seed + cfg.index),
      wheel_(monotonic_ns()),
      pool_(cfg.pool_buffers, max_datagram),
      rx_(cfg.rx_batch) {
    fd_ = open_udp_socket(cfg_.port, cfg_.shard_count > 1, cfg_.rcvbuf_bytes,
                          cfg_.sndbuf_bytes);
    tx_pending_.reserve(cfg_.tx_batch);

    turn_ns_ = &metrics_.get_histogram(
        "vtp_shard_turn_ns",
        "Busy time of one shard loop turn in ns (excludes the reactor sleep).");
    wheel_.set_fire_latency_histogram(&metrics_.get_histogram(
        "vtp_timer_fire_latency_ns",
        "Timer-wheel fire lateness vs the timer's deadline, ns."));

    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        ::close(fd_);
        throw std::runtime_error("shard: pipe() failed");
    }
    wake_r_ = pipefd[0];
    wake_w_ = pipefd[1];
    ::fcntl(wake_r_, F_SETFL, ::fcntl(wake_r_, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(wake_w_, F_SETFL, ::fcntl(wake_w_, F_GETFL, 0) | O_NONBLOCK);

    reactor_.add_fd(fd_, [this] { on_socket_readable(); });
    reactor_.add_fd(wake_r_, [this] {
        std::uint8_t buf[64];
        while (::read(wake_r_, buf, sizeof buf) > 0) {
        }
    });
}

shard::~shard() {
    stop();
    reactor_.remove_fd(fd_);
    reactor_.remove_fd(wake_r_);
    if (fd_ >= 0) ::close(fd_);
    if (wake_r_ >= 0) ::close(wake_r_);
    if (wake_w_ >= 0) ::close(wake_w_);
}

void shard::interconnect(const std::vector<shard*>& all) {
    for (shard* s : all) {
        s->peers_.assign(all.begin(), all.end());
        s->outbound_.assign(all.size(), nullptr);
        s->notify_.assign(all.size(), 0);
        s->inbound_.clear();
        s->inbound_.resize(all.size());
        for (std::size_t j = 0; j < all.size(); ++j)
            if (all[j] != s)
                s->inbound_[j] = std::make_unique<spsc_queue<handoff_msg>>(
                    s->cfg_.handoff_capacity);
    }
    for (shard* s : all)
        for (std::size_t i = 0; i < all.size(); ++i)
            if (all[i] != s) s->outbound_[i] = all[i]->inbound_[s->cfg_.index].get();
}

void shard::start() {
    if (running_.exchange(true)) return;
    thread_ = std::thread([this] { run(); });
}

void shard::stop() {
    if (!running_.exchange(false)) {
        if (thread_.joinable()) thread_.join();
        return;
    }
    wake();
    if (thread_.joinable()) thread_.join();
}

void shard::post(std::function<void()> fn) {
    {
        std::lock_guard<std::mutex> lock(posted_mu_);
        posted_.push_back(std::move(fn));
    }
    wake();
}

void shard::wake() {
    const std::uint8_t b = 1;
    // A full pipe already guarantees a pending wake-up.
    [[maybe_unused]] const ssize_t r = ::write(wake_w_, &b, 1);
}

util::sim_time shard::now() const { return monotonic_ns(); }

qtp::timer_id shard::schedule(util::sim_time delay, std::function<void()> fn) {
    return wheel_.schedule_at(now() + std::max<util::sim_time>(delay, 0),
                              std::move(fn));
}

void shard::cancel(qtp::timer_id id) { wheel_.cancel(id); }

void shard::attach_dynamic(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a) {
    qtp::agent* raw = a.get();
    agents_[flow_id] = std::move(a);
    raw->start(*this);
}

void shard::send(packet::packet pkt) {
    std::uint8_t* buf = pool_.acquire();
    if (buf == nullptr) {
        flush_tx(); // returns every in-flight buffer
        buf = pool_.acquire();
    }
    if (buf == nullptr) {
        bump(stats_.pool_exhausted);
        return;
    }
    const std::uint32_t flow = pkt.flow_id;
    const std::uint32_t src = cfg_.port;
    for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(flow >> (24 - 8 * i));
    for (int i = 0; i < 4; ++i)
        buf[4 + i] = static_cast<std::uint8_t>(src >> (24 - 8 * i));
    std::size_t body_len = 0;
    try {
        body_len = packet::encode_segment_into(*pkt.body, buf + 8, max_datagram - 8);
    } catch (const std::length_error&) {
        // Segment larger than a datagram buffer (a payload frame built
        // with packet_size near/above max_datagram): drop it like a
        // too-long frame, never let the throw cross a timer callback.
        pool_.release(buf);
        bump(stats_.tx_dropped);
        util::log(util::log_level::warn, "engine",
                  "oversized segment dropped (packet_size vs max_datagram)");
        return;
    }
    tx_pending_.push_back(tx_item{
        buf, 8 + body_len, loopback_addr(static_cast<std::uint16_t>(pkt.dst))});
    if (tx_pending_.size() >= cfg_.tx_batch) flush_tx();
}

void shard::flush_tx() {
    if (tx_pending_.empty()) return;
    const std::size_t sent = send_batch(fd_, tx_pending_.data(), tx_pending_.size());
    bump(stats_.datagrams_tx, sent);
    if (sent > 0) bump(stats_.tx_batches);
    if (sent < tx_pending_.size()) bump(stats_.tx_dropped, tx_pending_.size() - sent);
    for (const tx_item& it : tx_pending_)
        pool_.release(const_cast<std::uint8_t*>(it.data));
    tx_pending_.clear();
}

void shard::dispatch(const std::uint8_t* dgram, std::size_t len) {
    std::uint32_t flow_id = 0;
    std::uint32_t src = 0;
    for (int i = 0; i < 4; ++i) flow_id = (flow_id << 8) | dgram[i];
    for (int i = 4; i < 8; ++i) src = (src << 8) | dgram[i];
    try {
        packet::packet pkt;
        pkt.flow_id = flow_id;
        pkt.src = src;
        pkt.dst = cfg_.port;
        pkt.body = std::make_shared<const packet::segment>(
            packet::decode_segment(dgram + 8, len - 8));
        pkt.size_bytes = packet::wire_size(*pkt.body);
        const auto it = agents_.find(flow_id);
        if (it != agents_.end())
            it->second->on_packet(pkt);
        else if (default_agent_ != nullptr)
            default_agent_->on_packet(pkt);
    } catch (const std::exception& e) {
        bump(stats_.decode_errors);
        util::log(util::log_level::warn, "engine", "decode error: ", e.what());
    }
}

void shard::on_socket_readable() {
    const std::size_t n = recv_batch(fd_, rx_);
    if (n == 0) return;
    bump(stats_.rx_batches);
    bump(stats_.datagrams_rx, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = rx_.len(i);
        if (rx_.truncated(i)) { // kernel cut an oversized datagram: garbage
            bump(stats_.truncated_dropped);
            continue;
        }
        if (len < 8 || len > max_datagram) continue; // runt / oversized claim
        const std::uint8_t* data = rx_.data(i);
        std::uint32_t flow_id = 0;
        for (int b = 0; b < 4; ++b) flow_id = (flow_id << 8) | data[b];
        const std::size_t owner = map_.owner(flow_id);
        if (owner == cfg_.index || outbound_.empty()) {
            dispatch(data, len);
            continue;
        }
        handoff_msg m;
        m.len = static_cast<std::uint32_t>(len);
        std::memcpy(m.bytes, data, len);
        if (outbound_[owner]->push(std::move(m))) {
            bump(stats_.handoff_out);
            notify_[owner] = 1;
        } else {
            bump(stats_.handoff_dropped);
        }
    }
    for (std::size_t i = 0; i < notify_.size(); ++i) {
        if (notify_[i] == 0) continue;
        notify_[i] = 0;
        peers_[i]->wake();
    }
}

void shard::drain_posted() {
    std::vector<std::function<void()>> batch;
    {
        std::lock_guard<std::mutex> lock(posted_mu_);
        batch.swap(posted_);
    }
    for (auto& fn : batch) fn();
}

void shard::drain_handoffs() {
    for (auto& q : inbound_) {
        if (q == nullptr) continue;
        handoff_msg m;
        while (q->pop(m)) {
            bump(stats_.handoff_in);
            dispatch(m.bytes, m.len);
        }
    }
}

void shard::turn() {
    const util::sim_time t0 = now();
    drain_posted();
    if (turn_hook_) turn_hook_();
    drain_handoffs();
    wheel_.advance(now());
    flush_tx();

    const util::sim_time t1 = now();
    turn_ns_->observe(static_cast<std::uint64_t>(t1 - t0));
    const util::sim_time hint = wheel_.next_deadline_hint();
    const util::sim_time timeout =
        hint == util::time_never ? util::milliseconds(100)
                                 : std::max<util::sim_time>(hint - t1, 0);
    // Readable fds (socket batches, wake pipe) dispatch inside; their
    // products — handoffs, posted work, tx batches — are picked up at
    // the top of the next turn, always before the next sleep.
    reactor_.poll_once(timeout);
}

void shard::run() {
    while (running_.load(std::memory_order_relaxed)) turn();
    // Final sweep so nothing sits half-processed at shutdown.
    drain_posted();
    if (turn_hook_) turn_hook_();
    drain_handoffs();
    flush_tx();
}

shard_stats shard::stats() const {
    shard_stats s;
    s.datagrams_rx = stats_.datagrams_rx.load(std::memory_order_relaxed);
    s.datagrams_tx = stats_.datagrams_tx.load(std::memory_order_relaxed);
    s.rx_batches = stats_.rx_batches.load(std::memory_order_relaxed);
    s.tx_batches = stats_.tx_batches.load(std::memory_order_relaxed);
    s.tx_dropped = stats_.tx_dropped.load(std::memory_order_relaxed);
    s.handoff_out = stats_.handoff_out.load(std::memory_order_relaxed);
    s.handoff_in = stats_.handoff_in.load(std::memory_order_relaxed);
    s.handoff_dropped = stats_.handoff_dropped.load(std::memory_order_relaxed);
    s.decode_errors = stats_.decode_errors.load(std::memory_order_relaxed);
    s.truncated_dropped = stats_.truncated_dropped.load(std::memory_order_relaxed);
    s.pool_exhausted = stats_.pool_exhausted.load(std::memory_order_relaxed);
    s.sessions = stats_.sessions.load(std::memory_order_relaxed);
    s.accepted = stats_.accepted.load(std::memory_order_relaxed);
    s.events_dropped = stats_.events_dropped.load(std::memory_order_relaxed);
    s.syn_retries_sent = stats_.syn_retries_sent.load(std::memory_order_relaxed);
    s.syn_cookies_validated =
        stats_.syn_cookies_validated.load(std::memory_order_relaxed);
    s.syn_cookies_rejected =
        stats_.syn_cookies_rejected.load(std::memory_order_relaxed);
    s.syn_rate_limited = stats_.syn_rate_limited.load(std::memory_order_relaxed);
    s.syn_sheds = stats_.syn_sheds.load(std::memory_order_relaxed);
    s.amp_limited = stats_.amp_limited.load(std::memory_order_relaxed);
    s.reneg_rate_limited = stats_.reneg_rate_limited.load(std::memory_order_relaxed);
    s.half_open = stats_.half_open.load(std::memory_order_relaxed);
    s.path_migrations = stats_.path_migrations.load(std::memory_order_relaxed);
    s.path_validations = stats_.path_validations.load(std::memory_order_relaxed);
    s.path_validation_failures =
        stats_.path_validation_failures.load(std::memory_order_relaxed);
    s.path_responses_rejected =
        stats_.path_responses_rejected.load(std::memory_order_relaxed);
    return s;
}

} // namespace vtp::engine
