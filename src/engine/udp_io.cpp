#include "engine/udp_io.hpp"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>

// recvmmsg/sendmmsg are Linux syscalls (glibc >= 2.12); elsewhere the
// batch functions degrade to one recvfrom/sendto per datagram.
#if defined(__linux__)
#define VTP_HAVE_MMSG 1
#else
#define VTP_HAVE_MMSG 0
#endif

namespace vtp::engine {

int open_udp_socket(std::uint16_t port, bool reuse_port, int rcvbuf_bytes,
                    int sndbuf_bytes) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) throw std::runtime_error("engine: socket() failed");

    if (reuse_port) {
        const int one = 1;
        if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
            ::close(fd);
            throw std::runtime_error("engine: setsockopt(SO_REUSEPORT) failed");
        }
    }
    if (rcvbuf_bytes > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes, sizeof rcvbuf_bytes);
    if (sndbuf_bytes > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes, sizeof sndbuf_bytes);

    sockaddr_in addr = loopback_addr(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        throw std::runtime_error("engine: bind() failed");
    }

    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        ::close(fd);
        throw std::runtime_error("engine: fcntl(O_NONBLOCK) failed");
    }
    return fd;
}

sockaddr_in loopback_addr(std::uint16_t port) {
    sockaddr_in a{};
    a.sin_family = AF_INET;
    a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    a.sin_port = htons(port);
    return a;
}

rx_batch::rx_batch(std::size_t capacity)
    : capacity_(capacity ? capacity : 1),
      storage_(capacity_ * max_datagram),
      len_(capacity_, 0),
      trunc_(capacity_, 0),
      from_(capacity_) {}

// Syscall scaffolding lives on the stack, bounded by a fixed chunk; the
// per-call setup is a few stores per datagram, noise next to a syscall.
inline constexpr std::size_t mmsg_chunk = 64;

#if VTP_HAVE_MMSG

std::size_t recv_batch(int fd, rx_batch& b) {
    mmsghdr msgs[mmsg_chunk];
    iovec iovs[mmsg_chunk];
    std::size_t total = 0;
    while (total < b.capacity_) {
        const std::size_t k = std::min(mmsg_chunk, b.capacity_ - total);
        for (std::size_t i = 0; i < k; ++i) {
            iovs[i].iov_base = b.storage_.data() + (total + i) * max_datagram;
            iovs[i].iov_len = max_datagram;
            ::memset(&msgs[i], 0, sizeof msgs[i]);
            msgs[i].msg_hdr.msg_iov = &iovs[i];
            msgs[i].msg_hdr.msg_iovlen = 1;
            msgs[i].msg_hdr.msg_name = &b.from_[total + i];
            msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
        }
        const int n =
            ::recvmmsg(fd, msgs, static_cast<unsigned>(k), MSG_DONTWAIT, nullptr);
        if (n <= 0) break;
        for (int i = 0; i < n; ++i) {
            b.len_[total + static_cast<std::size_t>(i)] = msgs[i].msg_len;
            // An oversized datagram is silently cut to the iov size; the
            // kernel flags it per-message. Surface it so the shard drops
            // the fragment instead of feeding garbage to the decoder.
            b.trunc_[total + static_cast<std::size_t>(i)] =
                (msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0 ? 1 : 0;
        }
        total += static_cast<std::size_t>(n);
        if (static_cast<std::size_t>(n) < k) break; // drained
    }
    return total;
}

std::size_t send_batch(int fd, const tx_item* items, std::size_t n) {
    mmsghdr msgs[mmsg_chunk];
    iovec iovs[mmsg_chunk];
    std::size_t sent = 0;
    while (sent < n) {
        const std::size_t k = std::min(mmsg_chunk, n - sent);
        for (std::size_t i = 0; i < k; ++i) {
            const tx_item& it = items[sent + i];
            iovs[i].iov_base = const_cast<std::uint8_t*>(it.data);
            iovs[i].iov_len = it.len;
            ::memset(&msgs[i], 0, sizeof msgs[i]);
            msgs[i].msg_hdr.msg_iov = &iovs[i];
            msgs[i].msg_hdr.msg_iovlen = 1;
            msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(&it.to);
            msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
        }
        const int r = ::sendmmsg(fd, msgs, static_cast<unsigned>(k), MSG_DONTWAIT);
        if (r <= 0) break;
        sent += static_cast<std::size_t>(r);
        if (static_cast<std::size_t>(r) < k) break; // send buffer full
    }
    return sent;
}

#else // portable one-datagram-per-syscall fallback

std::size_t recv_batch(int fd, rx_batch& b) {
    std::size_t n = 0;
    while (n < b.capacity_) {
        socklen_t addrlen = sizeof(sockaddr_in);
        const ssize_t r =
            ::recvfrom(fd, b.storage_.data() + n * max_datagram, max_datagram,
                       MSG_DONTWAIT, reinterpret_cast<sockaddr*>(&b.from_[n]), &addrlen);
        if (r < 0) break;
        b.len_[n] = static_cast<std::size_t>(r);
        // No portable per-message MSG_TRUNC without the mmsg path: a
        // read that exactly fills the slot is (conservatively) treated
        // as truncated — real engine datagrams are always smaller.
        b.trunc_[n] = static_cast<std::size_t>(r) >= max_datagram ? 1 : 0;
        ++n;
    }
    return n;
}

std::size_t send_batch(int fd, const tx_item* items, std::size_t n) {
    std::size_t sent = 0;
    for (; sent < n; ++sent) {
        const tx_item& it = items[sent];
        const ssize_t r =
            ::sendto(fd, it.data, it.len, MSG_DONTWAIT,
                     reinterpret_cast<const sockaddr*>(&it.to), sizeof it.to);
        if (r < 0) break;
    }
    return sent;
}

#endif

} // namespace vtp::engine
