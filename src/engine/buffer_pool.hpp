// Fixed-size datagram buffer pool: one contiguous slab carved into
// equal buffers with a freelist, so the per-packet transmit path of a
// shard (encode → sendmmsg → release) performs zero heap allocation
// after construction. Single-threaded — each shard owns its own pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vtp::engine {

class buffer_pool {
public:
    buffer_pool(std::size_t count, std::size_t buf_size)
        : buf_size_(buf_size), slab_(count * buf_size) {
        free_.reserve(count);
        for (std::size_t i = count; i > 0; --i)
            free_.push_back(slab_.data() + (i - 1) * buf_size);
    }

    buffer_pool(const buffer_pool&) = delete;
    buffer_pool& operator=(const buffer_pool&) = delete;

    /// nullptr when exhausted (caller flushes in-flight buffers and
    /// retries, or drops).
    std::uint8_t* acquire() {
        if (free_.empty()) return nullptr;
        std::uint8_t* buf = free_.back();
        free_.pop_back();
        return buf;
    }

    void release(std::uint8_t* buf) { free_.push_back(buf); }

    std::size_t buf_size() const { return buf_size_; }
    std::size_t available() const { return free_.size(); }
    std::size_t capacity() const { return slab_.size() / buf_size_; }

private:
    std::size_t buf_size_;
    std::vector<std::uint8_t> slab_;
    std::vector<std::uint8_t*> free_;
};

} // namespace vtp::engine
