// Batched UDP datagram I/O for the server engine.
//
// recv_batch()/send_batch() move up to a whole batch of datagrams per
// syscall through recvmmsg(2)/sendmmsg(2) on Linux, degrading gracefully
// to a loop of recvfrom/sendto where the batched calls are unavailable.
// The mmsghdr/iovec scaffolding lives inside rx_batch and is reused
// across calls, so steady-state receive does one syscall per batch and
// zero allocation. Compare net::udp_host, which deliberately stays on
// the one-datagram-per-syscall path as the legacy baseline
// (bench_e12_engine_throughput measures the gap).
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vtp::engine {

/// Largest datagram the engine sends or receives: 8-byte datapath header
/// ([flow_id:u32][src_addr:u32]) plus the largest wire segment, with
/// generous headroom. Anything bigger is truncated by the kernel and
/// rejected by the decoder.
inline constexpr std::size_t max_datagram = 2048;

/// Open a non-blocking UDP socket bound to 127.0.0.1:`port`.
/// `reuse_port` joins an SO_REUSEPORT group (one member socket per
/// shard; the kernel spreads inbound datagrams across members). Buffer
/// sizes of 0 keep the system default. Throws std::runtime_error.
int open_udp_socket(std::uint16_t port, bool reuse_port = false,
                    int rcvbuf_bytes = 0, int sndbuf_bytes = 0);

/// 127.0.0.1:`port` destination.
sockaddr_in loopback_addr(std::uint16_t port);

/// Reusable receive batch: caller-owned storage for up to `capacity`
/// datagrams plus the persistent mmsghdr/iovec arrays recvmmsg fills.
class rx_batch {
public:
    explicit rx_batch(std::size_t capacity);

    std::size_t capacity() const { return capacity_; }
    const std::uint8_t* data(std::size_t i) const {
        return storage_.data() + i * max_datagram;
    }
    std::size_t len(std::size_t i) const { return len_[i]; }
    const sockaddr_in& from(std::size_t i) const { return from_[i]; }
    /// The kernel truncated datagram `i` to fit the max_datagram slot
    /// (MSG_TRUNC): its tail is gone and what remains would decode as
    /// garbage — the caller must drop it, not parse it.
    bool truncated(std::size_t i) const { return trunc_[i] != 0; }

private:
    friend std::size_t recv_batch(int fd, rx_batch& b);

    std::size_t capacity_;
    std::vector<std::uint8_t> storage_; ///< capacity * max_datagram bytes
    std::vector<std::size_t> len_;
    std::vector<std::uint8_t> trunc_; ///< MSG_TRUNC flags (bool per slot)
    std::vector<sockaddr_in> from_;
};

/// Fill `b` with up to its capacity of datagrams in (at most) one
/// syscall. Returns the number received; 0 means the socket would block.
std::size_t recv_batch(int fd, rx_batch& b);

/// One outbound datagram; `data` stays owned by the caller (typically an
/// engine::buffer_pool buffer) until send_batch returns.
struct tx_item {
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    sockaddr_in to{};
};

/// Transmit `n` datagrams in (at most) one syscall. Returns how many the
/// kernel accepted; the remainder hit a full send buffer and are dropped
/// by the caller (the transport's loss recovery handles it, exactly as
/// it would a NIC queue overflow).
std::size_t send_batch(int fd, const tx_item* items, std::size_t n);

} // namespace vtp::engine
