// engine::server — the production-shaped host runtime for vtp servers.
//
// Wraps N engine::shards behind one UDP port and gives each shard its
// own vtp::server (listener + session table), so thousands of QTP
// connections are served with batched syscalls, O(1) timers and
// lock-free per-shard state:
//
//   engine::engine_config cfg;
//   cfg.port = 9000;
//   cfg.shards = 4;
//   engine::server srv(cfg);
//   srv.set_on_session([](std::size_t shard, vtp::session& s) {
//       s.set_on_stream_delivered(...);   // runs on that shard's thread
//   });
//   srv.start();
//
// Accept policy, capability downgrades and renegotiation behave exactly
// as on vtp::server (engine_config::accept is a vtp::server_options);
// closed sessions are reaped on a per-shard timer. Outgoing sessions are
// hosted the same way: connect() picks a flow id, routes to the owner
// shard (the flow-id hash every shard agrees on) and builds the
// vtp::session there.
//
// Thread model: everything an application registers runs on a shard
// thread. Session handles must only be used from their own shard —
// post() to it (or capture state guarded by your own synchronization)
// from elsewhere. stats() may be read from any thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/server.hpp"
#include "api/session.hpp"
#include "engine/shard.hpp"

namespace vtp::engine {

struct engine_config {
    std::uint16_t port = 0;
    std::size_t shards = 2;

    /// Accept-side behaviour of every shard's vtp::server (capabilities,
    /// per-accept capability policy, packet size, handshake timers).
    vtp::server_options accept{};

    /// How often each shard reaps sessions whose peer closed.
    util::sim_time reap_interval = util::seconds(1);

    // Datapath knobs, applied to every shard.
    std::size_t rx_batch = 64;
    std::size_t tx_batch = 64;
    std::size_t pool_buffers = 4096;
    std::size_t handoff_capacity = 512;
    std::uint32_t send_burst = 8;
    std::uint64_t rng_seed = 1;
};

/// Aggregate of all shards (plus accept accounting).
struct engine_stats {
    std::uint64_t datagrams_rx = 0;
    std::uint64_t datagrams_tx = 0;
    std::uint64_t rx_batches = 0;
    std::uint64_t tx_batches = 0;
    std::uint64_t tx_dropped = 0;
    std::uint64_t handoff_out = 0;
    std::uint64_t handoff_dropped = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t pool_exhausted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t sessions = 0; ///< live session gauge across shards
};

class server {
public:
    explicit server(engine_config cfg);
    ~server(); ///< stops and joins all shards

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Called on the owning shard's thread with every freshly accepted
    /// session (shard index, session). Set before start().
    void set_on_session(std::function<void(std::size_t, vtp::session&)> cb) {
        on_session_ = std::move(cb);
    }

    /// Spawn the shard threads. One-shot: calling start() again after
    /// stop() throws std::logic_error (build a fresh server instead).
    void start();
    void stop();

    std::size_t shard_count() const { return shards_.size(); }
    shard& shard_at(std::size_t i) { return *shards_[i]; }
    /// Which shard owns `flow_id` (same mapping every shard uses).
    std::size_t owner_of(std::uint32_t flow_id) const {
        return shards_[0]->flow_map().owner(flow_id);
    }

    /// Open an outgoing session from this engine to `peer_addr`. The
    /// session is built on the shard owning its flow id; `on_ready` runs
    /// there with the fresh handle. Safe from any thread.
    void connect(std::uint32_t peer_addr, vtp::session_options opts,
                 std::function<void(std::size_t, vtp::session)> on_ready);

    /// Run `fn` on shard `i`'s thread with that shard's vtp::server
    /// (control-plane escape hatch: iterate sessions, read listener
    /// counters). Safe from any thread.
    void with_server(std::size_t i, std::function<void(vtp::server&)> fn);

    engine_stats stats() const;
    std::vector<shard_stats> per_shard_stats() const;

private:
    void arm_reaper(vtp::server* srv, shard& sh);

    engine_config cfg_;
    std::vector<std::unique_ptr<shard>> shards_;
    std::vector<std::unique_ptr<vtp::server>> servers_; ///< one per shard
    std::function<void(std::size_t, vtp::session&)> on_session_;
    std::atomic<std::uint32_t> next_flow_{0x50000000}; ///< outgoing-session ids
    bool started_ = false;
    bool stopped_ = false;
};

} // namespace vtp::engine
