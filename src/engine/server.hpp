// engine::server — the production-shaped host runtime for vtp servers.
//
// Wraps N engine::shards behind one UDP port and gives each shard its
// own vtp::server (listener + session table), so thousands of QTP
// connections are served with batched syscalls, O(1) timers and
// lock-free per-shard state:
//
//   engine::engine_config cfg;
//   cfg.port = 9000;
//   cfg.shards = 4;
//   engine::server srv(cfg);
//   srv.set_on_session([](std::size_t shard, vtp::session& s) {
//       s.set_on_stream_delivered(...);   // runs on that shard's thread
//   });
//   srv.start();
//
// Accept policy, capability downgrades and renegotiation behave exactly
// as on vtp::server (engine_config::accept is a vtp::server_options);
// closed sessions are reaped on a per-shard timer. Outgoing sessions are
// hosted the same way: connect() picks a flow id, routes to the owner
// shard (the flow-id hash every shard agrees on) and builds the
// vtp::session there.
//
// Thread model (API v2): the application talks to engine-hosted
// sessions without ever touching shard state.
//  - Downstream: poll_events() merges the per-shard event rings —
//    established / readable (carrying the payload chunk) / writable /
//    fin / closed — filled by the shards as sessions progress.
//  - Upstream: send()/finish()/close()/renegotiate() enqueue commands
//    on the owner shard's lock-free mailbox (engine::spsc_queue) and
//    ring its self-pipe; the shard executes them at its next turn.
// Both rings are bounded: overflow drops and counts
// (events_dropped / commands_dropped), never blocks a shard.
// One application thread may drive poll_events() and the command
// mailboxes at a time (they are SPSC rings).
//
// The pre-v2 escape hatches remain: set_on_session callbacks run on the
// shard thread, with_server() posts control-plane closures, stats() may
// be read from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/server.hpp"
#include "api/session.hpp"
#include "core/events.hpp"
#include "engine/shard.hpp"
#include "trace/metrics.hpp"
#include "trace/window.hpp"
#include "trace/writer.hpp"

namespace vtp::ops {
class admin_server;
}

namespace vtp::engine {

struct engine_config {
    std::uint16_t port = 0;
    std::size_t shards = 2;

    /// Accept-side behaviour of every shard's vtp::server (capabilities,
    /// per-accept capability policy, packet size, handshake timers).
    vtp::server_options accept{};

    /// How often each shard reaps sessions whose peer closed.
    util::sim_time reap_interval = util::seconds(1);

    // Datapath knobs, applied to every shard.
    std::size_t rx_batch = 64;
    std::size_t tx_batch = 64;
    std::size_t pool_buffers = 4096;
    std::size_t handoff_capacity = 512;
    std::uint32_t send_burst = 8;
    std::uint64_t rng_seed = 1;

    /// Per-shard bounded rings of the v2 API: events exported to
    /// poll_events() and commands from the application thread. Overflow
    /// drops and counts — size for the application's polling cadence.
    std::size_t event_queue_capacity = 4096;
    std::size_t command_queue_capacity = 1024;

    /// Flight-recorder spill directory. When non-empty, each shard spools
    /// its sessions' trace rings to `<trace_dir>/trace-shard<i>.vtpt`
    /// through a per-shard writer thread (trace::async_writer), and every
    /// accepted or connected session gets a trace ring of
    /// `accept.trace_ring_records` records (defaulted to 4096 when left
    /// 0). Empty (the default) compiles the hooks out of the hot path —
    /// sessions run untraced.
    std::string trace_dir{};

    /// Live operations plane (src/ops/): when non-zero, start() binds a
    /// loopback HTTP admin endpoint on this port serving /metrics,
    /// /sessions, /shards, /healthz and POST /trace/<flow>/start|stop.
    /// 0 (the default) leaves the plane off. Bind failure logs a
    /// warning and leaves the engine running without it.
    std::uint16_t admin_port = 0;

    /// Span of the per-shard sliding telemetry window: counters become
    /// vtp_*_rate and histograms vtp_*_p99_60s over roughly this long.
    /// Snapshots are taken at reap ticks, so the effective resolution
    /// is reap_interval.
    util::sim_time telemetry_window = util::seconds(60);
};

/// Aggregate of all shards (plus accept accounting).
struct engine_stats {
    std::uint64_t datagrams_rx = 0;
    std::uint64_t datagrams_tx = 0;
    std::uint64_t rx_batches = 0;
    std::uint64_t tx_batches = 0;
    std::uint64_t tx_dropped = 0;
    std::uint64_t handoff_out = 0;
    std::uint64_t handoff_dropped = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t truncated_dropped = 0; ///< MSG_TRUNC'd datagrams dropped
    std::uint64_t pool_exhausted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t sessions = 0; ///< live session gauge across shards
    /// v2 API backpressure: events lost to a full export ring, commands
    /// rejected by a full mailbox (or targeting unknown flows).
    std::uint64_t events_dropped = 0;
    std::uint64_t commands_dropped = 0;
    /// Mid-flow congestion-control swaps applied across all hosted
    /// sessions (profile_changed events whose cc id differs from the
    /// flow's previous one).
    std::uint64_t cc_swaps_applied = 0;
    /// Accept-path guard accounting, mirrored from each shard's
    /// vtp::server at its reap ticks (see listener_guard_stats).
    std::uint64_t syn_retries_sent = 0;
    std::uint64_t syn_cookies_validated = 0;
    std::uint64_t syn_cookies_rejected = 0;
    std::uint64_t syn_rate_limited = 0; ///< SYN + stray bucket denials
    std::uint64_t syn_sheds = 0;        ///< admission refusals (session caps)
    std::uint64_t amp_limited = 0;      ///< retries withheld by the 3x budget
    std::uint64_t reneg_rate_limited = 0; ///< reneg-bucket denials (all sessions)
    std::uint64_t half_open = 0;        ///< gauge: accepted but no data yet
    /// Validated path migrations across all hosted sessions, plus the
    /// validation outcomes behind them (see path::manager_stats).
    std::uint64_t path_migrations = 0;
    std::uint64_t path_validations = 0;
    std::uint64_t path_validation_failures = 0;
    std::uint64_t path_responses_rejected = 0;
};

/// One event of an engine-hosted session, as merged by poll_events().
/// `payload` carries the delivered chunk of a readable event (its stream
/// offset is ev.offset); other kinds leave it empty.
struct engine_event {
    std::size_t shard = 0;
    std::uint32_t flow = 0;
    qtp::event ev{};
    std::vector<std::uint8_t> payload;
};

class server {
public:
    explicit server(engine_config cfg);
    ~server(); ///< stops and joins all shards

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Called on the owning shard's thread with every freshly accepted
    /// session (shard index, session). Set before start().
    void set_on_session(std::function<void(std::size_t, vtp::session&)> cb) {
        on_session_ = std::move(cb);
    }

    /// Spawn the shard threads. One-shot: calling start() again after
    /// stop() throws std::logic_error (build a fresh server instead).
    void start();
    void stop();

    std::size_t shard_count() const { return shards_.size(); }
    shard& shard_at(std::size_t i) { return *shards_[i]; }
    /// Which shard owns `flow_id` (same mapping every shard uses).
    std::size_t owner_of(std::uint32_t flow_id) const {
        return shards_[0]->flow_map().owner(flow_id);
    }

    /// Open an outgoing session from this engine to `peer_addr`. The
    /// session is built on the shard owning its flow id; `on_ready` runs
    /// there with the fresh handle. Safe from any thread.
    void connect(std::uint32_t peer_addr, vtp::session_options opts,
                 std::function<void(std::size_t, vtp::session)> on_ready);

    /// Run `fn` on shard `i`'s thread with that shard's vtp::server
    /// (control-plane escape hatch: iterate sessions, read listener
    /// counters). Safe from any thread.
    void with_server(std::size_t i, std::function<void(vtp::server&)> fn);

    // --- v2 poll/command API (one application thread) -------------------
    /// Drain up to `max` events across all shards (round-robin). Returns
    /// how many were written. Non-blocking.
    std::size_t poll_events(engine_event* out, std::size_t max);
    /// Queue `data` on stream `stream_id` of the session terminating
    /// `flow` (hosted on shard `shard_idx` — the value every event of
    /// that session reports). Copies the bytes into the mailbox; false
    /// when the mailbox is full (counted, retry after draining events).
    /// If the session was created with a max_buffered_bytes cap, a send
    /// exceeding the remaining space is truncated at execution time and
    /// counted in commands_dropped — keep engine sends within the cap
    /// (engine-hosted senders default to unlimited buffering).
    bool send(std::size_t shard_idx, std::uint32_t flow, std::uint32_t stream_id,
              const std::uint8_t* data, std::size_t len);
    /// Half-close one stream of the session.
    bool finish(std::size_t shard_idx, std::uint32_t flow, std::uint32_t stream_id);
    /// Half-close the whole session (FIN once everything delivered).
    bool close(std::size_t shard_idx, std::uint32_t flow);
    /// Propose a profile renegotiation from the engine side.
    bool renegotiate(std::size_t shard_idx, std::uint32_t flow, const qtp::profile& p);

    engine_stats stats() const;
    std::vector<shard_stats> per_shard_stats() const;
    const engine_config& config() const { return cfg_; }

    /// Consistent snapshots of every hosted session (`only_flow` != 0
    /// restricts to one flow), collected on the owner shard threads via
    /// posted closures — no cross-thread reads of session state. Blocks
    /// until every shard answered or ~1s passed (a stopped or
    /// never-started engine returns what it has, possibly nothing).
    std::vector<vtp::session_snapshot> snapshot_sessions(std::uint32_t only_flow = 0);

    /// Per-shard sliding-window telemetry ring (snapshots at reap ticks).
    const trace::window_ring& window(std::size_t i) const { return *windows_[i]; }
    /// Engine-wide telemetry delta over the last `window_ns`
    /// (0 = the configured telemetry_window span).
    trace::window_delta merged_window(std::uint64_t window_ns = 0) const;

    /// The live admin plane (null when engine_config::admin_port is 0,
    /// start() has not run, or the bind failed).
    ops::admin_server* admin() { return admin_.get(); }

    // --- metrics (any thread) -------------------------------------------
    /// Merge the engine's counters/gauges plus every shard's registry
    /// (turn durations, timer fire latency, RTT samples, event-ring
    /// occupancy) into `out` by series name. Counters are emitted as
    /// absolute values into the fresh registry, so call it on an empty
    /// one — which is what metrics()/metrics_text() do.
    void collect_metrics(trace::registry& out) const;
    /// Snapshot of every engine metric series (>= 12 named series once
    /// traffic has flowed).
    std::unique_ptr<trace::registry> metrics() const {
        auto out = std::make_unique<trace::registry>();
        collect_metrics(*out);
        return out;
    }
    /// The snapshot rendered in Prometheus text exposition format.
    std::string metrics_text() const { return metrics()->prometheus_text(); }

    /// The per-shard trace spool (nullptr when engine_config::trace_dir
    /// is empty or the file could not be opened).
    trace::async_writer* trace_writer(std::size_t shard_idx) {
        return shard_idx < writers_.size() ? writers_[shard_idx].get() : nullptr;
    }

private:
    struct command {
        enum class kind : std::uint8_t { send, finish, close, renegotiate };
        kind what = kind::send;
        std::uint32_t flow = 0;
        std::uint32_t stream_id = 0;
        std::vector<std::uint8_t> bytes;
        qtp::profile prof{};
    };

    /// Pushes a shard's session events into its export ring (installed
    /// as the qtp::event_sink of every session the shard hosts).
    struct shard_sink final : qtp::event_sink {
        server* owner = nullptr;
        std::size_t index = 0;
        /// Last cc algorithm seen per flow — written only on this shard's
        /// thread (the sink is called from the agent), read nowhere else,
        /// so no lock. Swap detection feeds the server-wide atomic.
        std::unordered_map<std::uint32_t, cc::algorithm_id> last_cc;
        bool on_session_event(std::uint32_t flow, const qtp::event& ev,
                              std::vector<std::uint8_t>& payload) override;
    };

    void arm_reaper(vtp::server* srv, shard& sh);
    bool enqueue(std::size_t shard_idx, command&& cmd);
    void execute(std::size_t shard_idx, command& cmd);
    /// Append vtp_*_rate / vtp_*_p99_60s derived series to `out` from
    /// the merged telemetry window (no-op until 2+ snapshots exist).
    void collect_windowed(trace::registry& out) const;

    engine_config cfg_;
    /// Declared before shards_ on purpose: shard destruction tears down
    /// the hosted connections, whose tracers flush their final frames
    /// into these sinks — the writers must outlive the shards.
    std::vector<std::unique_ptr<trace::async_writer>> writers_;
    std::vector<std::unique_ptr<shard>> shards_;
    std::vector<std::unique_ptr<vtp::server>> servers_; ///< one per shard
    std::vector<std::unique_ptr<spsc_queue<engine_event>>> events_; ///< shard -> app
    std::vector<std::unique_ptr<spsc_queue<command>>> commands_;    ///< app -> shard
    std::vector<shard_sink> sinks_;
    /// Cached per-shard series (pointers into each shard's registry —
    /// stable for the shard's lifetime): v2 export-ring depth sampled
    /// once per turn, and smoothed RTT sampled per session at reap ticks.
    std::vector<trace::histogram*> ring_occupancy_;
    std::vector<trace::histogram*> rtt_ns_;
    /// Half-open population sampled once per shard turn (spike-visible,
    /// unlike the reap-tick guard mirror).
    std::vector<trace::histogram*> half_open_turns_;
    /// Per-shard sliding-window snapshot rings (reap-tick cadence).
    std::vector<std::unique_ptr<trace::window_ring>> windows_;
    /// Admin plane; reset by stop() before the shards stop so live trace
    /// taps detach while their owner threads still run.
    std::unique_ptr<ops::admin_server> admin_;
    std::function<void(std::size_t, vtp::session&)> on_session_;
    std::atomic<std::uint32_t> next_flow_{0x50000000}; ///< outgoing-session ids
    std::atomic<std::uint64_t> commands_dropped_{0};
    std::atomic<std::uint64_t> cc_swaps_{0}; ///< see engine_stats::cc_swaps_applied
    std::size_t poll_cursor_ = 0; ///< round-robin fairness across shards
    bool started_ = false;
    bool stopped_ = false;
};

} // namespace vtp::engine
