#include "engine/server.hpp"

#include <stdexcept>

namespace vtp::engine {

server::server(engine_config cfg) : cfg_(cfg) {
    if (cfg_.shards == 0) cfg_.shards = 1;
    shards_.reserve(cfg_.shards);
    for (std::size_t i = 0; i < cfg_.shards; ++i) {
        shard_config sc;
        sc.port = cfg_.port;
        sc.index = i;
        sc.shard_count = cfg_.shards;
        sc.rx_batch = cfg_.rx_batch;
        sc.tx_batch = cfg_.tx_batch;
        sc.pool_buffers = cfg_.pool_buffers;
        sc.handoff_capacity = cfg_.handoff_capacity;
        sc.send_burst = cfg_.send_burst;
        sc.rng_seed = cfg_.rng_seed;
        shards_.push_back(std::make_unique<shard>(sc));
    }
    std::vector<shard*> raw;
    for (auto& s : shards_) raw.push_back(s.get());
    shard::interconnect(raw);
}

server::~server() { stop(); }

void server::start() {
    if (started_) {
        // One-shot by design: shards' sockets and session tables are not
        // rebuilt after a stop(). Loud beats a silently dead server.
        if (stopped_)
            throw std::logic_error("engine::server: cannot restart after stop()");
        return;
    }
    started_ = true;
    // Build each shard's vtp::server before its thread exists: the
    // listener registers as the shard's default agent, and from the first
    // loop turn on, everything runs on the shard thread.
    servers_.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        shard& sh = *shards_[i];
        auto srv = std::make_unique<vtp::server>(sh, cfg_.accept);
        srv->set_on_session([this, i, &sh](vtp::session& s) {
            auto& c = sh.counters();
            c.accepted.fetch_add(1, std::memory_order_relaxed);
            c.sessions.store(c.sessions.load(std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
            if (on_session_) on_session_(i, s);
        });
        vtp::server* raw = srv.get();
        servers_.push_back(std::move(srv));
        // Periodic reaper: reclaims sessions whose peer closed, keeping
        // the gauge honest. Scheduling before start() is safe (the wheel
        // is still untouched by any thread).
        arm_reaper(raw, sh);
    }
    for (auto& s : shards_) s->start();
}

void server::stop() {
    if (started_) stopped_ = true;
    for (auto& s : shards_) s->stop();
}

void server::arm_reaper(vtp::server* srv, shard& sh) {
    sh.schedule(cfg_.reap_interval, [this, srv, &sh] {
        const std::size_t reaped = srv->reap_closed();
        if (reaped > 0) {
            auto& c = sh.counters();
            const std::uint64_t cur = c.sessions.load(std::memory_order_relaxed);
            c.sessions.store(cur >= reaped ? cur - reaped : 0,
                             std::memory_order_relaxed);
        }
        arm_reaper(srv, sh);
    });
}

void server::connect(std::uint32_t peer_addr, vtp::session_options opts,
                     std::function<void(std::size_t, vtp::session)> on_ready) {
    if (opts.flow_id == 0)
        opts.flow_id = next_flow_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t owner = owner_of(opts.flow_id);
    shard& sh = *shards_[owner];
    sh.post([&sh, owner, peer_addr, opts, cb = std::move(on_ready)]() mutable {
        vtp::session s = vtp::session::connect(sh, peer_addr, opts);
        if (cb) cb(owner, std::move(s));
    });
}

void server::with_server(std::size_t i, std::function<void(vtp::server&)> fn) {
    vtp::server* raw = servers_.at(i).get();
    shards_[i]->post([raw, fn = std::move(fn)] { fn(*raw); });
}

engine_stats server::stats() const {
    engine_stats agg;
    for (const auto& s : shards_) {
        const shard_stats st = s->stats();
        agg.datagrams_rx += st.datagrams_rx;
        agg.datagrams_tx += st.datagrams_tx;
        agg.rx_batches += st.rx_batches;
        agg.tx_batches += st.tx_batches;
        agg.tx_dropped += st.tx_dropped;
        agg.handoff_out += st.handoff_out;
        agg.handoff_dropped += st.handoff_dropped;
        agg.decode_errors += st.decode_errors;
        agg.pool_exhausted += st.pool_exhausted;
        agg.accepted += st.accepted;
        agg.sessions += st.sessions;
    }
    return agg;
}

std::vector<shard_stats> server::per_shard_stats() const {
    std::vector<shard_stats> out;
    out.reserve(shards_.size());
    for (const auto& s : shards_) out.push_back(s->stats());
    return out;
}

} // namespace vtp::engine
