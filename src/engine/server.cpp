#include "engine/server.hpp"

#include <stdexcept>

#include "core/connection.hpp"

namespace vtp::engine {

server::server(engine_config cfg) : cfg_(cfg) {
    if (cfg_.shards == 0) cfg_.shards = 1;
    shards_.reserve(cfg_.shards);
    sinks_.resize(cfg_.shards); // fixed size: sink addresses stay stable
    for (std::size_t i = 0; i < cfg_.shards; ++i) {
        shard_config sc;
        sc.port = cfg_.port;
        sc.index = i;
        sc.shard_count = cfg_.shards;
        sc.rx_batch = cfg_.rx_batch;
        sc.tx_batch = cfg_.tx_batch;
        sc.pool_buffers = cfg_.pool_buffers;
        sc.handoff_capacity = cfg_.handoff_capacity;
        sc.send_burst = cfg_.send_burst;
        sc.rng_seed = cfg_.rng_seed;
        shards_.push_back(std::make_unique<shard>(sc));
        sinks_[i].owner = this;
        sinks_[i].index = i;
        events_.push_back(
            std::make_unique<spsc_queue<engine_event>>(cfg_.event_queue_capacity));
        commands_.push_back(
            std::make_unique<spsc_queue<command>>(cfg_.command_queue_capacity));
        // Command mailbox drain: runs on the shard thread each turn.
        shards_.back()->set_turn_hook([this, i] {
            command cmd;
            while (commands_[i]->pop(cmd)) execute(i, cmd);
        });
    }
    std::vector<shard*> raw;
    for (auto& s : shards_) raw.push_back(s.get());
    shard::interconnect(raw);
}

bool server::shard_sink::on_session_event(std::uint32_t flow, const qtp::event& ev,
                                          std::vector<std::uint8_t>& payload) {
    // Swap accounting happens even when the export ring is full: the
    // transport applied the swap whether or not the application saw the
    // profile_changed event.
    if (ev.type == qtp::event_type::established) {
        last_cc[flow] = ev.prof.congestion;
    } else if (ev.type == qtp::event_type::profile_changed) {
        auto [it, fresh] = last_cc.try_emplace(flow, ev.prof.congestion);
        if (!fresh && it->second != ev.prof.congestion) {
            it->second = ev.prof.congestion;
            owner->cc_swaps_.fetch_add(1, std::memory_order_relaxed);
        }
    } else if (ev.type == qtp::event_type::closed) {
        last_cc.erase(flow);
    }
    engine_event e;
    e.shard = index;
    e.flow = flow;
    e.ev = ev;
    e.payload = std::move(payload); // no copy on the shard delivery path
    if (!owner->events_[index]->push(std::move(e))) {
        payload = std::move(e.payload); // full ring: hand the bytes back
        auto& c = owner->shards_[index]->counters().events_dropped;
        c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

std::size_t server::poll_events(engine_event* out, std::size_t max) {
    std::size_t n = 0;
    std::size_t idle = 0;
    while (n < max && idle < events_.size()) {
        if (events_[poll_cursor_]->pop(out[n])) {
            ++n;
            idle = 0;
        } else {
            ++idle;
        }
        poll_cursor_ = (poll_cursor_ + 1) % events_.size();
    }
    return n;
}

bool server::enqueue(std::size_t shard_idx, command&& cmd) {
    if (shard_idx >= shards_.size() ||
        !commands_[shard_idx]->push(std::move(cmd))) {
        commands_dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shards_[shard_idx]->wake();
    return true;
}

void server::execute(std::size_t shard_idx, command& cmd) {
    qtp::agent* a = shards_[shard_idx]->find_agent(cmd.flow);
    auto* tx = dynamic_cast<qtp::connection_sender*>(a);
    auto* rx = dynamic_cast<qtp::connection_receiver*>(a);
    if (tx == nullptr && rx == nullptr) {
        // Session already reaped (or never existed): observable, not silent.
        commands_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    bool handled = false;
    switch (cmd.what) {
    case command::kind::send:
        if (tx != nullptr) {
            const std::uint64_t accepted =
                tx->offer_bytes(cmd.stream_id, cmd.bytes.data(), cmd.bytes.size());
            // A max_buffered_bytes clamp truncates the command: the
            // suffix is gone (the mailbox cannot hold residue), so make
            // it observable instead of silent. Engine-hosted senders
            // default to unlimited buffering, where this cannot happen.
            handled = accepted == cmd.bytes.size();
        }
        break;
    case command::kind::finish:
        if (tx != nullptr) {
            tx->finish_stream(cmd.stream_id);
            handled = true;
        }
        break;
    case command::kind::close:
        if (tx != nullptr) {
            tx->finish_stream();
            handled = true;
        }
        break;
    case command::kind::renegotiate:
        if (tx != nullptr) tx->request_renegotiate(cmd.prof);
        if (rx != nullptr) rx->request_renegotiate(cmd.prof);
        handled = tx != nullptr || rx != nullptr;
        break;
    }
    // A data-plane command aimed at a receiver-role session (or any other
    // mismatch) is observable, not silent.
    if (!handled) commands_dropped_.fetch_add(1, std::memory_order_relaxed);
}

bool server::send(std::size_t shard_idx, std::uint32_t flow, std::uint32_t stream_id,
                  const std::uint8_t* data, std::size_t len) {
    command cmd;
    cmd.what = command::kind::send;
    cmd.flow = flow;
    cmd.stream_id = stream_id;
    cmd.bytes.assign(data, data + len);
    return enqueue(shard_idx, std::move(cmd));
}

bool server::finish(std::size_t shard_idx, std::uint32_t flow, std::uint32_t stream_id) {
    command cmd;
    cmd.what = command::kind::finish;
    cmd.flow = flow;
    cmd.stream_id = stream_id;
    return enqueue(shard_idx, std::move(cmd));
}

bool server::close(std::size_t shard_idx, std::uint32_t flow) {
    command cmd;
    cmd.what = command::kind::close;
    cmd.flow = flow;
    return enqueue(shard_idx, std::move(cmd));
}

bool server::renegotiate(std::size_t shard_idx, std::uint32_t flow,
                         const qtp::profile& p) {
    command cmd;
    cmd.what = command::kind::renegotiate;
    cmd.flow = flow;
    cmd.prof = p;
    return enqueue(shard_idx, std::move(cmd));
}

server::~server() { stop(); }

void server::start() {
    if (started_) {
        // One-shot by design: shards' sockets and session tables are not
        // rebuilt after a stop(). Loud beats a silently dead server.
        if (stopped_)
            throw std::logic_error("engine::server: cannot restart after stop()");
        return;
    }
    started_ = true;
    // Build each shard's vtp::server before its thread exists: the
    // listener registers as the shard's default agent, and from the first
    // loop turn on, everything runs on the shard thread.
    servers_.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        shard& sh = *shards_[i];
        auto srv = std::make_unique<vtp::server>(sh, cfg_.accept);
        srv->set_on_session([this, i, &sh](vtp::session& s) {
            auto& c = sh.counters();
            c.accepted.fetch_add(1, std::memory_order_relaxed);
            c.sessions.store(c.sessions.load(std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
            // Bind the session to the v2 export path (drains anything it
            // queued while being accepted), then let the application
            // override per event type with its own callbacks.
            s.set_event_sink(&sinks_[i]);
            if (on_session_) on_session_(i, s);
        });
        vtp::server* raw = srv.get();
        servers_.push_back(std::move(srv));
        // Periodic reaper: reclaims sessions whose peer closed, keeping
        // the gauge honest. Scheduling before start() is safe (the wheel
        // is still untouched by any thread).
        arm_reaper(raw, sh);
    }
    for (auto& s : shards_) s->start();
}

void server::stop() {
    if (started_) stopped_ = true;
    for (auto& s : shards_) s->stop();
}

void server::arm_reaper(vtp::server* srv, shard& sh) {
    sh.schedule(cfg_.reap_interval, [this, srv, &sh] {
        const std::size_t reaped = srv->reap_closed();
        if (reaped > 0) {
            auto& c = sh.counters();
            const std::uint64_t cur = c.sessions.load(std::memory_order_relaxed);
            c.sessions.store(cur >= reaped ? cur - reaped : 0,
                             std::memory_order_relaxed);
        }
        arm_reaper(srv, sh);
    });
}

void server::connect(std::uint32_t peer_addr, vtp::session_options opts,
                     std::function<void(std::size_t, vtp::session)> on_ready) {
    if (opts.flow_id == 0)
        opts.flow_id = next_flow_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t owner = owner_of(opts.flow_id);
    shard& sh = *shards_[owner];
    sh.post([this, &sh, owner, peer_addr, opts, cb = std::move(on_ready)]() mutable {
        vtp::session s = vtp::session::connect(sh, peer_addr, opts);
        s.set_event_sink(&sinks_[owner]);
        if (cb) cb(owner, std::move(s));
    });
}

void server::with_server(std::size_t i, std::function<void(vtp::server&)> fn) {
    vtp::server* raw = servers_.at(i).get();
    shards_[i]->post([raw, fn = std::move(fn)] { fn(*raw); });
}

engine_stats server::stats() const {
    engine_stats agg;
    for (const auto& s : shards_) {
        const shard_stats st = s->stats();
        agg.datagrams_rx += st.datagrams_rx;
        agg.datagrams_tx += st.datagrams_tx;
        agg.rx_batches += st.rx_batches;
        agg.tx_batches += st.tx_batches;
        agg.tx_dropped += st.tx_dropped;
        agg.handoff_out += st.handoff_out;
        agg.handoff_dropped += st.handoff_dropped;
        agg.decode_errors += st.decode_errors;
        agg.pool_exhausted += st.pool_exhausted;
        agg.accepted += st.accepted;
        agg.sessions += st.sessions;
        agg.events_dropped += st.events_dropped;
    }
    agg.commands_dropped = commands_dropped_.load(std::memory_order_relaxed);
    agg.cc_swaps_applied = cc_swaps_.load(std::memory_order_relaxed);
    return agg;
}

std::vector<shard_stats> server::per_shard_stats() const {
    std::vector<shard_stats> out;
    out.reserve(shards_.size());
    for (const auto& s : shards_) out.push_back(s->stats());
    return out;
}

} // namespace vtp::engine
