#include "engine/server.hpp"

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string_view>

#include "core/connection.hpp"
#include "ops/admin.hpp"
#include "util/logging.hpp"

namespace vtp::engine {

server::server(engine_config cfg) : cfg_(cfg) {
    if (cfg_.shards == 0) cfg_.shards = 1;
    shards_.reserve(cfg_.shards);
    sinks_.resize(cfg_.shards); // fixed size: sink addresses stay stable
    for (std::size_t i = 0; i < cfg_.shards; ++i) {
        shard_config sc;
        sc.port = cfg_.port;
        sc.index = i;
        sc.shard_count = cfg_.shards;
        sc.rx_batch = cfg_.rx_batch;
        sc.tx_batch = cfg_.tx_batch;
        sc.pool_buffers = cfg_.pool_buffers;
        sc.handoff_capacity = cfg_.handoff_capacity;
        sc.send_burst = cfg_.send_burst;
        sc.rng_seed = cfg_.rng_seed;
        shards_.push_back(std::make_unique<shard>(sc));
        sinks_[i].owner = this;
        sinks_[i].index = i;
        events_.push_back(
            std::make_unique<spsc_queue<engine_event>>(cfg_.event_queue_capacity));
        commands_.push_back(
            std::make_unique<spsc_queue<command>>(cfg_.command_queue_capacity));
        ring_occupancy_.push_back(&shards_.back()->metrics().get_histogram(
            "vtp_event_ring_occupancy",
            "Depth of the v2 event export ring, sampled once per shard turn."));
        rtt_ns_.push_back(&shards_.back()->metrics().get_histogram(
            "vtp_rtt_ns",
            "Smoothed RTT in ns, sampled per live session at each reap tick."));
        half_open_turns_.push_back(&shards_.back()->metrics().get_histogram(
            "vtp_half_open_sessions_turns",
            "Half-open sessions, sampled once per shard turn (catches "
            "spikes between reap ticks)."));
        windows_.push_back(std::make_unique<trace::window_ring>(
            static_cast<std::uint64_t>(cfg_.telemetry_window)));
        // Command mailbox drain + per-turn samples (export-ring depth,
        // half-open population): runs on the shard thread each turn.
        shards_.back()->set_turn_hook([this, i] {
            command cmd;
            while (commands_[i]->pop(cmd)) execute(i, cmd);
            ring_occupancy_[i]->observe(events_[i]->size());
            half_open_turns_[i]->observe(
                shards_[i]->counters().half_open.load(std::memory_order_relaxed));
        });
    }
    std::vector<shard*> raw;
    for (auto& s : shards_) raw.push_back(s.get());
    shard::interconnect(raw);
}

bool server::shard_sink::on_session_event(std::uint32_t flow, const qtp::event& ev,
                                          std::vector<std::uint8_t>& payload) {
    // Swap accounting happens even when the export ring is full: the
    // transport applied the swap whether or not the application saw the
    // profile_changed event.
    if (ev.type == qtp::event_type::established) {
        last_cc[flow] = ev.prof.congestion;
    } else if (ev.type == qtp::event_type::profile_changed) {
        auto [it, fresh] = last_cc.try_emplace(flow, ev.prof.congestion);
        if (!fresh && it->second != ev.prof.congestion) {
            it->second = ev.prof.congestion;
            owner->cc_swaps_.fetch_add(1, std::memory_order_relaxed);
        }
    } else if (ev.type == qtp::event_type::closed) {
        last_cc.erase(flow);
    }
    engine_event e;
    e.shard = index;
    e.flow = flow;
    e.ev = ev;
    e.payload = std::move(payload); // no copy on the shard delivery path
    if (!owner->events_[index]->push(std::move(e))) {
        payload = std::move(e.payload); // full ring: hand the bytes back
        auto& c = owner->shards_[index]->counters().events_dropped;
        c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

std::size_t server::poll_events(engine_event* out, std::size_t max) {
    std::size_t n = 0;
    std::size_t idle = 0;
    while (n < max && idle < events_.size()) {
        if (events_[poll_cursor_]->pop(out[n])) {
            ++n;
            idle = 0;
        } else {
            ++idle;
        }
        poll_cursor_ = (poll_cursor_ + 1) % events_.size();
    }
    return n;
}

bool server::enqueue(std::size_t shard_idx, command&& cmd) {
    if (shard_idx >= shards_.size() ||
        !commands_[shard_idx]->push(std::move(cmd))) {
        commands_dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shards_[shard_idx]->wake();
    return true;
}

void server::execute(std::size_t shard_idx, command& cmd) {
    qtp::agent* a = shards_[shard_idx]->find_agent(cmd.flow);
    auto* tx = dynamic_cast<qtp::connection_sender*>(a);
    auto* rx = dynamic_cast<qtp::connection_receiver*>(a);
    if (tx == nullptr && rx == nullptr) {
        // Session already reaped (or never existed): observable, not silent.
        commands_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    bool handled = false;
    switch (cmd.what) {
    case command::kind::send:
        if (tx != nullptr) {
            const std::uint64_t accepted =
                tx->offer_bytes(cmd.stream_id, cmd.bytes.data(), cmd.bytes.size());
            // A max_buffered_bytes clamp truncates the command: the
            // suffix is gone (the mailbox cannot hold residue), so make
            // it observable instead of silent. Engine-hosted senders
            // default to unlimited buffering, where this cannot happen.
            handled = accepted == cmd.bytes.size();
        }
        break;
    case command::kind::finish:
        if (tx != nullptr) {
            tx->finish_stream(cmd.stream_id);
            handled = true;
        }
        break;
    case command::kind::close:
        if (tx != nullptr) {
            tx->finish_stream();
            handled = true;
        }
        break;
    case command::kind::renegotiate:
        if (tx != nullptr) tx->request_renegotiate(cmd.prof);
        if (rx != nullptr) rx->request_renegotiate(cmd.prof);
        handled = tx != nullptr || rx != nullptr;
        break;
    }
    // A data-plane command aimed at a receiver-role session (or any other
    // mismatch) is observable, not silent.
    if (!handled) commands_dropped_.fetch_add(1, std::memory_order_relaxed);
}

bool server::send(std::size_t shard_idx, std::uint32_t flow, std::uint32_t stream_id,
                  const std::uint8_t* data, std::size_t len) {
    command cmd;
    cmd.what = command::kind::send;
    cmd.flow = flow;
    cmd.stream_id = stream_id;
    cmd.bytes.assign(data, data + len);
    return enqueue(shard_idx, std::move(cmd));
}

bool server::finish(std::size_t shard_idx, std::uint32_t flow, std::uint32_t stream_id) {
    command cmd;
    cmd.what = command::kind::finish;
    cmd.flow = flow;
    cmd.stream_id = stream_id;
    return enqueue(shard_idx, std::move(cmd));
}

bool server::close(std::size_t shard_idx, std::uint32_t flow) {
    command cmd;
    cmd.what = command::kind::close;
    cmd.flow = flow;
    return enqueue(shard_idx, std::move(cmd));
}

bool server::renegotiate(std::size_t shard_idx, std::uint32_t flow,
                         const qtp::profile& p) {
    command cmd;
    cmd.what = command::kind::renegotiate;
    cmd.flow = flow;
    cmd.prof = p;
    return enqueue(shard_idx, std::move(cmd));
}

server::~server() { stop(); }

void server::start() {
    if (started_) {
        // One-shot by design: shards' sockets and session tables are not
        // rebuilt after a stop(). Loud beats a silently dead server.
        if (stopped_)
            throw std::logic_error("engine::server: cannot restart after stop()");
        return;
    }
    started_ = true;
    // Flight-recorder spool: one writer thread per shard so sessions of
    // one shard share a sink without any cross-shard contention.
    if (!cfg_.trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.trace_dir, ec);
        writers_.reserve(shards_.size());
        for (std::size_t i = 0; i < shards_.size(); ++i)
            writers_.push_back(std::make_unique<trace::async_writer>(
                cfg_.trace_dir + "/trace-shard" + std::to_string(i) + ".vtpt"));
        if (cfg_.accept.trace_ring_records == 0)
            cfg_.accept.trace_ring_records = 4096;
    }
    // Build each shard's vtp::server before its thread exists: the
    // listener registers as the shard's default agent, and from the first
    // loop turn on, everything runs on the shard thread.
    servers_.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        shard& sh = *shards_[i];
        vtp::server_options accept = cfg_.accept;
        if (i < writers_.size() && writers_[i]->ok())
            accept.trace_sink = writers_[i].get();
        auto srv = std::make_unique<vtp::server>(sh, accept);
        srv->set_on_session([this, i, &sh](vtp::session& s) {
            auto& c = sh.counters();
            c.accepted.fetch_add(1, std::memory_order_relaxed);
            c.sessions.store(c.sessions.load(std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
            // Fresh accepts are half-open until first data: the receiver
            // maintains the shard gauge incrementally so per-turn
            // sampling sees flood spikes, not just reap-tick recounts.
            if (s.receiver() != nullptr)
                s.receiver()->set_half_open_gauge(&c.half_open);
            // Bind the session to the v2 export path (drains anything it
            // queued while being accepted), then let the application
            // override per event type with its own callbacks.
            s.set_event_sink(&sinks_[i]);
            if (on_session_) on_session_(i, s);
        });
        vtp::server* raw = srv.get();
        servers_.push_back(std::move(srv));
        // Periodic reaper: reclaims sessions whose peer closed, keeping
        // the gauge honest. Scheduling before start() is safe (the wheel
        // is still untouched by any thread).
        arm_reaper(raw, sh);
    }
    for (auto& s : shards_) s->start();
    if (cfg_.admin_port != 0) {
        ops::admin_config ac;
        ac.port = cfg_.admin_port;
        ac.trace_tap_dir = cfg_.trace_dir.empty() ? std::string(".") : cfg_.trace_dir;
        ac.health_window_ns = static_cast<std::uint64_t>(cfg_.telemetry_window);
        try {
            admin_ = std::make_unique<ops::admin_server>(*this, ac);
        } catch (const std::exception& e) {
            // An unbindable admin port must not take the datapath down.
            util::log(util::log_level::warn, "engine",
                      std::string("admin plane disabled: ") + e.what());
        }
    }
}

void server::stop() {
    // Admin plane first: its destructor detaches live trace taps by
    // posting to shard threads, which must still be running to flush.
    admin_.reset();
    if (started_) stopped_ = true;
    for (auto& s : shards_) s->stop();
}

void server::arm_reaper(vtp::server* srv, shard& sh) {
    sh.schedule(cfg_.reap_interval, [this, srv, &sh] {
        // Sample every hosted connection's RTT into the shard's histogram
        // before reaping — a once-per-reap-tick cost that gives the
        // engine an RTT distribution without touching the datapath.
        // Senders report the cc's smoothed RTT; receivers the estimate
        // the sender announces in its data segments.
        trace::histogram* rtt = rtt_ns_[sh.index()];
        sh.for_each_agent([rtt](std::uint32_t, qtp::agent& a) {
            if (const auto* tx = dynamic_cast<const qtp::connection_sender*>(&a)) {
                if (tx->established() && tx->cc().has_rtt())
                    rtt->observe(
                        static_cast<std::uint64_t>(tx->cc().smoothed_rtt()));
            } else if (const auto* rx =
                           dynamic_cast<const qtp::connection_receiver*>(&a)) {
                if (rx->received_packets() > 0)
                    rtt->observe(static_cast<std::uint64_t>(rx->rtt_hint()));
            }
        });
        const std::size_t reaped = srv->reap_closed();
        auto& c = sh.counters();
        if (reaped > 0) {
            const std::uint64_t cur = c.sessions.load(std::memory_order_relaxed);
            c.sessions.store(cur >= reaped ? cur - reaped : 0,
                             std::memory_order_relaxed);
        }
        // Mirror the accept-path guard counters into the shard's atomics
        // so any thread can read them. Absolute stores: the vtp::server
        // counters are the source of truth.
        const vtp::server_stats ss = srv->stats();
        c.syn_retries_sent.store(ss.retries_sent, std::memory_order_relaxed);
        c.syn_cookies_validated.store(ss.cookies_validated, std::memory_order_relaxed);
        c.syn_cookies_rejected.store(ss.cookies_rejected, std::memory_order_relaxed);
        c.syn_rate_limited.store(ss.syn_rate_limited + ss.stray_rate_limited,
                                 std::memory_order_relaxed);
        c.syn_sheds.store(ss.shed, std::memory_order_relaxed);
        c.amp_limited.store(ss.amplification_limited, std::memory_order_relaxed);
        c.reneg_rate_limited.store(ss.reneg_rate_limited, std::memory_order_relaxed);
        c.path_migrations.store(ss.path_migrations, std::memory_order_relaxed);
        c.path_validations.store(ss.path_validations, std::memory_order_relaxed);
        c.path_validation_failures.store(ss.path_validation_failures,
                                         std::memory_order_relaxed);
        c.path_responses_rejected.store(ss.path_responses_rejected,
                                        std::memory_order_relaxed);
        // (half_open is NOT mirrored here: the receivers maintain the
        // shard gauge incrementally — see set_half_open_gauge.)
        // Sliding-window telemetry snapshot: shard counters + every
        // histogram in the shard registry, captured on the shard thread
        // at reap cadence so /metrics can derive rates and windowed
        // percentiles and /healthz can judge recent behaviour.
        std::vector<std::pair<std::string, std::uint64_t>> vals;
        vals.reserve(12);
        const auto rd = [](const std::atomic<std::uint64_t>& a) {
            return a.load(std::memory_order_relaxed);
        };
        vals.emplace_back("vtp_datagrams_rx_total", rd(c.datagrams_rx));
        vals.emplace_back("vtp_datagrams_tx_total", rd(c.datagrams_tx));
        vals.emplace_back("vtp_tx_dropped_total", rd(c.tx_dropped));
        vals.emplace_back("vtp_handoff_dropped_total", rd(c.handoff_dropped));
        vals.emplace_back("vtp_decode_errors_total", rd(c.decode_errors));
        vals.emplace_back("vtp_events_dropped_total", rd(c.events_dropped));
        vals.emplace_back("vtp_accepted_total", rd(c.accepted));
        vals.emplace_back("vtp_synflood_retries_sent_total", ss.retries_sent);
        vals.emplace_back("vtp_synflood_sheds_total", ss.shed);
        vals.emplace_back("vtp_reneg_rate_limited_total", ss.reneg_rate_limited);
        vals.emplace_back("vtp_path_migrations_total", ss.path_migrations);
        if (sh.index() == 0)
            vals.emplace_back("vtp_commands_dropped_total",
                              commands_dropped_.load(std::memory_order_relaxed));
        windows_[sh.index()]->capture(static_cast<std::uint64_t>(sh.now()),
                                      sh.metrics(), std::move(vals));
        arm_reaper(srv, sh);
    });
}

void server::connect(std::uint32_t peer_addr, vtp::session_options opts,
                     std::function<void(std::size_t, vtp::session)> on_ready) {
    if (opts.flow_id == 0)
        opts.flow_id = next_flow_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t owner = owner_of(opts.flow_id);
    // Outgoing sessions inherit the engine's flight recorder: the owner
    // shard's spool, same default ring as accepted sessions.
    if (owner < writers_.size() && writers_[owner]->ok() &&
        opts.trace_sink == nullptr) {
        opts.trace_sink = writers_[owner].get();
        if (opts.trace_ring_records == 0)
            opts.trace_ring_records = cfg_.accept.trace_ring_records;
    }
    shard& sh = *shards_[owner];
    sh.post([this, &sh, owner, peer_addr, opts, cb = std::move(on_ready)]() mutable {
        vtp::session s = vtp::session::connect(sh, peer_addr, opts);
        s.set_event_sink(&sinks_[owner]);
        if (cb) cb(owner, std::move(s));
    });
}

void server::with_server(std::size_t i, std::function<void(vtp::server&)> fn) {
    vtp::server* raw = servers_.at(i).get();
    shards_[i]->post([raw, fn = std::move(fn)] { fn(*raw); });
}

std::vector<vtp::session_snapshot> server::snapshot_sessions(std::uint32_t only_flow) {
    if (servers_.empty()) return {};
    // Collectors run on the shard threads (posted closures), so every
    // snapshot is a consistent same-thread read; the caller blocks on a
    // counted rendezvous. The context outlives a timeout via shared_ptr
    // so a straggling shard writes into live memory, never freed stack.
    struct rendezvous {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t pending = 0;
        bool done = false;
        std::vector<vtp::session_snapshot> out;
    };
    auto ctx = std::make_shared<rendezvous>();
    ctx->pending = shards_.size();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        with_server(i, [ctx, i, only_flow](vtp::server& srv) {
            std::vector<vtp::session_snapshot> local;
            srv.for_each_session([&](std::uint32_t flow, vtp::session& s) {
                if (only_flow != 0 && flow != only_flow) return;
                vtp::session_snapshot sn = s.snapshot();
                sn.shard = i;
                local.push_back(std::move(sn));
            });
            std::lock_guard<std::mutex> lock(ctx->mu);
            if (!ctx->done)
                ctx->out.insert(ctx->out.end(),
                                std::make_move_iterator(local.begin()),
                                std::make_move_iterator(local.end()));
            if (--ctx->pending == 0) ctx->cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(ctx->mu);
    ctx->cv.wait_for(lock, std::chrono::seconds(1),
                     [&] { return ctx->pending == 0; });
    ctx->done = true; // stragglers (stopped engine) stop appending
    return std::move(ctx->out);
}

trace::window_delta server::merged_window(std::uint64_t window_ns) const {
    std::vector<trace::window_delta> parts;
    parts.reserve(windows_.size());
    for (const auto& w : windows_) parts.push_back(w->window(window_ns));
    return trace::merge_window_deltas(parts);
}

engine_stats server::stats() const {
    engine_stats agg;
    for (const auto& s : shards_) {
        const shard_stats st = s->stats();
        agg.datagrams_rx += st.datagrams_rx;
        agg.datagrams_tx += st.datagrams_tx;
        agg.rx_batches += st.rx_batches;
        agg.tx_batches += st.tx_batches;
        agg.tx_dropped += st.tx_dropped;
        agg.handoff_out += st.handoff_out;
        agg.handoff_dropped += st.handoff_dropped;
        agg.decode_errors += st.decode_errors;
        agg.truncated_dropped += st.truncated_dropped;
        agg.pool_exhausted += st.pool_exhausted;
        agg.accepted += st.accepted;
        agg.sessions += st.sessions;
        agg.events_dropped += st.events_dropped;
        agg.syn_retries_sent += st.syn_retries_sent;
        agg.syn_cookies_validated += st.syn_cookies_validated;
        agg.syn_cookies_rejected += st.syn_cookies_rejected;
        agg.syn_rate_limited += st.syn_rate_limited;
        agg.syn_sheds += st.syn_sheds;
        agg.amp_limited += st.amp_limited;
        agg.reneg_rate_limited += st.reneg_rate_limited;
        agg.half_open += st.half_open;
        agg.path_migrations += st.path_migrations;
        agg.path_validations += st.path_validations;
        agg.path_validation_failures += st.path_validation_failures;
        agg.path_responses_rejected += st.path_responses_rejected;
    }
    agg.commands_dropped = commands_dropped_.load(std::memory_order_relaxed);
    agg.cc_swaps_applied = cc_swaps_.load(std::memory_order_relaxed);
    return agg;
}

std::vector<shard_stats> server::per_shard_stats() const {
    std::vector<shard_stats> out;
    out.reserve(shards_.size());
    for (const auto& s : shards_) out.push_back(s->stats());
    return out;
}

void server::collect_metrics(trace::registry& out) const {
    const engine_stats st = stats();
    out.get_counter("vtp_datagrams_rx_total",
                    "Datagrams received across all shard sockets.")
        .add(st.datagrams_rx);
    out.get_counter("vtp_datagrams_tx_total",
                    "Datagrams transmitted across all shard sockets.")
        .add(st.datagrams_tx);
    out.get_counter("vtp_tx_dropped_total",
                    "Transmissions dropped (kernel buffer full / oversized).")
        .add(st.tx_dropped);
    out.get_counter("vtp_handoff_out_total",
                    "Datagrams forwarded to their owner shard.")
        .add(st.handoff_out);
    out.get_counter("vtp_handoff_dropped_total",
                    "Cross-shard handoffs dropped on a full ring.")
        .add(st.handoff_dropped);
    out.get_counter("vtp_decode_errors_total",
                    "Inbound datagrams that failed segment decoding.")
        .add(st.decode_errors);
    out.get_counter("vtp_truncated_dropped_total",
                    "Oversized datagrams truncated by the kernel and dropped.")
        .add(st.truncated_dropped);
    out.get_counter("vtp_pool_exhausted_total",
                    "Sends dropped because the transmit buffer pool was empty.")
        .add(st.pool_exhausted);
    out.get_counter("vtp_accepted_total", "Connections accepted by the listeners.")
        .add(st.accepted);
    out.get_counter("vtp_events_dropped_total",
                    "Session events lost to a full v2 export ring.")
        .add(st.events_dropped);
    out.get_counter("vtp_commands_dropped_total",
                    "v2 commands rejected (full mailbox or unknown flow).")
        .add(st.commands_dropped);
    out.get_counter("vtp_cc_swaps_total",
                    "Mid-flow congestion-control swaps applied by renegotiation.")
        .add(st.cc_swaps_applied);
    out.get_gauge("vtp_sessions", "Live sessions across all shards.")
        .set(static_cast<std::int64_t>(st.sessions));
    out.get_counter("vtp_synflood_retries_sent_total",
                    "Stateless retry cookies sent to unvalidated SYN sources.")
        .add(st.syn_retries_sent);
    out.get_counter("vtp_synflood_cookies_validated_total",
                    "SYNs whose echoed retry cookie verified (session spawned).")
        .add(st.syn_cookies_validated);
    out.get_counter("vtp_synflood_cookies_rejected_total",
                    "SYNs carrying a stale or forged retry cookie.")
        .add(st.syn_cookies_rejected);
    out.get_counter("vtp_synflood_rate_limited_total",
                    "Packets dropped by the per-source SYN/stray token buckets.")
        .add(st.syn_rate_limited);
    out.get_counter("vtp_synflood_sheds_total",
                    "Validated SYNs refused by the session/half-open caps.")
        .add(st.syn_sheds);
    out.get_counter("vtp_synflood_amp_limited_total",
                    "Retries withheld by the anti-amplification byte budget.")
        .add(st.amp_limited);
    out.get_counter("vtp_reneg_rate_limited_total",
                    "Inbound reneg proposals dropped by the per-connection bucket.")
        .add(st.reneg_rate_limited);
    out.get_gauge("vtp_half_open_sessions",
                  "Accepted sessions that have not yet received data.")
        .set(static_cast<std::int64_t>(st.half_open));
    out.get_counter("vtp_path_migrations_total",
                    "Validated active-path switches (migrate/rebind) across "
                    "all hosted sessions.")
        .add(st.path_migrations);
    out.get_counter("vtp_path_validation_success_total",
                    "Paths proven two-way reachable by a challenge/response "
                    "round trip.")
        .add(st.path_validations);
    out.get_counter("vtp_path_validation_failure_total",
                    "Paths that exhausted every validation attempt.")
        .add(st.path_validation_failures);
    out.get_counter("vtp_path_responses_rejected_total",
                    "path_response frames whose token matched no pending "
                    "challenge (forged, mutated or stale).")
        .add(st.path_responses_rejected);
    if (!writers_.empty()) {
        std::uint64_t records = 0;
        std::uint64_t frames_dropped = 0;
        for (const auto& w : writers_) {
            records += w->records();
            frames_dropped += w->frames_dropped();
        }
        out.get_counter("vtp_trace_records_total",
                        "Flight-recorder records accepted by the shard spools.")
            .add(records);
        out.get_counter("vtp_trace_frames_dropped_total",
                        "Trace frames dropped by a backlogged spool queue.")
            .add(frames_dropped);
    }
    // Shard-local series (turn duration, timer fire latency, RTT samples,
    // event-ring occupancy, per-turn half-open population) merge in by
    // name, then the windowed derivations go on top.
    for (const auto& s : shards_) out.merge(s->metrics());
    collect_windowed(out);
}

void server::collect_windowed(trace::registry& out) const {
    const trace::window_delta d = merged_window();
    if (d.span_ns == 0) return;
    const double span_s = static_cast<double>(d.span_ns) / 1e9;
    for (const auto& [name, delta] : d.counters) {
        // vtp_foo_total -> vtp_foo_rate; non-_total names just append.
        std::string base = name;
        constexpr std::string_view suffix = "_total";
        if (base.size() > suffix.size() && base.ends_with(suffix))
            base.resize(base.size() - suffix.size());
        out.get_fgauge(base + "_rate",
                       "Per-second rate over the sliding telemetry window.")
            .set(static_cast<double>(delta) / span_s);
    }
    for (const auto& h : d.hists) {
        out.get_gauge(h.name + "_p50_60s",
                      "Median of observations inside the telemetry window.")
            .set(static_cast<std::int64_t>(h.percentile(0.50)));
        out.get_gauge(h.name + "_p99_60s",
                      "99th percentile of observations inside the telemetry window.")
            .set(static_cast<std::int64_t>(h.percentile(0.99)));
    }
}

} // namespace vtp::engine
