#include "engine/timer_wheel.hpp"

#include <algorithm>

namespace vtp::engine {

namespace {

constexpr std::uint64_t level_mask = timer_wheel::slots_per_level - 1;

/// Ticks covered by one slot of `level` (level 0: 1 tick each).
constexpr std::uint64_t level_span(int level) {
    return std::uint64_t{1} << (timer_wheel::level_bits * level);
}

/// Ticks covered by the whole of `level` and everything below it.
constexpr std::uint64_t level_range(int level) {
    return std::uint64_t{1} << (timer_wheel::level_bits * (level + 1));
}

} // namespace

timer_wheel::timer_wheel(util::sim_time now)
    : current_tick_(static_cast<std::uint64_t>(std::max<util::sim_time>(now, 0)) >>
                    tick_shift) {}

timer_wheel::~timer_wheel() {
    for (auto& level : slots_)
        for (entry* head : level)
            while (head != nullptr) {
                entry* next = head->next;
                delete head;
                head = next;
            }
    while (free_list_ != nullptr) {
        entry* next = free_list_->next;
        delete free_list_;
        free_list_ = next;
    }
}

timer_wheel::entry* timer_wheel::alloc_entry() {
    if (free_list_ == nullptr) return new entry;
    entry* e = free_list_;
    free_list_ = e->next;
    e->next = nullptr;
    e->pprev = nullptr;
    return e;
}

void timer_wheel::recycle(entry* e) {
    e->fn = nullptr;
    e->pprev = nullptr;
    e->next = free_list_;
    free_list_ = e;
}

void timer_wheel::link(entry* e, int level, std::size_t slot) {
    entry*& head = slots_[level][slot];
    e->next = head;
    e->pprev = &head;
    if (head != nullptr) head->pprev = &e->next;
    head = e;
}

void timer_wheel::place(entry* e) {
    // Entries due now (or in the past) go one tick out: advance() has
    // already processed the current tick, and never-early beats
    // never-late here.
    const std::uint64_t tick = std::max(e->tick, current_tick_ + 1);
    const std::uint64_t delta = tick - current_tick_;
    for (int level = 0; level < levels; ++level) {
        if (delta < level_range(level) || level == levels - 1) {
            // Beyond the top level's range: clamp the *slot* (the true
            // tick stays in e->tick); expiry re-places until reachable.
            const std::uint64_t capped =
                delta < level_range(levels - 1)
                    ? tick
                    : current_tick_ + level_range(levels - 1) - 1;
            const std::size_t slot =
                (capped >> (level_bits * level)) & level_mask;
            link(e, level, slot);
            return;
        }
    }
}

timer_wheel::timer_id timer_wheel::schedule_at(util::sim_time deadline,
                                               std::function<void()> fn) {
    entry* e = alloc_entry();
    e->id = next_id_++;
    // Round up: the timer must not fire before its deadline.
    const std::uint64_t ns =
        static_cast<std::uint64_t>(std::max<util::sim_time>(deadline, 0));
    e->tick = (ns + (std::uint64_t{1} << tick_shift) - 1) >> tick_shift;
    e->fn = std::move(fn);
    by_id_.emplace(e->id, e);
    ++pending_;
    place(e);
    return e->id;
}

bool timer_wheel::cancel(timer_id id) {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    entry* e = it->second;
    by_id_.erase(it);
    unlink(e); // works even while e sits on a detached expiry chain
    recycle(e);
    --pending_;
    return true;
}

void timer_wheel::cascade(int level, std::uint64_t tick) {
    if (level >= levels) return;
    const std::size_t slot = (tick >> (level_bits * level)) & level_mask;
    // When this level's index also wrapped, pull from above first so its
    // entries land here before we redistribute.
    if (slot == 0) cascade(level + 1, tick);
    entry* chain = slots_[level][slot];
    slots_[level][slot] = nullptr;
    while (chain != nullptr) {
        entry* e = chain;
        chain = e->next;
        if (chain != nullptr) chain->pprev = nullptr;
        e->next = nullptr;
        e->pprev = nullptr;
        place(e); // re-place by remaining delta (lands at a lower level)
    }
}

void timer_wheel::expire_current_tick() {
    entry*& slot = slots_[0][current_tick_ & level_mask];
    // Detach, then pop one at a time: callbacks may cancel entries still
    // on the chain (unlink keeps the chain consistent) or schedule new
    // timers for this same tick (they clamp to the next tick).
    entry* chain = slot;
    slot = nullptr;
    if (chain != nullptr) chain->pprev = &chain;
    while (chain != nullptr) {
        entry* e = chain;
        unlink(e);
        if (chain != nullptr) chain->pprev = &chain;
        if (e->tick > current_tick_) {
            // Far-future entry whose slot was clamped: not due yet.
            place(e);
            continue;
        }
        by_id_.erase(e->id);
        --pending_;
        if (fire_latency_ != nullptr) {
            const util::sim_time deadline =
                static_cast<util::sim_time>(e->tick) << tick_shift;
            fire_latency_->observe(static_cast<std::uint64_t>(
                std::max<util::sim_time>(advance_now_ - deadline, 0)));
        }
        std::function<void()> fn = std::move(e->fn);
        recycle(e);
        fn();
    }
}

void timer_wheel::advance(util::sim_time now) {
    advance_now_ = now;
    const std::uint64_t target =
        static_cast<std::uint64_t>(std::max<util::sim_time>(now, 0)) >> tick_shift;
    while (current_tick_ < target) {
        if (pending_ == 0) {
            current_tick_ = target; // fast-forward across idle gaps
            break;
        }
        ++current_tick_;
        if ((current_tick_ & level_mask) == 0) cascade(1, current_tick_);
        expire_current_tick();
    }
}

util::sim_time timer_wheel::next_deadline_hint() const {
    if (pending_ == 0) return util::time_never;
    for (std::uint64_t dt = 1; dt < slots_per_level; ++dt) {
        const std::uint64_t tick = current_tick_ + dt;
        if (slots_[0][tick & level_mask] != nullptr)
            return static_cast<util::sim_time>(tick << tick_shift);
        if ((tick & level_mask) == 0) break; // cascade may refill level 0
    }
    // Wake at the next level-0 wrap: the cascade there may bring timers
    // down. Early wake-ups are cheap; oversleeping is a bug.
    const std::uint64_t wrap = (current_tick_ | level_mask) + 1;
    return static_cast<util::sim_time>(wrap << tick_shift);
}

} // namespace vtp::engine
