#include "engine/reactor.hpp"

#include <algorithm>
#include <stdexcept>

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#else
#include <poll.h>
#endif

namespace vtp::engine {

namespace {

int timeout_ms(util::sim_time timeout) {
    if (timeout == util::time_never) return -1;
    if (timeout <= 0) return 0;
    // Round up so we never spin-wake before a deadline.
    const util::sim_time ms = (timeout + 999'999) / 1'000'000;
    return static_cast<int>(std::min<util::sim_time>(ms, 60'000));
}

} // namespace

#ifdef __linux__

reactor::reactor() {
    epfd_ = ::epoll_create1(0);
    if (epfd_ < 0) throw std::runtime_error("reactor: epoll_create1() failed");
}

reactor::~reactor() {
    if (epfd_ >= 0) ::close(epfd_);
}

void reactor::add_fd(int fd, std::function<void()> on_readable) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        throw std::runtime_error("reactor: epoll_ctl(ADD) failed");
    handlers_[fd] = std::move(on_readable);
}

void reactor::remove_fd(int fd) {
    if (handlers_.erase(fd) > 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

int reactor::poll_once(util::sim_time timeout) {
    epoll_event events[32];
    const int n = ::epoll_wait(epfd_, events, 32, timeout_ms(timeout));
    int dispatched = 0;
    for (int i = 0; i < n; ++i) {
        // Re-look-up per event: a callback may remove another fd.
        const auto it = handlers_.find(events[i].data.fd);
        if (it == handlers_.end()) continue;
        it->second();
        ++dispatched;
    }
    return dispatched;
}

#else // poll(2) fallback

reactor::reactor() = default;
reactor::~reactor() = default;

void reactor::add_fd(int fd, std::function<void()> on_readable) {
    handlers_[fd] = std::move(on_readable);
}

void reactor::remove_fd(int fd) { handlers_.erase(fd); }

int reactor::poll_once(util::sim_time timeout) {
    std::vector<pollfd> pfds;
    pfds.reserve(handlers_.size());
    for (const auto& [fd, cb] : handlers_) pfds.push_back(pollfd{fd, POLLIN, 0});
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                             timeout_ms(timeout));
    int dispatched = 0;
    if (ready > 0) {
        for (const auto& p : pfds) {
            if ((p.revents & POLLIN) == 0) continue;
            const auto it = handlers_.find(p.fd);
            if (it == handlers_.end()) continue;
            it->second();
            ++dispatched;
        }
    }
    return dispatched;
}

#endif

} // namespace vtp::engine
