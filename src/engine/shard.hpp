// One worker shard of the server engine.
//
// A shard is a single-threaded transport runtime: an epoll reactor, a
// hierarchical timer wheel, a datagram buffer pool and a connection
// table, all owned by one thread — so the qtp agents it hosts stay
// lock-free, exactly as they are on the simulator. The shard implements
// qtp::environment, which means every agent in the library (and every
// vtp::session / vtp::server built on them) runs on it unmodified.
//
// Scale-out model (engine::server wires N of these together):
//   - each shard binds its own SO_REUSEPORT member socket on the shared
//     engine port; the kernel spreads inbound datagrams across members;
//   - flow ownership is a pure function of the flow id
//     (flow_shard_map), so a datagram landing on the wrong shard is
//     handed to its owner through a bounded SPSC ring — no locks on the
//     datapath, and a full ring drops like a NIC queue would;
//   - transmission batches through the buffer pool and sendmmsg: agents'
//     send() calls append pool buffers to the pending batch, which is
//     flushed once per loop turn (or when full). The per-packet transmit
//     path performs zero heap allocation.
//
// Cross-thread entry points are exactly two: post() (run a closure on
// the shard thread; used for control-plane work like opening client
// sessions) and the SPSC handoff rings. Everything else must run on the
// shard's own thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/environment.hpp"
#include "engine/buffer_pool.hpp"
#include "trace/metrics.hpp"
#include "engine/flow_map.hpp"
#include "engine/reactor.hpp"
#include "engine/spsc_queue.hpp"
#include "engine/timer_wheel.hpp"
#include "engine/udp_io.hpp"
#include "util/rng.hpp"

namespace vtp::engine {

struct shard_config {
    std::uint16_t port = 0;       ///< shared engine port (SO_REUSEPORT group)
    std::size_t index = 0;        ///< this shard's slot in the engine
    std::size_t shard_count = 1;  ///< total shards (flow-hash modulus)
    std::size_t rx_batch = 64;    ///< datagrams per recvmmsg
    std::size_t tx_batch = 64;    ///< flush threshold for sendmmsg
    std::size_t pool_buffers = 4096;    ///< transmit buffer pool size
    std::size_t handoff_capacity = 512; ///< per-peer SPSC ring depth
    std::uint32_t send_burst = 8; ///< segments per pacing slot (environment hint)
    int rcvbuf_bytes = 1 << 21;   ///< socket receive buffer (0 = default)
    int sndbuf_bytes = 1 << 21;   ///< socket send buffer (0 = default)
    std::uint64_t rng_seed = 1;
};

/// Monotonically increasing counters, written only by the shard thread,
/// readable from any thread.
struct shard_counters {
    std::atomic<std::uint64_t> datagrams_rx{0};
    std::atomic<std::uint64_t> datagrams_tx{0};
    std::atomic<std::uint64_t> rx_batches{0}; ///< recv_batch calls that returned >0
    std::atomic<std::uint64_t> tx_batches{0}; ///< flushes that sent >0
    std::atomic<std::uint64_t> tx_dropped{0}; ///< kernel send buffer full / oversized segment
    std::atomic<std::uint64_t> handoff_out{0}; ///< forwarded to owner shards
    std::atomic<std::uint64_t> handoff_in{0};  ///< received from peer shards
    std::atomic<std::uint64_t> handoff_dropped{0}; ///< ring full
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> truncated_dropped{0}; ///< MSG_TRUNC'd datagrams dropped
    std::atomic<std::uint64_t> pool_exhausted{0};
    std::atomic<std::uint64_t> sessions{0}; ///< gauge, maintained by engine::server
    std::atomic<std::uint64_t> accepted{0}; ///< engine::server accept count
    std::atomic<std::uint64_t> events_dropped{0}; ///< full event-export ring

    // Accept-path guard mirrors: engine::server copies the shard's
    // vtp::server guard stats here on each reap tick (absolute values,
    // stored not added — the vtp::server counters are the source of
    // truth and these just make them readable cross-thread).
    std::atomic<std::uint64_t> syn_retries_sent{0};
    std::atomic<std::uint64_t> syn_cookies_validated{0};
    std::atomic<std::uint64_t> syn_cookies_rejected{0};
    std::atomic<std::uint64_t> syn_rate_limited{0}; ///< SYN + stray bucket denials
    std::atomic<std::uint64_t> syn_sheds{0};
    std::atomic<std::uint64_t> amp_limited{0};
    std::atomic<std::uint64_t> reneg_rate_limited{0}; ///< reneg bucket denials
    std::atomic<std::uint64_t> half_open{0}; ///< gauge

    // Path migration mirrors (same reap-tick absolute-store discipline;
    // zero while the engine's path config is disabled).
    std::atomic<std::uint64_t> path_migrations{0};
    std::atomic<std::uint64_t> path_validations{0};
    std::atomic<std::uint64_t> path_validation_failures{0};
    std::atomic<std::uint64_t> path_responses_rejected{0};
};

/// Plain-value snapshot of shard_counters.
struct shard_stats {
    std::uint64_t datagrams_rx = 0;
    std::uint64_t datagrams_tx = 0;
    std::uint64_t rx_batches = 0;
    std::uint64_t tx_batches = 0;
    std::uint64_t tx_dropped = 0;
    std::uint64_t handoff_out = 0;
    std::uint64_t handoff_in = 0;
    std::uint64_t handoff_dropped = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t truncated_dropped = 0;
    std::uint64_t pool_exhausted = 0;
    std::uint64_t sessions = 0;
    std::uint64_t accepted = 0;
    std::uint64_t events_dropped = 0;
    std::uint64_t syn_retries_sent = 0;
    std::uint64_t syn_cookies_validated = 0;
    std::uint64_t syn_cookies_rejected = 0;
    std::uint64_t syn_rate_limited = 0;
    std::uint64_t syn_sheds = 0;
    std::uint64_t amp_limited = 0;
    std::uint64_t reneg_rate_limited = 0;
    std::uint64_t half_open = 0;
    std::uint64_t path_migrations = 0;
    std::uint64_t path_validations = 0;
    std::uint64_t path_validation_failures = 0;
    std::uint64_t path_responses_rejected = 0;
};

class shard final : public qtp::environment {
public:
    explicit shard(shard_config cfg);
    ~shard() override;

    shard(const shard&) = delete;
    shard& operator=(const shard&) = delete;

    /// Wire up the SPSC handoff rings between all shards of one engine
    /// (`all[i]` must be the shard with index i). Call once, before any
    /// start(). Single-shard engines may skip it.
    static void interconnect(const std::vector<shard*>& all);

    /// Spawn the worker thread. Agents attached before start() begin
    /// receiving immediately.
    void start();
    /// Stop and join the worker thread (idempotent).
    void stop();

    /// Run `fn` on the shard thread at the next loop turn (the only
    /// cross-thread control-plane entry point; safe from any thread, and
    /// before start(), where it runs at the first turn).
    void post(std::function<void()> fn);

    /// Interrupt the reactor sleep so the next turn runs promptly. Safe
    /// from any thread — this is how lock-free mailboxes (the engine's
    /// command rings) get their producer-side doorbell.
    void wake();

    /// Install a hook run once per loop turn on the shard thread, before
    /// timers fire (the engine drains its command mailbox here). Set
    /// before start().
    void set_turn_hook(std::function<void()> fn) { turn_hook_ = std::move(fn); }

    /// Look up the agent terminating `flow_id` (shard thread only;
    /// nullptr for unknown).
    qtp::agent* find_agent(std::uint32_t flow_id) {
        const auto it = agents_.find(flow_id);
        return it == agents_.end() ? nullptr : it->second.get();
    }

    /// Visit every attached agent (shard thread only; do not attach or
    /// detach from inside the visitor). The engine's metrics reaper uses
    /// this to sample per-connection state across both session roles.
    void for_each_agent(const std::function<void(std::uint32_t, qtp::agent&)>& fn) {
        for (auto& [flow, a] : agents_) fn(flow, *a);
    }

    /// Attach an agent terminating `flow_id` on this shard; the shard
    /// owns it. Only before start() or from the shard thread — use
    /// post() otherwise. The flow must hash to this shard
    /// (flow_shard_map::owner), or its inbound packets will be handed to
    /// a shard that does not know it.
    template <typename agent_type>
    agent_type* attach(std::uint32_t flow_id, std::unique_ptr<agent_type> a) {
        agent_type* raw = a.get();
        attach_dynamic(flow_id, std::move(a));
        return raw;
    }

    // --- qtp::environment (shard thread only) ---
    util::sim_time now() const override;
    qtp::timer_id schedule(util::sim_time delay, std::function<void()> fn) override;
    void cancel(qtp::timer_id id) override;
    void send(packet::packet pkt) override;
    std::uint32_t local_addr() const override { return cfg_.port; }
    util::rng& random() override { return rng_; }
    void attach_dynamic(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a) override;
    void detach_dynamic(std::uint32_t flow_id) override { agents_.erase(flow_id); }
    void set_default_agent(qtp::agent* a) override { default_agent_ = a; }
    std::uint32_t send_burst() const override { return cfg_.send_burst; }

    std::size_t index() const { return cfg_.index; }
    std::size_t agent_count() const { return agents_.size(); }
    const shard_counters& counters() const { return stats_; }
    shard_counters& counters() { return stats_; }
    shard_stats stats() const;
    const flow_shard_map& flow_map() const { return map_; }

    /// This shard's metrics registry (wait-free updates on the shard
    /// thread; any thread may read/merge it). Built-in series:
    /// vtp_shard_turn_ns (busy time of each loop turn, excluding the
    /// reactor sleep) and vtp_timer_fire_latency_ns (wheel lateness vs
    /// true deadline). engine::server adds its own series here and
    /// aggregates the registries in metrics().
    trace::registry& metrics() { return metrics_; }
    const trace::registry& metrics() const { return metrics_; }

private:
    /// A datagram crossing shards: copied whole into the ring slot so no
    /// allocation or shared ownership crosses the thread boundary.
    struct handoff_msg {
        std::uint32_t len = 0;
        std::uint8_t bytes[max_datagram];
    };

    void run();
    void turn();
    void on_socket_readable();
    void drain_posted();
    void drain_handoffs();
    void dispatch(const std::uint8_t* dgram, std::size_t len);
    void flush_tx();

    shard_config cfg_;
    flow_shard_map map_;
    util::rng rng_;

    int fd_ = -1;
    int wake_r_ = -1, wake_w_ = -1; ///< self-pipe: post()/handoff wake-up
    reactor reactor_;
    timer_wheel wheel_;
    buffer_pool pool_;
    rx_batch rx_;
    std::vector<tx_item> tx_pending_;

    std::unordered_map<std::uint32_t, std::unique_ptr<qtp::agent>> agents_;
    qtp::agent* default_agent_ = nullptr;

    /// inbound_[j]: ring produced by shard j, consumed (and owned) by
    /// this shard. outbound_[i] points at peer i's inbound ring for us.
    /// Entries for self are null.
    std::vector<std::unique_ptr<spsc_queue<handoff_msg>>> inbound_;
    std::vector<spsc_queue<handoff_msg>*> outbound_;
    std::vector<shard*> peers_;
    std::vector<std::uint8_t> notify_; ///< per-batch: peers needing a wake-up

    std::mutex posted_mu_;
    std::vector<std::function<void()>> posted_;
    std::function<void()> turn_hook_;

    std::thread thread_;
    std::atomic<bool> running_{false};

    shard_counters stats_;
    trace::registry metrics_;
    trace::histogram* turn_ns_ = nullptr; ///< cached vtp_shard_turn_ns
};

} // namespace vtp::engine
