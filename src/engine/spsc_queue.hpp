// Bounded single-producer/single-consumer ring for cross-shard packet
// handoff. One producer thread push()es, one consumer thread pop()s; no
// locks, no allocation after construction. A full ring rejects the push
// (the engine counts the drop and lets the transport's loss recovery
// deal with it — exactly what a NIC queue would do).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vtp::engine {

template <typename T>
class spsc_queue {
public:
    /// Capacity is rounded up to a power of two (minimum 2).
    explicit spsc_queue(std::size_t capacity) {
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        ring_.resize(cap);
        mask_ = cap - 1;
    }

    spsc_queue(const spsc_queue&) = delete;
    spsc_queue& operator=(const spsc_queue&) = delete;

    /// Producer side. Returns false when the ring is full.
    bool push(T&& v) {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) > mask_) return false;
        ring_[t & mask_] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side. Returns false when the ring is empty.
    bool pop(T& out) {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        if (tail_.load(std::memory_order_acquire) == h) return false;
        out = std::move(ring_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /// Approximate (either side may be mid-update).
    std::size_t size() const {
        const std::uint64_t t = tail_.load(std::memory_order_acquire);
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        return t >= h ? static_cast<std::size_t>(t - h) : 0;
    }

    std::size_t capacity() const { return mask_ + 1; }

private:
    std::vector<T> ring_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::uint64_t> head_{0}; ///< consumer cursor
    alignas(64) std::atomic<std::uint64_t> tail_{0}; ///< producer cursor
};

} // namespace vtp::engine
