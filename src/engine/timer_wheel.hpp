// Hierarchical timer wheel: O(1) amortized schedule/cancel for the
// server engine's per-shard timer load (pacing, feedback, handshake and
// reap timers of thousands of connections on one thread).
//
// Four levels of 64 slots at a ~262 µs tick give exact O(1) placement
// for deadlines up to ~73 minutes; anything further parks in the top
// level and re-cascades. Deadlines are rounded *up* to the next tick so
// a timer never fires early (the qtp::environment contract); lateness is
// bounded by one tick plus the caller's advance() cadence.
//
// Single-threaded by design, like the agents it serves. Callbacks may
// freely schedule and cancel (including cancelling timers that are due
// in the same advance() call and have not fired yet).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "trace/metrics.hpp"
#include "util/time.hpp"

namespace vtp::engine {

class timer_wheel {
public:
    using timer_id = std::uint64_t;

    static constexpr int tick_shift = 18; ///< 2^18 ns ≈ 262 µs per tick
    static constexpr util::sim_time tick_ns = util::sim_time{1} << tick_shift;
    static constexpr int level_bits = 6;
    static constexpr std::size_t slots_per_level = std::size_t{1} << level_bits;
    static constexpr int levels = 4;

    /// `now` anchors the wheel's current tick (same clock as advance()).
    explicit timer_wheel(util::sim_time now = 0);
    ~timer_wheel();

    timer_wheel(const timer_wheel&) = delete;
    timer_wheel& operator=(const timer_wheel&) = delete;

    /// Arm a timer for absolute time `deadline`; never fires early.
    timer_id schedule_at(util::sim_time deadline, std::function<void()> fn);

    /// Disarm; returns false for unknown/already-fired ids (no-op).
    bool cancel(timer_id id);

    /// Fire everything due at or before `now`. `now` must not go
    /// backwards across calls.
    void advance(util::sim_time now);

    /// Earliest time advance() could fire something, or a safe
    /// intermediate wake-up (cascade boundary) when only far timers are
    /// armed; util::time_never when idle. Never later than the true next
    /// deadline, so it is a valid event-loop sleep bound.
    util::sim_time next_deadline_hint() const;

    std::size_t pending() const { return pending_; }

    /// Observe each fired timer's lateness — advance()'s `now` minus the
    /// timer's rounded-up deadline — into `h` (metrics hook; nullptr
    /// disables, the default). Entries store their true deadline tick, so
    /// this costs one subtraction per fire.
    void set_fire_latency_histogram(trace::histogram* h) { fire_latency_ = h; }

private:
    struct entry {
        entry* next = nullptr;
        entry** pprev = nullptr; ///< hlist back-link: unlink without list head
        std::uint64_t id = 0;
        std::uint64_t tick = 0; ///< true absolute deadline tick
        std::function<void()> fn;
    };

    static void unlink(entry* e) {
        *e->pprev = e->next;
        if (e->next != nullptr) e->next->pprev = e->pprev;
        e->next = nullptr;
        e->pprev = nullptr;
    }

    void link(entry* e, int level, std::size_t slot);
    void place(entry* e);
    void cascade(int level, std::uint64_t tick);
    void expire_current_tick();
    entry* alloc_entry();
    void recycle(entry* e);

    entry* slots_[levels][slots_per_level] = {};
    std::unordered_map<std::uint64_t, entry*> by_id_;
    entry* free_list_ = nullptr;
    std::uint64_t current_tick_;
    std::uint64_t next_id_ = 1;
    std::size_t pending_ = 0;
    trace::histogram* fire_latency_ = nullptr;
    util::sim_time advance_now_ = 0; ///< `now` of the advance() in progress
};

} // namespace vtp::engine
