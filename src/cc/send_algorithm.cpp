#include "cc/send_algorithm.hpp"

#include "cc/newreno_cc.hpp"
#include "cc/tfrc_cc.hpp"
#include "cc/westwood.hpp"

namespace vtp::cc {

std::unique_ptr<send_algorithm> make_algorithm(algorithm_id id,
                                               const algorithm_config& cfg) {
    switch (id) {
    case algorithm_id::newreno: return std::make_unique<newreno_sender>(cfg);
    case algorithm_id::westwood: return std::make_unique<westwood_sender>(cfg);
    case algorithm_id::tfrc: break;
    }
    return std::make_unique<tfrc_sender>(cfg);
}

} // namespace vtp::cc
