#include "cc/ack_tracker.hpp"

#include <algorithm>

namespace vtp::cc {

void ack_tracker::on_packet_sent(std::uint64_t seq, std::uint32_t bytes,
                                 util::sim_time now) {
    // Sends are consecutive; tolerate a replay/duplicate defensively.
    if (seq < next_seq_) return;
    // A gap can only appear if the tracker was attached mid-connection
    // (it never is today); fill it with settled zero-byte placeholders.
    while (next_seq_ < seq) {
        pkts_.push_back(entry{0, now, pkt_state::acked});
        ++next_seq_;
    }
    pkts_.push_back(entry{bytes, now, pkt_state::outstanding});
    next_seq_ = seq + 1;
    bytes_in_flight_ += bytes;
    ++outstanding_;
}

void ack_tracker::mark_acked(std::uint64_t begin, std::uint64_t end,
                             feedback_delta& out) {
    begin = std::max(begin, base_);
    end = std::min(end, next_seq_);
    for (std::uint64_t seq = begin; seq < end; ++seq) {
        entry& e = pkts_[static_cast<std::size_t>(seq - base_)];
        if (e.state != pkt_state::outstanding) continue;
        e.state = pkt_state::acked;
        bytes_in_flight_ -= e.bytes;
        --outstanding_;
        out.acked.push_back(packet_sample{seq, e.bytes, e.sent_at});
    }
    if (end > begin) {
        any_acked_ = true;
        highest_acked_ = std::max(highest_acked_, end - 1);
    }
}

ack_tracker::feedback_delta ack_tracker::on_feedback(
    const packet::sack_feedback_segment& fb) {
    feedback_delta out;
    out.prior_bytes_in_flight = bytes_in_flight_;

    if (fb.cum_ack > 0) mark_acked(0, fb.cum_ack, out);
    for (const auto& b : fb.blocks) mark_acked(b.begin, b.end, out);

    // Reorder-window loss: anything still outstanding that the receiver
    // has acknowledged past is presumed lost. Samples only — the SACK
    // scoreboards own actual retransmission decisions.
    if (any_acked_ && highest_acked_ >= reorder_threshold_) {
        const std::uint64_t lost_below = highest_acked_ - reorder_threshold_ + 1;
        const std::uint64_t end = std::min(lost_below, next_seq_);
        for (std::uint64_t seq = base_; seq < end; ++seq) {
            entry& e = pkts_[static_cast<std::size_t>(seq - base_)];
            if (e.state != pkt_state::outstanding) continue;
            e.state = pkt_state::lost;
            bytes_in_flight_ -= e.bytes;
            --outstanding_;
            out.lost.push_back(packet_sample{seq, e.bytes, e.sent_at});
        }
    }

    settle_front();
    return out;
}

std::vector<packet_sample> ack_tracker::on_rto() {
    std::vector<packet_sample> lost;
    for (std::uint64_t seq = base_; seq < next_seq_; ++seq) {
        entry& e = pkts_[static_cast<std::size_t>(seq - base_)];
        if (e.state != pkt_state::outstanding) continue;
        e.state = pkt_state::lost;
        lost.push_back(packet_sample{seq, e.bytes, e.sent_at});
    }
    bytes_in_flight_ = 0;
    outstanding_ = 0;
    pkts_.clear();
    base_ = next_seq_;
    return lost;
}

void ack_tracker::settle_front() {
    while (!pkts_.empty() && pkts_.front().state != pkt_state::outstanding) {
        pkts_.pop_front();
        ++base_;
    }
}

} // namespace vtp::cc
