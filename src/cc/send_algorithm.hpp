// Pluggable congestion control: the send-algorithm interface.
//
// The paper's thesis is that a versatile transport negotiates its per-flow
// service composition at runtime — and the congestion controller is a
// composition axis like any other. `send_algorithm` abstracts the sender's
// rate decision behind a QUIC-style interface (`on_packet_sent`,
// `on_congestion_event`, `can_send`, `pacing_rate`, ...) so the profile
// layer can select TFRC, NewReno or Westwood at handshake and swap them
// mid-flow through the reneg exchange. `export_state`/`import_state`
// carry the incumbent's bandwidth/RTT estimate across a swap so the new
// algorithm starts from the measured operating point instead of
// slow-start.
//
// The gTFRC guaranteed-rate floor (QTPAF) lives here, in the base class:
// `pacing_rate()` never returns less than the negotiated floor, whatever
// algorithm runs underneath. TFRC additionally threads the floor into its
// RFC 3448 arithmetic (see tfrc_cc.hpp) so its wire behaviour is
// byte-identical to the pre-subsystem implementation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cc/algorithm_id.hpp"
#include "tfrc/sender.hpp"
#include "util/time.hpp"

namespace vtp::cc {

/// One transmitted packet, as the ack tracker reports it back in
/// congestion events.
struct packet_sample {
    std::uint64_t seq = 0;
    std::uint32_t bytes = 0;
    util::sim_time sent_at = 0;
};

/// Everything one feedback report tells the congestion controller. The
/// connection computes the TFRC loss event rate upstream (sender- or
/// receiver-side, per the estimation profile feature) and the ack tracker
/// derives the newly acked / newly lost vectors; each algorithm consumes
/// the subset it understands.
struct congestion_event {
    util::sim_time now = 0;
    /// Fresh RTT sample from this feedback (0 = none).
    util::sim_time rtt_sample = 0;
    /// Receiver-reported receive rate, bytes/s.
    double x_recv_bytes = 0.0;
    /// TFRC loss event rate p for this report.
    double loss_event_rate = 0.0;
    /// Bytes outstanding immediately before this event was processed.
    std::uint64_t prior_bytes_in_flight = 0;
    std::vector<packet_sample> acked;
    std::vector<packet_sample> lost;
};

/// Portable congestion state, the swap currency: whatever the outgoing
/// algorithm measured, expressed in units every algorithm understands.
struct cc_state {
    double bandwidth_bytes_per_s = 0.0;
    double loss_event_rate = 0.0;
    util::sim_time smoothed_rtt = 0;
    util::sim_time min_rtt = 0;
    bool has_rtt = false;
};

struct algorithm_config {
    std::uint32_t packet_size = 1000;
    /// gTFRC floor in bits/s (0 disables; applied by the base class).
    double guaranteed_rate_bps = 0.0;
    /// TFRC tuning, threaded through for the tfrc implementation (other
    /// algorithms only read equation.packet_size_bytes via packet_size).
    tfrc::rate_controller_config tfrc_rate{};
};

class send_algorithm {
public:
    explicit send_algorithm(const algorithm_config& cfg)
        : packet_size_(cfg.packet_size), floor_bps_(cfg.guaranteed_rate_bps) {}
    virtual ~send_algorithm() = default;

    virtual algorithm_id id() const = 0;

    /// A data packet (or zero-byte tail probe) left the sender.
    virtual void on_packet_sent(std::uint64_t seq, std::uint32_t bytes,
                                std::uint64_t bytes_in_flight, util::sim_time now) = 0;

    /// One feedback report, pre-digested (see congestion_event).
    virtual void on_congestion_event(const congestion_event& ev) = 0;

    /// The nofeedback/RTO timer expired with `bytes_in_flight` outstanding.
    virtual void on_rto(std::uint64_t bytes_in_flight, util::sim_time now) = 0;

    /// Window gate: may another packet go out with this much in flight?
    /// Rate-based algorithms always say yes (the pacing timer is their
    /// only regulator); window-based ones compare against cwnd.
    virtual bool can_send(std::uint64_t bytes_in_flight) const = 0;

    /// Estimated path bandwidth in bits/s (session_stats surface).
    virtual double bandwidth_estimate_bps() const = 0;

    /// How long to wait for feedback before on_rto fires.
    virtual util::sim_time nofeedback_interval() const = 0;

    virtual bool has_rtt() const = 0;
    virtual util::sim_time smoothed_rtt() const = 0;
    virtual double loss_rate() const = 0;
    virtual bool in_slow_start() const = 0;

    /// Congestion window in bytes for window-based algorithms; 0 for
    /// purely rate-paced ones (TFRC). Observability surface: the flight
    /// recorder samples it into cc_window trace records.
    virtual std::uint64_t cwnd_bytes() const { return 0; }

    /// Swap support: snapshot the measured operating point / adopt the
    /// predecessor's so a mid-flow algorithm change does not restart from
    /// slow-start.
    virtual cc_state export_state() const = 0;
    virtual void import_state(const cc_state& st) = 0;

    /// Paced sending rate in bytes/s, never below the gTFRC floor. The
    /// floor clamp lives here so every algorithm honours a negotiated AF
    /// reservation without reimplementing it.
    double pacing_rate() const {
        return std::max(raw_pacing_rate(), floor_bps_ / 8.0);
    }

    /// Renegotiated gTFRC floor (bits/s, 0 disables). TFRC overrides to
    /// also thread the floor through its RFC 3448 back-off arithmetic.
    virtual void set_guaranteed_rate(double bps) { floor_bps_ = bps; }
    double guaranteed_rate() const { return floor_bps_; }

protected:
    /// The algorithm's own rate decision, before the floor clamp.
    virtual double raw_pacing_rate() const = 0;

    std::uint32_t packet_size_;
    double floor_bps_;
};

/// Instantiate the implementation for a negotiated algorithm id.
std::unique_ptr<send_algorithm> make_algorithm(algorithm_id id,
                                               const algorithm_config& cfg);

} // namespace vtp::cc
