// NewReno re-homed behind the send-algorithm interface.
//
// Wraps the byte-counted RFC 5681/6582 cwnd arithmetic from src/tcp/ with
// the sequence-space bookkeeping that class deliberately leaves to its
// owner: recovery entry/exit at the highest-sent boundary, an EWMA srtt,
// and pacing at cwnd/srtt. The window gate (can_send) is the primary
// regulator; pacing merely spreads the window across the RTT so the
// simulated queues see a stream, not a burst.
//
// A mid-flow import seeds cwnd = ssthresh = bandwidth × srtt (the
// predecessor's measured BDP), so the flow resumes in congestion
// avoidance at the established operating point instead of slow-start.
#pragma once

#include <algorithm>

#include "cc/send_algorithm.hpp"
#include "tcp/newreno.hpp"

namespace vtp::cc {

class newreno_sender final : public send_algorithm {
public:
    explicit newreno_sender(const algorithm_config& cfg)
        : send_algorithm(cfg), cwnd_(make_cwnd_config(cfg.packet_size)) {}

    algorithm_id id() const override { return algorithm_id::newreno; }

    void on_packet_sent(std::uint64_t seq, std::uint32_t, std::uint64_t,
                        util::sim_time) override {
        highest_sent_ = std::max(highest_sent_, seq);
    }

    void on_congestion_event(const congestion_event& ev) override {
        if (ev.rtt_sample > 0) update_rtt(ev.rtt_sample);
        loss_rate_ = ev.loss_event_rate;

        std::uint64_t acked_bytes = 0;
        std::uint64_t highest_acked = 0;
        for (const auto& s : ev.acked) {
            acked_bytes += s.bytes;
            highest_acked = std::max(highest_acked, s.seq);
        }

        // Recovery ends once a packet sent after the loss was detected is
        // acknowledged (the RFC 6582 recovery point, here in connection
        // sequence space — retransmissions travel under fresh numbers).
        if (in_recovery_ && !ev.acked.empty() && highest_acked >= recovery_end_) {
            cwnd_.exit_recovery();
            in_recovery_ = false;
        }

        if (!ev.lost.empty() && !in_recovery_) {
            cwnd_.enter_recovery(ev.prior_bytes_in_flight);
            in_recovery_ = true;
            recovery_end_ = highest_sent_;
        } else if (!in_recovery_ && acked_bytes > 0) {
            cwnd_.on_new_ack(acked_bytes);
        }
    }

    void on_rto(std::uint64_t bytes_in_flight, util::sim_time) override {
        cwnd_.on_timeout(bytes_in_flight);
        in_recovery_ = false;
    }

    bool can_send(std::uint64_t bytes_in_flight) const override {
        return bytes_in_flight < cwnd_.cwnd();
    }

    double bandwidth_estimate_bps() const override { return raw_pacing_rate() * 8.0; }

    util::sim_time nofeedback_interval() const override {
        if (!has_rtt_) return util::seconds(2);
        return std::max<util::sim_time>(4 * srtt_, util::milliseconds(500));
    }

    bool has_rtt() const override { return has_rtt_; }
    util::sim_time smoothed_rtt() const override { return srtt_; }
    double loss_rate() const override { return loss_rate_; }
    bool in_slow_start() const override { return cwnd_.in_slow_start(); }
    std::uint64_t cwnd_bytes() const override { return cwnd_.cwnd(); }

    cc_state export_state() const override {
        cc_state st;
        st.bandwidth_bytes_per_s = raw_pacing_rate();
        st.loss_event_rate = loss_rate_;
        st.smoothed_rtt = srtt_;
        st.min_rtt = min_rtt_;
        st.has_rtt = has_rtt_;
        return st;
    }

    void import_state(const cc_state& st) override {
        if (!st.has_rtt) return;
        update_rtt(st.smoothed_rtt);
        if (st.min_rtt > 0) min_rtt_ = std::min(min_rtt_, st.min_rtt);
        const std::uint64_t bdp = static_cast<std::uint64_t>(
            st.bandwidth_bytes_per_s * util::to_seconds(std::max<util::sim_time>(srtt_, 1)));
        tcp::newreno_config cfg;
        cfg.mss = packet_size_;
        cfg.initial_cwnd = std::max<std::uint64_t>(bdp, 2ull * packet_size_);
        cfg.initial_ssthresh = cfg.initial_cwnd; // cwnd == ssthresh: resume in CA
        cwnd_ = tcp::newreno(cfg);
        in_recovery_ = false;
    }

    const tcp::newreno& window() const { return cwnd_; }

protected:
    double raw_pacing_rate() const override {
        if (!has_rtt_) return static_cast<double>(packet_size_); // 1 pkt/s cold
        return static_cast<double>(cwnd_.cwnd()) /
               util::to_seconds(std::max<util::sim_time>(srtt_, 1));
    }

private:
    static tcp::newreno_config make_cwnd_config(std::uint32_t packet_size) {
        tcp::newreno_config cfg;
        cfg.mss = packet_size;
        return cfg;
    }

    void update_rtt(util::sim_time sample) {
        if (!has_rtt_) {
            srtt_ = sample;
            min_rtt_ = sample;
            has_rtt_ = true;
            return;
        }
        // RFC 6298 smoothing without the variance term (the nofeedback
        // interval's 4x multiplier absorbs jitter).
        srtt_ = (7 * srtt_ + sample) / 8;
        min_rtt_ = std::min(min_rtt_, sample);
    }

    tcp::newreno cwnd_;
    util::sim_time srtt_ = 0;
    util::sim_time min_rtt_ = 0;
    bool has_rtt_ = false;
    double loss_rate_ = 0.0;
    std::uint64_t highest_sent_ = 0;
    std::uint64_t recovery_end_ = 0;
    bool in_recovery_ = false;
};

} // namespace vtp::cc
