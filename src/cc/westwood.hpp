// Westwood-style bandwidth-sampling sender.
//
// TCP Westwood+'s insight: on loss, instead of blindly halving, set the
// window to the measured path capacity — max-filtered delivery rate times
// min-filtered RTT (the BDP). Random wireless losses then cost one
// in-flight correction rather than a multiplicative collapse, while real
// congestion (which inflates the RTT and deflates the delivery rate)
// still shrinks the window. The windowed max/min filters are exact
// monotonic-deque sliding windows (cc/windowed_filter.hpp).
//
// Two bandwidth signals feed the max filter: the receiver-reported
// receive rate x_recv (the same signal TFRC caps its doubling with) and
// the sender-side delivery rate acked-bytes/elapsed between feedback
// events. Either alone is noisy on this feedback cadence; the max filter
// over both tracks the true capacity from below.
#pragma once

#include <algorithm>

#include "cc/send_algorithm.hpp"
#include "cc/windowed_filter.hpp"

namespace vtp::cc {

class westwood_sender final : public send_algorithm {
public:
    explicit westwood_sender(const algorithm_config& cfg)
        : send_algorithm(cfg),
          bw_filter_(bw_window),
          rtt_filter_(rtt_window),
          cwnd_(initial_window(cfg.packet_size)),
          ssthresh_(UINT64_MAX) {}

    algorithm_id id() const override { return algorithm_id::westwood; }

    void on_packet_sent(std::uint64_t seq, std::uint32_t, std::uint64_t,
                        util::sim_time) override {
        highest_sent_ = std::max(highest_sent_, seq);
    }

    void on_congestion_event(const congestion_event& ev) override {
        if (ev.rtt_sample > 0) {
            update_rtt(ev.rtt_sample);
            rtt_filter_.update(ev.rtt_sample, ev.now);
        }
        loss_rate_ = ev.loss_event_rate;

        std::uint64_t acked_bytes = 0;
        std::uint64_t highest_acked = 0;
        for (const auto& s : ev.acked) {
            acked_bytes += s.bytes;
            highest_acked = std::max(highest_acked, s.seq);
        }

        // Bandwidth samples into the max filter.
        if (ev.x_recv_bytes > 0.0) bw_filter_.update(ev.x_recv_bytes, ev.now);
        if (acked_bytes > 0 && last_event_at_ > 0 && ev.now > last_event_at_) {
            const double rate = static_cast<double>(acked_bytes) /
                                util::to_seconds(ev.now - last_event_at_);
            bw_filter_.update(rate, ev.now);
        }
        if (acked_bytes > 0) last_event_at_ = ev.now;

        if (in_recovery_ && !ev.acked.empty() && highest_acked >= recovery_end_)
            in_recovery_ = false;

        if (!ev.lost.empty() && !in_recovery_) {
            // The Westwood response: window to the measured BDP, not half.
            ssthresh_ = std::max<std::uint64_t>(bdp_estimate(ev.now), 2ull * packet_size_);
            cwnd_ = std::min(cwnd_, ssthresh_);
            ca_accumulator_ = 0;
            in_recovery_ = true;
            recovery_end_ = highest_sent_;
            return;
        }
        if (acked_bytes == 0 || in_recovery_) return;

        if (cwnd_ < ssthresh_) {
            cwnd_ += acked_bytes; // slow start
        } else {
            // Byte-counted congestion avoidance: +1 MSS per cwnd acked.
            ca_accumulator_ += acked_bytes;
            if (ca_accumulator_ >= cwnd_) {
                ca_accumulator_ -= cwnd_;
                cwnd_ += packet_size_;
            }
        }
    }

    void on_rto(std::uint64_t, util::sim_time now) override {
        ssthresh_ = std::max<std::uint64_t>(bdp_estimate(now), 2ull * packet_size_);
        cwnd_ = packet_size_;
        ca_accumulator_ = 0;
        in_recovery_ = false;
    }

    bool can_send(std::uint64_t bytes_in_flight) const override {
        return bytes_in_flight < cwnd_;
    }

    double bandwidth_estimate_bps() const override {
        const double bw = bw_filter_.peek(0.0);
        return (bw > 0.0 ? bw : raw_pacing_rate()) * 8.0;
    }

    util::sim_time nofeedback_interval() const override {
        if (!has_rtt_) return util::seconds(2);
        return std::max<util::sim_time>(4 * srtt_, util::milliseconds(500));
    }

    bool has_rtt() const override { return has_rtt_; }
    util::sim_time smoothed_rtt() const override { return srtt_; }
    double loss_rate() const override { return loss_rate_; }
    bool in_slow_start() const override { return cwnd_ < ssthresh_; }
    std::uint64_t cwnd_bytes() const override { return cwnd_; }

    cc_state export_state() const override {
        cc_state st;
        const double bw = bw_filter_.peek(0.0);
        st.bandwidth_bytes_per_s = bw > 0.0 ? bw : raw_pacing_rate();
        st.loss_event_rate = loss_rate_;
        st.smoothed_rtt = srtt_;
        st.min_rtt = rtt_filter_.peek(srtt_);
        st.has_rtt = has_rtt_;
        return st;
    }

    void import_state(const cc_state& st) override {
        if (!st.has_rtt) return;
        update_rtt(st.smoothed_rtt);
        if (st.bandwidth_bytes_per_s > 0.0) {
            // Seed the filter at time 0 relative to the (re)start; real
            // samples will refresh or dominate it within one window.
            bw_filter_.update(st.bandwidth_bytes_per_s, 0);
            const util::sim_time rtt = st.min_rtt > 0 ? st.min_rtt : st.smoothed_rtt;
            rtt_filter_.update(rtt, 0);
            const std::uint64_t bdp = static_cast<std::uint64_t>(
                st.bandwidth_bytes_per_s * util::to_seconds(rtt));
            cwnd_ = std::max<std::uint64_t>(bdp, 2ull * packet_size_);
            ssthresh_ = cwnd_; // resume in congestion avoidance
        }
        in_recovery_ = false;
    }

    std::uint64_t cwnd() const { return cwnd_; }
    std::uint64_t ssthresh() const { return ssthresh_; }

protected:
    double raw_pacing_rate() const override {
        if (!has_rtt_) return static_cast<double>(packet_size_); // 1 pkt/s cold
        return static_cast<double>(cwnd_) /
               util::to_seconds(std::max<util::sim_time>(srtt_, 1));
    }

private:
    static constexpr util::sim_time bw_window = util::seconds(10);
    static constexpr util::sim_time rtt_window = util::seconds(10);

    static std::uint64_t initial_window(std::uint32_t mss) {
        // RFC 3390, same sizing as the TFRC initial window.
        return std::min<std::uint64_t>(4ull * mss,
                                       std::max<std::uint64_t>(2ull * mss, 4380));
    }

    std::uint64_t bdp_estimate(util::sim_time now) {
        const double bw = bw_filter_.best(now, 0.0);
        const util::sim_time rtt = rtt_filter_.best(now, min_rtt_ > 0 ? min_rtt_ : srtt_);
        if (bw <= 0.0 || rtt <= 0) return cwnd_ / 2; // no estimate yet: Reno-like
        return static_cast<std::uint64_t>(bw * util::to_seconds(rtt));
    }

    void update_rtt(util::sim_time sample) {
        if (!has_rtt_) {
            srtt_ = sample;
            min_rtt_ = sample;
            has_rtt_ = true;
            return;
        }
        srtt_ = (7 * srtt_ + sample) / 8;
        min_rtt_ = std::min(min_rtt_, sample);
    }

    windowed_max_filter<double, util::sim_time> bw_filter_;
    windowed_min_filter<util::sim_time, util::sim_time> rtt_filter_;

    std::uint64_t cwnd_;
    std::uint64_t ssthresh_;
    std::uint64_t ca_accumulator_ = 0;
    util::sim_time srtt_ = 0;
    util::sim_time min_rtt_ = 0;
    bool has_rtt_ = false;
    double loss_rate_ = 0.0;
    util::sim_time last_event_at_ = 0;
    std::uint64_t highest_sent_ = 0;
    std::uint64_t recovery_end_ = 0;
    bool in_recovery_ = false;
};

} // namespace vtp::cc
