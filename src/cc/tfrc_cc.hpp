// TFRC re-homed behind the send-algorithm interface.
//
// A thin adapter over tfrc::rate_controller whose wire behaviour is
// byte-identical to the pre-subsystem connection_sender: every number the
// pacing loop reads (allowed rate, RTT, nofeedback interval) comes from
// the exact same RFC 3448 arithmetic it always did. Two details make the
// identity trivial to audit:
//
//  - The gTFRC floor is threaded INTO the rate controller's config (as
//    before), so raw_pacing_rate() == rate_.allowed_rate() already
//    includes it; the base class's floor clamp then maxes a value with
//    itself.
//  - can_send() is unconditionally true and on_packet_sent() is a no-op:
//    TFRC is purely rate-paced, so the window plumbing the interface adds
//    for NewReno/Westwood must not perturb it.
#pragma once

#include "cc/send_algorithm.hpp"
#include "tfrc/sender.hpp"

namespace vtp::cc {

class tfrc_sender final : public send_algorithm {
public:
    explicit tfrc_sender(const algorithm_config& cfg)
        : send_algorithm(cfg), rate_(make_rate_config(cfg)) {}

    algorithm_id id() const override { return algorithm_id::tfrc; }

    void on_packet_sent(std::uint64_t, std::uint32_t, std::uint64_t,
                        util::sim_time) override {}

    void on_congestion_event(const congestion_event& ev) override {
        if (ev.rtt_sample <= 0) return;
        rate_.on_feedback(ev.loss_event_rate, ev.x_recv_bytes, ev.rtt_sample, ev.now);
    }

    void on_rto(std::uint64_t, util::sim_time now) override {
        rate_.on_nofeedback_timeout(now);
    }

    bool can_send(std::uint64_t) const override { return true; }
    double bandwidth_estimate_bps() const override { return rate_.allowed_rate() * 8.0; }
    util::sim_time nofeedback_interval() const override {
        return rate_.nofeedback_interval();
    }
    bool has_rtt() const override { return rate_.has_rtt(); }
    util::sim_time smoothed_rtt() const override { return rate_.rtt(); }
    double loss_rate() const override { return rate_.current_loss_rate(); }
    bool in_slow_start() const override { return rate_.in_slow_start(); }

    cc_state export_state() const override {
        cc_state st;
        st.bandwidth_bytes_per_s = rate_.allowed_rate();
        st.loss_event_rate = rate_.current_loss_rate();
        st.smoothed_rtt = rate_.rtt();
        st.min_rtt = rate_.rtt(); // TFRC keeps no separate min-RTT
        st.has_rtt = rate_.has_rtt();
        return st;
    }

    void import_state(const cc_state& st) override {
        if (!st.has_rtt) return; // predecessor learned nothing; start cold
        rate_.seed(st.bandwidth_bytes_per_s, st.smoothed_rtt, st.loss_event_rate);
    }

    void set_guaranteed_rate(double bps) override {
        send_algorithm::set_guaranteed_rate(bps);
        rate_.set_guaranteed_rate(bps);
    }

    /// Diagnostics / tests: the underlying RFC 3448 controller.
    const tfrc::rate_controller& rate() const { return rate_; }

protected:
    double raw_pacing_rate() const override { return rate_.allowed_rate(); }

private:
    static tfrc::rate_controller_config make_rate_config(const algorithm_config& cfg) {
        tfrc::rate_controller_config rc = cfg.tfrc_rate;
        rc.equation.packet_size_bytes = cfg.packet_size;
        rc.guaranteed_rate_bps = cfg.guaranteed_rate_bps;
        return rc;
    }

    tfrc::rate_controller rate_;
};

} // namespace vtp::cc
