// Congestion-control algorithm identifiers.
//
// The id is a negotiated profile feature: it travels in the handshake's
// profile bits (packet/segment.hpp, bits 4-5) and may be renegotiated
// mid-flow like any other profile dimension. Kept in its own header so
// core/profile.hpp can name the enum without pulling in the full
// send-algorithm interface.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace vtp::cc {

/// Wire values of the cc profile bits. `tfrc` is 0 so every pre-cc
/// profile encoding decodes unchanged (and encodes byte-identically).
/// Value 3 is unassigned and rejected by the wire decoder.
enum class algorithm_id : std::uint8_t {
    tfrc = 0,     ///< RFC 3448 equation-based rate control (+ gTFRC floor)
    newreno = 1,  ///< RFC 5681/6582 window arithmetic, paced
    westwood = 2, ///< bandwidth-sampling sender (windowed max-BW / min-RTT)
};

inline constexpr std::uint8_t algorithm_id_count = 3;

constexpr const char* to_string(algorithm_id id) {
    switch (id) {
    case algorithm_id::tfrc: return "tfrc";
    case algorithm_id::newreno: return "newreno";
    case algorithm_id::westwood: return "westwood";
    }
    return "?";
}

constexpr std::optional<algorithm_id> algorithm_from_string(std::string_view name) {
    if (name == "tfrc") return algorithm_id::tfrc;
    if (name == "newreno") return algorithm_id::newreno;
    if (name == "westwood") return algorithm_id::westwood;
    return std::nullopt;
}

} // namespace vtp::cc
