// Sliding-window extremum filter (the Westwood/BBR building block).
//
// Tracks the best (maximum or minimum, by Compare) of all samples whose
// timestamp lies within the trailing window. Implemented as a monotonic
// deque: a new sample evicts every older sample it dominates, so the
// front is always the in-window best and update/best are O(1) amortised
// — and, unlike the 3-estimate approximation some stacks use, the answer
// is *exact*, which is what the randomized-vs-reference unit suite
// asserts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

namespace vtp::cc {

/// Compare(a, b) == true means `a` dominates (replaces) `b`. Use
/// std::greater for a max filter, std::less for a min filter.
template <typename ValueT, typename TimeT, typename Compare>
class windowed_filter {
public:
    explicit windowed_filter(TimeT window) : window_(window) {}

    /// Insert a sample taken at `now` (timestamps must be non-decreasing)
    /// and expire everything older than `now - window`.
    void update(ValueT value, TimeT now) {
        while (!samples_.empty() && samples_.front().at + window_ < now)
            samples_.pop_front();
        // Equal samples are kept dominated too: the newer timestamp keeps
        // the estimate alive longer at no accuracy cost.
        while (!samples_.empty() && !Compare()(samples_.back().value, value))
            samples_.pop_back();
        samples_.push_back({now, value});
    }

    /// Best in-window sample as of `now` (expires stale entries first).
    /// Returns `fallback` when no sample is in the window.
    ValueT best(TimeT now, ValueT fallback = ValueT{}) {
        while (!samples_.empty() && samples_.front().at + window_ < now)
            samples_.pop_front();
        return samples_.empty() ? fallback : samples_.front().value;
    }

    /// Best as last computed, without advancing time (const peek).
    ValueT peek(ValueT fallback = ValueT{}) const {
        return samples_.empty() ? fallback : samples_.front().value;
    }

    bool empty() const { return samples_.empty(); }
    void reset() { samples_.clear(); }
    TimeT window() const { return window_; }
    void set_window(TimeT w) { window_ = w; }

private:
    struct entry {
        TimeT at;
        ValueT value;
    };
    std::deque<entry> samples_; ///< front = in-window best
    TimeT window_;
};

template <typename ValueT, typename TimeT>
using windowed_max_filter = windowed_filter<ValueT, TimeT, std::greater<ValueT>>;
template <typename ValueT, typename TimeT>
using windowed_min_filter = windowed_filter<ValueT, TimeT, std::less<ValueT>>;

} // namespace vtp::cc
