// Sender-side flight bookkeeping for the congestion-control subsystem.
//
// Turns SACK feedback into the acked/lost deltas the send-algorithm
// interface consumes: which packets were newly acknowledged by this
// report, which are now presumed lost (SACKed more than `reorder
// threshold` packets ahead), and how many bytes remain in flight.
//
// Deliberately passive: no timers, no environment access — the tracker
// only mutates on the sender's own send/feedback/RTO calls. That keeps it
// invisible to the deterministic scheduler, which is what lets TFRC run
// through the cc interface with byte-identical traces (the tracker rides
// along, unused by TFRC's math, so a mid-flow swap to a window-based
// algorithm finds the flight state already warm).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cc/send_algorithm.hpp"
#include "packet/segment.hpp"
#include "util/time.hpp"

namespace vtp::cc {

class ack_tracker {
public:
    struct feedback_delta {
        std::vector<packet_sample> acked;
        std::vector<packet_sample> lost;
        std::uint64_t prior_bytes_in_flight = 0;
    };

    /// Record a transmission. Sequence numbers must be the sender's
    /// consecutive per-connection numbering (retransmissions travel under
    /// fresh sequence numbers in this protocol, so there is no ambiguity).
    void on_packet_sent(std::uint64_t seq, std::uint32_t bytes, util::sim_time now);

    /// Digest one SACK report into newly-acked / newly-lost vectors.
    /// A packet is declared lost once the receiver has acknowledged a
    /// sequence number `reorder_threshold` or more beyond it.
    feedback_delta on_feedback(const packet::sack_feedback_segment& fb);

    /// Retransmission timeout: everything outstanding is presumed lost.
    /// Returns the newly-lost samples; bytes_in_flight drops to zero.
    std::vector<packet_sample> on_rto();

    std::uint64_t bytes_in_flight() const { return bytes_in_flight_; }
    std::uint64_t packets_outstanding() const { return outstanding_; }
    std::uint64_t highest_sent() const { return next_seq_ == 0 ? 0 : next_seq_ - 1; }
    std::uint64_t highest_acked() const { return highest_acked_; }
    bool any_acked() const { return any_acked_; }

    static constexpr std::uint64_t reorder_threshold = 3;

    /// Widen the loss-declaration horizon (multipath striping reorders
    /// across paths far beyond the single-path tolerance; see
    /// path::manager_config::multipath_reorder_tolerance).
    void set_reorder_threshold(std::uint64_t pkts) {
        reorder_threshold_ = pkts < 1 ? 1 : pkts;
    }

private:
    enum class pkt_state : std::uint8_t { outstanding, acked, lost };
    struct entry {
        std::uint32_t bytes = 0;
        util::sim_time sent_at = 0;
        pkt_state state = pkt_state::outstanding;
    };

    void mark_acked(std::uint64_t begin, std::uint64_t end, feedback_delta& out);
    void settle_front();

    std::deque<entry> pkts_; ///< pkts_[i] is sequence number base_ + i
    std::uint64_t base_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t bytes_in_flight_ = 0;
    std::uint64_t outstanding_ = 0;
    std::uint64_t highest_acked_ = 0;
    bool any_acked_ = false;
    std::uint64_t reorder_threshold_ = reorder_threshold;
};

} // namespace vtp::cc
