#include "diffserv/marker.hpp"

namespace vtp::diffserv {

token_bucket_marker::token_bucket_marker(double cir_bps, std::size_t cbs_bytes)
    : committed_(cir_bps, cbs_bytes) {}

packet::dscp token_bucket_marker::mark(const packet::packet& pkt, util::sim_time now) {
    return committed_.consume(pkt.size_bytes, now) ? packet::dscp::af11 : packet::dscp::af12;
}

srtcm_marker::srtcm_marker(double cir_bps, std::size_t cbs_bytes, std::size_t ebs_bytes)
    : committed_(cir_bps, cbs_bytes), excess_(cir_bps, ebs_bytes) {}

packet::dscp srtcm_marker::mark(const packet::packet& pkt, util::sim_time now) {
    if (committed_.consume(pkt.size_bytes, now)) return packet::dscp::af11;
    if (excess_.consume(pkt.size_bytes, now)) return packet::dscp::af12;
    return packet::dscp::af13;
}

trtcm_marker::trtcm_marker(double cir_bps, std::size_t cbs_bytes, double pir_bps,
                           std::size_t pbs_bytes)
    : committed_(cir_bps, cbs_bytes), peak_(pir_bps, pbs_bytes) {}

packet::dscp trtcm_marker::mark(const packet::packet& pkt, util::sim_time now) {
    if (!peak_.consume(pkt.size_bytes, now)) return packet::dscp::af13;
    if (committed_.consume(pkt.size_bytes, now)) return packet::dscp::af11;
    return packet::dscp::af12;
}

} // namespace vtp::diffserv
