// Continuous-refill token bucket, the metering primitive behind every
// DiffServ marker in this library.
#pragma once

#include <cstddef>

#include "util/time.hpp"

namespace vtp::diffserv {

class token_bucket {
public:
    /// `rate_bps` refill rate in bits/s; `burst_bytes` bucket depth.
    token_bucket(double rate_bps, std::size_t burst_bytes);

    /// Refill to `now`, then atomically consume `bytes` tokens if
    /// available; returns whether the packet conformed.
    bool consume(std::size_t bytes, util::sim_time now);

    /// Tokens currently available (after refill to `now`).
    double available(util::sim_time now);

    double rate_bps() const { return rate_bytes_per_second_ * 8.0; }
    std::size_t burst_bytes() const { return static_cast<std::size_t>(capacity_); }

private:
    void refill(util::sim_time now);

    double rate_bytes_per_second_;
    double capacity_;
    double tokens_;
    util::sim_time last_refill_ = 0;
};

} // namespace vtp::diffserv
