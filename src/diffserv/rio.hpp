// RIO ("RED with In and Out") queue — the DiffServ AF per-hop behaviour.
//
// Coupled variant (RIO-C): in-profile (AF11/green) arrivals are dropped
// according to the average *in-profile* occupancy with permissive
// thresholds; out-of-profile arrivals (AF12/AF13/best-effort) according
// to the average *total* occupancy with aggressive thresholds. Under
// congestion out-profile packets are shed first, which is what protects
// the committed rate of AF-compliant flows — and what gTFRC/QTPAF exploit.
#pragma once

#include <deque>

#include "sim/red.hpp"

namespace vtp::diffserv {

struct rio_params {
    sim::red_params in;    ///< applied to AF11 against avg in-profile occupancy
    sim::red_params out;   ///< applied to everything else against avg total occupancy
    std::size_t capacity_bytes = 0;
};

class rio_queue : public sim::queue_discipline {
public:
    rio_queue(rio_params params, std::uint64_t seed);

    bool enqueue(packet::packet pkt, sim::sim_time now) override;
    std::optional<packet::packet> dequeue(sim::sim_time now) override;
    std::size_t byte_length() const override { return bytes_total_; }
    std::size_t packet_length() const override { return fifo_.size(); }
    std::string name() const override { return "rio"; }

    std::size_t in_profile_bytes_queued() const { return bytes_in_; }
    std::uint64_t in_drops() const { return in_drops_; }
    std::uint64_t out_drops() const { return out_drops_; }
    double average_in() const { return red_in_.average(); }
    double average_total() const { return red_out_.average(); }

private:
    static bool is_in_profile(const packet::packet& pkt) {
        return pkt.ds == packet::dscp::af11;
    }

    sim::red_state red_in_;
    sim::red_state red_out_;
    std::size_t capacity_bytes_;
    std::size_t bytes_total_ = 0;
    std::size_t bytes_in_ = 0;
    std::deque<packet::packet> fifo_;
    util::rng rng_;
    sim::sim_time idle_since_ = 0;
    sim::sim_time in_idle_since_ = 0;
    std::uint64_t in_drops_ = 0;
    std::uint64_t out_drops_ = 0;
};

/// RIO parameters that protect in-profile traffic on a bottleneck with a
/// `capacity_packets`-packet buffer: out thresholds at 10–40% of the
/// buffer with max_p 0.2, in thresholds at 40–80% with max_p 0.02.
rio_params default_rio_params(std::size_t capacity_packets, std::size_t packet_size);

} // namespace vtp::diffserv
