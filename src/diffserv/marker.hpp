// DiffServ edge markers.
//
// A marker colours each packet of a flow according to its traffic
// profile. The two-colour token-bucket marker (in-profile -> AF11,
// excess -> AF12) is the conditioner used in the AF bandwidth-assurance
// literature the paper builds on; srTCM (RFC 2697) and trTCM (RFC 2698)
// are provided for completeness and ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "diffserv/token_bucket.hpp"
#include "packet/segment.hpp"

namespace vtp::diffserv {

class marker {
public:
    virtual ~marker() = default;
    /// Colour one packet (returns the DSCP to stamp).
    virtual packet::dscp mark(const packet::packet& pkt, util::sim_time now) = 0;
    virtual std::string name() const = 0;
};

/// Two-colour single-rate marker: conforming bytes are AF11 (green),
/// excess AF12 (yellow).
class token_bucket_marker : public marker {
public:
    token_bucket_marker(double cir_bps, std::size_t cbs_bytes);
    packet::dscp mark(const packet::packet& pkt, util::sim_time now) override;
    std::string name() const override { return "tb-2colour"; }

private:
    token_bucket committed_;
};

/// RFC 2697 single-rate three-colour marker (colour-blind mode).
class srtcm_marker : public marker {
public:
    srtcm_marker(double cir_bps, std::size_t cbs_bytes, std::size_t ebs_bytes);
    packet::dscp mark(const packet::packet& pkt, util::sim_time now) override;
    std::string name() const override { return "srtcm"; }

private:
    token_bucket committed_;
    token_bucket excess_;
};

/// RFC 2698 two-rate three-colour marker (colour-blind mode).
class trtcm_marker : public marker {
public:
    trtcm_marker(double cir_bps, std::size_t cbs_bytes, double pir_bps, std::size_t pbs_bytes);
    packet::dscp mark(const packet::packet& pkt, util::sim_time now) override;
    std::string name() const override { return "trtcm"; }

private:
    token_bucket committed_;
    token_bucket peak_;
};

} // namespace vtp::diffserv
