#include "diffserv/token_bucket.hpp"

#include <algorithm>

namespace vtp::diffserv {

token_bucket::token_bucket(double rate_bps, std::size_t burst_bytes)
    : rate_bytes_per_second_(rate_bps / 8.0),
      capacity_(static_cast<double>(burst_bytes)),
      tokens_(static_cast<double>(burst_bytes)) {}

void token_bucket::refill(util::sim_time now) {
    if (now <= last_refill_) return;
    const double elapsed = util::to_seconds(now - last_refill_);
    tokens_ = std::min(capacity_, tokens_ + elapsed * rate_bytes_per_second_);
    last_refill_ = now;
}

bool token_bucket::consume(std::size_t bytes, util::sim_time now) {
    refill(now);
    const double needed = static_cast<double>(bytes);
    if (tokens_ + 1e-9 < needed) return false;
    tokens_ -= needed;
    return true;
}

double token_bucket::available(util::sim_time now) {
    refill(now);
    return tokens_;
}

} // namespace vtp::diffserv
