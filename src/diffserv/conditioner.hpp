// DiffServ edge conditioner: per-flow markers installed at a node's
// ingress. This is the "network service" a QoS-enabled domain offers:
// the application negotiates a committed rate (CIR), the edge marks its
// bytes in/out of profile, the core RIO queue protects in-profile bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "diffserv/marker.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"

namespace vtp::diffserv {

class conditioner {
public:
    explicit conditioner(sim::scheduler& sched) : sched_(sched) {}

    /// Contract `flow_id` for `cir_bps` with the given bucket depth,
    /// using the standard two-colour marker.
    void set_profile(std::uint32_t flow_id, double cir_bps, std::size_t cbs_bytes);

    /// Install an arbitrary marker for a flow (srTCM/trTCM ablations).
    void set_marker(std::uint32_t flow_id, std::unique_ptr<marker> m);

    /// Attach to a node: every packet entering it gets coloured.
    /// Packets of uncontracted flows pass unmarked (best effort).
    void install(sim::node& n);

    /// Attach to an end host's node, marking only traffic *originating*
    /// there (feedback flowing back to the host must not consume profile
    /// tokens — marking is per direction at a DiffServ edge).
    void install_egress(sim::node& n);

    struct flow_stats {
        std::uint64_t green_packets = 0;
        std::uint64_t green_bytes = 0;
        std::uint64_t yellow_packets = 0;
        std::uint64_t yellow_bytes = 0;
        std::uint64_t red_packets = 0;
        std::uint64_t red_bytes = 0;
    };
    const flow_stats& stats(std::uint32_t flow_id) const;

private:
    void colour(packet::packet& pkt);

    sim::scheduler& sched_;
    std::unordered_map<std::uint32_t, std::unique_ptr<marker>> markers_;
    std::unordered_map<std::uint32_t, flow_stats> stats_;
    flow_stats empty_stats_;
};

} // namespace vtp::diffserv
