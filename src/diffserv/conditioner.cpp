#include "diffserv/conditioner.hpp"

namespace vtp::diffserv {

void conditioner::set_profile(std::uint32_t flow_id, double cir_bps, std::size_t cbs_bytes) {
    markers_[flow_id] = std::make_unique<token_bucket_marker>(cir_bps, cbs_bytes);
}

void conditioner::set_marker(std::uint32_t flow_id, std::unique_ptr<marker> m) {
    markers_[flow_id] = std::move(m);
}

void conditioner::install(sim::node& n) {
    n.set_filter([this](packet::packet& pkt) { colour(pkt); });
}

void conditioner::install_egress(sim::node& n) {
    const std::uint32_t self = n.id();
    n.set_filter([this, self](packet::packet& pkt) {
        if (pkt.src == self) colour(pkt);
    });
}

void conditioner::colour(packet::packet& pkt) {
    auto it = markers_.find(pkt.flow_id);
    if (it == markers_.end()) return;
    const packet::dscp colour = it->second->mark(pkt, sched_.now());
    pkt.ds = colour;
    flow_stats& s = stats_[pkt.flow_id];
    switch (colour) {
    case packet::dscp::af11:
        ++s.green_packets;
        s.green_bytes += pkt.size_bytes;
        break;
    case packet::dscp::af12:
        ++s.yellow_packets;
        s.yellow_bytes += pkt.size_bytes;
        break;
    default:
        ++s.red_packets;
        s.red_bytes += pkt.size_bytes;
        break;
    }
}

const conditioner::flow_stats& conditioner::stats(std::uint32_t flow_id) const {
    auto it = stats_.find(flow_id);
    return it == stats_.end() ? empty_stats_ : it->second;
}

} // namespace vtp::diffserv
