#include "diffserv/rio.hpp"

namespace vtp::diffserv {

rio_queue::rio_queue(rio_params params, std::uint64_t seed)
    : red_in_(params.in),
      red_out_(params.out),
      capacity_bytes_(params.capacity_bytes),
      rng_(seed) {}

bool rio_queue::enqueue(packet::packet pkt, sim::sim_time now) {
    const bool in_profile = is_in_profile(pkt);

    // RIO-C: total average is updated on every arrival, in-average only
    // on in-profile arrivals.
    red_out_.update_average(static_cast<double>(bytes_total_), now,
                            fifo_.empty() ? idle_since_ : util::time_never);
    bool early;
    if (in_profile) {
        red_in_.update_average(static_cast<double>(bytes_in_), now,
                               bytes_in_ == 0 ? in_idle_since_ : util::time_never);
        early = red_in_.should_drop(rng_);
    } else {
        early = red_out_.should_drop(rng_);
    }

    const bool overflow = bytes_total_ + pkt.size_bytes > capacity_bytes_;
    if (early || overflow) {
        if (in_profile)
            ++in_drops_;
        else
            ++out_drops_;
        count_drop(pkt);
        return false;
    }

    pkt.enqueued_at = now;
    bytes_total_ += pkt.size_bytes;
    if (in_profile) bytes_in_ += pkt.size_bytes;
    count_enqueue(pkt);
    fifo_.push_back(std::move(pkt));
    return true;
}

std::optional<packet::packet> rio_queue::dequeue(sim::sim_time now) {
    if (fifo_.empty()) return std::nullopt;
    packet::packet pkt = std::move(fifo_.front());
    fifo_.pop_front();
    bytes_total_ -= pkt.size_bytes;
    if (is_in_profile(pkt)) {
        bytes_in_ -= pkt.size_bytes;
        if (bytes_in_ == 0) in_idle_since_ = now;
    }
    if (fifo_.empty()) idle_since_ = now;
    count_dequeue(pkt);
    return pkt;
}

rio_params default_rio_params(std::size_t capacity_packets, std::size_t packet_size) {
    rio_params p;
    const double cap = static_cast<double>(capacity_packets * packet_size);
    p.capacity_bytes = static_cast<std::size_t>(cap);

    p.out.min_th = 0.10 * cap;
    p.out.max_th = 0.40 * cap;
    p.out.max_p = 0.2;
    p.out.weight = 0.002;
    p.out.gentle = true;

    p.in.min_th = 0.40 * cap;
    p.in.max_th = 0.80 * cap;
    p.in.max_p = 0.02;
    p.in.weight = 0.002;
    p.in.gentle = true;
    return p;
}

} // namespace vtp::diffserv
