#include "core/connection.hpp"

#include <algorithm>

#include "packet/wire.hpp"
#include "tfrc/equation.hpp"
#include "util/logging.hpp"

namespace vtp::qtp {

// ---------------------------------------------------------------------------
// connection_sender
// ---------------------------------------------------------------------------

namespace {

stream::stream_options stream0_options(const connection_config& cfg) {
    stream::stream_options opts;
    opts.follow_profile = true; // stream 0 tracks the connection profile
    opts.message_size = cfg.message_size;
    opts.message_deadline = cfg.message_deadline;
    opts.max_transmissions = cfg.max_transmissions;
    return opts;
}

// Striping interleaves paths with unequal delay, so a slow-path packet
// is routinely overtaken by more than the single-path horizon before it
// is SACKed; finalising it would retransmit data that is still in
// flight (see path::manager_config::multipath_reorder_tolerance).
sack::scoreboard_config effective_scoreboard(const connection_config& cfg) {
    sack::scoreboard_config sb = cfg.scoreboard;
    if (cfg.path.enabled && cfg.path.multipath) {
        sb.finalize_horizon = std::max<std::uint64_t>(
            sb.finalize_horizon,
            2 * static_cast<std::uint64_t>(cfg.path.multipath_reorder_tolerance));
    }
    return sb;
}

} // namespace

cc::algorithm_config connection_sender::cc_config(double floor_bps) const {
    cc::algorithm_config acfg;
    acfg.packet_size = cfg_.packet_size;
    acfg.guaranteed_rate_bps = floor_bps;
    acfg.tfrc_rate = cfg_.rate;
    return acfg;
}

connection_sender::connection_sender(connection_config cfg)
    : cfg_(cfg),
      handshake_(cfg.proposal),
      reneg_resp_(cfg.caps),
      estimator_(cfg.estimator),
      mux_(stream0_options(cfg), cfg.total_bytes, cfg.stream_open,
           effective_scoreboard(cfg), cfg.scheduler),
      events_(cfg.event_queue_capacity) {
    cfg_.rate.equation.packet_size_bytes = cfg_.packet_size;
    // Pre-handshake placeholder controller (nothing paces until
    // established); the negotiated profile rebuilds it in on_handshake.
    cc_ = cc::make_algorithm(cfg_.proposal.congestion,
                             cc_config(cfg_.rate.guaranteed_rate_bps));
    if (cfg_.trace_ring_records > 0) {
        tracer_ = std::make_unique<trace::tracer>(cfg_.flow_id, cfg_.trace_ring_records,
                                                  cfg_.trace_sink);
        mux_.set_tracer(tracer_.get());
    }
    if (cfg_.reneg_rate_bps > 0.0)
        reneg_bucket_.emplace(cfg_.reneg_rate_bps, cfg_.reneg_burst_bytes);
    path_.configure(cfg_.path, cfg_.flow_id);
    // Striping reorders across paths; see multipath_reorder_tolerance.
    if (cfg_.path.enabled && cfg_.path.multipath)
        tracker_.set_reorder_threshold(
            static_cast<std::uint64_t>(cfg_.path.multipath_reorder_tolerance));
}

void connection_sender::attach_tracer(std::size_t ring_records,
                                      trace::sink* sink) {
    mux_.set_tracer(nullptr);
    tracer_ = std::make_unique<trace::tracer>(
        cfg_.flow_id, ring_records != 0 ? ring_records : 4096, sink);
    mux_.set_tracer(tracer_.get());
    path_.set_tracer(tracer_.get());
}

void connection_sender::detach_tracer() {
    mux_.set_tracer(nullptr);
    path_.set_tracer(nullptr);
    tracer_.reset();
}

void connection_sender::start(environment& env) {
    env_ = &env;
    start_paths();
    send_syn();
}

void connection_sender::start_paths() {
    if (!path_.enabled()) return;
    path_.set_tracer(tracer_.get());
    path_.set_on_path_changed(
        [this](std::uint32_t old_remote, std::uint32_t new_remote, std::uint8_t cause) {
            // Control traffic (reneg, FIN) and single-path data follow
            // the config address; the CC controller and every stream
            // scoreboard are untouched — the transfer continues at the
            // established operating point on the new 4-tuple.
            cfg_.peer_addr = new_remote;
            util::log(util::log_level::info, "qtp-send", "path changed: ", old_remote,
                      " -> ", new_remote, " cause ", static_cast<int>(cause));
            event ev;
            ev.type = event_type::path_changed;
            ev.offset = old_remote;
            ev.bytes = new_remote;
            emit(ev);
        });
    path_.start(*env_, cfg_.peer_addr);
}

void connection_sender::migrate(std::uint32_t remote) {
    if (!path_.enabled() || env_ == nullptr) return;
    path_.migrate(remote == 0 ? cfg_.peer_addr : remote);
}

void connection_sender::add_path(std::uint32_t remote) {
    if (!path_.enabled() || env_ == nullptr || remote == 0) return;
    path_.add_path(remote);
}

bool connection_sender::on_path_frame(const packet::packet& pkt) {
    if (!path_.enabled()) return false;
    const bool est = handshake_.established();
    if (const auto* pc = std::get_if<packet::path_challenge_segment>(pkt.body.get())) {
        path_.on_challenge(*pc, pkt.src, est);
        return true;
    }
    if (const auto* pr = std::get_if<packet::path_response_segment>(pkt.body.get())) {
        path_.on_response(*pr, pkt.src);
        return true;
    }
    path_.on_datagram(pkt.src, pkt.size_bytes, est);
    return false;
}

void connection_sender::send_syn() {
    if (handshake_.established()) return;
    packet::handshake_segment syn = handshake_.make_syn();
    // Echo the listener's address-validation cookie once we hold one;
    // the first SYN carries 0 and draws a retry from a guarded listener.
    syn.boundary_seq = retry_cookie_;
    env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr, syn));
    handshake_timer_ = env_->schedule(cfg_.handshake_rtx, [this] {
        handshake_timer_ = qtp::no_timer;
        if (tracer_)
            tracer_->push(env_->now(), trace::record_type::timer_fire,
                          static_cast<std::uint8_t>(trace::timer_kind::handshake), 0,
                          0, 0);
        send_syn();
    });
}

void connection_sender::on_handshake(const packet::handshake_segment& seg) {
    if (seg.type == packet::handshake_segment::kind::retry) {
        // Stateless address validation: the listener answered our SYN
        // with a cookie instead of spawning state. Echo it immediately
        // in a fresh SYN (no need to wait for the retransmit timer).
        if (handshake_.established()) return;
        retry_cookie_ = seg.boundary_seq;
        ++syn_retries_received_;
        if (handshake_timer_ != qtp::no_timer) {
            env_->cancel(handshake_timer_);
            handshake_timer_ = qtp::no_timer;
        }
        send_syn();
        return;
    }
    const bool was_established = handshake_.established();
    const auto accepted = handshake_.on_segment(seg);
    if (!accepted || was_established) return;

    active_ = *accepted;
    mux_.set_profile_mode(active_.reliability);
    if (handshake_timer_ != qtp::no_timer) {
        env_->cancel(handshake_timer_);
        handshake_timer_ = qtp::no_timer;
    }

    // The negotiated profile decides the algorithm and rate floor (gTFRC).
    cc_ = cc::make_algorithm(
        active_.congestion,
        cc_config(active_.qos_aware ? active_.target_rate_bps : 0.0));

    util::log(util::log_level::info, "qtp-send", "established: ", active_.describe());
    if (tracer_)
        tracer_->push(env_->now(), trace::record_type::established,
                      static_cast<std::uint8_t>(active_.congestion), 0,
                      active_.encode(), 0);
    event ev;
    ev.type = event_type::established;
    ev.prof = active_;
    emit(ev);
    arm_nofeedback_timer();
    send_next();
}

bool connection_sender::emit(const event& ev) {
    switch (ev.type) {
    case event_type::established:
        if (on_established_) {
            on_established_(ev.prof);
            return true;
        }
        break;
    case event_type::profile_changed:
        if (on_profile_changed_) {
            on_profile_changed_(ev.prof);
            return true;
        }
        break;
    case event_type::closed:
        if (on_closed_) {
            on_closed_();
            return true;
        }
        break;
    default: break;
    }
    if (sink_ != nullptr) {
        std::vector<std::uint8_t> none;
        if (sink_->on_session_event(cfg_.flow_id, ev, none)) return true;
        events_.count_external_drop();
        return false;
    }
    // Callback-mode sessions never poll: discard (the legacy surface).
    if (legacy_mode_) return true;
    return events_.push(ev);
}

void connection_sender::set_event_sink(event_sink* sink) {
    sink_ = sink;
    if (sink_ == nullptr) return;
    // Events queued before the sink existed (established fires while the
    // accept path is still installing it) drain through now.
    event ev;
    std::vector<std::uint8_t> none;
    while (events_.poll(&ev, 1) == 1)
        if (!sink_->on_session_event(cfg_.flow_id, ev, none))
            events_.count_external_drop();
}

bool connection_sender::writable() const {
    return cfg_.max_buffered_bytes == 0 ||
           mux_.buffered_bytes() < cfg_.max_buffered_bytes;
}

void connection_sender::maybe_emit_writable() {
    if (!tx_blocked_ || cfg_.max_buffered_bytes == 0) return;
    const std::uint64_t buffered = mux_.buffered_bytes();
    // Low-watermark hysteresis: one writable per blocked -> half-drained
    // transition, so a fast producer is not woken per packet.
    if (buffered > cfg_.max_buffered_bytes / 2) return;
    event ev;
    ev.type = event_type::writable;
    ev.bytes = cfg_.max_buffered_bytes - buffered;
    // Re-arm the edge if the event was lost to a full queue — otherwise
    // a blocked producer would wait for a writable that never comes.
    tx_blocked_ = !emit(ev);
}

std::uint64_t connection_sender::offer(std::uint32_t stream_id, std::uint64_t n) {
    // Rejected once the stream end was announced (finish), not just once
    // the FIN went out: the receiver may already have seen an
    // end-of-stream marker for the current length.
    if (fin_sent_ || closed_) return 0;
    const std::uint64_t accepted = mux_.offer(stream_id, n, cfg_.max_buffered_bytes);
    if (accepted < n) tx_blocked_ = true; // arm the writable edge
    if (accepted > 0 && env_ != nullptr && handshake_.established() &&
        send_timer_ == qtp::no_timer)
        send_next();
    return accepted;
}

std::uint64_t connection_sender::offer_bytes(std::uint32_t stream_id,
                                             const std::uint8_t* data, std::uint64_t n) {
    if (fin_sent_ || closed_) return 0;
    const std::uint64_t accepted =
        mux_.offer_bytes(stream_id, data, n, cfg_.max_buffered_bytes);
    if (accepted < n) tx_blocked_ = true;
    if (accepted > 0 && env_ != nullptr && handshake_.established() &&
        send_timer_ == qtp::no_timer)
        send_next();
    return accepted;
}

std::uint32_t connection_sender::open_stream(const stream::stream_options& opts) {
    if (fin_sent_ || closed_) return stream::invalid_stream;
    return mux_.open_stream(opts);
}

void connection_sender::finish_stream() {
    mux_.finish_all();
    after_finish();
}

void connection_sender::finish_stream(std::uint32_t stream_id) {
    mux_.finish(stream_id);
    after_finish();
}

void connection_sender::after_finish() {
    if (env_ == nullptr || !handshake_.established()) return;
    maybe_begin_close();
    // Everything already sent: announce the stream length with a
    // zero-payload end-of-stream marker so the receiver can finalise.
    if (!fin_sent_ && send_timer_ == qtp::no_timer && work_available()) send_next();
}

void connection_sender::request_renegotiate(const profile& p) {
    if (!handshake_.established() || closed_ || env_ == nullptr) return;
    reneg_.start(*env_, cfg_.flow_id, cfg_.peer_addr, cfg_.handshake_rtx, "qtp-send", p);
    if (tracer_)
        tracer_->push(env_->now(), trace::record_type::reneg_proposed, 0, 0,
                      p.encode(), static_cast<std::uint64_t>(p.target_rate_bps));
}

void connection_sender::apply_profile(const profile& p, std::uint64_t boundary_seq) {
    // Any reliability-mode change restarts the coverage the scoreboards
    // of profile-following streams are accountable for: bytes sent under
    // the previous mode keep its semantics (untracked under none,
    // possibly abandoned under partial) and must not gate
    // full-reliability completion afterwards.
    const cc::algorithm_id prev_cc = active_.congestion;
    mux_.set_profile_mode(p.reliability);
    active_ = p;
    ++renegotiations_;
    last_reneg_boundary_ = boundary_seq;
    // Swap micro-mechanisms in place: the congestion state (rate, RTT,
    // loss history) survives the switch; only the composition changes.
    // The estimator has recorded every transmission since the start, so
    // flipping to sender-side estimation mid-flight has send times for
    // packets already in the air.
    const double floor_bps = active_.qos_aware ? active_.target_rate_bps : 0.0;
    if (active_.congestion != prev_cc) {
        // Congestion-controller swap: the successor imports the
        // incumbent's measured bandwidth/RTT so the flow resumes at its
        // operating point instead of restarting from slow-start.
        const cc::cc_state st = cc_->export_state();
        cc_ = cc::make_algorithm(active_.congestion, cc_config(floor_bps));
        cc_->import_state(st);
        ++cc_swaps_;
        // The pending send slot was paced at the old algorithm's rate.
        if (send_timer_ != qtp::no_timer) {
            env_->cancel(send_timer_);
            send_timer_ = qtp::no_timer;
            schedule_next_send();
        }
    } else {
        cc_->set_guaranteed_rate(floor_bps);
    }
    util::log(util::log_level::info, "qtp-send", "renegotiated: ", active_.describe(),
              " from seq ", boundary_seq);
    if (tracer_)
        tracer_->push(env_->now(), trace::record_type::reneg_applied,
                      static_cast<std::uint8_t>(active_.congestion), 0,
                      active_.encode(), boundary_seq);
    event ev;
    ev.type = event_type::profile_changed;
    ev.prof = active_;
    emit(ev);
    // A reliability switch changes what counts as pending work (tail
    // probes appear or disappear), so re-evaluate the pacing loop.
    if (send_timer_ == qtp::no_timer && work_available()) send_next();
}

void connection_sender::on_reneg(const packet::handshake_segment& seg) {
    if (!handshake_.established()) return;
    if (seg.type == packet::handshake_segment::kind::reneg) {
        // A peer can retransmit proposals arbitrarily fast and each one
        // costs responder work; the budget drops the excess up front.
        if (reneg_bucket_ &&
            !reneg_bucket_->consume(packet::wire_size(packet::segment{seg}),
                                    env_->now())) {
            ++reneg_rate_limited_;
            return;
        }
        // Simultaneous proposals tie-break by role: the sender's wins.
        // While our own proposal is outstanding we defer answering; the
        // receiver yields (see connection_receiver::on_reneg), so its
        // retransmissions are answered once our exchange settles.
        if (reneg_.pending()) return;
        // Peer proposes; we are the responder. The boundary is our next
        // transmission: everything from next_seq_ runs the new profile.
        const auto resp = reneg_resp_.on_segment(seg, next_seq_);
        if (!resp) return;
        if (resp->is_new) apply_profile(resp->accepted, resp->ack.boundary_seq);
        env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr,
                                       resp->ack));
        return;
    }
    if (const auto accepted = reneg_.on_ack(*env_, seg)) {
        // Our own proposal came back accepted: it governs our packets
        // from the next transmission on.
        apply_profile(*accepted, next_seq_);
    }
}

stream::send_policy connection_sender::send_policy_now() const {
    stream::send_policy pol;
    // A retransmission is pointless if it cannot beat the deadline:
    // allow one-way delay (RTT/2) plus scheduling slack.
    const util::sim_time rtt =
        cc_->has_rtt() ? cc_->smoothed_rtt() : util::milliseconds(100);
    pol.partial_margin = rtt / 2 + util::milliseconds(5);
    pol.packet_size = cfg_.packet_size;
    return pol;
}

bool connection_sender::work_available() const {
    if (mux_.has_payload_work()) return true;
    // Tail phase: outstanding transmissions whose fate is unknown. We
    // keep sending zero-payload probes so the receiver's highest sequence
    // advances and the scoreboards can finalise the tail (else a loss in
    // the last `horizon` packets would stall the transfer forever).
    return mux_.probe_needed() && !closed_;
}

void connection_sender::on_packet(const packet::packet& pkt) {
    if (on_path_frame(pkt)) return;
    if (const auto* hs = std::get_if<packet::handshake_segment>(pkt.body.get())) {
        if (hs->type == packet::handshake_segment::kind::fin_ack) {
            if (fin_sent_ && !closed_) {
                closed_ = true;
                if (fin_timer_ != qtp::no_timer) env_->cancel(fin_timer_);
                fin_timer_ = qtp::no_timer;
                if (nofeedback_timer_ != qtp::no_timer) env_->cancel(nofeedback_timer_);
                nofeedback_timer_ = qtp::no_timer;
                reneg_.cancel(*env_);
                path_.stop();
                util::log(util::log_level::info, "qtp-send", "closed");
                if (tracer_) {
                    tracer_->push(env_->now(), trace::record_type::closed, 0, 0, 0, 0);
                    tracer_->flush();
                }
                event ev;
                ev.type = event_type::closed;
                emit(ev);
            }
            return;
        }
        if (hs->type == packet::handshake_segment::kind::reneg ||
            hs->type == packet::handshake_segment::kind::reneg_ack) {
            on_reneg(*hs);
            return;
        }
        on_handshake(*hs);
        return;
    }
    if (const auto* fb = std::get_if<packet::sack_feedback_segment>(pkt.body.get())) {
        if (handshake_.established()) {
            on_sack_feedback(*fb);
            maybe_begin_close();
        }
        return;
    }
}

void connection_sender::maybe_begin_close() {
    if (fin_sent_ || !handshake_.established()) return;
    // Every stream finished and complete under its own reliability mode
    // (an unlimited synthetic source never closes, as before).
    if (!mux_.all_done()) return;
    fin_sent_ = true;
    send_fin();
}

void connection_sender::send_fin() {
    fin_timer_ = qtp::no_timer;
    if (closed_ || fin_attempts_ >= 10) return;
    ++fin_attempts_;
    if (tracer_ && fin_attempts_ > 1)
        tracer_->push(env_->now(), trace::record_type::timer_fire,
                      static_cast<std::uint8_t>(trace::timer_kind::fin), 0,
                      static_cast<std::uint64_t>(fin_attempts_), 0);
    packet::handshake_segment fin;
    fin.type = packet::handshake_segment::kind::fin;
    env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr, fin));
    const util::sim_time retry =
        std::max<util::sim_time>(cc_->has_rtt() ? 2 * cc_->smoothed_rtt() : 0,
                                 util::milliseconds(200));
    fin_timer_ = env_->schedule(retry, [this] { send_fin(); });
}

void connection_sender::on_sack_feedback(const packet::sack_feedback_segment& fb) {
    const util::sim_time now = env_->now();
    const util::sim_time sample =
        std::max<util::sim_time>(now - fb.ts_echo - fb.t_delay, util::microseconds(1));

    // Loss estimation: locally (QTPlight) or trusted from the receiver.
    double p = 0.0;
    if (active_.estimation == tfrc::estimation_mode::sender_side) {
        const util::sim_time rtt_for_grouping =
            cc_->has_rtt() ? cc_->smoothed_rtt() : sample;
        const bool new_event = estimator_.on_feedback(fb, now, rtt_for_grouping);
        if (new_event && estimator_.history().loss_events() == 1 &&
            estimator_.history().intervals().empty()) {
            const double p_init = tfrc::loss_rate_for_throughput(
                cfg_.rate.equation,
                util::to_seconds(std::max<util::sim_time>(rtt_for_grouping, 1)), fb.x_recv);
            estimator_.history().seed_first_interval(p_init);
        }
        p = estimator_.loss_event_rate();
    } else {
        p = fb.has_p ? fb.p : 0.0;
    }

    // The ack tracker digests the SACK into newly-acked/lost vectors for
    // the congestion controller (pure bookkeeping: no timers, no sends).
    cc::ack_tracker::feedback_delta delta = tracker_.on_feedback(fb);
    cc::congestion_event cev;
    cev.now = now;
    cev.rtt_sample = sample;
    cev.x_recv_bytes = fb.x_recv;
    cev.loss_event_rate = p;
    cev.prior_bytes_in_flight = delta.prior_bytes_in_flight;
    cev.acked = std::move(delta.acked);
    cev.lost = std::move(delta.lost);
    cc_->on_congestion_event(cev);
    if (path_.enabled()) {
        // Attribute each packet's fate to the path it travelled so the
        // per-path RTT/loss/rate estimators stay honest under steering.
        for (const cc::packet_sample& s : cev.acked) path_.on_acked(s.seq, sample);
        for (const cc::packet_sample& s : cev.lost) path_.on_lost(s.seq);
    }
    if (tracer_) {
        tracer_->push(now, trace::record_type::ack_rx, 0, 0,
                      static_cast<std::uint64_t>(sample),
                      static_cast<std::uint64_t>(fb.x_recv));
        if (!cev.lost.empty())
            tracer_->push(now, trace::record_type::loss_event, 0, 0,
                          cev.lost.size(), static_cast<std::uint64_t>(p * 1e9));
        tracer_->push(now, trace::record_type::cc_sample,
                      static_cast<std::uint8_t>(cc_->id()), 0,
                      static_cast<std::uint64_t>(cc_->pacing_rate()),
                      static_cast<std::uint64_t>(cc_->bandwidth_estimate_bps()));
        if (const std::uint64_t cwnd = cc_->cwnd_bytes(); cwnd > 0)
            tracer_->push(now, trace::record_type::cc_window,
                          cc_->in_slow_start() ? 1 : 0, 0, cwnd,
                          cev.prior_bytes_in_flight);
    }
    arm_nofeedback_timer();

    // Reliability: every stream's scoreboard sees the connection-wide
    // SACK; newly finalised losses queue on their own stream under that
    // stream's policy.
    mux_.on_sack(fb, send_policy_now());
    maybe_emit_writable();

    // Re-pace: the pending send slot was computed at the old rate.
    if (send_timer_ != qtp::no_timer) {
        env_->cancel(send_timer_);
        send_timer_ = qtp::no_timer;
        schedule_next_send();
    } else if (work_available()) {
        send_next();
    }
}

void connection_sender::send_next() {
    send_timer_ = qtp::no_timer;
    if (!handshake_.established()) return;
    // Batching substrates (engine shards) let a slot carry several
    // segments back-to-back — one timer wake-up, one sendmmsg flush — and
    // the next sleep stretches by the burst so the paced rate holds.
    // Probes and eos markers never burst (one per slot is plenty).
    const std::uint32_t burst = std::max<std::uint32_t>(1, env_->send_burst());
    std::uint32_t sent = 0;
    while (sent < burst) {
        // Window gate (NewReno/Westwood); TFRC is rate-paced and always
        // passes. A window-blocked sender resumes on the next feedback.
        if (!cc_->can_send(tracker_.bytes_in_flight())) break;
        const int kind = send_one();
        if (kind == 0) break;
        ++sent;
        if (kind == 2) break;
    }
    if (sent > 0) {
        schedule_next_send(sent);
        maybe_emit_writable(); // transmissions drained the offer backlog
    }
    if (!work_available()) maybe_begin_close(); // unreliable finite stream
}

int connection_sender::send_one() {
    const util::sim_time now = env_->now();

    // The mux fills the slot: scheduler picks the stream, the stream cuts
    // a retransmission, new bytes, or a pending end-of-stream marker.
    std::optional<stream::payload_pick> pick =
        mux_.next_payload(now, send_policy_now(), next_seq_);

    bool is_probe = false;
    if (!pick && mux_.probe_needed() && !closed_) {
        // Zero-payload tail probe (new sequence number, no stream bytes)
        // so the receiver's highest sequence keeps advancing and the
        // scoreboards can finalise their tails.
        const stream::outbound_stream& s0 = mux_.stream0();
        stream::payload_pick probe;
        probe.stream_id = 0;
        probe.byte_offset = s0.next_offset();
        probe.payload_len = 0;
        probe.end_of_stream =
            !s0.open() && !s0.unlimited() && !s0.has_new_data();
        pick = probe;
        is_probe = true;
    }
    if (!pick) return 0; // nothing to do: pacing resumes on next feedback
    if (pick->payload_len == 0) is_probe = true; // eos markers count as probes

    const std::uint64_t seq = next_seq_++;
    const util::sim_time rtt_estimate = cc_->has_rtt() ? cc_->smoothed_rtt() : 0;

    // Real application bytes ride in the segment; length-only streams
    // (synthetic sources) skip the copy and the allocation entirely.
    std::vector<std::uint8_t> payload;
    if (pick->payload_len > 0) {
        if (const stream::outbound_stream* s = mux_.find(pick->stream_id);
            s != nullptr && s->carries_payload()) {
            payload.assign(pick->payload_len, 0);
            mux_.fetch_payload(*pick, payload.data());
        }
    }

    // Stream 0 travels as the legacy data segment (wire-compatible with
    // pre-mux endpoints); other streams use the multiplexed kind.
    packet::segment body;
    if (pick->stream_id == 0) {
        packet::data_segment seg;
        seg.seq = seq;
        seg.byte_offset = pick->byte_offset;
        seg.payload_len = pick->payload_len;
        seg.ts = now;
        seg.rtt_estimate = rtt_estimate;
        seg.message_id = pick->message_id;
        seg.deadline = pick->deadline;
        seg.is_retransmission = pick->is_retransmission;
        seg.end_of_stream = pick->end_of_stream;
        seg.payload = std::move(payload);
        body = std::move(seg);
    } else {
        packet::data_stream_segment seg;
        seg.seq = seq;
        seg.stream_id = pick->stream_id;
        seg.stream_offset = pick->byte_offset;
        seg.payload_len = pick->payload_len;
        seg.ts = now;
        seg.rtt_estimate = rtt_estimate;
        seg.message_id = pick->message_id;
        seg.deadline = pick->deadline;
        seg.reliability = static_cast<std::uint8_t>(pick->mode);
        seg.is_retransmission = pick->is_retransmission;
        seg.end_of_stream = pick->end_of_stream;
        seg.payload = std::move(payload);
        body = std::move(seg);
    }

    // Record transmissions whenever sender-side estimation is active or
    // could become active through renegotiation (our capabilities allow
    // it): a switch mid-flight must find send times for packets already
    // in the air. Endpoints that can never estimate locally skip the
    // bookkeeping (~512 KB per long-lived connection).
    if (active_.estimation == tfrc::estimation_mode::sender_side ||
        cfg_.caps.support_sender_estimation)
        estimator_.on_send(seq, now);

    ++packets_sent_;
    bytes_sent_ += pick->payload_len;
    if (is_probe) ++probes_sent_;
    if (tracer_)
        tracer_->push(now, trace::record_type::packet_tx,
                      static_cast<std::uint8_t>((pick->is_retransmission ? 1u : 0u) |
                                                (is_probe ? 2u : 0u)),
                      static_cast<std::uint16_t>(pick->stream_id), seq,
                      pick->payload_len);
    tracker_.on_packet_sent(seq, pick->payload_len, now);
    cc_->on_packet_sent(seq, pick->payload_len, tracker_.bytes_in_flight(), now);
    std::uint32_t dst = cfg_.peer_addr;
    if (path_.enabled()) {
        // Dual-path steering: the scheduler picks where this paced slot
        // goes (single validated path short-circuits to the active one).
        const bool urgent =
            pick->deadline != util::time_never && pick->deadline > 0;
        dst = path_sched_.pick(path_, now, cc_->pacing_rate(),
                               std::max<std::uint32_t>(pick->payload_len, 64u), urgent);
        path_.on_data_sent(seq, dst, pick->payload_len);
    }
    env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), dst,
                                   std::move(body)));

    // Mode-none streams get no SACKs, so their payload buffer releases
    // on transmission (other modes release on feedback in mux_.on_sack).
    if (pick->mode == sack::reliability_mode::none && pick->payload_len > 0)
        mux_.trim_after_send(pick->stream_id);

    return is_probe ? 2 : 1;
}

void connection_sender::schedule_next_send(std::uint32_t just_sent) {
    if (send_timer_ != qtp::no_timer || !work_available()) return;
    const double rate = std::max(cc_->pacing_rate(), 1.0);
    // A burst of n segments consumes n slots of rate budget, so the
    // following sleep is n packet-spacings long.
    double spacing_s =
        static_cast<double>(cfg_.packet_size) * std::max<std::uint32_t>(just_sent, 1) /
        rate;
    if (!mux_.has_payload_work()) {
        // Only probes left: a few per RTT are plenty.
        const util::sim_time rtt =
            cc_->has_rtt() ? cc_->smoothed_rtt() : util::milliseconds(100);
        spacing_s = std::max(spacing_s, util::to_seconds(rtt) / 4.0);
    }
    const util::sim_time spacing = std::clamp<util::sim_time>(
        util::from_seconds(spacing_s), util::microseconds(10), util::seconds(2));
    send_timer_ = env_->schedule(spacing, [this] { send_next(); });
}

void connection_sender::arm_nofeedback_timer() {
    if (nofeedback_timer_ != qtp::no_timer) env_->cancel(nofeedback_timer_);
    nofeedback_timer_ = env_->schedule(cc_->nofeedback_interval(), [this] {
        nofeedback_timer_ = qtp::no_timer;
        if (tracer_)
            tracer_->push(env_->now(), trace::record_type::timer_fire,
                          static_cast<std::uint8_t>(trace::timer_kind::nofeedback),
                          0, 0, 0);
        // The whole flight is presumed lost (pure bookkeeping — for TFRC
        // this only keeps the tracker warm for a later algorithm swap).
        const std::uint64_t prior_flight = tracker_.bytes_in_flight();
        tracker_.on_rto();
        cc_->on_rto(prior_flight, env_->now());
        arm_nofeedback_timer();
        // Window algorithms: the RTO emptied the flight and reset cwnd,
        // so sending can resume even though no feedback will arrive to
        // kick the pacing loop. TFRC is excluded to keep its event
        // sequence byte-identical to the pre-subsystem sender.
        if (cc_->id() != cc::algorithm_id::tfrc && send_timer_ == qtp::no_timer &&
            work_available())
            send_next();
    });
}

bool connection_sender::transfer_complete() const {
    const stream::outbound_stream& s0 = mux_.stream0();
    if (s0.unlimited()) return false;
    if (active_.reliability == sack::reliability_mode::full) {
        // Only bytes sent while reliability was active are in the
        // scoreboard; anything before a none -> full renegotiation went
        // out untracked and must not gate completion.
        if (s0.reliable_from_offset() >= s0.total_bytes())
            return s0.next_offset() >= s0.total_bytes();
        return s0.next_offset() >= s0.total_bytes() &&
               s0.reliability().delivered().contains(s0.reliable_from_offset(),
                                                     s0.total_bytes());
    }
    return s0.next_offset() >= s0.total_bytes();
}

// ---------------------------------------------------------------------------
// connection_receiver
// ---------------------------------------------------------------------------

connection_receiver::connection_receiver(connection_config cfg)
    : cfg_(cfg),
      responder_(cfg.caps),
      reneg_resp_(cfg.caps),
      // A striping peer interleaves paths with unequal delay, so holes
      // heal later than the single-path tolerance allows; widen it or
      // reordering masquerades as loss (see manager_config).
      history_(tfrc::loss_history_config{
          .num_intervals = tfrc::loss_history_config{}.num_intervals,
          .reorder_tolerance = cfg.path.enabled && cfg.path.multipath
                                   ? cfg.path.multipath_reorder_tolerance
                                   : tfrc::loss_history_config{}.reorder_tolerance}),
      events_(cfg.event_queue_capacity) {
    if (cfg_.trace_ring_records > 0)
        tracer_ = std::make_unique<trace::tracer>(cfg_.flow_id, cfg_.trace_ring_records,
                                                  cfg_.trace_sink);
    if (cfg_.reneg_rate_bps > 0.0)
        reneg_bucket_.emplace(cfg_.reneg_rate_bps, cfg_.reneg_burst_bytes);
    path_.configure(cfg_.path, cfg_.flow_id);
}

void connection_receiver::start_paths() {
    if (!path_.enabled()) return;
    path_.set_tracer(tracer_.get());
    path_.set_on_path_changed(
        [this](std::uint32_t old_remote, std::uint32_t new_remote, std::uint8_t cause) {
            // Feedback, FIN-ACKs and reneg answers now go to the peer's
            // new (validated) address.
            cfg_.peer_addr = new_remote;
            util::log(util::log_level::info, "qtp-recv", "path changed: ", old_remote,
                      " -> ", new_remote, " cause ", static_cast<int>(cause));
            event ev;
            ev.type = event_type::path_changed;
            ev.offset = old_remote;
            ev.bytes = new_remote;
            emit(ev);
        });
    path_.start(*env_, cfg_.peer_addr);
}

bool connection_receiver::on_path_frame(const packet::packet& pkt) {
    if (!path_.enabled()) return false;
    const bool est = responder_.established();
    if (const auto* pc = std::get_if<packet::path_challenge_segment>(pkt.body.get())) {
        path_.on_challenge(*pc, pkt.src, est);
        return true;
    }
    if (const auto* pr = std::get_if<packet::path_response_segment>(pkt.body.get())) {
        path_.on_response(*pr, pkt.src);
        return true;
    }
    path_.on_datagram(pkt.src, pkt.size_bytes, est);
    return false;
}

void connection_receiver::start(environment& env) {
    env_ = &env;
    start_paths();
    // Liveness deadline: an endpoint spawned by a (possibly spoofed) SYN
    // must hear something only a reachable peer sends — data, a reneg,
    // a FIN — before the deadline, or it closes itself for reaping.
    if (cfg_.handshake_deadline > 0)
        handshake_deadline_timer_ = env_->schedule(cfg_.handshake_deadline, [this] {
            handshake_deadline_timer_ = qtp::no_timer;
            on_handshake_deadline();
        });
}

void connection_receiver::attach_tracer(std::size_t ring_records,
                                        trace::sink* sink) {
    tracer_ = std::make_unique<trace::tracer>(
        cfg_.flow_id, ring_records != 0 ? ring_records : 4096, sink);
    path_.set_tracer(tracer_.get());
}

void connection_receiver::detach_tracer() {
    path_.set_tracer(nullptr);
    tracer_.reset();
}

void connection_receiver::set_half_open_gauge(std::atomic<std::uint64_t>* g) {
    leave_half_open();
    if (g == nullptr || remote_closed_ || received_packets_ > 0) return;
    half_open_gauge_ = g;
    g->fetch_add(1, std::memory_order_relaxed);
}

void connection_receiver::leave_half_open() {
    if (half_open_gauge_ == nullptr) return;
    half_open_gauge_->fetch_sub(1, std::memory_order_relaxed);
    half_open_gauge_ = nullptr;
}

void connection_receiver::on_handshake_deadline() {
    if (remote_closed_) return;
    handshake_timed_out_ = true;
    remote_closed_ = true;
    leave_half_open();
    if (feedback_timer_ != qtp::no_timer) {
        env_->cancel(feedback_timer_);
        feedback_timer_ = qtp::no_timer;
    }
    reneg_.cancel(*env_);
    path_.stop();
    util::log(util::log_level::debug, "qtp-recv", "handshake deadline: half-open, closing");
    if (tracer_) {
        tracer_->push(env_->now(), trace::record_type::timer_fire,
                      static_cast<std::uint8_t>(trace::timer_kind::handshake), 0, 0, 0);
        tracer_->push(env_->now(), trace::record_type::closed, 0, 0, 0, 0);
        tracer_->flush();
    }
    event ev;
    ev.type = event_type::closed;
    emit(ev);
}

void connection_receiver::cancel_handshake_deadline() {
    if (handshake_deadline_timer_ == qtp::no_timer) return;
    env_->cancel(handshake_deadline_timer_);
    handshake_deadline_timer_ = qtp::no_timer;
}

bool connection_receiver::emit(const event& ev) {
    switch (ev.type) {
    case event_type::established:
        if (on_established_) {
            on_established_(ev.prof);
            return true;
        }
        break;
    case event_type::profile_changed:
        if (on_profile_changed_) {
            on_profile_changed_(ev.prof);
            return true;
        }
        break;
    case event_type::closed:
        if (on_closed_) {
            on_closed_();
            return true;
        }
        break;
    case event_type::stream_opened:
        // The demux already fired the legacy hook when one is registered.
        if (on_stream_open_) return true;
        break;
    default: break;
    }
    if (sink_ != nullptr) {
        std::vector<std::uint8_t> none;
        if (sink_->on_session_event(cfg_.flow_id, ev, none)) return true;
        events_.count_external_drop();
        return false;
    }
    if (legacy_mode_) return true;
    return events_.push(ev);
}

void connection_receiver::set_event_sink(event_sink* sink) {
    sink_ = sink;
    if (sink_ == nullptr) return;
    // The accept path installs the sink after the SYN was processed:
    // drain whatever queued meanwhile (established, possibly more).
    event ev;
    std::vector<std::uint8_t> none;
    while (events_.poll(&ev, 1) == 1)
        if (!sink_->on_session_event(cfg_.flow_id, ev, none))
            events_.count_external_drop();
    export_chunks();
}

void connection_receiver::wire_demux_hooks() {
    if (demux_ == nullptr) return;
    // Hooks are installed only when the application registered the
    // corresponding callback: an unhooked demux runs the poll path with
    // no std::function dispatch per packet.
    if (deliver_) demux_->set_legacy_deliver(deliver_);
    if (stream_deliver_) demux_->set_deliver(stream_deliver_);
    if (on_stream_open_) demux_->set_on_stream_open(on_stream_open_);
}

void connection_receiver::export_chunks() {
    if (sink_ == nullptr || demux_ == nullptr) return;
    std::uint32_t id = 0;
    stream::ready_chunk chunk;
    while (demux_->pop_chunk_any(id, chunk)) {
        event rd;
        rd.type = event_type::readable;
        rd.stream_id = id;
        rd.offset = chunk.offset;
        rd.bytes = chunk.bytes.size();
        if (!sink_->on_session_event(cfg_.flow_id, rd, chunk.bytes)) {
            // Export ring full: the bytes were handed back — park the
            // chunk again and retry on the next delivery or feedback
            // tick. Fully-acked payload must never be destroyed.
            demux_->unpop_chunk(id, std::move(chunk));
            return;
        }
    }
}

std::size_t connection_receiver::recv(std::uint32_t stream_id, std::uint8_t* out,
                                      std::size_t cap) {
    return demux_ != nullptr ? demux_->read(stream_id, out, cap) : 0;
}

bool connection_receiver::recv_chunk(std::uint32_t& stream_id_out,
                                     stream::ready_chunk& out) {
    return demux_ != nullptr && demux_->pop_chunk_any(stream_id_out, out);
}

std::uint64_t connection_receiver::recv_buffered_bytes() const {
    return demux_ != nullptr ? demux_->buffered_payload_bytes() : 0;
}

std::uint64_t connection_receiver::recv_dropped_bytes() const {
    return demux_ != nullptr ? demux_->payload_dropped_bytes() : 0;
}

void connection_receiver::on_packet(const packet::packet& pkt) {
    if (on_path_frame(pkt)) return;
    if (const auto* hs = std::get_if<packet::handshake_segment>(pkt.body.get())) {
        if (hs->type == packet::handshake_segment::kind::fin) {
            const bool first_fin = !remote_closed_;
            remote_closed_ = true;
            leave_half_open();
            cancel_handshake_deadline();
            if (feedback_timer_ != qtp::no_timer) {
                env_->cancel(feedback_timer_);
                feedback_timer_ = qtp::no_timer;
            }
            reneg_.cancel(*env_);
            path_.stop();
            packet::handshake_segment ack;
            ack.type = packet::handshake_segment::kind::fin_ack;
            env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(),
                                           cfg_.peer_addr, ack));
            // Retry stranded exports on every FIN (the feedback timer is
            // gone; FIN retransmissions are the last periodic trigger).
            export_chunks();
            if (first_fin) {
                if (tracer_) {
                    tracer_->push(env_->now(), trace::record_type::closed, 0, 0, 0,
                                  0);
                    tracer_->flush();
                }
                event ev;
                ev.type = event_type::closed;
                emit(ev);
            }
            return;
        }
        if (hs->type == packet::handshake_segment::kind::reneg ||
            hs->type == packet::handshake_segment::kind::reneg_ack) {
            on_reneg(*hs);
            return;
        }
        on_handshake(*hs);
        return;
    }
    if (const auto* data = std::get_if<packet::data_segment>(pkt.body.get())) {
        if (responder_.established()) on_data(*data);
        return;
    }
    if (const auto* sdata = std::get_if<packet::data_stream_segment>(pkt.body.get())) {
        if (responder_.established()) on_stream_data(*sdata);
        return;
    }
}

void connection_receiver::on_handshake(const packet::handshake_segment& seg) {
    const auto resp = responder_.on_segment(seg);
    if (!resp) return;

    if (demux_ == nullptr) {
        active_ = resp->accepted;
        const auto order = active_.reliability == sack::reliability_mode::full
                               ? sack::delivery_order::ordered
                               : sack::delivery_order::immediate;
        demux_ = std::make_unique<stream::stream_demux>(order);
        demux_->set_store_limit(cfg_.recv_buffer_bytes);
        wire_demux_hooks();
        util::log(util::log_level::info, "qtp-recv", "accepted: ", active_.describe());
        if (tracer_)
            tracer_->push(env_->now(), trace::record_type::established,
                          static_cast<std::uint8_t>(active_.congestion), 0,
                          active_.encode(), 0);
        event ev;
        ev.type = event_type::established;
        ev.prof = active_;
        emit(ev);
    }
    env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr,
                                   resp->syn_ack));
}

void connection_receiver::request_renegotiate(const profile& p) {
    if (!responder_.established() || remote_closed_ || env_ == nullptr) return;
    reneg_.start(*env_, cfg_.flow_id, cfg_.peer_addr, cfg_.handshake_rtx, "qtp-recv", p);
    if (tracer_)
        tracer_->push(env_->now(), trace::record_type::reneg_proposed, 0, 0,
                      p.encode(), static_cast<std::uint64_t>(p.target_rate_bps));
}

void connection_receiver::apply_profile(const profile& p) {
    active_ = p;
    ++renegotiations_;
    // The estimation locus and feedback contents (has_p) follow active_
    // directly; the loss history simply goes idle or starts warming up.
    // The reassembly delivery order deliberately stays as negotiated at
    // accept time: switching ordered->immediate mid-stream would hand the
    // application bytes past an open gap.
    util::log(util::log_level::info, "qtp-recv", "renegotiated: ", active_.describe());
    if (tracer_)
        tracer_->push(env_->now(), trace::record_type::reneg_applied,
                      static_cast<std::uint8_t>(active_.congestion), 0,
                      active_.encode(), 0);
    event ev;
    ev.type = event_type::profile_changed;
    ev.prof = active_;
    emit(ev);
}

void connection_receiver::on_reneg(const packet::handshake_segment& seg) {
    if (!responder_.established()) return;
    if (seg.type == packet::handshake_segment::kind::reneg) {
        // A peer can retransmit proposals arbitrarily fast and each one
        // costs responder work; the budget drops the excess up front.
        if (reneg_bucket_ &&
            !reneg_bucket_->consume(packet::wire_size(packet::segment{seg}),
                                    env_->now())) {
            ++reneg_rate_limited_;
            return;
        }
        cancel_handshake_deadline(); // a reneg proposal is proof of liveness
        // Simultaneous proposals tie-break by role: the sender's wins.
        // Yield our own outstanding proposal (a late ack for it is still
        // honoured — the sender applies when it answers) and respond.
        reneg_.yield(*env_);
        // The sender proposes; our boundary estimate is the next unseen
        // sequence number (the sender states its own in the data stream).
        const std::uint64_t boundary = ranges_.empty() ? 0 : ranges_.back().end;
        const auto resp = reneg_resp_.on_segment(seg, boundary);
        if (!resp) return;
        if (resp->is_new) apply_profile(resp->accepted);
        env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr,
                                       resp->ack));
        return;
    }
    if (const auto accepted = reneg_.on_ack(*env_, seg)) {
        apply_profile(*accepted);
    }
}

void connection_receiver::on_data(const packet::data_segment& seg) {
    // Legacy single-stream kind: stream 0, delivery order as negotiated.
    // The payload pointer is only trusted when it matches payload_len
    // (the decoder guarantees it; typed sim injection might not).
    const std::uint8_t* payload =
        seg.payload.size() == seg.payload_len && !seg.payload.empty()
            ? seg.payload.data()
            : nullptr;
    ingest_data(seg.seq, seg.ts, seg.rtt_estimate, 0, active_.reliability,
                seg.byte_offset, seg.payload_len, seg.end_of_stream, payload);
}

void connection_receiver::on_stream_data(const packet::data_stream_segment& seg) {
    // The wire decoder validated stream id and reliability bits; on the
    // simulator the typed segment arrives unchecked, so clamp here too.
    if (seg.stream_id >= stream::max_streams ||
        (seg.reliability & packet::stream_reliability_mask) == packet::stream_reliability_mask)
        return;
    const std::uint8_t* payload =
        seg.payload.size() == seg.payload_len && !seg.payload.empty()
            ? seg.payload.data()
            : nullptr;
    ingest_data(seg.seq, seg.ts, seg.rtt_estimate, seg.stream_id,
                static_cast<sack::reliability_mode>(seg.reliability), seg.stream_offset,
                seg.payload_len, seg.end_of_stream, payload);
}

void connection_receiver::ingest_data(std::uint64_t seq, util::sim_time ts,
                                      util::sim_time rtt_estimate,
                                      std::uint32_t stream_id,
                                      sack::reliability_mode mode, std::uint64_t offset,
                                      std::uint32_t len, bool end_of_stream,
                                      const std::uint8_t* payload) {
    cancel_handshake_deadline(); // data proves the peer is live and reachable
    // A decoder-accepted but corrupted (or hostile) segment can carry an
    // absurd sequence jump. Tracking the implied hole costs O(gap) in the
    // receiver-side loss history and poisons SACK feedback, so gate the
    // jump by a window far beyond any honest in-flight amount. (Found by
    // the conformance harness's mutant-injection corrupt mode.)
    const std::uint64_t next_unseen = ranges_.empty() ? 0 : ranges_.back().end;
    if (seq >= next_unseen + cfg_.max_seq_jump) {
        ++wild_seq_rejected_;
        return;
    }
    const util::sim_time now = env_->now();
    ++received_packets_;
    if (received_packets_ == 1) leave_half_open();
    ++packets_since_feedback_;
    received_bytes_ += len;
    bytes_since_feedback_ += len;
    if (tracer_)
        tracer_->push(now, trace::record_type::packet_rx, 0,
                      static_cast<std::uint16_t>(stream_id), seq, len);
    if (rtt_estimate > 0) last_rtt_hint_ = rtt_estimate;
    last_data_ts_ = ts;
    last_data_arrival_ = now;

    record_seq(seq);

    bool new_event = false;
    if (active_.estimation == tfrc::estimation_mode::receiver_side) {
        new_event = history_.on_packet(seq, now, last_rtt_hint_);
        if (new_event && history_.loss_events() == 1 && history_.intervals().empty()) {
            const util::sim_time elapsed =
                now - last_feedback_at_ > 0 ? now - last_feedback_at_ : last_rtt_hint_;
            const double x_recv = util::to_seconds(elapsed) > 0.0
                                      ? static_cast<double>(bytes_since_feedback_) /
                                            util::to_seconds(elapsed)
                                      : 0.0;
            tfrc::equation_params eq;
            eq.packet_size_bytes = cfg_.packet_size;
            history_.seed_first_interval(tfrc::loss_rate_for_throughput(
                eq, util::to_seconds(last_rtt_hint_), x_recv));
        }
    }

    const stream::stream_demux::frame_result fr =
        demux_->on_frame(stream_id, mode, offset, len, end_of_stream, payload, now);
    if (fr.opened) {
        event ev;
        ev.type = event_type::stream_opened;
        ev.stream_id = stream_id;
        ev.reliability = mode;
        emit(ev);
    }
    if (sink_ != nullptr) {
        if (fr.delivered.any()) export_chunks();
    } else if (fr.became_readable) {
        event ev;
        ev.type = event_type::readable;
        ev.stream_id = stream_id;
        ev.bytes = demux_->readable_bytes(stream_id);
        // A lost edge must re-arm, or the consumer never learns about
        // the buffered data (readable is its only wake-up).
        if (!emit(ev)) demux_->clear_readable_signal(stream_id);
    }
    if (fr.finished) {
        event ev;
        ev.type = event_type::fin;
        ev.stream_id = stream_id;
        if (const sack::reassembly* ra = demux_->find(stream_id))
            ev.bytes = ra->stream_length();
        emit(ev);
    }

    if (!seen_data_) {
        seen_data_ = true;
        last_feedback_at_ = now;
        send_feedback();
        return;
    }
    if (new_event) send_feedback();
}

void connection_receiver::record_seq(std::uint64_t seq) {
    if (!ranges_.empty() && ranges_.back().end == seq) {
        ranges_.back().end = seq + 1;
    } else {
        auto it = std::lower_bound(
            ranges_.begin(), ranges_.end(), seq,
            [](const packet::sack_block& b, std::uint64_t s) { return b.end < s; });
        if (it != ranges_.end() && it->begin <= seq && seq < it->end) return;
        if (it != ranges_.end() && it->begin == seq + 1) {
            it->begin = seq;
        } else if (it != ranges_.end() && it->end == seq) {
            it->end = seq + 1;
            auto next = std::next(it);
            if (next != ranges_.end() && next->begin == it->end) {
                it->end = next->end;
                ranges_.erase(next);
            }
        } else {
            ranges_.insert(it, packet::sack_block{seq, seq + 1});
        }
    }
    while (ranges_.size() > 64) ranges_.pop_front();
    // Sequence numbers past the sender's finalisation horizon are settled
    // (retransmissions travel under fresh sequence numbers), so ranges
    // far behind the newest one can be pruned in every reliability mode.
    constexpr std::uint64_t active_window = 256;
    const std::uint64_t highest_end = ranges_.back().end;
    while (ranges_.front().end + active_window < highest_end) {
        ranges_.pop_front();
    }
}

void connection_receiver::arm_feedback_timer() {
    if (feedback_timer_ != qtp::no_timer) env_->cancel(feedback_timer_);
    feedback_timer_ = env_->schedule(last_rtt_hint_, [this] {
        feedback_timer_ = qtp::no_timer;
        // Chunks stranded by a momentarily full export ring retry here
        // (the ring drains as the application polls).
        export_chunks();
        // Zero-payload tail probes count as packets: they must be
        // acknowledged or the sender could never finalise its tail.
        if (bytes_since_feedback_ > 0 || packets_since_feedback_ > 0) send_feedback();
        else arm_feedback_timer();
    });
}

void connection_receiver::send_feedback() {
    const util::sim_time now = env_->now();
    packet::sack_feedback_segment fb;
    fb.cum_ack = ranges_.empty() ? 0 : ranges_.front().begin;
    const std::size_t max_blocks = packet::max_wire_sack_blocks;
    const std::size_t first = ranges_.size() > max_blocks ? ranges_.size() - max_blocks : 0;
    for (std::size_t i = first; i < ranges_.size(); ++i) fb.blocks.push_back(ranges_[i]);
    fb.ts_echo = last_data_ts_;
    fb.t_delay = now - last_data_arrival_;
    const util::sim_time elapsed = now - last_feedback_at_;
    const double window =
        elapsed > 0 ? util::to_seconds(elapsed) : util::to_seconds(last_rtt_hint_);
    fb.x_recv = window > 0.0 ? static_cast<double>(bytes_since_feedback_) / window : 0.0;
    if (active_.estimation == tfrc::estimation_mode::receiver_side) {
        fb.has_p = true;
        fb.p = history_.loss_event_rate();
    }

    packet::packet out = packet::make_packet(cfg_.flow_id, env_->local_addr(),
                                             cfg_.peer_addr, std::move(fb));
    feedback_bytes_ += out.size_bytes;
    ++feedback_sent_;
    if (tracer_)
        tracer_->push(now, trace::record_type::feedback_tx, 0, 0,
                      ranges_.empty() ? 0 : ranges_.back().end,
                      packets_since_feedback_);
    env_->send(std::move(out));

    bytes_since_feedback_ = 0;
    packets_since_feedback_ = 0;
    last_feedback_at_ = now;
    arm_feedback_timer();
}

std::size_t connection_receiver::state_bytes() const {
    std::size_t total = sizeof(*this) + ranges_.size() * sizeof(packet::sack_block);
    if (active_.estimation == tfrc::estimation_mode::receiver_side)
        total += history_.state_bytes();
    if (demux_ != nullptr) total += demux_->state_bytes();
    return total;
}

} // namespace vtp::qtp
