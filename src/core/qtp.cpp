#include "core/qtp.hpp"

namespace vtp::qtp {

connection_pair make_connection(std::uint32_t flow_id, std::uint32_t sender_addr,
                                std::uint32_t receiver_addr, const profile& proposal,
                                const capabilities& receiver_caps, connection_config base) {
    connection_config sender_cfg = base;
    sender_cfg.flow_id = flow_id;
    sender_cfg.peer_addr = receiver_addr;
    sender_cfg.proposal = proposal;

    connection_config receiver_cfg = base;
    receiver_cfg.flow_id = flow_id;
    receiver_cfg.peer_addr = sender_addr;
    receiver_cfg.caps = receiver_caps;

    connection_pair pair;
    pair.sender = std::make_unique<connection_sender>(sender_cfg);
    pair.receiver = std::make_unique<connection_receiver>(receiver_cfg);
    return pair;
}

connection_pair make_qtp_af(std::uint32_t flow_id, std::uint32_t sender_addr,
                            std::uint32_t receiver_addr, double target_rate_bps,
                            connection_config base) {
    return make_connection(flow_id, sender_addr, receiver_addr,
                           qtp_af_profile(target_rate_bps), capabilities{}, base);
}

connection_pair make_qtp_light(std::uint32_t flow_id, std::uint32_t sender_addr,
                               std::uint32_t receiver_addr,
                               sack::reliability_mode reliability, connection_config base) {
    // A light device advertises that it cannot run receiver-side
    // estimation; negotiation would force sender-side even if proposed
    // otherwise.
    capabilities light_caps;
    light_caps.support_receiver_estimation = false;
    return make_connection(flow_id, sender_addr, receiver_addr,
                           qtp_light_profile(reliability), light_caps, base);
}

connection_pair make_qtp_default(std::uint32_t flow_id, std::uint32_t sender_addr,
                                 std::uint32_t receiver_addr, connection_config base) {
    return make_connection(flow_id, sender_addr, receiver_addr, qtp_default_profile(),
                           capabilities{}, base);
}

} // namespace vtp::qtp
