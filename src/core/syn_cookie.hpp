// Stateless address-validation cookies for the accept path.
//
// A listener under a spoofed-SYN flood must not pay per-SYN state. The
// QUIC-style fix: answer an unvalidated SYN with a `retry` segment whose
// cookie is a keyed hash of (flow id, source address, coarse time
// bucket). A genuine client echoes the cookie in a retried SYN — proof
// it can receive at the claimed address — and only then does the
// listener spawn an endpoint. The cookie is recomputable from the
// packet alone, so validation needs no lookup table and minting needs
// no allocation.
//
// Cookies expire with the time bucket: `validate` accepts the current
// and the immediately previous bucket, giving each cookie a lifetime of
// [lifetime, 2*lifetime) depending on where in the bucket it was
// minted. The key is per listener (drawn from the host rng at start),
// so cookies are not portable across listeners or restarts.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace vtp::qtp {

struct syn_cookie_config {
    /// Keyed-hash secret. 0 = draw one from the environment rng at
    /// listener start (the common case); fixed keys are for tests.
    std::uint64_t key = 0;
    /// Time-bucket width; a cookie validates for 1-2 lifetimes.
    util::sim_time lifetime = util::seconds(3);
};

class syn_cookie_jar {
public:
    explicit syn_cookie_jar(syn_cookie_config cfg) : cfg_(cfg) {
        if (cfg_.lifetime <= 0) cfg_.lifetime = util::seconds(3);
    }

    std::uint64_t key() const { return cfg_.key; }
    void set_key(std::uint64_t key) { cfg_.key = key; }

    /// Cookie for (flow, src) in the bucket containing `now`. Never 0 —
    /// 0 on the wire means "no cookie".
    std::uint64_t mint(std::uint32_t flow, std::uint32_t src, util::sim_time now) const {
        return mix(flow, src, bucket(now));
    }

    /// True iff `cookie` was minted for (flow, src) in the current or
    /// the previous bucket.
    bool validate(std::uint64_t cookie, std::uint32_t flow, std::uint32_t src,
                  util::sim_time now) const {
        if (cookie == 0) return false;
        const std::uint64_t b = bucket(now);
        if (cookie == mix(flow, src, b)) return true;
        return b > 0 && cookie == mix(flow, src, b - 1);
    }

private:
    std::uint64_t bucket(util::sim_time now) const {
        if (now < 0) now = 0;
        return static_cast<std::uint64_t>(now) / static_cast<std::uint64_t>(cfg_.lifetime);
    }

    std::uint64_t mix(std::uint32_t flow, std::uint32_t src, std::uint64_t b) const {
        std::uint64_t state = cfg_.key ^ (static_cast<std::uint64_t>(src) << 32) ^ flow;
        state ^= util::splitmix64(state) + b;
        std::uint64_t out = util::splitmix64(state);
        return out == 0 ? 1 : out; // reserve 0 for "no cookie"
    }

    syn_cookie_config cfg_;
};

} // namespace vtp::qtp
