#include "core/negotiation.hpp"

namespace vtp::qtp {

packet::handshake_segment handshake_initiator::make_syn() const {
    packet::handshake_segment syn;
    syn.type = packet::handshake_segment::kind::syn;
    syn.profile_bits = proposal_.encode();
    syn.target_rate_bps = proposal_.target_rate_bps;
    return syn;
}

std::optional<profile> handshake_initiator::on_segment(
    const packet::handshake_segment& seg) {
    if (seg.type != packet::handshake_segment::kind::syn_ack) return std::nullopt;
    accepted_ = profile::decode(seg.profile_bits, seg.target_rate_bps);
    established_ = true;
    return accepted_;
}

std::optional<handshake_responder::response> handshake_responder::on_segment(
    const packet::handshake_segment& seg) {
    if (seg.type != packet::handshake_segment::kind::syn) return std::nullopt;

    if (!established_) {
        const profile proposed = profile::decode(seg.profile_bits, seg.target_rate_bps);
        accepted_ = negotiate(proposed, caps_);
        established_ = true;
    }
    // Duplicate SYNs get the same answer (the SYN-ACK may have been lost).
    response r;
    r.syn_ack.type = packet::handshake_segment::kind::syn_ack;
    r.syn_ack.profile_bits = accepted_.encode();
    r.syn_ack.target_rate_bps = accepted_.target_rate_bps;
    r.accepted = accepted_;
    return r;
}

} // namespace vtp::qtp
