#include "core/negotiation.hpp"

#include "util/logging.hpp"

namespace vtp::qtp {

packet::handshake_segment handshake_initiator::make_syn() const {
    packet::handshake_segment syn;
    syn.type = packet::handshake_segment::kind::syn;
    syn.profile_bits = proposal_.encode();
    syn.target_rate_bps = proposal_.target_rate_bps;
    return syn;
}

std::optional<profile> handshake_initiator::on_segment(
    const packet::handshake_segment& seg) {
    if (seg.type != packet::handshake_segment::kind::syn_ack) return std::nullopt;
    accepted_ = profile::decode(seg.profile_bits, seg.target_rate_bps);
    established_ = true;
    return accepted_;
}

std::optional<handshake_responder::response> handshake_responder::on_segment(
    const packet::handshake_segment& seg) {
    if (seg.type != packet::handshake_segment::kind::syn) return std::nullopt;

    if (!established_) {
        const profile proposed = profile::decode(seg.profile_bits, seg.target_rate_bps);
        accepted_ = negotiate(proposed, caps_);
        established_ = true;
    }
    // Duplicate SYNs get the same answer (the SYN-ACK may have been lost).
    response r;
    r.syn_ack.type = packet::handshake_segment::kind::syn_ack;
    r.syn_ack.profile_bits = accepted_.encode();
    r.syn_ack.target_rate_bps = accepted_.target_rate_bps;
    r.accepted = accepted_;
    return r;
}

packet::handshake_segment reneg_initiator::propose(const profile& p) {
    proposal_ = p;
    state_ = state::pending;
    current_ = packet::handshake_segment{};
    current_.type = packet::handshake_segment::kind::reneg;
    current_.profile_bits = p.encode();
    current_.target_rate_bps = p.target_rate_bps;
    current_.token = ++next_token_;
    return current_;
}

std::optional<profile> reneg_initiator::on_segment(
    const packet::handshake_segment& seg) {
    if (seg.type != packet::handshake_segment::kind::reneg_ack) return std::nullopt;
    if (state_ == state::idle || seg.token != current_.token) return std::nullopt;
    state_ = state::idle;
    return profile::decode(seg.profile_bits, seg.target_rate_bps);
}

std::optional<reneg_responder::response> reneg_responder::on_segment(
    const packet::handshake_segment& seg, std::uint64_t boundary_seq) {
    if (seg.type != packet::handshake_segment::kind::reneg) return std::nullopt;

    // Tokens are monotonic per initiator. A retransmission of the
    // current proposal gets the stored answer (the original ack and its
    // boundary may have been lost, but the switch must not move); a
    // delayed duplicate of an *older*, superseded proposal must be
    // dropped — re-applying it would diverge the endpoints.
    if (any_ && seg.token < last_token_) return std::nullopt;
    if (!any_ || seg.token != last_token_) {
        const profile proposed = profile::decode(seg.profile_bits, seg.target_rate_bps);
        last_accepted_ = negotiate(proposed, caps_);
        last_token_ = seg.token;
        any_ = true;
        last_ack_ = packet::handshake_segment{};
        last_ack_.type = packet::handshake_segment::kind::reneg_ack;
        last_ack_.profile_bits = last_accepted_.encode();
        last_ack_.target_rate_bps = last_accepted_.target_rate_bps;
        last_ack_.token = seg.token;
        last_ack_.boundary_seq = boundary_seq;
        return response{last_ack_, last_accepted_, true};
    }
    return response{last_ack_, last_accepted_, false};
}

void reneg_driver::start(environment& env, std::uint32_t flow_id,
                         std::uint32_t peer_addr, util::sim_time rtx, const char* tag,
                         const profile& p) {
    cancel_timer(env);
    flow_id_ = flow_id;
    peer_addr_ = peer_addr;
    rtx_ = rtx;
    tag_ = tag;
    attempts_ = 0;
    ++proposals_sent_;
    (void)init_.propose(p);
    send_step(env);
}

std::optional<profile> reneg_driver::on_ack(environment& env,
                                            const packet::handshake_segment& seg) {
    const auto accepted = init_.on_segment(seg);
    if (accepted) {
        ++proposals_accepted_;
        cancel_timer(env);
    }
    return accepted;
}

void reneg_driver::yield(environment& env) {
    if (!init_.pending()) return;
    cancel_timer(env);
    init_.abandon();
}

void reneg_driver::cancel(environment& env) { cancel_timer(env); }

void reneg_driver::cancel_timer(environment& env) {
    if (timer_ != no_timer) {
        env.cancel(timer_);
        timer_ = no_timer;
    }
}

void reneg_driver::send_step(environment& env) {
    timer_ = no_timer;
    if (!init_.pending()) return;
    if (attempts_ >= 10) {
        util::log(util::log_level::warn, tag_, "renegotiation retries exhausted");
        init_.abandon(); // a late ack will still be honoured
        return;
    }
    ++attempts_;
    env.send(packet::make_packet(flow_id_, env.local_addr(), peer_addr_,
                                 init_.current()));
    timer_ = env.schedule(rtx_, [this, &env] { send_step(env); });
}

} // namespace vtp::qtp
