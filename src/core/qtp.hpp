// Legacy factories for composed QTP connection pairs.
//
// DEPRECATED ENTRY POINT — new code should use the socket-style facade in
// api/session.hpp / api/server.hpp instead:
//
//   vtp::server srv(net.right_host(0), {});
//   vtp::session tx = vtp::session::connect(net.left_host(0),
//                                           net.right_addr(0),
//                                           vtp::session_options::af(4e6));
//   tx.send(bytes); tx.close();
//
// The session API adds what these factories cannot express: an
// application-driven stream with real payload I/O (send(span)/recv()),
// a polled event queue, explicit backpressure, per-accept capability
// policies, and mid-connection profile renegotiation. The make_qtp_*
// factories below remain as thin shims over the same connection_config
// lowering for code that wires both endpoints by hand; they run
// unchanged on the simulator and the live UDP datapath.
//
// REMOVAL SCHEDULED: these shims (together with the vtp::session
// set_on_* callback shim) are slated for deletion in PR 7 — see the
// README migration tables.
#pragma once

#include <memory>

#include "core/connection.hpp"
#include "core/profile.hpp"

namespace vtp::qtp {

/// A configured sender/receiver pair for one connection.
struct connection_pair {
    std::unique_ptr<connection_sender> sender;
    std::unique_ptr<connection_receiver> receiver;
};

/// QTPAF: gTFRC congestion control honouring the negotiated AF committed
/// rate, composed with full SACK reliability — the paper's QoS-network
/// instance. `target_rate_bps` is the rate contracted with the DiffServ
/// edge (the gTFRC g).
/// @deprecated Prefer vtp::session::connect with session_options::af().
connection_pair make_qtp_af(std::uint32_t flow_id, std::uint32_t sender_addr,
                            std::uint32_t receiver_addr, double target_rate_bps,
                            connection_config base = {});

/// QTPlight: sender-side loss estimation (the receiver only echoes SACK
/// vectors), optional partial reliability — the paper's resource-limited
/// receiver instance.
/// @deprecated Prefer vtp::session::connect with session_options::light().
connection_pair make_qtp_light(std::uint32_t flow_id, std::uint32_t sender_addr,
                               std::uint32_t receiver_addr,
                               sack::reliability_mode reliability =
                                   sack::reliability_mode::none,
                               connection_config base = {});

/// Best-effort default: classic TFRC, no reliability.
/// @deprecated Prefer vtp::session::connect with default session_options.
connection_pair make_qtp_default(std::uint32_t flow_id, std::uint32_t sender_addr,
                                 std::uint32_t receiver_addr, connection_config base = {});

/// Generic factory: any profile/capability combination.
connection_pair make_connection(std::uint32_t flow_id, std::uint32_t sender_addr,
                                std::uint32_t receiver_addr, const profile& proposal,
                                const capabilities& receiver_caps,
                                connection_config base = {});

} // namespace vtp::qtp
