// Public entry point of the versatile transport protocol library.
//
// Quick use (simulation substrate):
//
//   sim::dumbbell net(cfg);
//   auto pair = qtp::make_qtp_af(flow_id, /*sender*/net.left_addr(0),
//                                /*receiver*/net.right_addr(0),
//                                /*target*/4e6);
//   auto* tx = net.left_host(0).attach(flow_id, std::move(pair.sender));
//   auto* rx = net.right_host(0).attach(flow_id, std::move(pair.receiver));
//   net.sched().run_until(util::seconds(60));
//
// The same agents run unchanged on the live UDP datapath (net::udp_host).
#pragma once

#include <memory>

#include "core/connection.hpp"
#include "core/profile.hpp"

namespace vtp::qtp {

/// A configured sender/receiver pair for one connection.
struct connection_pair {
    std::unique_ptr<connection_sender> sender;
    std::unique_ptr<connection_receiver> receiver;
};

/// QTPAF: gTFRC congestion control honouring the negotiated AF committed
/// rate, composed with full SACK reliability — the paper's QoS-network
/// instance. `target_rate_bps` is the rate contracted with the DiffServ
/// edge (the gTFRC g).
connection_pair make_qtp_af(std::uint32_t flow_id, std::uint32_t sender_addr,
                            std::uint32_t receiver_addr, double target_rate_bps,
                            connection_config base = {});

/// QTPlight: sender-side loss estimation (the receiver only echoes SACK
/// vectors), optional partial reliability — the paper's resource-limited
/// receiver instance.
connection_pair make_qtp_light(std::uint32_t flow_id, std::uint32_t sender_addr,
                               std::uint32_t receiver_addr,
                               sack::reliability_mode reliability =
                                   sack::reliability_mode::none,
                               connection_config base = {});

/// Best-effort default: classic TFRC, no reliability.
connection_pair make_qtp_default(std::uint32_t flow_id, std::uint32_t sender_addr,
                                 std::uint32_t receiver_addr, connection_config base = {});

/// Generic factory: any profile/capability combination.
connection_pair make_connection(std::uint32_t flow_id, std::uint32_t sender_addr,
                                std::uint32_t receiver_addr, const profile& proposal,
                                const capabilities& receiver_caps,
                                connection_config base = {});

} // namespace vtp::qtp
