#include "core/events.hpp"

namespace vtp::qtp {

const char* to_string(event_type t) {
    switch (t) {
    case event_type::none: return "none";
    case event_type::established: return "established";
    case event_type::stream_opened: return "stream_opened";
    case event_type::readable: return "readable";
    case event_type::writable: return "writable";
    case event_type::profile_changed: return "profile_changed";
    case event_type::fin: return "fin";
    case event_type::closed: return "closed";
    case event_type::path_changed: return "path_changed";
    }
    return "event?";
}

} // namespace vtp::qtp
