// Composed QTP connection endpoints.
//
// `connection_sender` and `connection_receiver` assemble the
// micro-mechanisms — TFRC rate control (tfrc::rate_controller), loss
// estimation at either end (tfrc::loss_history / tfrc::sender_estimator),
// and SACK reliability (sack::scoreboard + sack::retransmit_queue /
// sack::reassembly) — according to the profile negotiated at handshake.
// The profile is not frozen there: either endpoint may call
// request_renegotiate() mid-connection; the reneg/reneg_ack exchange
// (core/negotiation.hpp) runs the proposal through the peer's
// capabilities and both sides swap micro-mechanisms at the acknowledged
// sequence boundary. Most applications should use the vtp::session /
// vtp::server facade in api/session.hpp instead of these classes.
//
// Data flow, sender side:
//   pacing timer (rate from TFRC) -> next payload = retransmission-queue
//   front (policy-filtered) or new stream bytes -> data segment with a
//   fresh sequence number -> scoreboard + (QTPlight) estimator record.
// Feedback path:
//   SACK feedback -> estimator (sender-side p) or embedded p (receiver
//   side) -> rate controller; SACK blocks -> scoreboard -> lost ranges ->
//   retransmission queue.
#pragma once

#include <cstdint>
#include <functional>

#include "core/environment.hpp"
#include "core/negotiation.hpp"
#include "core/profile.hpp"
#include "sack/reassembly.hpp"
#include "sack/retransmit.hpp"
#include "sack/scoreboard.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/receiver.hpp"
#include "tfrc/sender.hpp"
#include "tfrc/sender_estimator.hpp"

namespace vtp::qtp {

struct connection_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    std::uint32_t packet_size = 1000; ///< payload bytes per data packet

    profile proposal{};    ///< sender side: profile to propose
    /// What this endpoint supports. The receiver uses it to answer the
    /// SYN; both sides use it to answer mid-connection reneg proposals.
    capabilities caps{};

    tfrc::rate_controller_config rate{};
    tfrc::sender_estimator_config estimator{};
    sack::scoreboard_config scoreboard{};
    /// Retransmission cap for partial reliability (0 = unlimited).
    std::uint32_t max_transmissions = 0;

    /// Application source: stream length in bytes (UINT64_MAX = unlimited
    /// synthetic source, the usual benchmark configuration).
    std::uint64_t total_bytes = UINT64_MAX;

    /// Application-driven source (the vtp::session API): the stream grows
    /// through connection_sender::offer() and only ends once
    /// finish_stream() is called — until then no FIN is sent even when
    /// every offered byte is delivered. `total_bytes` is the initial
    /// backlog (use 0 with this flag).
    bool stream_open = false;

    /// Message framing for partial reliability: the stream is cut into
    /// `message_size`-byte messages; each message expires
    /// `message_deadline` after its first transmission. 0 disables
    /// framing (plain byte stream).
    std::uint32_t message_size = 0;
    util::sim_time message_deadline = util::time_never;

    /// Handshake retransmission interval.
    util::sim_time handshake_rtx = util::milliseconds(500);
};

class connection_sender : public qtp::agent {
public:
    explicit connection_sender(connection_config cfg);

    void start(environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "qtp-send"; }

    /// Append `n` bytes to the outgoing stream (application write; only
    /// meaningful with cfg.stream_open).
    void offer(std::uint64_t n);
    /// No more bytes will be offered; the FIN handshake may begin once
    /// everything offered is delivered.
    void finish_stream();

    /// Propose switching the connection to profile `p`. The proposal is
    /// retransmitted until acknowledged; on acceptance (possibly
    /// downgraded by the peer's capabilities) both endpoints swap
    /// micro-mechanisms and on_profile_changed fires.
    void request_renegotiate(const profile& p);
    bool renegotiation_pending() const { return reneg_.pending(); }
    std::uint32_t renegotiations() const { return renegotiations_; }
    /// First sequence number governed by the latest accepted profile.
    std::uint64_t last_reneg_boundary() const { return last_reneg_boundary_; }

    void set_on_established(std::function<void(const profile&)> cb) {
        on_established_ = std::move(cb);
    }
    void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }
    void set_on_profile_changed(std::function<void(const profile&)> cb) {
        on_profile_changed_ = std::move(cb);
    }

    bool established() const { return handshake_.established(); }
    const profile& active_profile() const { return active_; }
    const tfrc::rate_controller& rate() const { return rate_; }
    const sack::scoreboard& reliability() const { return scoreboard_; }
    const sack::retransmit_queue& retransmissions() const { return rtx_queue_; }
    const tfrc::sender_estimator& estimator() const { return estimator_; }

    std::uint64_t packets_sent() const { return packets_sent_; }
    std::uint64_t bytes_sent() const { return bytes_sent_; }
    std::uint64_t new_bytes_sent() const { return next_offset_; }
    /// Current stream length: total_bytes, grown by offer() when
    /// application-driven (UINT64_MAX = unlimited synthetic source).
    std::uint64_t stream_length() const { return cfg_.total_bytes; }
    std::uint64_t rtx_bytes_sent() const { return rtx_bytes_sent_; }
    std::uint64_t probes_sent() const { return probes_sent_; }
    /// Full-reliability completion: every stream byte acknowledged.
    bool transfer_complete() const;
    /// FIN sent and FIN-ACK received: the connection is fully closed.
    bool closed() const { return closed_; }
    bool fin_sent() const { return fin_sent_; }

private:
    void send_syn();
    void on_handshake(const packet::handshake_segment& seg);
    void on_reneg(const packet::handshake_segment& seg);
    void on_sack_feedback(const packet::sack_feedback_segment& fb);
    void apply_profile(const profile& p, std::uint64_t boundary_seq);
    void send_next();
    void schedule_next_send();
    void arm_nofeedback_timer();
    bool work_available() const;
    sack::reliability_policy policy() const;
    void maybe_begin_close();
    void send_fin();

    connection_config cfg_;
    environment* env_ = nullptr;
    handshake_initiator handshake_;
    reneg_driver reneg_;
    reneg_responder reneg_resp_;
    profile active_{};
    bool stream_open_ = false;
    bool eos_marker_sent_ = false;
    /// First stream byte covered by the scoreboard: 0 when reliability
    /// was on from the handshake, the switch offset after a runtime
    /// renegotiation none -> full/partial (earlier bytes were sent
    /// untracked and can never be acknowledged).
    std::uint64_t reliable_from_offset_ = 0;

    tfrc::rate_controller rate_;
    tfrc::sender_estimator estimator_;
    sack::scoreboard scoreboard_;
    sack::retransmit_queue rtx_queue_;

    std::uint64_t next_seq_ = 0;
    std::uint64_t next_offset_ = 0; ///< next new stream byte
    std::uint32_t current_message_id_ = 0;
    util::sim_time current_message_deadline_ = util::time_never;

    qtp::timer_id send_timer_ = qtp::no_timer;
    qtp::timer_id nofeedback_timer_ = qtp::no_timer;
    qtp::timer_id handshake_timer_ = qtp::no_timer;
    qtp::timer_id fin_timer_ = qtp::no_timer;
    bool fin_sent_ = false;
    bool closed_ = false;
    int fin_attempts_ = 0;

    std::function<void(const profile&)> on_established_;
    std::function<void()> on_closed_;
    std::function<void(const profile&)> on_profile_changed_;

    std::uint64_t packets_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
    std::uint64_t rtx_bytes_sent_ = 0;
    std::uint64_t probes_sent_ = 0;
    std::uint32_t renegotiations_ = 0;
    std::uint64_t last_reneg_boundary_ = 0;
};

class connection_receiver : public qtp::agent {
public:
    /// Delivery hook: (stream offset, length).
    using deliver_fn = std::function<void(std::uint64_t, std::uint32_t)>;

    explicit connection_receiver(connection_config cfg);

    void start(environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "qtp-recv"; }

    void set_delivery(deliver_fn cb) { deliver_ = std::move(cb); }

    /// Propose switching the connection to profile `p` (e.g. a mobile
    /// receiver dropping to sender-side estimation on battery pressure).
    void request_renegotiate(const profile& p);
    bool renegotiation_pending() const { return reneg_.pending(); }
    std::uint32_t renegotiations() const { return renegotiations_; }

    void set_on_established(std::function<void(const profile&)> cb) {
        on_established_ = std::move(cb);
    }
    void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }
    void set_on_profile_changed(std::function<void(const profile&)> cb) {
        on_profile_changed_ = std::move(cb);
    }

    bool established() const { return responder_.established(); }
    const profile& active_profile() const { return active_; }
    const sack::reassembly& stream() const { return *reassembly_; }
    const tfrc::loss_history& history() const { return history_; }
    /// Peer announced it is done (FIN seen).
    bool remote_closed() const { return remote_closed_; }

    std::uint64_t received_packets() const { return received_packets_; }
    std::uint64_t received_bytes() const { return received_bytes_; }
    std::uint64_t feedback_sent() const { return feedback_sent_; }
    std::uint64_t feedback_bytes() const { return feedback_bytes_; }
    /// Resident per-connection state (E4 memory metric).
    std::size_t state_bytes() const;

private:
    void on_handshake(const packet::handshake_segment& seg);
    void on_reneg(const packet::handshake_segment& seg);
    void on_data(const packet::data_segment& seg);
    void apply_profile(const profile& p);
    void record_seq(std::uint64_t seq);
    void send_feedback();
    void arm_feedback_timer();

    connection_config cfg_;
    environment* env_ = nullptr;
    handshake_responder responder_;
    reneg_driver reneg_;
    reneg_responder reneg_resp_;
    profile active_{};

    std::unique_ptr<sack::reassembly> reassembly_;
    tfrc::loss_history history_; ///< used only with receiver-side estimation
    deliver_fn deliver_;

    std::deque<packet::sack_block> ranges_; ///< merged received seq ranges
    util::sim_time last_rtt_hint_ = util::milliseconds(100);
    util::sim_time last_data_ts_ = 0;
    util::sim_time last_data_arrival_ = 0;
    std::uint64_t bytes_since_feedback_ = 0;
    std::uint64_t packets_since_feedback_ = 0;
    util::sim_time last_feedback_at_ = 0;
    qtp::timer_id feedback_timer_ = qtp::no_timer;
    bool seen_data_ = false;
    bool remote_closed_ = false;

    std::function<void(const profile&)> on_established_;
    std::function<void()> on_closed_;
    std::function<void(const profile&)> on_profile_changed_;

    std::uint64_t received_packets_ = 0;
    std::uint64_t received_bytes_ = 0;
    std::uint64_t feedback_sent_ = 0;
    std::uint64_t feedback_bytes_ = 0;
    std::uint32_t renegotiations_ = 0;
};

} // namespace vtp::qtp
