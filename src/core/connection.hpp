// Composed QTP connection endpoints.
//
// `connection_sender` and `connection_receiver` assemble the
// micro-mechanisms — congestion control behind the pluggable
// send-algorithm interface (cc::send_algorithm: TFRC, NewReno or
// Westwood), loss estimation at either end (tfrc::loss_history /
// tfrc::sender_estimator), and SACK reliability (sack::scoreboard +
// sack::retransmit_queue / sack::reassembly) — according to the profile
// negotiated at handshake.
// The profile is not frozen there: either endpoint may call
// request_renegotiate() mid-connection; the reneg/reneg_ack exchange
// (core/negotiation.hpp) runs the proposal through the peer's
// capabilities and both sides swap micro-mechanisms at the acknowledged
// sequence boundary. Most applications should use the vtp::session /
// vtp::server facade in api/session.hpp instead of these classes.
//
// Data flow, sender side:
//   pacing timer (rate from the cc algorithm) -> stream::stream_mux picks the stream
//   for this slot (weighted round-robin, deadline promotion) and cuts its
//   payload = that stream's retransmission-queue front (policy-filtered)
//   or new stream bytes -> data / data_stream segment with a fresh
//   connection-wide sequence number -> per-stream scoreboard + (QTPlight)
//   estimator record. Stream 0 is the legacy single stream; open_stream()
//   adds more, each with its own reliability mode, weight and deadline.
// Feedback path:
//   SACK feedback -> estimator (sender-side p) or embedded p (receiver
//   side) -> rate controller; SACK blocks -> scoreboard -> lost ranges ->
//   retransmission queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include <optional>

#include "cc/ack_tracker.hpp"
#include "cc/send_algorithm.hpp"
#include "core/environment.hpp"
#include "path/manager.hpp"
#include "path/scheduler.hpp"
#include "diffserv/token_bucket.hpp"
#include "core/events.hpp"
#include "core/negotiation.hpp"
#include "core/profile.hpp"
#include "sack/reassembly.hpp"
#include "sack/retransmit.hpp"
#include "sack/scoreboard.hpp"
#include "stream/stream_mux.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/receiver.hpp"
#include "tfrc/sender.hpp"
#include "tfrc/sender_estimator.hpp"
#include "trace/tracer.hpp"

namespace vtp::qtp {

struct connection_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    std::uint32_t packet_size = 1000; ///< payload bytes per data packet

    profile proposal{};    ///< sender side: profile to propose
    /// What this endpoint supports. The receiver uses it to answer the
    /// SYN; both sides use it to answer mid-connection reneg proposals.
    capabilities caps{};

    tfrc::rate_controller_config rate{};
    tfrc::sender_estimator_config estimator{};
    sack::scoreboard_config scoreboard{};
    /// Retransmission cap for partial reliability (0 = unlimited).
    std::uint32_t max_transmissions = 0;

    /// Application source: stream length in bytes (UINT64_MAX = unlimited
    /// synthetic source, the usual benchmark configuration).
    std::uint64_t total_bytes = UINT64_MAX;

    /// Application-driven source (the vtp::session API): the stream grows
    /// through connection_sender::offer() and only ends once
    /// finish_stream() is called — until then no FIN is sent even when
    /// every offered byte is delivered. `total_bytes` is the initial
    /// backlog (use 0 with this flag).
    bool stream_open = false;

    /// Message framing for partial reliability: the stream is cut into
    /// `message_size`-byte messages; each message expires
    /// `message_deadline` after its first transmission. 0 disables
    /// framing (plain byte stream). Applies to stream 0; further streams
    /// carry their own framing in stream::stream_options.
    std::uint32_t message_size = 0;
    util::sim_time message_deadline = util::time_never;

    /// Cap on offered-but-unsent bytes across all streams; offer()
    /// returns how much was accepted. 0 = unlimited (legacy behaviour).
    std::uint64_t max_buffered_bytes = 0;

    /// Per-session event ring capacity (poll-based API).
    std::size_t event_queue_capacity = 256;

    /// Receiver: cap on payload bytes buffered for recv(); chunks beyond
    /// it are dropped and counted (session_stats::recv_dropped_bytes).
    /// 0 = unlimited.
    std::uint64_t recv_buffer_bytes = 16u << 20;

    /// Sender stream scheduler (weights quantum, deadline promotion).
    stream::stream_scheduler_config scheduler{};

    /// Handshake retransmission interval.
    util::sim_time handshake_rtx = util::milliseconds(500);

    /// Receiver liveness deadline: a spawned endpoint whose peer shows no
    /// sign of life (no data, renegotiation, or FIN) within this window
    /// transitions to closed so the owner's reap path collects it — the
    /// half-open flood fix. 0 disables.
    util::sim_time handshake_deadline = util::seconds(30);

    /// Bound on incoming renegotiation-proposal processing (token bucket
    /// over wire bytes; 0 = unbounded). A peer retransmitting proposals
    /// beyond the budget sees them dropped and counted
    /// (session_stats::reneg_rate_limited).
    double reneg_rate_bps = 0.0;
    std::size_t reneg_burst_bytes = 0;

    /// Receiver gate: data whose sequence jumps this many packets past
    /// the highest range seen is rejected as corruption/hostile input
    /// (tracking the implied hole costs O(gap) in the loss history).
    /// The default allows ~64 MB in flight at 1 kB packets; raise it for
    /// high-BDP paths whose flight exceeds that.
    std::uint64_t max_seq_jump = 1u << 16;

    /// Flight-recorder tracing (trace/record.hpp): ring capacity in
    /// records, 0 disables every hook (the default — hooks then cost one
    /// null test). Without a sink the ring keeps the most recent events
    /// and counts overwrites (session_stats::trace_events_dropped); with
    /// `trace_sink` set, full rings spill to it as lossless frames
    /// (trace/writer.hpp) and flush at close.
    std::size_t trace_ring_records = 0;
    trace::sink* trace_sink = nullptr;

    /// Connection migration / multipath (path/path.hpp). Disabled by
    /// default: the manager is inert, packet sources are ignored and no
    /// randomness is drawn — wire behaviour is bit-identical to the
    /// pre-path tree (the frozen trace-hash configuration).
    path::manager_config path{};
};

class connection_sender : public qtp::agent {
public:
    explicit connection_sender(connection_config cfg);

    void start(environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "qtp-send"; }

    /// Append `n` bytes to stream 0 (application write; only meaningful
    /// with cfg.stream_open). Returns how many bytes were accepted
    /// (bounded by cfg.max_buffered_bytes).
    std::uint64_t offer(std::uint64_t n) { return offer(0, n); }
    /// Append `n` bytes to stream `id`; returns the accepted count.
    std::uint64_t offer(std::uint32_t stream_id, std::uint64_t n);
    /// Append real application bytes to stream `id`: the accepted prefix
    /// is carried end-to-end in data segments and retained until no
    /// retransmission can need it. A clamped return arms the writable
    /// event for when buffer space frees up.
    std::uint64_t offer_bytes(std::uint32_t stream_id, const std::uint8_t* data,
                              std::uint64_t n);
    /// Buffer space available without clamping (true when unlimited).
    bool writable() const;
    /// No more bytes will be offered on any stream; the FIN handshake may
    /// begin once everything offered is delivered.
    void finish_stream();
    /// Half-close one stream (its end-of-stream marker goes out once the
    /// last offered byte has been transmitted).
    void finish_stream(std::uint32_t stream_id);

    /// Open an additional application stream multiplexed on this
    /// connection. Returns the stream id, or stream::invalid_stream when
    /// the connection is closing or out of ids (256 per connection).
    std::uint32_t open_stream(const stream::stream_options& opts);

    /// Propose switching the connection to profile `p`. The proposal is
    /// retransmitted until acknowledged; on acceptance (possibly
    /// downgraded by the peer's capabilities) both endpoints swap
    /// micro-mechanisms and on_profile_changed fires.
    void request_renegotiate(const profile& p);
    bool renegotiation_pending() const { return reneg_.pending(); }
    std::uint32_t renegotiations() const { return renegotiations_; }
    std::uint64_t reneg_proposals_sent() const { return reneg_.proposals_sent(); }
    std::uint64_t reneg_proposals_accepted() const { return reneg_.proposals_accepted(); }
    /// First sequence number governed by the latest accepted profile.
    std::uint64_t last_reneg_boundary() const { return last_reneg_boundary_; }

    void set_on_established(std::function<void(const profile&)> cb) {
        on_established_ = std::move(cb);
        legacy_mode_ = true;
    }
    void set_on_closed(std::function<void()> cb) {
        on_closed_ = std::move(cb);
        legacy_mode_ = true;
    }
    void set_on_profile_changed(std::function<void(const profile&)> cb) {
        on_profile_changed_ = std::move(cb);
        legacy_mode_ = true;
    }

    /// Drain queued session events (the poll-based API).
    std::size_t poll(event* out, std::size_t max) { return events_.poll(out, max); }
    /// Export events to `sink` instead of the ring (the engine's
    /// cross-thread binding); already queued events are drained into it.
    void set_event_sink(event_sink* sink);
    std::uint64_t events_dropped() const { return events_.dropped(); }

    /// Flight recorder (null when cfg.trace_ring_records == 0).
    const trace::tracer* tracer() const { return tracer_.get(); }
    std::uint64_t trace_recorded() const {
        return tracer_ ? tracer_->recorded() : 0;
    }
    std::uint64_t trace_dropped() const { return tracer_ ? tracer_->dropped() : 0; }
    /// Attach a flight-recorder tap at runtime (admin plane). Replaces
    /// any existing tracer, flushing it first; `sink` must outlive the
    /// tap (detach_tracer or connection destruction flushes into it).
    void attach_tracer(std::size_t ring_records, trace::sink* sink);
    /// Flush and drop the active tracer (no-op when none).
    void detach_tracer();

    /// Validate `remote` end to end and switch the transmit path to it
    /// once proven (path_changed event). `remote == 0` (or the current
    /// peer) re-probes the active 4-tuple — the client-after-rebind
    /// case. No-op unless cfg.path.enabled.
    void migrate(std::uint32_t remote);
    /// Probe `remote` as an additional send path; once validated the
    /// dual-path scheduler starts steering to it (cfg.path.multipath).
    void add_path(std::uint32_t remote);
    /// Path manager introspection (per-path stats, migration counters).
    const path::manager& paths() const { return path_; }

    bool established() const { return handshake_.established(); }
    const profile& active_profile() const { return active_; }
    /// The active congestion controller (selected at handshake, swapped
    /// by renegotiation).
    const cc::send_algorithm& cc() const { return *cc_; }
    /// Mid-flow congestion-controller swaps applied so far.
    std::uint32_t cc_swaps() const { return cc_swaps_; }
    /// Stream 0's scoreboard (legacy single-stream accessor).
    const sack::scoreboard& reliability() const { return mux_.stream0().reliability(); }
    /// Stream 0's retransmission queue (legacy single-stream accessor).
    const sack::retransmit_queue& retransmissions() const {
        return mux_.stream0().retransmissions();
    }
    const tfrc::sender_estimator& estimator() const { return estimator_; }
    /// The multiplexer: per-stream scoreboards, queues and accounting.
    const stream::stream_mux& mux() const { return mux_; }
    std::vector<stream::stream_info> stream_infos() const { return mux_.infos(); }

    std::uint64_t packets_sent() const { return packets_sent_; }
    std::uint64_t bytes_sent() const { return bytes_sent_; }
    std::uint64_t new_bytes_sent() const { return mux_.stream0().next_offset(); }
    /// Current stream 0 length: total_bytes, grown by offer() when
    /// application-driven (UINT64_MAX = unlimited synthetic source).
    std::uint64_t stream_length() const { return mux_.stream0().total_bytes(); }
    /// Retransmitted bytes across all streams.
    std::uint64_t rtx_bytes_sent() const { return mux_.rtx_bytes_sent_total(); }
    std::uint64_t probes_sent() const { return probes_sent_; }
    /// Full-reliability completion: every stream byte acknowledged.
    bool transfer_complete() const;
    /// FIN sent and FIN-ACK received: the connection is fully closed.
    bool closed() const { return closed_; }
    bool fin_sent() const { return fin_sent_; }
    /// Stateless-retry rounds answered (listener address validation).
    std::uint64_t syn_retries_received() const { return syn_retries_received_; }
    /// Reneg proposals dropped by the processing budget (cfg.reneg_rate_bps).
    std::uint64_t reneg_rate_limited() const { return reneg_rate_limited_; }

private:
    void send_syn();
    void on_handshake(const packet::handshake_segment& seg);
    void on_reneg(const packet::handshake_segment& seg);
    void on_sack_feedback(const packet::sack_feedback_segment& fb);
    void apply_profile(const profile& p, std::uint64_t boundary_seq);
    void send_next();
    /// One slot's transmission: 0 = nothing to send, 1 = stream payload,
    /// 2 = probe/eos marker (pace these at RTT/4, never in a burst).
    int send_one();
    void schedule_next_send(std::uint32_t just_sent = 1);
    void arm_nofeedback_timer();
    bool work_available() const;
    stream::send_policy send_policy_now() const;
    void after_finish();
    void maybe_begin_close();
    void send_fin();
    /// Route an event: legacy callback for its type, else sink, else ring
    /// (discarded on callback-mode sessions — the legacy API surface).
    /// Returns false only when a poll/sink consumer exists and the event
    /// was dropped — edge-triggered emitters must then re-arm their edge.
    bool emit(const event& ev);
    void maybe_emit_writable();
    /// Build the cc::algorithm_config for the current connection config
    /// with gTFRC floor `floor_bps`.
    cc::algorithm_config cc_config(double floor_bps) const;
    /// Dispatch path_challenge / path_response frames and feed per-path
    /// receive accounting; returns true when the packet was a path
    /// probe (fully consumed). Inert when cfg.path.enabled is false.
    bool on_path_frame(const packet::packet& pkt);
    /// Wire the manager callbacks and install the initial peer path.
    void start_paths();

    connection_config cfg_;
    environment* env_ = nullptr;
    handshake_initiator handshake_;
    reneg_driver reneg_;
    reneg_responder reneg_resp_;
    profile active_{};

    /// The pluggable congestion controller (cc/send_algorithm.hpp); the
    /// pacing loop reads only this interface. TFRC's adapter is
    /// byte-identical to the rate_controller it wraps.
    std::unique_ptr<cc::send_algorithm> cc_;
    /// Flight/ack bookkeeping feeding acked/lost vectors to cc_. Passive
    /// (no timers), so it is invisible to the deterministic scheduler.
    cc::ack_tracker tracker_;
    tfrc::sender_estimator estimator_;
    /// All per-stream sender state: byte spaces, scoreboards,
    /// retransmission queues, framing, and the slot scheduler.
    stream::stream_mux mux_;

    std::uint64_t next_seq_ = 0;

    qtp::timer_id send_timer_ = qtp::no_timer;
    qtp::timer_id nofeedback_timer_ = qtp::no_timer;
    qtp::timer_id handshake_timer_ = qtp::no_timer;
    qtp::timer_id fin_timer_ = qtp::no_timer;
    bool fin_sent_ = false;
    bool closed_ = false;
    int fin_attempts_ = 0;

    /// Address-validation cookie from the listener's retry; echoed in
    /// every subsequent SYN (0 = none yet).
    std::uint64_t retry_cookie_ = 0;
    std::uint64_t syn_retries_received_ = 0;
    std::optional<diffserv::token_bucket> reneg_bucket_;
    std::uint64_t reneg_rate_limited_ = 0;

    std::function<void(const profile&)> on_established_;
    std::function<void()> on_closed_;
    std::function<void(const profile&)> on_profile_changed_;

    event_ring events_;
    event_sink* sink_ = nullptr;
    bool legacy_mode_ = false; ///< any set_on_* registered
    bool tx_blocked_ = false;  ///< an offer was clamped; writable pending

    std::unique_ptr<trace::tracer> tracer_; ///< null = tracing disabled

    /// Path validation / migration / multipath steering. Inert (and
    /// random-draw free) unless cfg.path.enabled.
    path::manager path_;
    path::scheduler path_sched_;

    std::uint64_t packets_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
    std::uint64_t probes_sent_ = 0;
    std::uint32_t renegotiations_ = 0;
    std::uint64_t last_reneg_boundary_ = 0;
    std::uint32_t cc_swaps_ = 0;
};

class connection_receiver : public qtp::agent {
public:
    /// Delivery hook: (stream offset, length).
    using deliver_fn = std::function<void(std::uint64_t, std::uint32_t)>;

    explicit connection_receiver(connection_config cfg);
    ~connection_receiver() override { leave_half_open(); }

    void start(environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "qtp-recv"; }

    void set_delivery(deliver_fn cb) {
        deliver_ = std::move(cb);
        legacy_mode_ = true;
        wire_demux_hooks();
    }
    /// Multi-stream delivery hook: (stream id, stream offset, length).
    /// Fires for every stream, including stream 0.
    void set_stream_delivery(stream::stream_demux::deliver_fn cb) {
        stream_deliver_ = std::move(cb);
        legacy_mode_ = true;
        wire_demux_hooks();
    }
    /// A stream beyond 0 was seen for the first time.
    void set_on_stream_open(stream::stream_demux::stream_open_fn cb) {
        on_stream_open_ = std::move(cb);
        legacy_mode_ = true;
        wire_demux_hooks();
    }

    // --- poll-based API --------------------------------------------------
    /// Drain queued session events.
    std::size_t poll(event* out, std::size_t max) { return events_.poll(out, max); }
    /// Export events (readable ones carrying their payload chunk) to
    /// `sink` instead of the ring; queued events drain into it first.
    void set_event_sink(event_sink* sink);
    /// Read up to `cap` delivered payload bytes of stream `stream_id` in
    /// delivery order; 0 when nothing is buffered (drain until 0 after a
    /// readable event — it is edge-triggered).
    std::size_t recv(std::uint32_t stream_id, std::uint8_t* out, std::size_t cap);
    /// Pop one delivered chunk with its delivery metadata (offset and
    /// substrate timestamp) — the trace-faithful consumption the
    /// conformance harness uses.
    bool recv_chunk(std::uint32_t& stream_id_out, stream::ready_chunk& out);
    std::uint64_t events_dropped() const { return events_.dropped(); }
    /// Payload bytes buffered for recv() / dropped on a full buffer.
    std::uint64_t recv_buffered_bytes() const;
    std::uint64_t recv_dropped_bytes() const;

    /// Flight recorder (null when cfg.trace_ring_records == 0).
    const trace::tracer* tracer() const { return tracer_.get(); }
    std::uint64_t trace_recorded() const {
        return tracer_ ? tracer_->recorded() : 0;
    }
    std::uint64_t trace_dropped() const { return tracer_ ? tracer_->dropped() : 0; }
    /// Attach a flight-recorder tap at runtime (admin plane). Replaces
    /// any existing tracer, flushing it first; `sink` must outlive the
    /// tap (detach_tracer or connection destruction flushes into it).
    void attach_tracer(std::size_t ring_records, trace::sink* sink);
    /// Flush and drop the active tracer (no-op when none).
    void detach_tracer();

    /// Propose switching the connection to profile `p` (e.g. a mobile
    /// receiver dropping to sender-side estimation on battery pressure).
    void request_renegotiate(const profile& p);
    bool renegotiation_pending() const { return reneg_.pending(); }
    std::uint32_t renegotiations() const { return renegotiations_; }
    std::uint64_t reneg_proposals_sent() const { return reneg_.proposals_sent(); }
    std::uint64_t reneg_proposals_accepted() const { return reneg_.proposals_accepted(); }

    void set_on_established(std::function<void(const profile&)> cb) {
        on_established_ = std::move(cb);
        legacy_mode_ = true;
    }
    void set_on_closed(std::function<void()> cb) {
        on_closed_ = std::move(cb);
        legacy_mode_ = true;
    }
    void set_on_profile_changed(std::function<void(const profile&)> cb) {
        on_profile_changed_ = std::move(cb);
        legacy_mode_ = true;
    }

    /// Path manager introspection (rebind validations, per-path stats).
    const path::manager& paths() const { return path_; }

    bool established() const { return responder_.established(); }
    const profile& active_profile() const { return active_; }
    /// Stream 0's reassembly (legacy single-stream accessor).
    const sack::reassembly& stream() const { return demux_->stream0(); }
    /// The demultiplexer (per-stream reassembly); null until established.
    const stream::stream_demux* demux() const { return demux_.get(); }
    const tfrc::loss_history& history() const { return history_; }
    /// Peer announced it is done (FIN seen) — or the handshake deadline
    /// declared it dead (handshake_timed_out()).
    bool remote_closed() const { return remote_closed_; }
    /// The handshake deadline fired: the peer never proved liveness and
    /// this endpoint closed itself for reaping (half-open flood fix).
    bool handshake_timed_out() const { return handshake_timed_out_; }
    /// Reneg proposals dropped by the processing budget (cfg.reneg_rate_bps).
    std::uint64_t reneg_rate_limited() const { return reneg_rate_limited_; }

    /// Bind an owner-maintained half-open gauge (the engine's per-shard
    /// counter). Increments it if this receiver is currently half-open
    /// (no data yet, not closed) and decrements exactly once when it
    /// leaves that state — first payload packet, FIN, handshake
    /// deadline, or destruction — so the gauge tracks half-open
    /// population incrementally instead of by O(sessions) recount.
    /// Updates happen only on the owning shard thread; the atomic
    /// exists for cross-thread readers.
    void set_half_open_gauge(std::atomic<std::uint64_t>* g);

    std::uint64_t received_packets() const { return received_packets_; }
    std::uint64_t received_bytes() const { return received_bytes_; }
    /// Most recent RTT estimate announced by the sender in its data
    /// segments (the feedback-interval clock; 100 ms until data arrives).
    util::sim_time rtt_hint() const { return last_rtt_hint_; }
    /// Data segments rejected for a sequence number absurdly beyond the
    /// receive window (decoder-accepted corruption / hostile input).
    std::uint64_t wild_seq_rejected() const { return wild_seq_rejected_; }
    std::uint64_t feedback_sent() const { return feedback_sent_; }
    std::uint64_t feedback_bytes() const { return feedback_bytes_; }
    /// Resident per-connection state (E4 memory metric).
    std::size_t state_bytes() const;

private:
    void on_handshake(const packet::handshake_segment& seg);
    void on_reneg(const packet::handshake_segment& seg);
    void on_data(const packet::data_segment& seg);
    void on_stream_data(const packet::data_stream_segment& seg);
    /// Shared per-packet path of both data kinds: sequence bookkeeping,
    /// loss estimation, reassembly (through the demux) and feedback.
    void ingest_data(std::uint64_t seq, util::sim_time ts, util::sim_time rtt_estimate,
                     std::uint32_t stream_id, sack::reliability_mode mode,
                     std::uint64_t offset, std::uint32_t len, bool end_of_stream,
                     const std::uint8_t* payload);
    void apply_profile(const profile& p);
    /// See connection_sender::emit — false means a consumer lost the
    /// event to a full queue (edge emitters must re-arm).
    bool emit(const event& ev);
    void wire_demux_hooks();
    /// Sink mode: hand buffered chunks to the sink; a full export ring
    /// leaves the remainder parked for the next delivery/feedback tick.
    void export_chunks();
    void record_seq(std::uint64_t seq);
    /// See connection_sender::on_path_frame.
    bool on_path_frame(const packet::packet& pkt);
    void start_paths();
    void send_feedback();
    void arm_feedback_timer();
    void on_handshake_deadline();
    void cancel_handshake_deadline();

    connection_config cfg_;
    environment* env_ = nullptr;
    handshake_responder responder_;
    reneg_driver reneg_;
    reneg_responder reneg_resp_;
    profile active_{};

    std::unique_ptr<stream::stream_demux> demux_;
    tfrc::loss_history history_; ///< used only with receiver-side estimation
    deliver_fn deliver_;
    stream::stream_demux::deliver_fn stream_deliver_;
    stream::stream_demux::stream_open_fn on_stream_open_;

    std::deque<packet::sack_block> ranges_; ///< merged received seq ranges
    util::sim_time last_rtt_hint_ = util::milliseconds(100);
    util::sim_time last_data_ts_ = 0;
    util::sim_time last_data_arrival_ = 0;
    std::uint64_t bytes_since_feedback_ = 0;
    std::uint64_t packets_since_feedback_ = 0;
    util::sim_time last_feedback_at_ = 0;
    qtp::timer_id feedback_timer_ = qtp::no_timer;
    qtp::timer_id handshake_deadline_timer_ = qtp::no_timer;
    bool seen_data_ = false;
    bool remote_closed_ = false;
    bool handshake_timed_out_ = false;
    /// Decrement the bound half-open gauge once (idempotent).
    void leave_half_open();
    std::atomic<std::uint64_t>* half_open_gauge_ = nullptr;
    std::optional<diffserv::token_bucket> reneg_bucket_;
    std::uint64_t reneg_rate_limited_ = 0;

    std::function<void(const profile&)> on_established_;
    std::function<void()> on_closed_;
    std::function<void(const profile&)> on_profile_changed_;

    event_ring events_;
    event_sink* sink_ = nullptr;
    bool legacy_mode_ = false;

    std::unique_ptr<trace::tracer> tracer_; ///< null = tracing disabled

    /// Passive rebind detection: validates a peer that shows up from a
    /// new source address mid-connection. Inert unless cfg.path.enabled.
    path::manager path_;

    std::uint64_t received_packets_ = 0;
    std::uint64_t received_bytes_ = 0;
    std::uint64_t wild_seq_rejected_ = 0;
    std::uint64_t feedback_sent_ = 0;
    std::uint64_t feedback_bytes_ = 0;
    std::uint32_t renegotiations_ = 0;
};

} // namespace vtp::qtp
