// The transport/substrate boundary.
//
// Every protocol component in this library (TFRC sender/receiver, SACK
// reliability, the TCP baseline, composed QTP connections) is written
// against `environment`: a clock, cancellable timers, a packet
// transmitter and a deterministic random stream. Substrates provide the
// implementation — `sim::host` for the discrete-event simulator,
// `net::udp_host` for the live UDP datapath. Transport code never knows
// which one it is running on; that separation is the "versatile" part of
// the versatile transport protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "packet/segment.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace vtp::qtp {

class agent;

/// Opaque handle for a scheduled timer; valid until it fires or is
/// cancelled.
using timer_id = std::uint64_t;

/// Sentinel returned when no timer is pending.
inline constexpr timer_id no_timer = 0;

/// Services a substrate offers to transport agents.
class environment {
public:
    virtual ~environment() = default;

    /// Current time (simulation clock or monotonic wall clock).
    virtual util::sim_time now() const = 0;

    /// Run `fn` after `delay`; returns a handle for cancel().
    virtual timer_id schedule(util::sim_time delay, std::function<void()> fn) = 0;

    /// Cancel a pending timer; cancelling a fired/unknown handle is a no-op.
    virtual void cancel(timer_id id) = 0;

    /// Transmit a packet toward its destination. The substrate stamps
    /// `src` and `sent_at`.
    virtual void send(packet::packet pkt) = 0;

    /// This endpoint's address (simulator node id / datapath port).
    virtual std::uint32_t local_addr() const = 0;

    /// Deterministic per-host random stream.
    virtual util::rng& random() = 0;

    /// Attach another agent to this endpoint at runtime (used by
    /// qtp::listener to spawn a connection endpoint per accepted SYN).
    /// The substrate takes ownership and start()s the agent.
    virtual void attach_dynamic(std::uint32_t flow_id, std::unique_ptr<agent> a) = 0;

    /// Install the agent that receives packets of flows nobody terminates
    /// yet (the listener hook a vtp::server relies on). Substrates that
    /// cannot host a passive endpoint may leave this a no-op.
    virtual void set_default_agent(agent*) {}

    /// Destroy a dynamically attached agent (connection teardown). Must
    /// not be called from within that agent's own callbacks.
    virtual void detach_dynamic(std::uint32_t) {}

    /// Batched-transmission hint: how many segments a sender may emit
    /// back-to-back per pacing slot. Substrates that batch syscalls
    /// (engine shards flushing through sendmmsg) return >1 so each timer
    /// wake-up amortizes across a burst; the long-run rate is unchanged
    /// because the sender stretches the following sleep by the burst
    /// size. The default of 1 preserves exact per-packet pacing (and
    /// bit-identical simulator runs).
    virtual std::uint32_t send_burst() const { return 1; }
};

/// A transport endpoint hosted by a substrate. One agent terminates one
/// half of one flow (a sender or a receiver side).
class agent {
public:
    virtual ~agent() = default;

    /// Called once when the agent is attached to a substrate. The
    /// environment outlives the agent.
    virtual void start(environment& env) = 0;

    /// A packet addressed to this agent's flow has arrived.
    virtual void on_packet(const packet::packet& pkt) = 0;

    /// Diagnostic name for traces ("tfrc-sender", "qtp-af", ...).
    virtual std::string name() const = 0;
};

} // namespace vtp::qtp
