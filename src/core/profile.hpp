// Transport profiles: the negotiable composition the paper proposes.
//
// A profile picks, per connection: (1) reliability — none / full /
// partial (SACK micro-mechanism), (2) where TFRC loss estimation runs —
// receiver (classic RFC 3448) or sender (QTPlight), and (3) QoS
// awareness — whether the congestion controller honours a DiffServ/AF
// guaranteed rate (gTFRC). The two protocol instances published in the
// paper are just points in this space:
//
//   QTPAF    = { full reliability, receiver-side estimation, QoS-aware }
//   QTPlight = { none-or-partial reliability, sender-side estimation }
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cc/algorithm_id.hpp"
#include "packet/segment.hpp"
#include "sack/retransmit.hpp"
#include "tfrc/sender.hpp"

namespace vtp::qtp {

struct profile {
    sack::reliability_mode reliability = sack::reliability_mode::none;
    tfrc::estimation_mode estimation = tfrc::estimation_mode::receiver_side;
    bool qos_aware = false;
    double target_rate_bps = 0.0; ///< negotiated AF committed rate (gTFRC g)
    /// Congestion-control algorithm (fourth profile axis): which
    /// send-algorithm the sender paces with (src/cc/). Negotiated like
    /// every other feature; a reneg swap preserves congestion state via
    /// export/import (see cc/send_algorithm.hpp).
    cc::algorithm_id congestion = cc::algorithm_id::tfrc;

    bool operator==(const profile&) const = default;

    /// Pack the enumerable features into handshake bits (the target rate
    /// travels in its own handshake field). The bit layout is defined in
    /// packet/segment.hpp, next to the wire format that carries it.
    std::uint32_t encode() const;

    /// Lenient decode: malformed bits degrade to safe defaults. Use for
    /// already-validated input (the wire decoder rejects malformed bits
    /// before they get here).
    static profile decode(std::uint32_t bits, double target_rate_bps);

    /// Strict decode: nullopt unless `bits` is a point of the feature
    /// lattice (see packet::valid_profile_bits).
    static std::optional<profile> decode_checked(std::uint32_t bits,
                                                 double target_rate_bps);

    std::string describe() const;
};

/// The published instances and the best-effort default.
profile qtp_af_profile(double target_rate_bps);
profile qtp_light_profile(
    sack::reliability_mode reliability = sack::reliability_mode::none);
profile qtp_default_profile();

/// What a local endpoint is able/willing to run; used by the responder
/// to downgrade a proposal it cannot honour.
struct capabilities {
    bool allow_full_reliability = true;
    bool allow_partial_reliability = true;
    /// A resource-limited device refuses receiver-side estimation: it
    /// will not maintain the loss history (the QTPlight motivation).
    bool support_receiver_estimation = true;
    bool support_sender_estimation = true;
    bool qos_aware = true;
    double max_target_rate_bps = 1e12;
    /// Congestion controllers this endpoint can run; a proposal for an
    /// unsupported algorithm downgrades to TFRC (always available — it is
    /// the protocol's native controller).
    bool allow_cc_newreno = true;
    bool allow_cc_westwood = true;
};

/// Responder-side negotiation: the accepted profile is the proposal,
/// downgraded feature-by-feature to what `local` supports.
profile negotiate(const profile& proposed, const capabilities& local);

} // namespace vtp::qtp
