// Passive QTP endpoint: accepts incoming connections.
//
// Installed as a host's default agent, the listener receives packets of
// flows nobody terminates yet. On a SYN it spawns a connection_receiver
// configured with the listener's capabilities (negotiation then proceeds
// inside the new endpoint, which also gets this first SYN), attaches it
// to the substrate, and reports it through the accept callback. This is
// how a streaming server serves many QTP clients from one socket — on
// the simulator and the UDP datapath alike.
#pragma once

#include <cstdint>
#include <functional>

#include "core/connection.hpp"

namespace vtp::qtp {

struct listener_config {
    capabilities caps{};
    /// Template for spawned endpoints (flow id / peer filled per SYN).
    connection_config endpoint{};
    /// Per-accept capability policy: decide what to grant this client
    /// (flow id, peer address), e.g. rate-tier by address or load-shed
    /// receiver-side estimation under pressure. Overrides `caps` when set.
    std::function<capabilities(std::uint32_t, std::uint32_t)> capability_policy;
};

class listener : public agent {
public:
    /// (flow id, the freshly attached endpoint). The endpoint is owned by
    /// the substrate and lives until detached.
    using accept_callback = std::function<void(std::uint32_t, connection_receiver&)>;

    explicit listener(listener_config cfg) : cfg_(std::move(cfg)) {}

    void set_on_accept(accept_callback cb) { on_accept_ = std::move(cb); }

    void on_packet(const packet::packet& pkt) override {
        // Only a SYN may spawn an endpoint. Anything else for an unknown
        // flow — data, feedback, and notably a reneg/reneg_ack whose
        // endpoint is already gone — is a stray, not a connection attempt.
        const auto* hs = std::get_if<packet::handshake_segment>(pkt.body.get());
        if (hs == nullptr || hs->type != packet::handshake_segment::kind::syn) {
            ++stray_packets_;
            if (hs != nullptr && (hs->type == packet::handshake_segment::kind::reneg ||
                                  hs->type == packet::handshake_segment::kind::reneg_ack))
                ++stray_renegs_;
            return;
        }
        connection_config cfg = cfg_.endpoint;
        cfg.flow_id = pkt.flow_id;
        cfg.peer_addr = pkt.src;
        cfg.caps = cfg_.capability_policy ? cfg_.capability_policy(pkt.flow_id, pkt.src)
                                          : cfg_.caps;
        auto endpoint = std::make_unique<connection_receiver>(cfg);
        connection_receiver* raw = endpoint.get();
        env_->attach_dynamic(pkt.flow_id, std::move(endpoint));
        raw->on_packet(pkt); // hand over the SYN that triggered the accept
        ++accepted_;
        if (on_accept_) on_accept_(pkt.flow_id, *raw);
    }

    void start(environment& env) override { env_ = &env; }

    std::string name() const override { return "qtp-listener"; }

    std::uint64_t accepted() const { return accepted_; }
    std::uint64_t stray_packets() const { return stray_packets_; }
    std::uint64_t stray_renegs() const { return stray_renegs_; }

private:
    listener_config cfg_;
    environment* env_ = nullptr;
    accept_callback on_accept_;
    std::uint64_t accepted_ = 0;
    std::uint64_t stray_packets_ = 0;
    std::uint64_t stray_renegs_ = 0;
};

} // namespace vtp::qtp
