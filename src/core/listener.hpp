// Passive QTP endpoint: accepts incoming connections.
//
// Installed as a host's default agent, the listener receives packets of
// flows nobody terminates yet. On a SYN it spawns a connection_receiver
// configured with the listener's capabilities (negotiation then proceeds
// inside the new endpoint, which also gets this first SYN), attaches it
// to the substrate, and reports it through the accept callback. This is
// how a streaming server serves many QTP clients from one socket — on
// the simulator and the UDP datapath alike.
//
// The accept path is the natural flood target — a spoofed SYN used to
// cost a full connection_receiver allocation. The optional guard layer
// (listener_guard_config, off by default) hardens it with three
// mechanisms, enforced in order:
//
//  1. per-source token buckets on SYN and stray traffic, so one source
//     cannot monopolize the accept path;
//  2. stateless retry cookies (core/syn_cookie.hpp): an unvalidated SYN
//     is answered with a `retry` segment carrying a keyed-hash cookie
//     and spawns nothing; only a SYN echoing a valid cookie — proof the
//     client receives at its claimed address — reaches the spawn path;
//  3. an anti-amplification budget: bytes sent to a not-yet-validated
//     address never exceed `amplification_factor` times the bytes
//     received from it, so the listener is useless as a reflector.
//
// Above the guard sits the admission hook (vtp::server wires its
// max_sessions / max_half_open caps into it); a refusal is a counted
// shed, not an allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "core/connection.hpp"
#include "core/syn_cookie.hpp"
#include "diffserv/token_bucket.hpp"
#include "trace/tracer.hpp"

namespace vtp::qtp {

/// Accept-path hardening knobs. Default-constructed = everything off:
/// the listener behaves exactly as before (spawn on any SYN, no
/// per-source state).
struct listener_guard_config {
    /// Require address validation via stateless retry cookies before a
    /// SYN may spawn an endpoint.
    bool retry_cookies = false;
    /// Cookie key/lifetime; key 0 = draw from the host rng at start().
    syn_cookie_config cookie{};
    /// Per-source SYN budget (token bucket over wire bytes; 0 = off).
    double syn_rate_bps = 0.0;
    std::size_t syn_burst_bytes = 0;
    /// Per-source stray-traffic budget (0 = off). Strays are dropped
    /// either way; the bucket only bounds how much per-stray accounting
    /// one source can trigger and feeds the rate-limited counter.
    double stray_rate_bps = 0.0;
    std::size_t stray_burst_bytes = 0;
    /// Max bytes sent to an unvalidated source per byte received from it
    /// (QUIC uses 3x). Only enforced on the retry path — a validated
    /// source has proven its address.
    double amplification_factor = 3.0;
    /// Bound on the per-source tracking table. When exceeded the table
    /// is cleared (counted in `source_table_resets`) — a trade of
    /// momentary budget amnesia for strictly bounded memory under a
    /// many-source flood.
    std::size_t max_tracked_sources = 4096;

    bool tracking_enabled() const {
        return retry_cookies || syn_rate_bps > 0.0 || stray_rate_bps > 0.0;
    }
};

struct listener_guard_stats {
    std::uint64_t retries_sent = 0;
    std::uint64_t cookies_validated = 0;
    std::uint64_t cookies_rejected = 0;
    std::uint64_t syn_rate_limited = 0;
    std::uint64_t stray_rate_limited = 0;
    std::uint64_t amplification_limited = 0;
    std::uint64_t shed = 0; ///< admission hook refusals
    std::uint64_t source_table_resets = 0;
};

struct listener_config {
    capabilities caps{};
    /// Template for spawned endpoints (flow id / peer filled per SYN).
    connection_config endpoint{};
    /// Per-accept capability policy: decide what to grant this client
    /// (flow id, peer address), e.g. rate-tier by address or load-shed
    /// receiver-side estimation under pressure. Overrides `caps` when set.
    std::function<capabilities(std::uint32_t, std::uint32_t)> capability_policy;
    /// Accept-path flood hardening (off by default).
    listener_guard_config guard{};
    /// Guard-event flight recorder (optional; owned by the caller).
    trace::tracer* tracer = nullptr;
};

class listener : public agent {
public:
    /// (flow id, the freshly attached endpoint). The endpoint is owned by
    /// the substrate and lives until detached.
    using accept_callback = std::function<void(std::uint32_t, connection_receiver&)>;

    /// (flow id, source address) -> may this SYN spawn an endpoint?
    /// Consulted after cookie validation, so a refusal sheds a proven
    /// client, never an unvalidated spoof.
    using admission_callback = std::function<bool(std::uint32_t, std::uint32_t)>;

    explicit listener(listener_config cfg) : cfg_(std::move(cfg)), jar_(cfg_.guard.cookie) {}

    void set_on_accept(accept_callback cb) { on_accept_ = std::move(cb); }
    void set_admission(admission_callback cb) { admission_ = std::move(cb); }

    void on_packet(const packet::packet& pkt) override {
        // Only a SYN may spawn an endpoint. Anything else for an unknown
        // flow — data, feedback, and notably a reneg/reneg_ack whose
        // endpoint is already gone — is a stray, not a connection attempt.
        const auto* hs = std::get_if<packet::handshake_segment>(pkt.body.get());
        if (hs == nullptr || hs->type != packet::handshake_segment::kind::syn) {
            on_stray(pkt, hs);
            return;
        }
        if (cfg_.guard.tracking_enabled() && !on_guarded_syn(pkt, *hs)) return;
        if (admission_ && !admission_(pkt.flow_id, pkt.src)) {
            ++guard_stats_.shed;
            trace_guard(pkt, trace::guard_event::shed, 0);
            return;
        }
        spawn(pkt);
    }

    void start(environment& env) override {
        env_ = &env;
        if (cfg_.guard.retry_cookies && jar_.key() == 0)
            jar_.set_key(env.random().next_u64());
    }

    std::string name() const override { return "qtp-listener"; }

    std::uint64_t accepted() const { return accepted_; }
    std::uint64_t stray_packets() const { return stray_packets_; }
    std::uint64_t stray_renegs() const { return stray_renegs_; }
    const listener_guard_stats& guard_stats() const { return guard_stats_; }
    std::size_t tracked_sources() const { return sources_.size(); }

private:
    /// Per-source accounting; exists only while a guard feature is on.
    struct source_state {
        std::uint64_t bytes_rx = 0;
        std::uint64_t bytes_tx = 0; ///< to this address while unvalidated
        std::optional<diffserv::token_bucket> syn_bucket;
        std::optional<diffserv::token_bucket> stray_bucket;
    };

    void on_stray(const packet::packet& pkt, const packet::handshake_segment* hs) {
        if (cfg_.guard.stray_rate_bps > 0.0) {
            source_state& src = source(pkt.src);
            src.bytes_rx += pkt.size_bytes;
            if (!src.stray_bucket->consume(pkt.size_bytes, env_->now())) {
                ++guard_stats_.stray_rate_limited;
                trace_guard(pkt, trace::guard_event::stray_rate_limited, pkt.size_bytes);
                return; // over budget: drop without further accounting
            }
        }
        ++stray_packets_;
        if (hs != nullptr && (hs->type == packet::handshake_segment::kind::reneg ||
                              hs->type == packet::handshake_segment::kind::reneg_ack))
            ++stray_renegs_;
    }

    /// Guard checks for a SYN. Returns true when the SYN is cleared to
    /// proceed to admission + spawn.
    bool on_guarded_syn(const packet::packet& pkt, const packet::handshake_segment& syn) {
        source_state& src = source(pkt.src);
        src.bytes_rx += pkt.size_bytes;
        if (src.syn_bucket && !src.syn_bucket->consume(pkt.size_bytes, env_->now())) {
            ++guard_stats_.syn_rate_limited;
            trace_guard(pkt, trace::guard_event::syn_rate_limited, pkt.size_bytes);
            return false;
        }
        if (!cfg_.guard.retry_cookies) return true;
        if (jar_.validate(syn.boundary_seq, pkt.flow_id, pkt.src, env_->now())) {
            ++guard_stats_.cookies_validated;
            trace_guard(pkt, trace::guard_event::cookie_validated, syn.boundary_seq);
            return true;
        }
        if (syn.boundary_seq != 0) {
            ++guard_stats_.cookies_rejected;
            trace_guard(pkt, trace::guard_event::cookie_rejected, syn.boundary_seq);
        }
        send_retry(pkt, src);
        return false;
    }

    /// Answer an unvalidated SYN with a stateless retry cookie, within
    /// the anti-amplification budget.
    void send_retry(const packet::packet& pkt, source_state& src) {
        packet::handshake_segment retry;
        retry.type = packet::handshake_segment::kind::retry;
        retry.boundary_seq = jar_.mint(pkt.flow_id, pkt.src, env_->now());
        const std::uint32_t size = packet::wire_size(packet::segment{retry});
        const double budget = cfg_.guard.amplification_factor *
                              static_cast<double>(src.bytes_rx);
        if (static_cast<double>(src.bytes_tx + size) > budget) {
            ++guard_stats_.amplification_limited;
            trace_guard(pkt, trace::guard_event::amplification_limited, size);
            return;
        }
        src.bytes_tx += size;
        env_->send(packet::make_packet(pkt.flow_id, env_->local_addr(), pkt.src, retry));
        ++guard_stats_.retries_sent;
        trace_guard(pkt, trace::guard_event::retry_sent, retry.boundary_seq);
    }

    void spawn(const packet::packet& pkt) {
        connection_config cfg = cfg_.endpoint;
        cfg.flow_id = pkt.flow_id;
        cfg.peer_addr = pkt.src;
        cfg.caps = cfg_.capability_policy ? cfg_.capability_policy(pkt.flow_id, pkt.src)
                                          : cfg_.caps;
        auto endpoint = std::make_unique<connection_receiver>(cfg);
        connection_receiver* raw = endpoint.get();
        env_->attach_dynamic(pkt.flow_id, std::move(endpoint));
        raw->on_packet(pkt); // hand over the SYN that triggered the accept
        ++accepted_;
        if (on_accept_) on_accept_(pkt.flow_id, *raw);
    }

    source_state& source(std::uint32_t addr) {
        if (sources_.size() >= cfg_.guard.max_tracked_sources &&
            sources_.find(addr) == sources_.end()) {
            sources_.clear();
            ++guard_stats_.source_table_resets;
        }
        auto [it, fresh] = sources_.try_emplace(addr);
        if (fresh) {
            if (cfg_.guard.syn_rate_bps > 0.0)
                it->second.syn_bucket.emplace(cfg_.guard.syn_rate_bps,
                                              cfg_.guard.syn_burst_bytes);
            if (cfg_.guard.stray_rate_bps > 0.0)
                it->second.stray_bucket.emplace(cfg_.guard.stray_rate_bps,
                                                cfg_.guard.stray_burst_bytes);
        }
        return it->second;
    }

    void trace_guard(const packet::packet& pkt, trace::guard_event ev, std::uint64_t detail) {
        if (cfg_.tracer == nullptr) return;
        cfg_.tracer->push(env_->now(), trace::record_type::guard,
                          static_cast<std::uint8_t>(ev), 0, pkt.src, detail);
    }

    listener_config cfg_;
    syn_cookie_jar jar_;
    environment* env_ = nullptr;
    accept_callback on_accept_;
    admission_callback admission_;
    std::uint64_t accepted_ = 0;
    std::uint64_t stray_packets_ = 0;
    std::uint64_t stray_renegs_ = 0;
    listener_guard_stats guard_stats_;
    std::unordered_map<std::uint32_t, source_state> sources_;
};

} // namespace vtp::qtp
