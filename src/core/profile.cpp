#include "core/profile.hpp"

#include <algorithm>
#include <sstream>

namespace vtp::qtp {

std::uint32_t profile::encode() const {
    std::uint32_t bits =
        static_cast<std::uint32_t>(reliability) & packet::profile_reliability_mask;
    if (estimation == tfrc::estimation_mode::sender_side)
        bits |= packet::profile_estimation_bit;
    if (qos_aware) bits |= packet::profile_qos_bit;
    bits |= (static_cast<std::uint32_t>(congestion) & 0x3u) << packet::profile_cc_shift;
    return bits;
}

profile profile::decode(std::uint32_t bits, double target_rate_bps) {
    profile p;
    const std::uint32_t rel = bits & packet::profile_reliability_mask;
    p.reliability = rel > 2 ? sack::reliability_mode::none
                            : static_cast<sack::reliability_mode>(rel);
    p.estimation = (bits & packet::profile_estimation_bit)
                       ? tfrc::estimation_mode::sender_side
                       : tfrc::estimation_mode::receiver_side;
    p.qos_aware = (bits & packet::profile_qos_bit) != 0;
    p.target_rate_bps = p.qos_aware ? std::max(0.0, target_rate_bps) : 0.0;
    const std::uint32_t ccv = (bits & packet::profile_cc_mask) >> packet::profile_cc_shift;
    p.congestion = ccv >= cc::algorithm_id_count ? cc::algorithm_id::tfrc
                                                 : static_cast<cc::algorithm_id>(ccv);
    return p;
}

std::optional<profile> profile::decode_checked(std::uint32_t bits,
                                               double target_rate_bps) {
    if (!packet::valid_profile_bits(bits)) return std::nullopt;
    return decode(bits, target_rate_bps);
}

std::string profile::describe() const {
    std::ostringstream out;
    out << "reliability=";
    switch (reliability) {
    case sack::reliability_mode::none: out << "none"; break;
    case sack::reliability_mode::full: out << "full"; break;
    case sack::reliability_mode::partial: out << "partial"; break;
    }
    out << " estimation="
        << (estimation == tfrc::estimation_mode::sender_side ? "sender" : "receiver");
    out << " qos=" << (qos_aware ? "on" : "off");
    if (qos_aware) out << " target=" << target_rate_bps / 1e6 << "Mbps";
    out << " cc=" << cc::to_string(congestion);
    return out.str();
}

profile qtp_af_profile(double target_rate_bps) {
    profile p;
    p.reliability = sack::reliability_mode::full;
    p.estimation = tfrc::estimation_mode::receiver_side;
    p.qos_aware = true;
    p.target_rate_bps = target_rate_bps;
    return p;
}

profile qtp_light_profile(sack::reliability_mode reliability) {
    profile p;
    p.reliability = reliability;
    p.estimation = tfrc::estimation_mode::sender_side;
    p.qos_aware = false;
    return p;
}

profile qtp_default_profile() { return profile{}; }

profile negotiate(const profile& proposed, const capabilities& local) {
    profile accepted = proposed;

    if (accepted.reliability == sack::reliability_mode::full &&
        !local.allow_full_reliability) {
        accepted.reliability = local.allow_partial_reliability
                                   ? sack::reliability_mode::partial
                                   : sack::reliability_mode::none;
    }
    if (accepted.reliability == sack::reliability_mode::partial &&
        !local.allow_partial_reliability) {
        accepted.reliability = sack::reliability_mode::none;
    }

    if (accepted.estimation == tfrc::estimation_mode::receiver_side &&
        !local.support_receiver_estimation) {
        accepted.estimation = tfrc::estimation_mode::sender_side;
    }
    if (accepted.estimation == tfrc::estimation_mode::sender_side &&
        !local.support_sender_estimation) {
        accepted.estimation = tfrc::estimation_mode::receiver_side;
    }

    if ((accepted.congestion == cc::algorithm_id::newreno && !local.allow_cc_newreno) ||
        (accepted.congestion == cc::algorithm_id::westwood && !local.allow_cc_westwood)) {
        accepted.congestion = cc::algorithm_id::tfrc;
    }

    if (accepted.qos_aware && !local.qos_aware) {
        accepted.qos_aware = false;
        accepted.target_rate_bps = 0.0;
    }
    accepted.target_rate_bps = std::min(accepted.target_rate_bps, local.max_target_rate_bps);
    return accepted;
}

} // namespace vtp::qtp
