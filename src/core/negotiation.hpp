// Connection-establishment state machines.
//
// QTP negotiates the profile in a two-segment exchange: the initiator's
// SYN carries the proposed profile, the responder's SYN-ACK the accepted
// (possibly downgraded) one. Both sides are pure state machines — the
// owning agents do the actual packet I/O and retransmission timing — so
// the negotiation logic is unit-testable without a network.
#pragma once

#include <optional>

#include "core/profile.hpp"
#include "packet/segment.hpp"

namespace vtp::qtp {

class handshake_initiator {
public:
    explicit handshake_initiator(profile proposal) : proposal_(proposal) {}

    /// The SYN to (re)send while waiting for the SYN-ACK.
    packet::handshake_segment make_syn() const;

    /// Feed an incoming handshake segment. Returns the accepted profile
    /// when the SYN-ACK arrives (idempotent on duplicates).
    std::optional<profile> on_segment(const packet::handshake_segment& seg);

    bool established() const { return established_; }
    const profile& proposal() const { return proposal_; }
    const profile& accepted() const { return accepted_; }

private:
    profile proposal_;
    profile accepted_{};
    bool established_ = false;
};

class handshake_responder {
public:
    explicit handshake_responder(capabilities caps) : caps_(caps) {}

    struct response {
        packet::handshake_segment syn_ack;
        profile accepted;
    };

    /// Feed an incoming handshake segment. A SYN (including a duplicate)
    /// yields the SYN-ACK to send back.
    std::optional<response> on_segment(const packet::handshake_segment& seg);

    bool established() const { return established_; }
    const profile& accepted() const { return accepted_; }

private:
    capabilities caps_;
    profile accepted_{};
    bool established_ = false;
};

} // namespace vtp::qtp
