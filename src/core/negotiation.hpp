// Connection-establishment and renegotiation state machines.
//
// QTP negotiates the profile in a two-segment exchange: the initiator's
// SYN carries the proposed profile, the responder's SYN-ACK the accepted
// (possibly downgraded) one. Mid-connection, either endpoint may propose
// a profile change through the same downgrade rules: a `reneg` segment
// carries the proposal (tagged with a token so retransmissions and stale
// acks are idempotent), the peer answers `reneg_ack` with the accepted
// profile and the data sequence number from which it applies. All four
// machines are pure state — the owning agents do the actual packet I/O
// and retransmission timing — so the logic is unit-testable without a
// network.
#pragma once

#include <optional>

#include "core/environment.hpp"
#include "core/profile.hpp"
#include "packet/segment.hpp"

namespace vtp::qtp {

class handshake_initiator {
public:
    explicit handshake_initiator(profile proposal) : proposal_(proposal) {}

    /// The SYN to (re)send while waiting for the SYN-ACK.
    packet::handshake_segment make_syn() const;

    /// Feed an incoming handshake segment. Returns the accepted profile
    /// when the SYN-ACK arrives (idempotent on duplicates).
    std::optional<profile> on_segment(const packet::handshake_segment& seg);

    bool established() const { return established_; }
    const profile& proposal() const { return proposal_; }
    const profile& accepted() const { return accepted_; }

private:
    profile proposal_;
    profile accepted_{};
    bool established_ = false;
};

class handshake_responder {
public:
    explicit handshake_responder(capabilities caps) : caps_(caps) {}

    struct response {
        packet::handshake_segment syn_ack;
        profile accepted;
    };

    /// Feed an incoming handshake segment. A SYN (including a duplicate)
    /// yields the SYN-ACK to send back.
    std::optional<response> on_segment(const packet::handshake_segment& seg);

    bool established() const { return established_; }
    const profile& accepted() const { return accepted_; }

private:
    capabilities caps_;
    profile accepted_{};
    bool established_ = false;
};

/// Proposing side of a mid-connection renegotiation. One exchange may be
/// outstanding at a time; a new propose() supersedes an unacknowledged
/// one (its stale ack no longer matches the token).
class reneg_initiator {
public:
    /// Start proposing `p`; returns the reneg segment to send.
    packet::handshake_segment propose(const profile& p);

    /// The outstanding proposal, for retransmission. Valid while pending().
    const packet::handshake_segment& current() const { return current_; }

    /// Feed an incoming segment. Returns the accepted profile when a
    /// reneg_ack matches the latest token — exactly once. This includes
    /// an ack arriving *after* abandon(): the responder has already
    /// applied the accepted profile by the time it acks, so consuming the
    /// late answer is what keeps the two endpoints convergent.
    std::optional<profile> on_segment(const packet::handshake_segment& seg);

    /// Stop waiting for the ack (retry budget exhausted, or yielding to a
    /// crossed proposal from the peer). A late matching ack still applies.
    void abandon() {
        if (state_ == state::pending) state_ = state::abandoned;
    }

    bool pending() const { return state_ == state::pending; }
    const profile& proposal() const { return proposal_; }

private:
    enum class state { idle, pending, abandoned };

    packet::handshake_segment current_{};
    profile proposal_{};
    std::uint32_t next_token_ = 0;
    state state_ = state::idle;
};

/// Responding side of a mid-connection renegotiation: applies the same
/// capability downgrade as the SYN/SYN-ACK handshake.
class reneg_responder {
public:
    explicit reneg_responder(capabilities caps) : caps_(caps) {}

    struct response {
        packet::handshake_segment ack;
        profile accepted;
        /// False for a duplicate proposal (ack must be re-sent but the
        /// profile must not be re-applied).
        bool is_new = false;
    };

    /// Feed an incoming segment. A reneg proposal yields the ack to send
    /// back; `boundary_seq` is the first data sequence number the caller
    /// will handle under the accepted profile (stamped into the ack).
    std::optional<response> on_segment(const packet::handshake_segment& seg,
                                       std::uint64_t boundary_seq);

    const capabilities& caps() const { return caps_; }

private:
    capabilities caps_;
    packet::handshake_segment last_ack_{};
    profile last_accepted_{};
    std::uint32_t last_token_ = 0;
    bool any_ = false;
};

/// Initiator-side renegotiation I/O driver, shared by connection_sender
/// and connection_receiver: proposal retransmission with a bounded retry
/// budget, ack matching, and the yield rule for crossed proposals.
class reneg_driver {
public:
    /// Propose `p` to the peer on `flow_id`, retransmitting every `rtx`
    /// up to 10 times. Supersedes any proposal still outstanding.
    void start(environment& env, std::uint32_t flow_id, std::uint32_t peer_addr,
               util::sim_time rtx, const char* tag, const profile& p);

    /// Feed a reneg_ack. A matching ack applies exactly once — including
    /// after yield()/retry exhaustion (see reneg_initiator::on_segment).
    std::optional<profile> on_ack(environment& env, const packet::handshake_segment& seg);

    /// Crossed-proposal tie-break: stop pushing our proposal (the peer's
    /// wins) but keep accepting a late ack for it.
    void yield(environment& env);

    /// Drop all renegotiation I/O (connection teardown).
    void cancel(environment& env);

    bool pending() const { return init_.pending(); }

    /// Local proposals started (counts each start(), not retransmissions).
    std::uint64_t proposals_sent() const { return proposals_sent_; }
    /// Local proposals answered by a matching ack (including late acks
    /// after yield / retry exhaustion).
    std::uint64_t proposals_accepted() const { return proposals_accepted_; }

private:
    void send_step(environment& env);
    void cancel_timer(environment& env);

    reneg_initiator init_;
    std::uint64_t proposals_sent_ = 0;
    std::uint64_t proposals_accepted_ = 0;
    std::uint32_t flow_id_ = 0;
    std::uint32_t peer_addr_ = 0;
    util::sim_time rtx_ = 0;
    const char* tag_ = "reneg";
    timer_id timer_ = no_timer;
    int attempts_ = 0;
};

} // namespace vtp::qtp
