// Poll-based session events (the v2 API's delivery mechanism).
//
// Instead of registering std::function callbacks that run inside the
// transport (on whatever thread hosts the agent), an application drains a
// bounded per-session event ring through vtp::session::poll():
//
//   vtp::event evs[16];
//   while (running) {
//       const std::size_t n = s.poll(evs, 16);
//       for (std::size_t i = 0; i < n; ++i)
//           if (evs[i].type == vtp::event_type::readable)
//               while (std::size_t got = s.recv(evs[i].stream_id, buf, sizeof buf))
//                   consume(buf, got);
//   }
//
// Semantics:
//  - `readable` and `writable` are edge-triggered: one event per
//    empty -> non-empty (resp. blocked -> unblocked) transition. Drain
//    recv() until it returns 0 (resp. retry send() after `writable`).
//  - The ring is bounded; a full ring drops the new event and counts it
//    (session_stats::events_dropped) — backpressure is observable, never
//    silent. Sized for coalesced events: capacity >= streams + a handful
//    of lifecycle events never drops in practice.
//  - The legacy set_on_* callbacks are a compatibility shim over this
//    mechanism: a registered callback consumes its event type at emit
//    time; event types without a registered callback are discarded on
//    callback-mode sessions (matching the old API, which did not surface
//    them at all). A session that never registers callbacks queues
//    everything for poll().
//  - An installed event_sink (the engine's cross-thread export) takes the
//    place of the ring: events — including readable payload chunks — are
//    pushed to the sink as they happen, on the agent's thread.
#pragma once

#include <cstdint>
#include <vector>

#include "core/profile.hpp"
#include "sack/retransmit.hpp"

namespace vtp::qtp {

enum class event_type : std::uint8_t {
    none = 0,
    /// Handshake done; `prof` is the negotiated profile.
    established,
    /// Receiver role: a new inbound stream appeared (`stream_id`,
    /// `reliability`).
    stream_opened,
    /// Receiver role: recv(stream_id) has data. Edge-triggered.
    readable,
    /// Sender role: a send() that was clamped by max_buffered_bytes can
    /// make progress again (`bytes` = free buffer space). Edge-triggered.
    writable,
    /// A renegotiation was accepted; `prof` is the profile now active.
    profile_changed,
    /// Receiver role: stream `stream_id` is complete — its end-of-stream
    /// marker arrived and every byte it owes was delivered (`bytes` =
    /// final stream length).
    fin,
    /// Connection fully closed (sender: FIN acknowledged; receiver:
    /// peer's FIN seen).
    closed,
    /// The active network path changed (validated migration): traffic
    /// now flows to a new remote address. `offset` carries the old
    /// address, `bytes` the new one (both substrate addresses).
    path_changed,
};

const char* to_string(event_type t);

struct event {
    event_type type = event_type::none;
    std::uint32_t stream_id = 0;
    /// readable: bytes currently buffered for recv(); writable: free
    /// send-buffer space; fin: final stream length.
    std::uint64_t bytes = 0;
    /// readable (sink export): stream offset of the attached chunk.
    std::uint64_t offset = 0;
    /// stream_opened: the stream's reliability mode.
    sack::reliability_mode reliability = sack::reliability_mode::none;
    /// established / profile_changed: the profile in force.
    profile prof{};
};

/// Bounded single-threaded FIFO of session events. Overflow drops the
/// new event and counts it — the producer (the transport) must never
/// block on a slow consumer.
class event_ring {
public:
    explicit event_ring(std::size_t capacity = 256)
        : ring_(capacity == 0 ? 1 : capacity) {}

    bool push(const event& ev) {
        if (count_ == ring_.size()) {
            ++dropped_;
            return false;
        }
        ring_[(head_ + count_) % ring_.size()] = ev;
        ++count_;
        return true;
    }

    std::size_t poll(event* out, std::size_t max) {
        std::size_t n = 0;
        while (n < max && count_ > 0) {
            out[n++] = ring_[head_];
            head_ = (head_ + 1) % ring_.size();
            --count_;
        }
        return n;
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t dropped() const { return dropped_; }
    void count_external_drop() { ++dropped_; }

private:
    std::vector<event> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
};

/// Cross-thread event export (the engine installs one per shard). Called
/// on the agent's thread; `payload` carries the chunk of a readable
/// event (empty otherwise) and is moved from on success — on failure
/// (sink saturated, return false) it is left intact so the emitter can
/// retain the bytes and retry later instead of losing delivered data.
struct event_sink {
    virtual ~event_sink() = default;
    virtual bool on_session_event(std::uint32_t flow_id, const event& ev,
                                  std::vector<std::uint8_t>& payload) = 0;
};

} // namespace vtp::qtp
