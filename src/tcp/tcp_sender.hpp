// TCP NewReno + SACK sender agent — the baseline every experiment
// compares against.
//
// Byte-sequence window transport: ack-clocked transmission (bursty, the
// source of the sawtooth TFRC smooths out), SACK-based loss detection
// (3-dupack / 3-MSS sacked threshold), NewReno partial-ack
// retransmission during recovery, Karn-compliant RTT sampling, and RTO
// with exponential back-off.
//
// Deliberate simplifications (documented in DESIGN.md): no three-way
// handshake (flows start hot, as in ns-2 FTP sources), no delayed acks,
// no window scaling (the receive window is unbounded). None of these
// affect the phenomena under study: congestion response shape, AF
// under-assurance, loss sensitivity.
#pragma once

#include <cstdint>
#include <deque>

#include "core/environment.hpp"
#include "sack/reassembly.hpp"
#include "tcp/newreno.hpp"
#include "tcp/rto.hpp"

namespace vtp::tcp {

struct tcp_sender_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    std::uint32_t mss = 1000;          ///< payload bytes per segment
    std::uint64_t max_bytes = UINT64_MAX; ///< finite transfer size
    newreno_config cc{};
    rto_config rto{};
};

class tcp_sender_agent : public qtp::agent {
public:
    explicit tcp_sender_agent(tcp_sender_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "tcp-send"; }

    const newreno& congestion() const { return cc_; }
    const rto_estimator& rto() const { return rto_; }
    std::uint64_t bytes_acked() const { return snd_una_; }
    std::uint64_t bytes_sent() const { return bytes_sent_; }
    std::uint64_t segments_sent() const { return segments_sent_; }
    std::uint64_t retransmitted_segments() const { return retransmitted_segments_; }
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t fast_recoveries() const { return fast_recoveries_; }
    bool completed() const { return snd_una_ >= cfg_.max_bytes; }

    /// Bytes in flight (sent, neither cumulatively acked nor SACKed).
    std::uint64_t pipe() const;

private:
    void on_ack(const packet::tcp_segment& seg);
    void detect_loss_and_queue_holes();
    void queue_holes_up_to(std::uint64_t limit);
    void try_send();
    void send_segment(std::uint64_t seq, std::uint32_t len, bool rtx);
    /// Cancel + rearm (on new-data acks and timeouts, per RFC 6298).
    void restart_rto();
    /// Arm only if no timer is pending (after transmissions). Dup-acks
    /// must NOT touch the timer, or a lost retransmission can stall the
    /// connection forever behind an endlessly-postponed timeout.
    void ensure_rto();
    void on_rto_timeout();
    std::uint64_t highest_sacked() const;

    tcp_sender_config cfg_;
    qtp::environment* env_ = nullptr;
    newreno cc_;
    rto_estimator rto_;

    std::uint64_t next_seq_ = 0; ///< next new byte to send
    std::uint64_t snd_una_ = 0;  ///< oldest unacked byte
    sack::interval_set sacked_;  ///< receiver-reported ranges above snd_una_
    sack::interval_set lost_;    ///< marked lost, awaiting retransmission (RFC 6675 pipe)
    sack::interval_set rtx_ever_;   ///< bytes ever retransmitted (Karn)
    sack::interval_set rtx_queued_; ///< holes queued this recovery episode
    std::deque<packet::sack_block> rtx_pending_; ///< byte ranges to resend

    bool in_recovery_ = false;
    std::uint64_t recovery_point_ = 0;
    int dupacks_ = 0;

    qtp::timer_id rto_timer_ = qtp::no_timer;

    std::uint64_t bytes_sent_ = 0;
    std::uint64_t segments_sent_ = 0;
    std::uint64_t retransmitted_segments_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t fast_recoveries_ = 0;
};

} // namespace vtp::tcp
