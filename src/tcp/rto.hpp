// RTO estimation per Jacobson/Karels with Karn's algorithm hooks
// (RFC 6298): SRTT/RTTVAR smoothing, exponential back-off on timeout.
#pragma once

#include "util/time.hpp"

namespace vtp::tcp {

struct rto_config {
    util::sim_time min_rto = util::milliseconds(200);
    util::sim_time max_rto = util::seconds(60);
    util::sim_time initial_rto = util::seconds(1);
    double alpha = 1.0 / 8.0; ///< SRTT gain
    double beta = 1.0 / 4.0;  ///< RTTVAR gain
    double k = 4.0;           ///< RTO = SRTT + K*RTTVAR
};

class rto_estimator {
public:
    explicit rto_estimator(rto_config cfg = {});

    /// Feed one RTT sample (callers must enforce Karn's rule: never
    /// sample a retransmitted segment).
    void on_sample(util::sim_time rtt);

    /// Timeout fired: double the RTO (bounded by max_rto).
    void on_timeout();

    /// New data acked: collapse any back-off.
    void reset_backoff() { backoff_ = 1; }

    util::sim_time rto() const;
    util::sim_time srtt() const { return srtt_; }
    util::sim_time rttvar() const { return rttvar_; }
    bool has_sample() const { return has_sample_; }
    int backoff() const { return backoff_; }

private:
    rto_config cfg_;
    util::sim_time srtt_ = 0;
    util::sim_time rttvar_ = 0;
    bool has_sample_ = false;
    int backoff_ = 1;
};

} // namespace vtp::tcp
