#include "tcp/tcp_sender.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vtp::tcp {

tcp_sender_agent::tcp_sender_agent(tcp_sender_config cfg)
    : cfg_(cfg), cc_(cfg.cc), rto_(cfg.rto) {
    if (cfg_.cc.mss != cfg_.mss) {
        newreno_config fixed = cfg_.cc;
        fixed.mss = cfg_.mss;
        cc_ = newreno(fixed);
    }
}

void tcp_sender_agent::start(qtp::environment& env) {
    env_ = &env;
    try_send();
}

std::uint64_t tcp_sender_agent::pipe() const {
    // RFC 6675: bytes in flight = outstanding - SACKed - marked-lost.
    // (`lost_` and `sacked_` are kept disjoint: marking excludes sacked
    // ranges and new SACK blocks are removed from `lost_`.)
    const std::uint64_t outstanding = next_seq_ - snd_una_;
    const std::uint64_t sacked_in_window = sacked_.covered_in(snd_una_, next_seq_);
    const std::uint64_t lost_in_window = lost_.covered_in(snd_una_, next_seq_);
    const std::uint64_t discount = sacked_in_window + lost_in_window;
    return outstanding > discount ? outstanding - discount : 0;
}

std::uint64_t tcp_sender_agent::highest_sacked() const {
    if (sacked_.empty()) return snd_una_;
    return std::max(snd_una_, sacked_.ranges().rbegin()->second);
}

void tcp_sender_agent::on_packet(const packet::packet& pkt) {
    if (const auto* seg = std::get_if<packet::tcp_segment>(pkt.body.get())) {
        if (seg->is_ack) on_ack(*seg);
    }
}

void tcp_sender_agent::on_ack(const packet::tcp_segment& seg) {
    for (const auto& block : seg.sack) {
        sacked_.add(block.begin, block.end);
        lost_.remove(block.begin, block.end); // delivered after all
    }

    const bool new_data_acked = seg.ack > snd_una_;
    if (new_data_acked) {
        const std::uint64_t old_una = snd_una_;
        const std::uint64_t newly = seg.ack - snd_una_;
        snd_una_ = seg.ack;
        dupacks_ = 0;

        // Karn: only sample when the acked range was never retransmitted.
        if (seg.ts_echo > 0 && rtx_ever_.covered_in(old_una, snd_una_) == 0) {
            rto_.on_sample(env_->now() - seg.ts_echo);
        }
        rto_.reset_backoff();

        if (in_recovery_) {
            if (snd_una_ >= recovery_point_) {
                in_recovery_ = false;
                cc_.exit_recovery();
                rtx_queued_ = sack::interval_set{};
            } else {
                // NewReno partial ack: retransmit the next hole at once.
                queue_holes_up_to(recovery_point_);
            }
        } else {
            cc_.on_new_ack(newly);
        }
    } else {
        ++dupacks_;
    }

    detect_loss_and_queue_holes();

    if (pipe() == 0 && rtx_pending_.empty() && lost_.covered_in(snd_una_, next_seq_) == 0) {
        if (rto_timer_ != qtp::no_timer) {
            env_->cancel(rto_timer_);
            rto_timer_ = qtp::no_timer;
        }
    } else if (new_data_acked) {
        restart_rto();
    } else {
        ensure_rto(); // dup-ack: leave a running timer alone
    }

    try_send();
}

void tcp_sender_agent::detect_loss_and_queue_holes() {
    const std::uint64_t sacked_above = sacked_.covered_in(snd_una_, next_seq_);
    const bool sack_threshold = sacked_above >= 3ull * cfg_.mss;
    if (!in_recovery_) {
        if (dupacks_ >= 3 || sack_threshold) {
            in_recovery_ = true;
            ++fast_recoveries_;
            recovery_point_ = next_seq_;
            cc_.enter_recovery(pipe());
            rtx_queued_ = sack::interval_set{};
            queue_holes_up_to(recovery_point_);
        }
        return;
    }
    queue_holes_up_to(recovery_point_);
}

void tcp_sender_agent::queue_holes_up_to(std::uint64_t limit) {
    // Queue unsacked ranges in [snd_una_, min(limit, highest_sacked))
    // that have not been queued during this recovery episode.
    const std::uint64_t scan_end = std::min(limit, highest_sacked());
    std::uint64_t cursor = snd_una_;
    while (cursor < scan_end) {
        cursor = sacked_.first_gap(cursor);
        if (cursor >= scan_end) break;
        auto next_range = sacked_.ranges().upper_bound(cursor);
        const std::uint64_t gap_end = next_range == sacked_.ranges().end()
                                          ? scan_end
                                          : std::min(next_range->first, scan_end);
        for (std::uint64_t b = cursor; b < gap_end; b += cfg_.mss) {
            const std::uint64_t e = std::min<std::uint64_t>(b + cfg_.mss, gap_end);
            if (rtx_queued_.covered_in(b, e) == 0) {
                rtx_pending_.push_back(packet::sack_block{b, e});
                rtx_queued_.add(b, e);
                lost_.add(b, e); // no longer counted in flight
            }
        }
        cursor = gap_end;
    }
}

void tcp_sender_agent::try_send() {
    while (true) {
        const std::uint64_t window = cc_.cwnd();
        if (!rtx_pending_.empty()) {
            if (pipe() + cfg_.mss > window + cfg_.mss) break; // allow one rtx beyond
            packet::sack_block hole = rtx_pending_.front();
            rtx_pending_.pop_front();
            const std::uint32_t len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(hole.end - hole.begin, cfg_.mss));
            send_segment(hole.begin, len, true);
            if (hole.begin + len < hole.end)
                rtx_pending_.push_front(packet::sack_block{hole.begin + len, hole.end});
            continue;
        }
        if (next_seq_ >= cfg_.max_bytes) break;
        if (pipe() + cfg_.mss > window) break;
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(cfg_.mss, cfg_.max_bytes - next_seq_));
        send_segment(next_seq_, len, false);
        next_seq_ += len;
    }
    if (pipe() > 0 || !rtx_pending_.empty()) ensure_rto();
}

void tcp_sender_agent::send_segment(std::uint64_t seq, std::uint32_t len, bool rtx) {
    packet::tcp_segment seg;
    seg.seq = seq;
    seg.payload_len = len;
    seg.ts = env_->now();
    seg.fin = (seq + len >= cfg_.max_bytes && cfg_.max_bytes != UINT64_MAX);
    if (rtx) {
        rtx_ever_.add(seq, seq + len);
        lost_.remove(seq, seq + len); // back in flight
        ++retransmitted_segments_;
    }
    ++segments_sent_;
    bytes_sent_ += len;
    env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr, seg));
}

void tcp_sender_agent::restart_rto() {
    if (rto_timer_ != qtp::no_timer) env_->cancel(rto_timer_);
    rto_timer_ = env_->schedule(rto_.rto(), [this] {
        rto_timer_ = qtp::no_timer;
        on_rto_timeout();
    });
}

void tcp_sender_agent::ensure_rto() {
    if (rto_timer_ == qtp::no_timer) restart_rto();
}

void tcp_sender_agent::on_rto_timeout() {
    if (pipe() == 0 && rtx_pending_.empty() && next_seq_ >= cfg_.max_bytes) return;
    ++timeouts_;
    rto_.on_timeout();
    cc_.on_timeout(pipe());
    in_recovery_ = false;
    rtx_queued_ = sack::interval_set{};
    rtx_pending_.clear();

    // RTO means everything unSACKed in flight is presumed lost (the pipe
    // drains so retransmissions actually fit the collapsed window), and
    // we go back to the first hole.
    std::uint64_t cursor = snd_una_;
    while (cursor < next_seq_) {
        cursor = sacked_.first_gap(cursor);
        if (cursor >= next_seq_) break;
        auto next_range = sacked_.ranges().upper_bound(cursor);
        const std::uint64_t gap_end = next_range == sacked_.ranges().end()
                                          ? next_seq_
                                          : std::min(next_range->first, next_seq_);
        lost_.add(cursor, gap_end);
        cursor = gap_end;
    }
    if (snd_una_ < next_seq_) {
        std::uint64_t begin = snd_una_;
        if (sacked_.contains(begin, begin + 1)) begin = sacked_.first_gap(begin);
        if (begin < next_seq_) {
            std::uint64_t end = std::min<std::uint64_t>(begin + cfg_.mss, next_seq_);
            rtx_pending_.push_back(packet::sack_block{begin, end});
        }
    }
    try_send();
    restart_rto();
}

} // namespace vtp::tcp
