// TCP receiver agent: cumulative ack + SACK generation, in-order
// delivery to the application. Acks every segment (no delayed acks).
#pragma once

#include <cstdint>
#include <deque>

#include "core/environment.hpp"
#include "sack/reassembly.hpp"

namespace vtp::tcp {

struct tcp_receiver_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    std::size_t max_sack_blocks = 3; ///< classic TCP option space limit
};

class tcp_receiver_agent : public qtp::agent {
public:
    explicit tcp_receiver_agent(tcp_receiver_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "tcp-recv"; }

    /// Application delivery hook: (offset, length) in order.
    void set_delivery(sack::reassembly::deliver_fn cb);

    std::uint64_t delivered_bytes() const { return buffer_.delivered_bytes(); }
    std::uint64_t received_bytes() const { return buffer_.received_bytes(); }
    std::uint64_t acks_sent() const { return acks_sent_; }
    std::uint64_t ack_bytes() const { return ack_bytes_; }
    bool fin_received() const { return fin_seen_; }
    bool complete() const { return buffer_.complete(); }

private:
    void send_ack(util::sim_time ts_echo);

    tcp_receiver_config cfg_;
    qtp::environment* env_ = nullptr;
    sack::reassembly buffer_;
    /// Recently received ranges, newest first (SACK block recency rule).
    std::deque<packet::sack_block> recent_blocks_;
    bool fin_seen_ = false;
    std::uint64_t acks_sent_ = 0;
    std::uint64_t ack_bytes_ = 0;
};

} // namespace vtp::tcp
