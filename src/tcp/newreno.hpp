// NewReno congestion window arithmetic (RFC 5681/6582), byte counted.
//
// The sender owns the sequence-space bookkeeping (recovery point, SACK
// scoreboard); this class owns only cwnd/ssthresh evolution, which keeps
// it independently unit-testable.
#pragma once

#include <cstdint>

namespace vtp::tcp {

struct newreno_config {
    std::uint32_t mss = 1000;
    /// RFC 3390 initial window: min(4*MSS, max(2*MSS, 4380)).
    std::uint64_t initial_cwnd = 0; ///< 0 = derive per RFC 3390
    std::uint64_t initial_ssthresh = UINT64_MAX;
};

class newreno {
public:
    explicit newreno(newreno_config cfg = {});

    std::uint64_t cwnd() const { return cwnd_; }
    std::uint64_t ssthresh() const { return ssthresh_; }
    bool in_slow_start() const { return cwnd_ < ssthresh_; }

    /// Cumulative ack advanced by `acked_bytes` outside recovery:
    /// slow-start or congestion-avoidance growth.
    void on_new_ack(std::uint64_t acked_bytes);

    /// Loss detected (3 dupacks / SACK threshold): halve.
    /// `flight_size` = bytes outstanding at detection time.
    void enter_recovery(std::uint64_t flight_size);

    /// Recovery completed (cumulative ack reached the recovery point).
    void exit_recovery();

    /// Retransmission timeout: cwnd back to 1 MSS.
    void on_timeout(std::uint64_t flight_size);

    std::uint32_t mss() const { return cfg_.mss; }

private:
    newreno_config cfg_;
    std::uint64_t cwnd_;
    std::uint64_t ssthresh_;
    std::uint64_t ca_accumulator_ = 0; ///< byte-counted CA increase
};

} // namespace vtp::tcp
