#include "tcp/tcp_receiver.hpp"

#include <algorithm>

namespace vtp::tcp {

tcp_receiver_agent::tcp_receiver_agent(tcp_receiver_config cfg)
    : cfg_(cfg), buffer_(sack::delivery_order::ordered) {}

void tcp_receiver_agent::start(qtp::environment& env) { env_ = &env; }

void tcp_receiver_agent::set_delivery(sack::reassembly::deliver_fn cb) {
    buffer_ = sack::reassembly(sack::delivery_order::ordered, std::move(cb));
}

void tcp_receiver_agent::on_packet(const packet::packet& pkt) {
    const auto* seg = std::get_if<packet::tcp_segment>(pkt.body.get());
    if (seg == nullptr || seg->is_ack) return;

    if (seg->fin) fin_seen_ = true;
    if (seg->payload_len > 0) {
        buffer_.on_data(seg->seq, seg->payload_len, seg->fin);

        // Track recency for SACK block selection.
        const packet::sack_block blk{seg->seq, seg->seq + seg->payload_len};
        recent_blocks_.erase(
            std::remove_if(recent_blocks_.begin(), recent_blocks_.end(),
                           [&](const packet::sack_block& b) {
                               return b.begin == blk.begin && b.end == blk.end;
                           }),
            recent_blocks_.end());
        recent_blocks_.push_front(blk);
        while (recent_blocks_.size() > 16) recent_blocks_.pop_back();
    }
    send_ack(seg->ts);
}

void tcp_receiver_agent::send_ack(util::sim_time ts_echo) {
    packet::tcp_segment ack;
    ack.is_ack = true;
    ack.ack = buffer_.in_order_point();
    ack.ts = env_->now();
    ack.ts_echo = ts_echo;

    // SACK: most recent ranges strictly above the cumulative ack,
    // expanded to the containing received range.
    for (const auto& recent : recent_blocks_) {
        if (ack.sack.size() >= cfg_.max_sack_blocks) break;
        if (recent.end <= ack.ack) continue;
        // Expand to the merged range in the reassembly buffer.
        packet::sack_block merged = recent;
        for (const auto& [begin, end] : buffer_.received().ranges()) {
            if (begin <= recent.begin && recent.end <= end) {
                merged = packet::sack_block{std::max(begin, ack.ack), end};
                break;
            }
        }
        const bool duplicate =
            std::any_of(ack.sack.begin(), ack.sack.end(), [&](const packet::sack_block& b) {
                return b.begin == merged.begin && b.end == merged.end;
            });
        if (!duplicate) ack.sack.push_back(merged);
    }

    packet::packet out =
        packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr, std::move(ack));
    ack_bytes_ += out.size_bytes;
    ++acks_sent_;
    env_->send(std::move(out));
}

} // namespace vtp::tcp
