#include "tcp/rto.hpp"

#include <algorithm>
#include <cstdlib>

namespace vtp::tcp {

rto_estimator::rto_estimator(rto_config cfg) : cfg_(cfg) {}

void rto_estimator::on_sample(util::sim_time rtt) {
    if (!has_sample_) {
        has_sample_ = true;
        srtt_ = rtt;
        rttvar_ = rtt / 2;
        return;
    }
    const util::sim_time err = std::llabs(srtt_ - rtt);
    rttvar_ = static_cast<util::sim_time>((1.0 - cfg_.beta) * static_cast<double>(rttvar_) +
                                          cfg_.beta * static_cast<double>(err));
    srtt_ = static_cast<util::sim_time>((1.0 - cfg_.alpha) * static_cast<double>(srtt_) +
                                        cfg_.alpha * static_cast<double>(rtt));
}

void rto_estimator::on_timeout() {
    backoff_ = std::min(backoff_ * 2, 64);
}

util::sim_time rto_estimator::rto() const {
    util::sim_time base = cfg_.initial_rto;
    if (has_sample_) {
        base = srtt_ + static_cast<util::sim_time>(cfg_.k * static_cast<double>(rttvar_));
        base = std::clamp(base, cfg_.min_rto, cfg_.max_rto);
    }
    return std::min<util::sim_time>(base * backoff_, cfg_.max_rto);
}

} // namespace vtp::tcp
