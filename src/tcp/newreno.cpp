#include "tcp/newreno.hpp"

#include <algorithm>

namespace vtp::tcp {

newreno::newreno(newreno_config cfg) : cfg_(cfg) {
    if (cfg_.initial_cwnd == 0) {
        cfg_.initial_cwnd = std::min<std::uint64_t>(
            4ull * cfg_.mss, std::max<std::uint64_t>(2ull * cfg_.mss, 4380));
    }
    cwnd_ = cfg_.initial_cwnd;
    ssthresh_ = cfg_.initial_ssthresh;
}

void newreno::on_new_ack(std::uint64_t acked_bytes) {
    if (in_slow_start()) {
        // RFC 5681 §3.1: cwnd += min(N, SMSS) per ack.
        cwnd_ += std::min<std::uint64_t>(acked_bytes, cfg_.mss);
        return;
    }
    // Congestion avoidance, byte-counted: one MSS per cwnd of acked data.
    ca_accumulator_ += acked_bytes * cfg_.mss;
    if (ca_accumulator_ >= cwnd_) {
        cwnd_ += ca_accumulator_ / std::max<std::uint64_t>(cwnd_, 1);
        ca_accumulator_ = 0;
    }
}

void newreno::enter_recovery(std::uint64_t flight_size) {
    ssthresh_ = std::max<std::uint64_t>(flight_size / 2, 2ull * cfg_.mss);
    cwnd_ = ssthresh_;
    ca_accumulator_ = 0;
}

void newreno::exit_recovery() { cwnd_ = ssthresh_; }

void newreno::on_timeout(std::uint64_t flight_size) {
    ssthresh_ = std::max<std::uint64_t>(flight_size / 2, 2ull * cfg_.mss);
    cwnd_ = cfg_.mss;
    ca_accumulator_ = 0;
}

} // namespace vtp::tcp
