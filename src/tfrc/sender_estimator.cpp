#include "tfrc/sender_estimator.hpp"

#include <algorithm>

namespace vtp::tfrc {

sender_estimator::sender_estimator(sender_estimator_config cfg)
    : cfg_(cfg), history_(cfg.history) {}

void sender_estimator::on_send(std::uint64_t seq, sim_time at) {
    if (send_times_.empty()) send_base_ = seq;
    send_times_.push_back(at);
    while (send_times_.size() > cfg_.max_send_records) {
        send_times_.pop_front();
        ++send_base_;
    }
}

sim_time sender_estimator::send_time(std::uint64_t seq) const {
    if (seq < send_base_) return 0;
    const std::uint64_t idx = seq - send_base_;
    if (idx >= send_times_.size()) return 0;
    return send_times_[idx];
}

bool sender_estimator::on_feedback(const packet::sack_feedback_segment& fb, sim_time,
                                   sim_time rtt) {
    if (!any_feedback_) {
        any_feedback_ = true;
        // Nothing below the first reported range can ever be confirmed
        // received, so anchor the window at the first block (or cum_ack).
        base_ = fb.blocks.empty() ? fb.cum_ack : fb.blocks.front().begin;
    }

    // Never track below the oldest send record still held. When
    // estimation sits idle across a stretch of the connection (runtime
    // profile renegotiation parks it on the receiver and later brings it
    // back), feedback can describe a backlog whose send times are gone —
    // replaying it would produce bogus arrival timestamps and an
    // O(backlog) scan. Skipped sequences simply never reach the history.
    if (base_ < send_base_) {
        const std::uint64_t jump = send_base_ - base_;
        if (jump >= received_.size()) {
            received_.clear();
        } else {
            received_.erase(received_.begin(),
                            received_.begin() + static_cast<std::ptrdiff_t>(jump));
        }
        base_ = send_base_;
    }

    for (const auto& block : fb.blocks) {
        for (std::uint64_t seq = std::max(block.begin, base_); seq < block.end; ++seq) {
            const std::uint64_t idx = seq - base_;
            if (idx >= received_.size()) received_.resize(idx + 1, false);
            received_[idx] = true;
        }
        highest_reported_ = std::max(highest_reported_, block.end == 0 ? 0 : block.end - 1);
    }

    if (highest_reported_ < cfg_.finalize_horizon) return false;
    return finalize_up_to(highest_reported_ - cfg_.finalize_horizon, rtt);
}

bool sender_estimator::finalize_up_to(std::uint64_t limit, sim_time rtt) {
    bool new_event = false;
    while (base_ <= limit) {
        const bool got = !received_.empty() && received_.front();
        if (!received_.empty()) received_.pop_front();
        if (got) {
            // Replay the arrival into the shared loss history. Arrival is
            // estimated as send time + one-way delay (RTT/2); only the
            // *relative* spacing matters for loss-event grouping.
            const sim_time arrival = send_time(base_) + rtt / 2;
            if (history_.on_packet(base_, arrival, rtt)) new_event = true;
        }
        // Missing sequences simply never reach the history: the next
        // received one exposes the hole exactly as at a real receiver.
        ++base_;
    }
    return new_event;
}

std::size_t sender_estimator::state_bytes() const {
    return sizeof(*this) + received_.size() / 8 + send_times_.size() * sizeof(sim_time) +
           history_.state_bytes();
}

} // namespace vtp::tfrc
