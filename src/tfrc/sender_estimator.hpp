// QTPlight sender-side loss estimation.
//
// The estimator rebuilds the receiver's packet-arrival view from SACK
// feedback and feeds it into the *same* loss_history class the classic
// receiver uses, so the loss event rate it produces matches what an
// RFC 3448 receiver would have reported (experiment E5 verifies this).
//
// Operation: the sender records each transmission's (seq, send time).
// Every SACK feedback marks ranges as received. Once the highest
// reported sequence is `finalize_horizon` packets past a sequence, its
// fate is final: received sequences are replayed into the loss history
// in order (estimated arrival = send time + RTT/2), missing ones appear
// as holes and become loss events.
//
// Because every feedback re-reports the recent ranges, lost feedback
// packets only delay finalisation — they cannot corrupt the estimate.
// And because the sender trusts only its own bookkeeping, a receiver
// cannot lie its way to a higher rate (experiment E6).
#pragma once

#include <cstdint>
#include <deque>

#include "packet/segment.hpp"
#include "tfrc/loss_history.hpp"

namespace vtp::tfrc {

struct sender_estimator_config {
    loss_history_config history{};
    /// A sequence is finalised once highest_reported - seq >= this.
    std::uint64_t finalize_horizon = 16;
    /// Cap on remembered (seq, send-time) entries.
    std::size_t max_send_records = 1 << 16;
};

class sender_estimator {
public:
    explicit sender_estimator(sender_estimator_config cfg = {});

    /// Record a data transmission (sequence numbers must be consecutive).
    void on_send(std::uint64_t seq, sim_time at);

    /// Ingest one SACK feedback. `rtt` is the current RTT estimate.
    /// Returns true if this feedback confirmed a new loss event.
    bool on_feedback(const packet::sack_feedback_segment& fb, sim_time now, sim_time rtt);

    double loss_event_rate() const { return history_.loss_event_rate(); }
    const loss_history& history() const { return history_; }
    loss_history& history() { return history_; }

    std::uint64_t finalized_up_to() const { return base_; }
    std::size_t state_bytes() const;

private:
    sim_time send_time(std::uint64_t seq) const;
    bool finalize_up_to(std::uint64_t limit, sim_time rtt);

    sender_estimator_config cfg_;
    loss_history history_;

    // Reception flags for sequences in [base_, base_ + received_.size()).
    std::deque<bool> received_;
    std::uint64_t base_ = 0;
    std::uint64_t highest_reported_ = 0;
    bool any_feedback_ = false;

    // Send times for sequences in [send_base_, send_base_ + send_times_.size()).
    std::deque<sim_time> send_times_;
    std::uint64_t send_base_ = 0;
};

} // namespace vtp::tfrc
