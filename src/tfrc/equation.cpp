#include "tfrc/equation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vtp::tfrc {

double throughput_bytes_per_second(const equation_params& params, double rtt_seconds,
                                   double t_rto_seconds, double p) {
    assert(p > 0.0 && "equation undefined at p == 0; handle slow start separately");
    const double clamped_p = std::min(p, 1.0);
    const double s = params.packet_size_bytes;
    const double b = params.b;
    const double root_term = rtt_seconds * std::sqrt(2.0 * b * clamped_p / 3.0);
    const double rto_term = t_rto_seconds * (3.0 * std::sqrt(3.0 * b * clamped_p / 8.0)) *
                            clamped_p * (1.0 + 32.0 * clamped_p * clamped_p);
    const double denom = root_term + rto_term;
    if (denom <= 0.0) return 0.0;
    return s / denom;
}

double throughput_bytes_per_second(const equation_params& params, double rtt_seconds,
                                   double p) {
    return throughput_bytes_per_second(params, rtt_seconds, 4.0 * rtt_seconds, p);
}

double loss_rate_for_throughput(const equation_params& params, double rtt_seconds,
                                double x_bytes_per_second) {
    constexpr double p_lo_limit = 1e-8;
    constexpr double p_hi_limit = 1.0;
    if (x_bytes_per_second <= 0.0) return p_hi_limit;

    // X(p) is strictly decreasing in p.
    double lo = p_lo_limit; // high rate
    double hi = p_hi_limit; // low rate
    if (throughput_bytes_per_second(params, rtt_seconds, lo) <= x_bytes_per_second)
        return lo;
    if (throughput_bytes_per_second(params, rtt_seconds, hi) >= x_bytes_per_second)
        return hi;

    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double x_mid = throughput_bytes_per_second(params, rtt_seconds, mid);
        if (x_mid > x_bytes_per_second)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace vtp::tfrc
