#include "tfrc/loss_history.hpp"

#include <algorithm>
#include <cmath>

namespace vtp::tfrc {

std::vector<double> interval_weights(std::size_t n) {
    std::vector<double> w(n, 1.0);
    const std::size_t half = n / 2;
    for (std::size_t i = half; i < n; ++i) {
        w[i] = 1.0 - static_cast<double>(i - (half - 1)) / static_cast<double>(half + 1);
    }
    return w;
}

loss_history::loss_history(loss_history_config cfg)
    : cfg_(cfg), weights_(interval_weights(cfg.num_intervals)) {}

bool loss_history::on_packet(std::uint64_t seq, sim_time at, sim_time rtt) {
    ++packets_seen_;
    bool new_event = false;

    if (!started_) {
        started_ = true;
        next_expected_ = seq + 1;
        highest_seq_ = seq;
        return false;
    }

    if (seq < next_expected_) {
        // Late (reordered) arrival: cancel the pending hole if any.
        auto it = std::find_if(pending_.begin(), pending_.end(),
                               [seq](const pending_hole& h) { return h.seq == seq; });
        if (it != pending_.end()) pending_.erase(it);
        return false;
    }

    // New holes between expected and this arrival.
    for (std::uint64_t missing = next_expected_; missing < seq; ++missing) {
        pending_.push_back(pending_hole{missing, 0});
    }
    next_expected_ = seq + 1;
    highest_seq_ = std::max(highest_seq_, seq);

    // This arrival is evidence against every pending hole below it.
    for (auto& hole : pending_) {
        if (hole.seq < seq) ++hole.later_arrivals;
    }
    while (!pending_.empty() && pending_.front().later_arrivals >= cfg_.reorder_tolerance) {
        const std::uint64_t lost_seq = pending_.front().seq;
        pending_.pop_front();
        const bool was_new_event = !open_event_ || at > open_event_start_ + rtt;
        declare_lost(lost_seq, at, rtt);
        new_event = new_event || was_new_event;
    }
    return new_event;
}

void loss_history::declare_lost(std::uint64_t seq, sim_time at, sim_time rtt) {
    ++lost_packets_;
    if (!open_event_) {
        open_event_ = true;
        open_event_first_seq_ = seq;
        open_event_start_ = at;
        ++loss_events_;
        return;
    }
    if (at > open_event_start_ + rtt) {
        // Close the current interval and start a new event.
        const std::uint64_t length =
            seq > open_event_first_seq_ ? seq - open_event_first_seq_ : 1;
        intervals_.push_front(length);
        while (intervals_.size() > cfg_.num_intervals) intervals_.pop_back();
        open_event_first_seq_ = seq;
        open_event_start_ = at;
        ++loss_events_;
    }
    // else: same loss event; the lost packet extends no interval.
}

void loss_history::seed_first_interval(double p_initial) {
    if (!intervals_.empty() || p_initial <= 0.0) return;
    const double interval = std::max(1.0, 1.0 / p_initial);
    intervals_.push_front(static_cast<std::uint64_t>(std::llround(interval)));
}

std::uint64_t loss_history::open_interval() const {
    if (!open_event_) return 0;
    return highest_seq_ >= open_event_first_seq_ ? highest_seq_ - open_event_first_seq_ : 0;
}

double loss_history::loss_event_rate() const {
    if (!open_event_) return 0.0;

    const std::size_t n = cfg_.num_intervals;

    // Average including the open interval as I_0.
    double tot0 = 0.0;
    double wsum0 = 0.0;
    {
        const double i0 = std::max<double>(1.0, static_cast<double>(open_interval()));
        tot0 += weights_[0] * i0;
        wsum0 += weights_[0];
        for (std::size_t i = 0; i + 1 < n && i < intervals_.size(); ++i) {
            tot0 += weights_[i + 1] * static_cast<double>(intervals_[i]);
            wsum0 += weights_[i + 1];
        }
    }

    // Average over closed intervals only.
    double tot1 = 0.0;
    double wsum1 = 0.0;
    for (std::size_t i = 0; i < n && i < intervals_.size(); ++i) {
        tot1 += weights_[i] * static_cast<double>(intervals_[i]);
        wsum1 += weights_[i];
    }

    const double mean0 = wsum0 > 0.0 ? tot0 / wsum0 : 0.0;
    const double mean1 = wsum1 > 0.0 ? tot1 / wsum1 : 0.0;
    const double i_mean = std::max({mean0, mean1, 1.0});
    return 1.0 / i_mean;
}

std::size_t loss_history::state_bytes() const {
    return sizeof(*this) + weights_.capacity() * sizeof(double) +
           pending_.size() * sizeof(pending_hole) +
           intervals_.size() * sizeof(std::uint64_t);
}

} // namespace vtp::tfrc
