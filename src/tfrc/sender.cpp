#include "tfrc/sender.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace vtp::tfrc {

// ---------------------------------------------------------------------------
// rate_controller
// ---------------------------------------------------------------------------

rate_controller::rate_controller(rate_controller_config cfg)
    : cfg_(cfg),
      // Before any feedback: one packet per second (RFC 3448 §4.2).
      x_(cfg.equation.packet_size_bytes) {}

void rate_controller::on_feedback(double p, double x_recv_bytes, util::sim_time rtt_sample,
                                  util::sim_time now) {
    (void)now;
    ++feedback_count_;
    const double s = cfg_.equation.packet_size_bytes;

    const bool first_feedback = !has_rtt_;
    if (first_feedback) {
        has_rtt_ = true;
        rtt_ = rtt_sample;
        // First feedback: initial window over one RTT (RFC 3390 sizing).
        const double w_init =
            std::min(4.0 * s, std::max(2.0 * s, cfg_.initial_window_bytes));
        x_ = std::max(w_init / util::to_seconds(std::max<util::sim_time>(rtt_, 1)), s);
    } else {
        const double q = cfg_.rtt_filter_q;
        rtt_ = static_cast<util::sim_time>(q * static_cast<double>(rtt_) +
                                           (1.0 - q) * static_cast<double>(rtt_sample));
    }

    // Oscillation damping (RFC 3448 §4.5): compare this RTT sample with
    // the long-run sqrt-mean; a sample above the mean means the queue is
    // building, so the instantaneous rate is scaled down.
    if (cfg_.oscillation_damping) {
        const double sqrt_sample =
            std::sqrt(util::to_seconds(std::max<util::sim_time>(rtt_sample, 1)));
        if (rtt_sqmean_ <= 0.0) {
            rtt_sqmean_ = sqrt_sample;
        } else {
            const double q2 = cfg_.rtt_sqmean_filter_q;
            rtt_sqmean_ = q2 * rtt_sqmean_ + (1.0 - q2) * sqrt_sample;
        }
        damping_ = std::clamp(rtt_sqmean_ / sqrt_sample, 0.5, 1.0);
    }

    p_ = p;
    last_x_recv_ = x_recv_bytes;
    const double rtt_s = util::to_seconds(std::max<util::sim_time>(rtt_, 1));
    const double t_mbi_s = util::to_seconds(cfg_.max_backoff_interval);

    if (p > 0.0) {
        const double x_calc = throughput_bytes_per_second(cfg_.equation, rtt_s, p);
        x_ = std::max(std::min(x_calc, 2.0 * x_recv_bytes), s / t_mbi_s);
    } else if (!first_feedback) {
        // Slow start: double per feedback, capped by twice the receive
        // rate. (The very first feedback only establishes the initial
        // window; doubling starts with the next one.)
        x_ = std::max(std::min(2.0 * x_, 2.0 * x_recv_bytes), s / rtt_s);
    }
}

void rate_controller::on_nofeedback_timeout(util::sim_time) {
    ++timeout_count_;
    const double s = cfg_.equation.packet_size_bytes;
    const double t_mbi_s = util::to_seconds(cfg_.max_backoff_interval);
    x_ = std::max(x_ / 2.0, s / t_mbi_s);
}

double rate_controller::allowed_rate() const {
    const double floor_bytes = cfg_.guaranteed_rate_bps / 8.0;
    return std::max(x_ * damping_, floor_bytes);
}

util::sim_time rate_controller::nofeedback_interval() const {
    if (!has_rtt_) return util::seconds(2);
    const double s = cfg_.equation.packet_size_bytes;
    const double two_packets_s = 2.0 * s / std::max(allowed_rate(), 1.0);
    return std::max<util::sim_time>(4 * rtt_, util::from_seconds(two_packets_s));
}

// ---------------------------------------------------------------------------
// sender_agent
// ---------------------------------------------------------------------------

sender_agent::sender_agent(sender_config cfg)
    : cfg_(cfg), rate_(cfg.rate), estimator_(cfg.estimator) {
    // Keep the equation packet size consistent with what we actually send.
    if (cfg_.rate.equation.packet_size_bytes != cfg_.packet_size) {
        rate_controller_config fixed = cfg_.rate;
        fixed.equation.packet_size_bytes = cfg_.packet_size;
        rate_ = rate_controller(fixed);
    }
}

void sender_agent::start(qtp::environment& env) {
    env_ = &env;
    arm_nofeedback_timer();
    send_next();
}

util::sim_time sender_agent::rtt_sample(util::sim_time ts_echo,
                                        util::sim_time t_delay) const {
    const util::sim_time sample = env_->now() - ts_echo - t_delay;
    return std::max<util::sim_time>(sample, util::microseconds(1));
}

void sender_agent::on_packet(const packet::packet& pkt) {
    if (const auto* fb = std::get_if<packet::tfrc_feedback_segment>(pkt.body.get())) {
        if (cfg_.mode == estimation_mode::receiver_side) on_tfrc_feedback(*fb);
        return;
    }
    if (const auto* fb = std::get_if<packet::sack_feedback_segment>(pkt.body.get())) {
        if (cfg_.mode == estimation_mode::sender_side) on_sack_feedback(*fb);
        return;
    }
}

void sender_agent::on_tfrc_feedback(const packet::tfrc_feedback_segment& fb) {
    const util::sim_time sample = rtt_sample(fb.ts_echo, fb.t_delay);
    rate_.on_feedback(fb.p, fb.x_recv, sample, env_->now());
    arm_nofeedback_timer();
    reschedule_pacing();
}

void sender_agent::on_sack_feedback(const packet::sack_feedback_segment& fb) {
    const util::sim_time sample = rtt_sample(fb.ts_echo, fb.t_delay);
    const util::sim_time rtt_for_grouping = rate_.has_rtt() ? rate_.rtt() : sample;
    const bool new_event = estimator_.on_feedback(fb, env_->now(), rtt_for_grouping);

    if (new_event && estimator_.history().loss_events() == 1 &&
        estimator_.history().intervals().empty()) {
        // First loss event: seed the previous interval from the achieved
        // rate, mirroring the receiver-side RFC 3448 §6.3.1 behaviour.
        const double p_init = loss_rate_for_throughput(
            cfg_.rate.equation, util::to_seconds(std::max<util::sim_time>(rtt_for_grouping, 1)),
            fb.x_recv);
        estimator_.history().seed_first_interval(p_init);
    }

    rate_.on_feedback(estimator_.loss_event_rate(), fb.x_recv, sample, env_->now());
    arm_nofeedback_timer();
    reschedule_pacing();
}

void sender_agent::reschedule_pacing() {
    // The pending send slot was computed at the previous rate; after a
    // rate update the next transmission must honour the new spacing, or
    // a slow initial timer would stall the whole slow-start ramp.
    if (send_timer_ == qtp::no_timer) return;
    env_->cancel(send_timer_);
    send_timer_ = qtp::no_timer;
    schedule_next_send();
}

void sender_agent::send_next() {
    send_timer_ = qtp::no_timer;
    if (packets_sent_ >= cfg_.max_packets) return;

    packet::data_segment seg;
    seg.seq = next_seq_++;
    seg.byte_offset = seg.seq * static_cast<std::uint64_t>(cfg_.packet_size);
    seg.payload_len = cfg_.packet_size;
    seg.ts = env_->now();
    seg.rtt_estimate = rate_.has_rtt() ? rate_.rtt() : 0;
    seg.end_of_stream = (packets_sent_ + 1 == cfg_.max_packets);

    if (cfg_.mode == estimation_mode::sender_side)
        estimator_.on_send(seg.seq, env_->now());

    ++packets_sent_;
    bytes_sent_ += seg.payload_len;
    env_->send(packet::make_packet(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr, seg));

    schedule_next_send();
}

void sender_agent::schedule_next_send() {
    if (send_timer_ != qtp::no_timer || packets_sent_ >= cfg_.max_packets) return;
    const double rate = std::max(rate_.allowed_rate(), 1.0);
    const double spacing_s = static_cast<double>(cfg_.packet_size) / rate;
    const util::sim_time spacing =
        std::clamp<util::sim_time>(util::from_seconds(spacing_s), util::microseconds(10),
                                   util::seconds(2));
    send_timer_ = env_->schedule(spacing, [this] { send_next(); });
}

void sender_agent::arm_nofeedback_timer() {
    if (nofeedback_timer_ != qtp::no_timer) env_->cancel(nofeedback_timer_);
    nofeedback_timer_ = env_->schedule(rate_.nofeedback_interval(), [this] {
        nofeedback_timer_ = qtp::no_timer;
        rate_.on_nofeedback_timeout(env_->now());
        util::log(util::log_level::debug, "tfrc-send", "nofeedback timeout, rate now ",
                  rate_.allowed_rate() * 8.0, " bit/s");
        arm_nofeedback_timer();
    });
}

} // namespace vtp::tfrc
