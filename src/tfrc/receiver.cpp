#include "tfrc/receiver.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vtp::tfrc {

// ---------------------------------------------------------------------------
// receiver_agent (classic RFC 3448 receiver)
// ---------------------------------------------------------------------------

receiver_agent::receiver_agent(receiver_config cfg) : cfg_(cfg), history_(cfg.history) {}

void receiver_agent::start(qtp::environment& env) { env_ = &env; }

void receiver_agent::on_packet(const packet::packet& pkt) {
    if (const auto* data = std::get_if<packet::data_segment>(pkt.body.get())) {
        on_data(*data, pkt);
    }
}

void receiver_agent::on_data(const packet::data_segment& seg, const packet::packet&) {
    const util::sim_time now = env_->now();
    ++received_packets_;
    received_bytes_ += seg.payload_len;
    bytes_since_feedback_ += seg.payload_len;
    if (seg.rtt_estimate > 0) last_rtt_hint_ = seg.rtt_estimate;
    last_data_ts_ = seg.ts;
    last_data_arrival_ = now;
    highest_seq_ = std::max(highest_seq_, seg.seq);

    const bool new_event = history_.on_packet(seg.seq, now, last_rtt_hint_);

    if (new_event && history_.loss_events() == 1 && history_.intervals().empty()) {
        // First loss event ever: synthesise the previous interval from the
        // rate achieved so far (RFC 3448 §6.3.1).
        const double elapsed = util::to_seconds(
            now - last_feedback_at_ > 0 ? now - last_feedback_at_ : last_rtt_hint_);
        const double x_recv = elapsed > 0.0
                                  ? static_cast<double>(bytes_since_feedback_) / elapsed
                                  : 0.0;
        const double p_init = loss_rate_for_throughput(
            cfg_.equation, util::to_seconds(last_rtt_hint_), x_recv);
        history_.seed_first_interval(p_init);
    }

    if (deliver_) deliver_(seg.byte_offset, seg.payload_len, seg.end_of_stream);

    if (!seen_data_) {
        seen_data_ = true;
        last_feedback_at_ = now;
        send_feedback(); // RFC 3448 §6.2: feedback on first packet
        return;
    }
    if (new_event) {
        send_feedback(); // expedited feedback on a new loss event
    }
}

void receiver_agent::arm_feedback_timer() {
    if (feedback_timer_ != qtp::no_timer) env_->cancel(feedback_timer_);
    feedback_timer_ = env_->schedule(last_rtt_hint_, [this] {
        feedback_timer_ = qtp::no_timer;
        if (bytes_since_feedback_ > 0) send_feedback();
        else arm_feedback_timer(); // idle: keep the timer alive
    });
}

void receiver_agent::send_feedback() {
    const util::sim_time now = env_->now();
    packet::tfrc_feedback_segment fb;
    fb.ts_echo = last_data_ts_;
    fb.t_delay = now - last_data_arrival_;
    const util::sim_time elapsed = now - last_feedback_at_;
    const double window = elapsed > 0 ? util::to_seconds(elapsed)
                                      : util::to_seconds(last_rtt_hint_);
    fb.x_recv = window > 0.0 ? static_cast<double>(bytes_since_feedback_) / window : 0.0;
    fb.p = history_.loss_event_rate();
    fb.highest_seq = highest_seq_;

    // Selfish-receiver attack (evaluation hook, E6).
    fb.p *= cfg_.misreport_p_factor;
    fb.x_recv *= cfg_.misreport_x_factor;

    packet::packet out = packet::make_packet(cfg_.flow_id, env_->local_addr(),
                                             cfg_.peer_addr, fb);
    feedback_bytes_ += out.size_bytes;
    ++feedback_sent_;
    env_->send(std::move(out));

    bytes_since_feedback_ = 0;
    last_feedback_at_ = now;
    arm_feedback_timer();
}

// ---------------------------------------------------------------------------
// light_receiver_agent (QTPlight receiver)
// ---------------------------------------------------------------------------

light_receiver_agent::light_receiver_agent(light_receiver_config cfg) : cfg_(cfg) {}

void light_receiver_agent::start(qtp::environment& env) { env_ = &env; }

void light_receiver_agent::on_packet(const packet::packet& pkt) {
    if (const auto* data = std::get_if<packet::data_segment>(pkt.body.get())) {
        on_data(*data, pkt);
    }
}

void light_receiver_agent::on_data(const packet::data_segment& seg, const packet::packet&) {
    const util::sim_time now = env_->now();
    ++received_packets_;
    received_bytes_ += seg.payload_len;
    bytes_since_feedback_ += seg.payload_len;
    if (seg.rtt_estimate > 0) last_rtt_hint_ = seg.rtt_estimate;
    last_data_ts_ = seg.ts;
    last_data_arrival_ = now;

    record_seq(seg.seq);
    if (deliver_) deliver_(seg.byte_offset, seg.payload_len, seg.end_of_stream);

    if (!seen_data_) {
        seen_data_ = true;
        last_feedback_at_ = now;
        send_feedback();
    }
}

void light_receiver_agent::record_seq(std::uint64_t seq) {
    // Merge into the ascending, disjoint range list. The common case
    // (in-order arrival) extends the last range in O(1).
    if (!ranges_.empty() && ranges_.back().end == seq) {
        ranges_.back().end = seq + 1;
    } else {
        // General case: find insertion point.
        auto it = std::lower_bound(ranges_.begin(), ranges_.end(), seq,
                                   [](const packet::sack_block& b, std::uint64_t s) {
                                       return b.end < s;
                                   });
        if (it != ranges_.end() && it->begin <= seq && seq < it->end)
            return; // duplicate
        if (it != ranges_.end() && it->begin == seq + 1) {
            it->begin = seq;
        } else if (it != ranges_.end() && it->end == seq) {
            it->end = seq + 1;
            auto next = std::next(it);
            if (next != ranges_.end() && next->begin == it->end) {
                it->end = next->end;
                ranges_.erase(next);
            }
        } else {
            ranges_.insert(it, packet::sack_block{seq, seq + 1});
        }
    }
    while (ranges_.size() > cfg_.max_tracked_ranges) ranges_.pop_front();
    // Drop ranges the sender has necessarily finalised already.
    const std::uint64_t highest_end = ranges_.back().end;
    while (ranges_.front().end + cfg_.active_window < highest_end) {
        ranges_.pop_front();
    }
}

void light_receiver_agent::arm_feedback_timer() {
    if (feedback_timer_ != qtp::no_timer) env_->cancel(feedback_timer_);
    feedback_timer_ = env_->schedule(last_rtt_hint_, [this] {
        feedback_timer_ = qtp::no_timer;
        if (bytes_since_feedback_ > 0) send_feedback();
        else arm_feedback_timer();
    });
}

void light_receiver_agent::send_feedback() {
    const util::sim_time now = env_->now();
    packet::sack_feedback_segment fb;
    fb.cum_ack = ranges_.empty() ? 0 : ranges_.front().begin;
    const std::size_t first =
        ranges_.size() > cfg_.max_report_blocks ? ranges_.size() - cfg_.max_report_blocks : 0;
    for (std::size_t i = first; i < ranges_.size(); ++i) fb.blocks.push_back(ranges_[i]);
    fb.ts_echo = last_data_ts_;
    fb.t_delay = now - last_data_arrival_;
    const util::sim_time elapsed = now - last_feedback_at_;
    const double window = elapsed > 0 ? util::to_seconds(elapsed)
                                      : util::to_seconds(last_rtt_hint_);
    fb.x_recv = window > 0.0 ? static_cast<double>(bytes_since_feedback_) / window : 0.0;

    packet::packet out = packet::make_packet(cfg_.flow_id, env_->local_addr(),
                                             cfg_.peer_addr, std::move(fb));
    feedback_bytes_ += out.size_bytes;
    ++feedback_sent_;
    env_->send(std::move(out));

    bytes_since_feedback_ = 0;
    last_feedback_at_ = now;
    arm_feedback_timer();
}

std::size_t light_receiver_agent::state_bytes() const {
    return sizeof(*this) + ranges_.size() * sizeof(packet::sack_block);
}

} // namespace vtp::tfrc
