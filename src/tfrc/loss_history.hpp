// Loss-event history and loss-event-rate estimation (RFC 3448 §5).
//
// This is the data structure whose *placement* is the QTPlight
// contribution: classic TFRC keeps it at the receiver; QTPlight moves it
// to the sender, which rebuilds the same packet-arrival view from SACK
// feedback (tfrc/sender_estimator.hpp). Both sides therefore share this
// exact class, which is what makes the E5 equivalence experiment an
// apples-to-apples comparison.
//
// Semantics implemented:
//  - A packet is declared lost once `reorder_tolerance` packets with
//    higher sequence numbers have been observed (RFC 3448's "3 subsequent
//    packets" rule; late arrivals cancel the pending hole).
//  - Losses whose detection time lies within one RTT of the start of the
//    current loss event belong to that event; otherwise they begin a new
//    event (one interval per event, measured in packets between the first
//    losses of consecutive events).
//  - The loss event rate is 1 / I_mean where I_mean is the RFC 3448 §5.4
//    weighted average over the last `num_intervals` intervals, taking
//    max(with-open-interval, without-open-interval) so the estimate never
//    rises merely because time passed without loss.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/time.hpp"

namespace vtp::tfrc {

using util::sim_time;

struct loss_history_config {
    std::size_t num_intervals = 8; ///< n in RFC 3448 (8 recommended)
    int reorder_tolerance = 3;     ///< packets after a hole before it is a loss
};

/// RFC 3448 §5.4 interval weights for history depth n: 1 for the newest
/// n/2, then linearly decaying.
std::vector<double> interval_weights(std::size_t n);

class loss_history {
public:
    explicit loss_history(loss_history_config cfg = {});

    /// Record the arrival of data packet `seq` at time `at`; `rtt` is the
    /// current round-trip estimate used for loss-event grouping.
    /// Returns true if this arrival *confirmed a new loss event*.
    bool on_packet(std::uint64_t seq, sim_time at, sim_time rtt);

    /// Loss event rate p in [0,1]; 0 until the first loss event.
    double loss_event_rate() const;

    bool has_loss() const { return open_event_; }

    /// Synthesise the first (previous) interval after the first loss so
    /// the equation reproduces the pre-loss rate (RFC 3448 §6.3.1): the
    /// interval is set to 1/p_initial packets.
    void seed_first_interval(double p_initial);

    std::size_t loss_events() const { return loss_events_; }
    std::uint64_t lost_packets() const { return lost_packets_; }
    std::uint64_t highest_seq() const { return highest_seq_; }
    std::uint64_t packets_seen() const { return packets_seen_; }

    /// Resident state size in bytes (the E4 memory-footprint metric).
    std::size_t state_bytes() const;

    /// Closed intervals, newest first (exposed for tests/benches).
    const std::deque<std::uint64_t>& intervals() const { return intervals_; }
    /// Packets since the first loss of the open (current) event.
    std::uint64_t open_interval() const;

private:
    struct pending_hole {
        std::uint64_t seq;
        int later_arrivals;
    };

    void declare_lost(std::uint64_t seq, sim_time at, sim_time rtt);

    loss_history_config cfg_;
    std::vector<double> weights_;

    bool started_ = false;
    std::uint64_t next_expected_ = 0;
    std::uint64_t highest_seq_ = 0;
    std::uint64_t packets_seen_ = 0;

    std::deque<pending_hole> pending_;

    bool open_event_ = false;
    std::uint64_t open_event_first_seq_ = 0;
    sim_time open_event_start_ = 0;
    std::deque<std::uint64_t> intervals_; ///< closed intervals, newest first

    std::size_t loss_events_ = 0;
    std::uint64_t lost_packets_ = 0;
};

} // namespace vtp::tfrc
