// The TCP throughput equation at the heart of TFRC (RFC 3448 §3.1):
//
//                              s
//   X = --------------------------------------------------
//       R*sqrt(2*b*p/3) + t_RTO*(3*sqrt(3*b*p/8))*p*(1+32*p^2)
//
// X: transmit rate in bytes/second, s: packet size in bytes, R: RTT in
// seconds, p: loss event rate, t_RTO: retransmission timeout (4R),
// b: packets acknowledged per ACK (1 here).
//
// The inverse (p from X) is needed to synthesise the first loss interval
// when the receiver (or the QTPlight sender-side estimator) observes its
// first loss event while the flow is still in slow start (RFC 3448
// §6.3.1): the history is seeded so that the equation yields the rate the
// flow was actually achieving.
#pragma once

namespace vtp::tfrc {

struct equation_params {
    double packet_size_bytes = 1000.0; ///< s
    double b = 1.0;                    ///< packets per ACK
};

/// X in bytes/second for loss event rate `p` (0 < p <= 1) and RTT
/// `rtt_seconds`. Returns +inf-like large value as p -> 0 is undefined;
/// callers must handle p == 0 (slow start) separately, so this function
/// requires p > 0.
double throughput_bytes_per_second(const equation_params& params, double rtt_seconds,
                                   double t_rto_seconds, double p);

/// Convenience overload with t_RTO = 4*RTT (the RFC 3448 recommendation).
double throughput_bytes_per_second(const equation_params& params, double rtt_seconds,
                                   double p);

/// Invert the equation: the loss event rate p that would produce rate
/// `x_bytes_per_second` at the given RTT. Solved by bisection on the
/// strictly decreasing X(p); result clamped to [1e-8, 1].
double loss_rate_for_throughput(const equation_params& params, double rtt_seconds,
                                double x_bytes_per_second);

} // namespace vtp::tfrc
