// TFRC receivers.
//
// `receiver_agent` is the classic RFC 3448 receiver: it owns the loss
// history, computes the loss event rate p, and returns it in feedback
// once per RTT (immediately on a new loss event). This is the costly
// path the paper wants off mobile devices.
//
// `light_receiver_agent` is the QTPlight receiver: it keeps only a
// bounded list of received sequence ranges and a byte counter, and
// returns a SACK vector — no loss-interval bookkeeping at all. The
// matching sender-side estimator lives in tfrc/sender_estimator.hpp.
//
// Both receivers support an application delivery callback and, for the
// selfish-receiver experiment (E6), the standard receiver can be
// configured to under-report its loss rate and inflate x_recv — the
// attack of Georg & Gorinsky that QTPlight is immune to by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/environment.hpp"
#include "tfrc/equation.hpp"
#include "tfrc/loss_history.hpp"

namespace vtp::tfrc {

/// Application-side delivery hook: (byte_offset, length, end_of_stream).
using delivery_callback = std::function<void(std::uint64_t, std::uint32_t, bool)>;

struct receiver_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    loss_history_config history{};
    equation_params equation{};

    /// Selfish-receiver attack knobs (E6): reported p is multiplied by
    /// `misreport_p_factor` (1.0 = honest, 0 = claims no loss) and
    /// reported x_recv by `misreport_x_factor`.
    double misreport_p_factor = 1.0;
    double misreport_x_factor = 1.0;
};

class receiver_agent : public qtp::agent {
public:
    explicit receiver_agent(receiver_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "tfrc-recv"; }

    void set_delivery(delivery_callback cb) { deliver_ = std::move(cb); }

    const loss_history& history() const { return history_; }
    std::uint64_t received_packets() const { return received_packets_; }
    std::uint64_t received_bytes() const { return received_bytes_; }
    std::uint64_t feedback_sent() const { return feedback_sent_; }
    std::uint64_t feedback_bytes() const { return feedback_bytes_; }

private:
    void on_data(const packet::data_segment& seg, const packet::packet& pkt);
    void send_feedback();
    void arm_feedback_timer();

    receiver_config cfg_;
    qtp::environment* env_ = nullptr;
    loss_history history_;
    delivery_callback deliver_;

    util::sim_time last_rtt_hint_ = util::milliseconds(100);
    util::sim_time last_data_ts_ = 0;      ///< sender timestamp of newest data
    util::sim_time last_data_arrival_ = 0; ///< our clock at newest data
    std::uint64_t highest_seq_ = 0;
    std::uint64_t bytes_since_feedback_ = 0;
    util::sim_time last_feedback_at_ = 0;
    qtp::timer_id feedback_timer_ = qtp::no_timer;
    bool seen_data_ = false;

    std::uint64_t received_packets_ = 0;
    std::uint64_t received_bytes_ = 0;
    std::uint64_t feedback_sent_ = 0;
    std::uint64_t feedback_bytes_ = 0;
};

struct light_receiver_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    /// Retain at most this many merged received ranges (oldest forgotten;
    /// the sender's finalisation horizon is far shorter).
    std::size_t max_tracked_ranges = 64;
    /// Report at most this many ranges per feedback packet.
    std::size_t max_report_blocks = 16;
    /// Sequences more than this far behind the newest one are already
    /// finalised by the sender (its horizon is 16), so ranges wholly
    /// below the window are pruned — this is what keeps both the
    /// receiver state and the feedback "light and simple".
    std::uint64_t active_window = 64;
};

class light_receiver_agent : public qtp::agent {
public:
    explicit light_receiver_agent(light_receiver_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "qtplight-recv"; }

    void set_delivery(delivery_callback cb) { deliver_ = std::move(cb); }

    std::uint64_t received_packets() const { return received_packets_; }
    std::uint64_t received_bytes() const { return received_bytes_; }
    std::uint64_t feedback_sent() const { return feedback_sent_; }
    std::uint64_t feedback_bytes() const { return feedback_bytes_; }
    /// Resident tracking state (E4 memory metric).
    std::size_t state_bytes() const;
    const std::deque<packet::sack_block>& ranges() const { return ranges_; }

private:
    void on_data(const packet::data_segment& seg, const packet::packet& pkt);
    void record_seq(std::uint64_t seq);
    void send_feedback();
    void arm_feedback_timer();

    light_receiver_config cfg_;
    qtp::environment* env_ = nullptr;
    delivery_callback deliver_;

    std::deque<packet::sack_block> ranges_; ///< merged, ascending, bounded
    util::sim_time last_rtt_hint_ = util::milliseconds(100);
    util::sim_time last_data_ts_ = 0;
    util::sim_time last_data_arrival_ = 0;
    std::uint64_t bytes_since_feedback_ = 0;
    util::sim_time last_feedback_at_ = 0;
    qtp::timer_id feedback_timer_ = qtp::no_timer;
    bool seen_data_ = false;

    std::uint64_t received_packets_ = 0;
    std::uint64_t received_bytes_ = 0;
    std::uint64_t feedback_sent_ = 0;
    std::uint64_t feedback_bytes_ = 0;
};

} // namespace vtp::tfrc
