// TFRC sender: rate controller + pacing agent.
//
// `rate_controller` implements RFC 3448 §4: slow-start doubling capped by
// twice the reported receive rate, equation-based rate once loss appears,
// and the nofeedback timer back-off. It also implements the paper's
// gTFRC specialisation (QTPAF): when a guaranteed rate g has been
// negotiated with a DiffServ/AF network, the sending rate never drops
// below g — the AF class protects in-profile packets, so observed loss
// on out-of-profile packets must not starve the reservation
// (draft-lochin-ietf-tsvwg-gtfrc).
//
// `sender_agent` paces data packets at the controlled rate and accepts
// either feedback flavour:
//  - receiver_side: classic TFRC feedback carrying p computed remotely;
//  - sender_side (QTPlight): SACK vectors, fed to tfrc::sender_estimator.
#pragma once

#include <cstdint>

#include "core/environment.hpp"
#include "tfrc/equation.hpp"
#include "tfrc/sender_estimator.hpp"
#include "util/stats.hpp"

namespace vtp::tfrc {

struct rate_controller_config {
    equation_params equation{};
    /// gTFRC guaranteed rate in bits/s (0 disables the floor).
    double guaranteed_rate_bps = 0.0;
    /// t_mbi: ceiling on the back-off inter-packet interval (RFC: 64 s).
    util::sim_time max_backoff_interval = util::seconds(64);
    /// Initial window in bytes (RFC 3390-style: min(4s, max(2s, 4380))).
    double initial_window_bytes = 4380.0;
    /// RTT EWMA weight on the old estimate (RFC 3448 q = 0.9).
    double rtt_filter_q = 0.9;
    /// RFC 3448 §4.5 oscillation damping: scale the instantaneous rate by
    /// sqrt(R_sample)/R_sqmean so a building queue (rising RTT) throttles
    /// the flow before loss does.
    bool oscillation_damping = true;
    double rtt_sqmean_filter_q = 0.9;
};

class rate_controller {
public:
    explicit rate_controller(rate_controller_config cfg);

    /// Process one feedback report: loss event rate `p`, receiver rate
    /// `x_recv` (bytes/s) and a fresh RTT sample.
    void on_feedback(double p, double x_recv_bytes, util::sim_time rtt_sample,
                     util::sim_time now);

    /// Nofeedback timer expired: halve the rate (floored at one packet
    /// per t_mbi, and at the gTFRC guarantee if configured).
    void on_nofeedback_timeout(util::sim_time now);

    /// Allowed sending rate in bytes/s, including the gTFRC floor.
    double allowed_rate() const;

    /// Adjust the gTFRC floor in place (profile renegotiation: an AF
    /// re-contract or a QoS downgrade must not reset congestion state).
    void set_guaranteed_rate(double bps) { cfg_.guaranteed_rate_bps = bps; }
    double guaranteed_rate() const { return cfg_.guaranteed_rate_bps; }

    /// Adopt another congestion controller's operating point (mid-flow cc
    /// swap): start at its measured rate/RTT/loss instead of one packet
    /// per second. Feedback-driven evolution proceeds normally from here.
    void seed(double x_bytes_per_s, util::sim_time rtt, double p) {
        if (x_bytes_per_s > 0.0) x_ = x_bytes_per_s;
        if (rtt > 0) {
            rtt_ = rtt;
            has_rtt_ = true;
        }
        if (p > 0.0) p_ = p;
    }

    /// Last receiver-reported receive rate (bytes/s).
    double x_recv() const { return last_x_recv_; }

    /// Equation-tracking rate without the gTFRC floor (ablation A1).
    double x_tfrc() const { return x_; }

    util::sim_time rtt() const { return rtt_; }
    bool has_rtt() const { return has_rtt_; }
    double current_loss_rate() const { return p_; }
    bool in_slow_start() const { return p_ <= 0.0; }

    /// Interval for the nofeedback timer: max(4R, 2s/X); 2 s before any
    /// feedback has arrived (RFC 3448 §4.2/4.4).
    util::sim_time nofeedback_interval() const;

    std::uint64_t feedback_count() const { return feedback_count_; }
    std::uint64_t timeout_count() const { return timeout_count_; }

private:
    rate_controller_config cfg_;
    double x_;            ///< current TFRC rate, bytes/s
    double p_ = 0.0;      ///< latest loss event rate
    double last_x_recv_ = 0.0;
    util::sim_time rtt_ = 0;
    bool has_rtt_ = false;
    double rtt_sqmean_ = 0.0;  ///< EWMA of sqrt(RTT sample), seconds^0.5
    double damping_ = 1.0;     ///< §4.5 instantaneous-rate factor
    std::uint64_t feedback_count_ = 0;
    std::uint64_t timeout_count_ = 0;
};

enum class estimation_mode {
    receiver_side, ///< classic TFRC: p computed by the receiver
    sender_side,   ///< QTPlight: p computed here from SACK feedback
};

struct sender_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    std::uint32_t packet_size = 1000; ///< payload bytes per data packet
    estimation_mode mode = estimation_mode::receiver_side;
    rate_controller_config rate{};
    sender_estimator_config estimator{};
    /// Finite transfer length in packets (default: unlimited source).
    std::uint64_t max_packets = UINT64_MAX;
};

class sender_agent : public qtp::agent {
public:
    explicit sender_agent(sender_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "tfrc-send"; }

    const rate_controller& rate() const { return rate_; }
    const sender_estimator& estimator() const { return estimator_; }
    std::uint64_t packets_sent() const { return packets_sent_; }
    std::uint64_t bytes_sent() const { return bytes_sent_; }
    bool finished() const { return packets_sent_ >= cfg_.max_packets; }

private:
    void on_tfrc_feedback(const packet::tfrc_feedback_segment& fb);
    void on_sack_feedback(const packet::sack_feedback_segment& fb);
    void send_next();
    void schedule_next_send();
    void reschedule_pacing();
    void arm_nofeedback_timer();
    util::sim_time rtt_sample(util::sim_time ts_echo, util::sim_time t_delay) const;

    sender_config cfg_;
    qtp::environment* env_ = nullptr;
    rate_controller rate_;
    sender_estimator estimator_;

    std::uint64_t next_seq_ = 0;
    std::uint64_t packets_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
    qtp::timer_id send_timer_ = qtp::no_timer;
    qtp::timer_id nofeedback_timer_ = qtp::no_timer;
};

} // namespace vtp::tfrc
