// Multi-stream multiplexing: shared types.
//
// One QTP connection carries up to `max_streams` concurrent application
// streams. Each stream has its own byte space, reliability mode (fixed at
// open, or following the connection profile for stream 0), scheduler
// weight, and optional message framing with per-message delivery
// deadlines. Congestion control, loss estimation and SACK feedback stay
// per-connection — that is the point of multiplexing: mixed media and
// bulk share one gTFRC state instead of competing over N connections.
//
// Stream 0 is the legacy single stream: it exists on every connection,
// travels on the wire as a plain `data_segment` (streams >= 1 use the
// `data_stream` kind), and follows the negotiated/renegotiated profile,
// so every pre-mux caller keeps working unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/segment.hpp"
#include "sack/retransmit.hpp"
#include "util/time.hpp"

namespace vtp::stream {

/// Hard cap on concurrent streams per connection — by definition the
/// wire limit (the decoder rejects stream ids at or above it).
inline constexpr std::uint32_t max_streams = packet::max_stream_id;

/// Returned by open_stream when the connection is out of stream ids.
inline constexpr std::uint32_t invalid_stream = UINT32_MAX;

/// Per-stream service profile, fixed when the stream is opened.
struct stream_options {
    /// Reliability of this stream (independent of the connection
    /// profile). Ignored when `follow_profile` is set.
    sack::reliability_mode reliability = sack::reliability_mode::full;

    /// Track the connection profile's reliability instead (including
    /// across renegotiations). Stream 0 is created this way.
    bool follow_profile = false;

    /// Weighted-round-robin share of the TFRC-paced send slots relative
    /// to the other streams (0 is clamped to 1).
    std::uint32_t weight = 1;

    /// Message framing: the stream is cut into `message_size`-byte
    /// messages; each expires `message_deadline` after its first
    /// transmission (partial reliability drops expired retransmissions).
    /// 0 disables framing.
    std::uint32_t message_size = 0;
    util::sim_time message_deadline = util::time_never;

    /// Retransmission cap per byte range (0 = unlimited).
    std::uint32_t max_transmissions = 0;
};

/// What the sender scheduler picked for one TFRC-paced send slot.
struct payload_pick {
    std::uint32_t stream_id = 0;
    std::uint64_t byte_offset = 0; ///< offset in the stream's byte space
    std::uint32_t payload_len = 0;
    std::uint32_t message_id = 0;
    util::sim_time deadline = util::time_never;
    sack::reliability_mode mode = sack::reliability_mode::none; ///< effective
    bool is_retransmission = false;
    bool end_of_stream = false;
};

/// Per-pick policy context the connection derives from its congestion
/// state (the partial-reliability margin tracks the current RTT).
struct send_policy {
    util::sim_time partial_margin = util::milliseconds(0);
    std::uint32_t packet_size = 1000;
};

/// One delivered-and-buffered payload chunk awaiting recv() on the
/// receive side. Chunk boundaries are exactly the reassembly's delivery
/// boundaries (one frame in immediate mode, the newly contiguous prefix
/// in ordered mode), and `at` is the substrate clock at delivery — so a
/// poll-mode consumer observes the identical delivery trace a callback
/// consumer would.
struct ready_chunk {
    std::uint64_t offset = 0;
    util::sim_time at = 0;
    std::vector<std::uint8_t> bytes;
};

/// One-call snapshot of one stream's sender-side accounting.
struct stream_info {
    std::uint32_t id = 0;
    bool open = false; ///< still accepting offer()
    sack::reliability_mode reliability = sack::reliability_mode::none;
    std::uint32_t weight = 1;
    std::uint64_t bytes_offered = 0;
    std::uint64_t bytes_sent = 0;  ///< first transmissions
    std::uint64_t bytes_acked = 0; ///< confirmed delivered
    std::uint64_t rtx_bytes_sent = 0;
    std::uint64_t abandoned_bytes = 0; ///< expired under the partial policy
};

} // namespace vtp::stream
