#include "stream/stream_scheduler.hpp"

namespace vtp::stream {

std::uint32_t stream_scheduler::pick(const std::vector<candidate>& cands,
                                     util::sim_time now) {
    // Deadline-first promotion: the candidate with the earliest deadline
    // inside the promotion window jumps the round-robin order.
    const candidate* urgent = nullptr;
    for (const auto& c : cands) {
        if (c.deadline == util::time_never) continue;
        if (c.deadline - now > cfg_.deadline_promotion_window) continue;
        if (urgent == nullptr || c.deadline < urgent->deadline) urgent = &c;
    }
    if (urgent != nullptr) {
        ++promotions_;
        if (tracer_ != nullptr)
            tracer_->push(now, trace::record_type::stream_sched, 0,
                          static_cast<std::uint16_t>(urgent->id),
                          urgent->deadline > now
                              ? static_cast<std::uint64_t>(urgent->deadline - now)
                              : 0,
                          0);
        cursor_ = urgent->id;
        return urgent->id;
    }

    // Deficit round-robin: serve the first stream after the cursor with
    // positive credit; when a full round finds none, replenish every
    // candidate by weight * quantum and try again.
    const std::size_t n = cands.size();
    std::size_t start = 0;
    while (start < n && cands[start].id <= cursor_) ++start;
    // `start` is the first candidate strictly after the cursor (may be n:
    // wrap to 0).
    for (int round = 0; round < 64; ++round) {
        for (std::size_t k = 0; k < n; ++k) {
            const candidate& c = cands[(start + k) % n];
            if (deficit_[c.id] > 0) {
                cursor_ = c.id;
                return c.id;
            }
        }
        for (const auto& c : cands) {
            const std::int64_t weight = c.weight == 0 ? 1 : c.weight;
            deficit_[c.id] += weight * static_cast<std::int64_t>(cfg_.quantum_bytes);
        }
    }
    // Unreachable unless a stream amassed absurd debt; fail open.
    cursor_ = cands[start % n].id;
    return cursor_;
}

void stream_scheduler::charge(std::uint32_t id, std::uint64_t bytes) {
    deficit_[id] -= static_cast<std::int64_t>(bytes);
}

void stream_scheduler::trim_idle(std::uint32_t id) {
    const auto it = deficit_.find(id);
    if (it != deficit_.end() && it->second > 0) it->second = 0;
}

void stream_scheduler::forget(std::uint32_t id) { deficit_.erase(id); }

} // namespace vtp::stream
