// Sender-side stream scheduler: weighted deficit round-robin with
// deadline-first promotion.
//
// Every TFRC-paced send slot carries one packet; the scheduler decides
// which stream fills it. Backlogged streams share slots in proportion to
// their weights (deficit round-robin, byte-accurate via charge()).
// A stream whose earliest pending delivery deadline is about to expire
// is promoted ahead of the round-robin order — the send is still charged
// against its deficit, so promotion borrows bandwidth that the weights
// claw back later instead of granting extra share.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/tracer.hpp"
#include "util/time.hpp"

namespace vtp::stream {

struct stream_scheduler_config {
    /// Deficit replenished per weight unit per round-robin round. One
    /// typical packet keeps per-round bursts small.
    std::uint32_t quantum_bytes = 1500;

    /// Promote a stream once its earliest pending deadline is this close
    /// (covers one-way delay plus a few send slots of queueing).
    util::sim_time deadline_promotion_window = util::milliseconds(25);
};

class stream_scheduler {
public:
    /// One stream that has sendable work right now.
    struct candidate {
        std::uint32_t id = 0;
        std::uint32_t weight = 1;
        /// Earliest delivery deadline among its pending work
        /// (util::time_never when none).
        util::sim_time deadline = util::time_never;
    };

    explicit stream_scheduler(stream_scheduler_config cfg = {}) : cfg_(cfg) {}

    /// Pick the stream to fill the next send slot. `cands` must be
    /// non-empty and sorted by id (the mux iterates streams in id order).
    std::uint32_t pick(const std::vector<candidate>& cands, util::sim_time now);

    /// Account `bytes` of payload actually sent on `id` against its
    /// deficit (call after every pick-driven send).
    void charge(std::uint32_t id, std::uint64_t bytes);

    /// `id` ran out of work: forfeit unused positive credit so an idle
    /// stream cannot save up a burst (debt from promotions is kept).
    void trim_idle(std::uint32_t id);

    /// Stream closed for good: drop its state.
    void forget(std::uint32_t id);

    std::uint64_t promotions() const { return promotions_; }

    /// Flight-recorder hook: promotion decisions are recorded as
    /// stream_sched events (null disables, the default).
    void set_tracer(trace::tracer* t) { tracer_ = t; }

private:
    stream_scheduler_config cfg_;
    std::unordered_map<std::uint32_t, std::int64_t> deficit_;
    std::uint32_t cursor_ = UINT32_MAX; ///< last served id
    std::uint64_t promotions_ = 0;
    trace::tracer* tracer_ = nullptr;
};

} // namespace vtp::stream
