// Stream multiplexer: per-stream sender state and receive-side demux.
//
// `stream_mux` owns the sender half: up to stream::max_streams outbound
// streams, each with its own byte space, SACK scoreboard, retransmission
// queue, message framing and reliability mode. connection_sender asks it
// to fill each TFRC-paced send slot (next_payload); the embedded
// stream_scheduler arbitrates between streams, and all per-stream
// reliability bookkeeping (scoreboard recording, SACK ingestion, expiry)
// happens here. Sequence numbers stay connection-wide — every stream's
// scoreboard sees the same SACK feedback and simply skips sequences it
// did not send.
//
// `stream_demux` owns the receiver half: one sack::reassembly per stream,
// created on first frame with the delivery order the frame's reliability
// bits call for, delivering through a (stream id, offset, length)
// callback. Stream 0 is created eagerly with the negotiated connection
// profile and also feeds the legacy single-stream delivery hook.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sack/reassembly.hpp"
#include "sack/retransmit.hpp"
#include "sack/scoreboard.hpp"
#include "stream/stream.hpp"
#include "stream/stream_scheduler.hpp"

namespace vtp::stream {

/// Sender-side state of one stream (owned by stream_mux).
class outbound_stream {
public:
    outbound_stream(std::uint32_t id, stream_options opts, std::uint64_t total_bytes,
                    bool open, sack::scoreboard_config sb_cfg);

    std::uint32_t id() const { return id_; }
    const stream_options& options() const { return opts_; }

    /// Reliability this stream actually runs, given the connection
    /// profile's current mode (follow_profile streams track it).
    sack::reliability_mode effective_mode(sack::reliability_mode profile_mode) const {
        return opts_.follow_profile ? profile_mode : opts_.reliability;
    }

    /// Grow the stream by `n` bytes (pre-bounded by the mux). No-op on a
    /// finished or unlimited stream.
    void offer(std::uint64_t n);
    /// Stash the real payload backing the `n` bytes just offered (they
    /// start at stream offset total_bytes() - n). The buffer retains
    /// bytes until no retransmission can ever need them again
    /// (trim_tx_buffer); a stream that only ever offers lengths never
    /// allocates here — the length-only fast path.
    void append_payload(const std::uint8_t* data, std::uint64_t n);
    /// Copy [offset, offset+len) of buffered payload into `out`
    /// (pre-zeroed by the caller); returns bytes actually copied. 0 on
    /// length-only streams. Shortfalls on a payload stream are counted
    /// (payload_miss_bytes) — they mean the buffer was released early.
    std::uint32_t fetch_payload(std::uint64_t offset, std::uint32_t len,
                                std::uint8_t* out);
    /// Release buffered payload no future (re)transmission can reference:
    /// everything below min(next unsent offset, lowest outstanding
    /// transmission, lowest queued retransmission).
    void trim_tx_buffer(sack::reliability_mode mode);
    bool carries_payload() const { return carries_payload_; }
    /// Payload bytes currently held for (re)transmission.
    std::uint64_t tx_payload_bytes() const { return tx_buf_.size() - tx_head_; }
    std::uint64_t payload_miss_bytes() const { return payload_miss_bytes_; }
    /// No more bytes will be offered.
    void finish() { open_ = false; }

    bool open() const { return open_; }
    bool unlimited() const { return total_bytes_ == UINT64_MAX; }
    std::uint64_t total_bytes() const { return total_bytes_; }
    std::uint64_t next_offset() const { return next_offset_; }
    /// Offered but not yet first-transmitted.
    std::uint64_t buffered_bytes() const {
        return unlimited() ? 0 : total_bytes_ - next_offset_;
    }

    const sack::scoreboard& reliability() const { return scoreboard_; }
    const sack::retransmit_queue& retransmissions() const { return rtx_queue_; }
    std::uint64_t rtx_bytes_sent() const { return rtx_bytes_sent_; }

    /// First byte the scoreboard is accountable for (reset when a
    /// profile renegotiation flips this stream's reliability mode).
    std::uint64_t reliable_from_offset() const { return reliable_from_offset_; }
    void reset_reliable_from() { reliable_from_offset_ = next_offset_; }

    bool has_new_data() const { return next_offset_ < total_bytes_; }
    /// A zero-payload end-of-stream marker is owed (the stream finished
    /// after its last byte went out, so no data segment carried the flag).
    bool eos_marker_pending() const {
        return !open_ && was_open_ && !unlimited() && next_offset_ >= total_bytes_ &&
               !eos_sent_;
    }
    bool has_work(sack::reliability_mode mode) const {
        if (mode != sack::reliability_mode::none && !rtx_queue_.empty()) return true;
        return has_new_data() || eos_marker_pending();
    }

    /// Earliest delivery deadline among pending work, for scheduler
    /// promotion (util::time_never when none is at risk).
    util::sim_time earliest_deadline() const;

    /// Fill one send slot from this stream: a policy-filtered
    /// retransmission first, then new bytes, then a pending end-of-stream
    /// marker. Advances offsets/framing; the scoreboard entry is recorded
    /// here when `mode` tracks reliability. Returns nullopt when every
    /// pending retransmission turned out expired and no new data remains.
    std::optional<payload_pick> next_payload(util::sim_time now,
                                             const sack::reliability_policy& policy,
                                             sack::reliability_mode mode,
                                             std::uint64_t seq, std::uint32_t packet_size);

    /// Ingest connection-wide SACK feedback: newly finalised losses of
    /// this stream are queued for retransmission under `policy`.
    void on_sack(const packet::sack_feedback_segment& fb,
                 const sack::reliability_policy& policy);

    /// Everything this stream owes has been delivered under `mode`
    /// (never true for an unlimited or still-open stream).
    bool done(sack::reliability_mode mode) const;

    stream_info info(sack::reliability_mode profile_mode) const;

private:
    std::uint32_t id_;
    stream_options opts_;
    std::uint64_t total_bytes_;
    bool open_;
    const bool was_open_; ///< application-driven stream (offer/finish)
    bool eos_sent_ = false;

    std::uint64_t next_offset_ = 0;
    std::uint64_t reliable_from_offset_ = 0;
    std::uint32_t current_message_id_ = 0;
    util::sim_time current_message_deadline_ = util::time_never;

    sack::scoreboard scoreboard_;
    sack::retransmit_queue rtx_queue_;
    std::uint64_t rtx_bytes_sent_ = 0;

    /// Payload retention window: tx_buf_[tx_head_..] holds stream bytes
    /// [tx_base_, tx_base_ + tx_payload_bytes()). Compacted lazily.
    std::vector<std::uint8_t> tx_buf_;
    std::size_t tx_head_ = 0;
    std::uint64_t tx_base_ = 0;
    bool carries_payload_ = false;
    std::uint64_t payload_miss_bytes_ = 0;
};

/// Sender-side multiplexer (owned by connection_sender).
class stream_mux {
public:
    /// Constructs with stream 0 in place: `total_bytes`/`open` mirror the
    /// legacy connection_config source fields, `stream0_opts` its message
    /// framing; stream 0 always follows the connection profile.
    stream_mux(stream_options stream0_opts, std::uint64_t total_bytes, bool open,
               sack::scoreboard_config sb_cfg, stream_scheduler_config sched_cfg = {});

    /// The connection profile's reliability (applies to follow_profile
    /// streams); updated on establishment and every renegotiation. A mode
    /// change resets the affected streams' scoreboard coverage boundary.
    void set_profile_mode(sack::reliability_mode mode);
    sack::reliability_mode profile_mode() const { return profile_mode_; }

    /// Open a new stream; returns its id or invalid_stream when the
    /// connection is out of ids. Streams are application-driven (offer /
    /// finish).
    std::uint32_t open_stream(const stream_options& opts);

    /// Append up to `n` bytes to stream `id`; bounded so the total
    /// backlog (offered but unsent, across all streams) never exceeds
    /// `max_buffered` (0 = unlimited). Returns the accepted count.
    std::uint64_t offer(std::uint32_t id, std::uint64_t n, std::uint64_t max_buffered);
    /// Same bound, but carrying real application bytes: the accepted
    /// prefix of `data` is retained for (re)transmission.
    std::uint64_t offer_bytes(std::uint32_t id, const std::uint8_t* data,
                              std::uint64_t n, std::uint64_t max_buffered);
    /// Copy the payload backing `pick` into `out` (length pick.payload_len,
    /// pre-zeroed); returns bytes copied (0 = length-only stream).
    std::uint32_t fetch_payload(const payload_pick& pick, std::uint8_t* out);
    /// Any stream holds real payload (i.e. segments should carry bytes).
    bool any_payload() const;
    std::uint64_t payload_miss_bytes_total() const;
    void finish(std::uint32_t id);
    /// Half-close: finish every stream (legacy close()).
    void finish_all();

    outbound_stream* find(std::uint32_t id);
    const outbound_stream* find(std::uint32_t id) const;
    outbound_stream& stream0() { return *streams_.front(); }
    const outbound_stream& stream0() const { return *streams_.front(); }
    std::size_t stream_count() const { return streams_.size(); }

    bool any_open() const;
    /// Any stream holds payload work (rtx / new bytes / eos marker).
    bool has_payload_work() const;
    /// A reliable stream still has unfinalised transmissions in flight:
    /// the connection must keep probing so the tail can finalise.
    bool probe_needed() const;
    /// Every finite stream is finished and complete under its policy.
    bool all_done() const;
    std::uint64_t buffered_bytes() const;

    /// Pick the stream for the next send slot and cut its payload.
    /// `seq` is the connection sequence number this transmission will use.
    std::optional<payload_pick> next_payload(util::sim_time now, const send_policy& pol,
                                             std::uint64_t seq);

    /// Feed connection-wide SACK feedback to every stream's scoreboard
    /// (also releases payload-buffer prefixes no longer reachable).
    void on_sack(const packet::sack_feedback_segment& fb, const send_policy& pol);

    /// Release stream `id`'s payload buffer after a transmission (the
    /// mode-none path, where no SACK will ever arrive to trigger it).
    void trim_after_send(std::uint32_t id);

    std::uint64_t rtx_bytes_sent_total() const;
    std::vector<stream_info> infos() const;
    const stream_scheduler& scheduler() const { return sched_; }
    /// Wire the connection's flight recorder into the scheduler's
    /// promotion decisions (null disables).
    void set_tracer(trace::tracer* t) { sched_.set_tracer(t); }

private:
    sack::reliability_policy policy_for(const outbound_stream& s,
                                        const send_policy& pol) const;

    std::vector<std::unique_ptr<outbound_stream>> streams_; ///< index == id
    sack::scoreboard_config sb_cfg_;
    stream_scheduler sched_;
    sack::reliability_mode profile_mode_ = sack::reliability_mode::none;
};

/// Receive-side demultiplexer (owned by connection_receiver).
///
/// Payload-carrying frames are staged until the stream's reassembly
/// releases them, then parked as ready_chunks for recv() — unless a
/// legacy delivery callback is registered, in which case payload is
/// consumed at the callback (the pre-payload semantics) and nothing is
/// buffered. The per-packet poll path is plain code: callbacks are only
/// invoked when the application registered one.
class stream_demux {
public:
    /// (stream id, stream offset, length) handed to the application.
    using deliver_fn = std::function<void(std::uint32_t, std::uint64_t, std::uint32_t)>;
    /// Legacy single-stream hook (stream 0 only): (offset, length).
    using legacy_deliver_fn = std::function<void(std::uint64_t, std::uint32_t)>;
    /// A stream was seen for the first time (id, its reliability mode).
    using stream_open_fn = std::function<void(std::uint32_t, sack::reliability_mode)>;

    /// What one frame did (drives the receiver's event emission without
    /// any callback indirection).
    struct frame_result {
        bool opened = false;          ///< first frame of a new stream
        bool became_readable = false; ///< ready store went empty -> non-empty
        bool finished = false;        ///< stream is now complete (fin)
        sack::delivered_range delivered{};
    };

    /// `stream0_order` is the delivery order negotiated for the
    /// connection profile (ordered under full reliability).
    explicit stream_demux(sack::delivery_order stream0_order);

    void set_deliver(deliver_fn cb) { deliver_ = std::move(cb); }
    void set_legacy_deliver(legacy_deliver_fn cb) { legacy_deliver_ = std::move(cb); }
    void set_on_stream_open(stream_open_fn cb) { on_stream_open_ = std::move(cb); }

    /// Data for stream `id`, [offset, offset+len). Unknown streams are
    /// created with the delivery order `mode` implies (full -> ordered).
    /// `payload` is the frame's application bytes (null on length-only
    /// frames); `now` stamps delivered chunks.
    frame_result on_frame(std::uint32_t id, sack::reliability_mode mode,
                          std::uint64_t offset, std::uint32_t len, bool end_of_stream,
                          const std::uint8_t* payload, util::sim_time now);

    // --- recv() side -----------------------------------------------------
    /// Drain up to `cap` buffered payload bytes of stream `id` in
    /// delivery order. Returns 0 when nothing is buffered.
    std::size_t read(std::uint32_t id, std::uint8_t* out, std::size_t cap);
    /// Pop one whole delivered chunk (delivery metadata + bytes); the
    /// unconsumed remainder of a partially read() chunk counts as the
    /// front chunk. Returns false when the stream has nothing buffered.
    bool pop_chunk(std::uint32_t id, ready_chunk& out);
    /// Pop the next chunk of the lowest-id stream holding one. Drain to
    /// empty per call site (a bounded-pops-per-tick consumer would
    /// starve higher stream ids).
    bool pop_chunk_any(std::uint32_t& id_out, ready_chunk& out);
    /// Return a just-popped chunk to the front of its stream's queue
    /// (the export path could not hand it off; it must not be lost).
    void unpop_chunk(std::uint32_t id, ready_chunk&& chunk);
    /// Payload bytes buffered for recv() on stream `id` / in total.
    std::uint64_t readable_bytes(std::uint32_t id) const;
    /// Re-arm the readable edge after the emitted event was lost to a
    /// full queue (the next delivered chunk raises it again).
    void clear_readable_signal(std::uint32_t id);
    std::uint64_t buffered_payload_bytes() const { return buffered_payload_; }
    /// Cap on buffered_payload_bytes() — ready chunks *and* staged
    /// out-of-order payload combined: bytes arriving beyond it are
    /// dropped and counted, never silently absorbed (0 = unlimited).
    void set_store_limit(std::uint64_t bytes) { store_limit_ = bytes; }
    std::uint64_t payload_dropped_bytes() const { return payload_dropped_; }

    const sack::reassembly& stream0() const { return streams_.at(0)->ra; }
    const sack::reassembly* find(std::uint32_t id) const;
    std::size_t stream_count() const { return streams_.size(); }
    std::uint64_t delivered_bytes_total() const;
    std::size_t state_bytes() const;

private:
    struct inbound_stream {
        explicit inbound_stream(sack::delivery_order order) : ra(order) {}
        sack::reassembly ra;
        /// Ordered mode: payload of frames not yet contiguous, keyed by
        /// stream offset.
        std::map<std::uint64_t, std::vector<std::uint8_t>> staged;
        std::deque<ready_chunk> ready;
        std::size_t front_consumed = 0; ///< bytes read() off ready.front()
        bool readable_signalled = false;
        bool fin_reported = false;
    };

    inbound_stream& entry_at(std::uint32_t id, sack::delivery_order order, bool& created);
    void release_staged_prefix(inbound_stream& s, std::uint64_t upto);
    /// Stage one out-of-order payload frame under the store cap; false =
    /// dropped (counted).
    bool stage_payload(inbound_stream& s, std::uint64_t offset,
                       const std::uint8_t* payload, std::uint32_t len);
    /// Assemble [offset, offset+len) from staged payload, consuming it.
    std::vector<std::uint8_t> extract_staged(inbound_stream& s, std::uint64_t offset,
                                             std::uint64_t len);
    bool store_chunk(inbound_stream& s, std::uint64_t offset,
                     std::vector<std::uint8_t>&& bytes, util::sim_time now);

    std::map<std::uint32_t, std::unique_ptr<inbound_stream>> streams_;
    deliver_fn deliver_;
    legacy_deliver_fn legacy_deliver_;
    stream_open_fn on_stream_open_;
    std::uint64_t buffered_payload_ = 0;
    std::uint64_t store_limit_ = 0;
    std::uint64_t payload_dropped_ = 0;
};

} // namespace vtp::stream
