#include "stream/stream_mux.hpp"

#include <algorithm>

namespace vtp::stream {

// ---------------------------------------------------------------------------
// outbound_stream
// ---------------------------------------------------------------------------

outbound_stream::outbound_stream(std::uint32_t id, stream_options opts,
                                 std::uint64_t total_bytes, bool open,
                                 sack::scoreboard_config sb_cfg)
    : id_(id), opts_(opts), total_bytes_(total_bytes), open_(open), was_open_(open),
      scoreboard_(sb_cfg) {
    if (opts_.weight == 0) opts_.weight = 1;
}

void outbound_stream::offer(std::uint64_t n) {
    if (!open_ || unlimited()) return;
    total_bytes_ += n;
}

util::sim_time outbound_stream::earliest_deadline() const {
    util::sim_time earliest = rtx_queue_.earliest_deadline();
    // A message already on the wire keeps its deadline for the bytes of
    // it still unsent; a not-yet-started message cannot be late (its
    // clock starts at first transmission).
    if (has_new_data() && opts_.message_size > 0 &&
        current_message_deadline_ != util::time_never &&
        next_offset_ % opts_.message_size != 0 &&
        current_message_deadline_ < earliest)
        earliest = current_message_deadline_;
    return earliest;
}

std::optional<payload_pick> outbound_stream::next_payload(
    util::sim_time now, const sack::reliability_policy& policy,
    sack::reliability_mode mode, std::uint64_t seq, std::uint32_t packet_size) {
    payload_pick pick;
    pick.stream_id = id_;
    pick.mode = mode;

    // Retransmissions first (within this stream's turn).
    if (mode != sack::reliability_mode::none) {
        if (auto rec = rtx_queue_.pop(now, policy)) {
            pick.byte_offset = rec->byte_offset;
            pick.payload_len = rec->length;
            pick.message_id = rec->message_id;
            pick.deadline = rec->deadline;
            pick.is_retransmission = true;
            rtx_bytes_sent_ += rec->length;

            sack::transmission_record again = *rec;
            again.seq = seq;
            again.sent_at = now;
            ++again.transmit_count;
            scoreboard_.record(again);
            return pick;
        }
    }

    if (has_new_data()) {
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(packet_size, total_bytes_ - next_offset_));
        pick.byte_offset = next_offset_;
        pick.payload_len = len;
        pick.end_of_stream =
            next_offset_ + len >= total_bytes_ && !unlimited() && !open_;

        if (opts_.message_size > 0) {
            const std::uint32_t msg =
                static_cast<std::uint32_t>(next_offset_ / opts_.message_size);
            if (msg != current_message_id_ ||
                current_message_deadline_ == util::time_never) {
                current_message_id_ = msg;
                current_message_deadline_ = opts_.message_deadline == util::time_never
                                                ? util::time_never
                                                : now + opts_.message_deadline;
            }
            pick.message_id = msg;
            pick.deadline = current_message_deadline_;
        }

        next_offset_ += len;
        if (pick.end_of_stream) eos_sent_ = true;

        if (mode != sack::reliability_mode::none) {
            sack::transmission_record rec;
            rec.seq = seq;
            rec.byte_offset = pick.byte_offset;
            rec.length = pick.payload_len;
            rec.message_id = pick.message_id;
            rec.deadline = pick.deadline;
            rec.sent_at = now;
            scoreboard_.record(rec);
        }
        return pick;
    }

    if (eos_marker_pending()) {
        // Zero-payload marker announcing the final stream length.
        pick.byte_offset = next_offset_;
        pick.payload_len = 0;
        pick.end_of_stream = true;
        eos_sent_ = true;
        return pick;
    }

    return std::nullopt; // only expired retransmissions were pending
}

void outbound_stream::on_sack(const packet::sack_feedback_segment& fb,
                              const sack::reliability_policy& policy) {
    std::vector<sack::transmission_record> lost;
    scoreboard_.on_sack(fb, lost);
    for (const auto& rec : lost) rtx_queue_.push(rec, policy);
}

bool outbound_stream::done(sack::reliability_mode mode) const {
    if (open_ || unlimited()) return false;
    if (mode == sack::reliability_mode::full) {
        if (next_offset_ < total_bytes_) return false;
        // Only bytes sent while reliability was active gate completion.
        if (reliable_from_offset_ >= total_bytes_) return true;
        return scoreboard_.delivered().contains(reliable_from_offset_, total_bytes_);
    }
    // Under mode none the retransmission queue is dead weight — nothing
    // pops or refills it (a full/partial -> none renegotiation may leave
    // entries behind) — so it must not gate completion.
    if (mode == sack::reliability_mode::none) return next_offset_ >= total_bytes_;
    return next_offset_ >= total_bytes_ && rtx_queue_.empty();
}

stream_info outbound_stream::info(sack::reliability_mode profile_mode) const {
    stream_info i;
    i.id = id_;
    i.open = open_;
    i.reliability = effective_mode(profile_mode);
    i.weight = opts_.weight;
    i.bytes_offered = unlimited() ? 0 : total_bytes_;
    i.bytes_sent = next_offset_;
    i.bytes_acked = scoreboard_.delivered_bytes();
    i.rtx_bytes_sent = rtx_bytes_sent_;
    i.abandoned_bytes = rtx_queue_.abandoned_bytes();
    return i;
}

// ---------------------------------------------------------------------------
// stream_mux
// ---------------------------------------------------------------------------

stream_mux::stream_mux(stream_options stream0_opts, std::uint64_t total_bytes, bool open,
                       sack::scoreboard_config sb_cfg, stream_scheduler_config sched_cfg)
    : sb_cfg_(sb_cfg), sched_(sched_cfg) {
    stream0_opts.follow_profile = true;
    streams_.push_back(
        std::make_unique<outbound_stream>(0, stream0_opts, total_bytes, open, sb_cfg_));
}

void stream_mux::set_profile_mode(sack::reliability_mode mode) {
    if (mode == profile_mode_) return;
    // Bytes sent under the previous mode keep its semantics; the
    // scoreboard of every profile-following stream restarts its coverage
    // at the switch point (see connection_sender::apply_profile).
    for (auto& s : streams_)
        if (s->options().follow_profile && s->effective_mode(profile_mode_) != mode)
            s->reset_reliable_from();
    profile_mode_ = mode;
}

std::uint32_t stream_mux::open_stream(const stream_options& opts) {
    if (streams_.size() >= max_streams) return invalid_stream;
    const auto id = static_cast<std::uint32_t>(streams_.size());
    streams_.push_back(std::make_unique<outbound_stream>(
        id, opts, /*total_bytes=*/0, /*open=*/true, sb_cfg_));
    return id;
}

std::uint64_t stream_mux::offer(std::uint32_t id, std::uint64_t n,
                                std::uint64_t max_buffered) {
    outbound_stream* s = find(id);
    if (s == nullptr || !s->open() || s->unlimited()) return 0;
    std::uint64_t accepted = n;
    if (max_buffered != 0) {
        const std::uint64_t buffered = buffered_bytes();
        accepted = buffered >= max_buffered
                       ? 0
                       : std::min<std::uint64_t>(n, max_buffered - buffered);
    }
    s->offer(accepted);
    return accepted;
}

void stream_mux::finish(std::uint32_t id) {
    if (outbound_stream* s = find(id)) s->finish();
}

void stream_mux::finish_all() {
    for (auto& s : streams_) s->finish();
}

outbound_stream* stream_mux::find(std::uint32_t id) {
    return id < streams_.size() ? streams_[id].get() : nullptr;
}

const outbound_stream* stream_mux::find(std::uint32_t id) const {
    return id < streams_.size() ? streams_[id].get() : nullptr;
}

bool stream_mux::any_open() const {
    return std::any_of(streams_.begin(), streams_.end(),
                       [](const auto& s) { return s->open(); });
}

bool stream_mux::has_payload_work() const {
    return std::any_of(streams_.begin(), streams_.end(), [this](const auto& s) {
        return s->has_work(s->effective_mode(profile_mode_));
    });
}

bool stream_mux::probe_needed() const {
    return std::any_of(streams_.begin(), streams_.end(), [this](const auto& s) {
        return s->effective_mode(profile_mode_) != sack::reliability_mode::none &&
               s->reliability().outstanding() > 0;
    });
}

bool stream_mux::all_done() const {
    return std::all_of(streams_.begin(), streams_.end(), [this](const auto& s) {
        return s->done(s->effective_mode(profile_mode_));
    });
}

std::uint64_t stream_mux::buffered_bytes() const {
    std::uint64_t total = 0;
    for (const auto& s : streams_) total += s->buffered_bytes();
    return total;
}

sack::reliability_policy stream_mux::policy_for(const outbound_stream& s,
                                                const send_policy& pol) const {
    sack::reliability_policy p;
    p.mode = s.effective_mode(profile_mode_);
    p.partial_margin = pol.partial_margin;
    p.max_transmissions = s.options().max_transmissions;
    return p;
}

std::optional<payload_pick> stream_mux::next_payload(util::sim_time now,
                                                     const send_policy& pol,
                                                     std::uint64_t seq) {
    std::vector<stream_scheduler::candidate> cands;
    cands.reserve(streams_.size());
    for (const auto& s : streams_) {
        if (s->has_work(s->effective_mode(profile_mode_))) {
            cands.push_back({s->id(), s->options().weight, s->earliest_deadline()});
        } else {
            sched_.trim_idle(s->id());
        }
    }
    while (!cands.empty()) {
        const std::uint32_t id = sched_.pick(cands, now);
        outbound_stream& s = *streams_[id];
        if (auto pick = s.next_payload(now, policy_for(s, pol),
                                       s.effective_mode(profile_mode_), seq,
                                       pol.packet_size)) {
            sched_.charge(id, pick->payload_len);
            return pick;
        }
        // The stream's pending work was all expired retransmissions:
        // drop it from this slot's candidates and re-arbitrate.
        cands.erase(std::find_if(cands.begin(), cands.end(),
                                 [id](const auto& c) { return c.id == id; }));
        sched_.trim_idle(id);
    }
    return std::nullopt;
}

void stream_mux::on_sack(const packet::sack_feedback_segment& fb,
                         const send_policy& pol) {
    for (auto& s : streams_) {
        if (s->effective_mode(profile_mode_) == sack::reliability_mode::none) continue;
        s->on_sack(fb, policy_for(*s, pol));
    }
}

std::uint64_t stream_mux::rtx_bytes_sent_total() const {
    std::uint64_t total = 0;
    for (const auto& s : streams_) total += s->rtx_bytes_sent();
    return total;
}

std::vector<stream_info> stream_mux::infos() const {
    std::vector<stream_info> out;
    out.reserve(streams_.size());
    for (const auto& s : streams_) out.push_back(s->info(profile_mode_));
    return out;
}

// ---------------------------------------------------------------------------
// stream_demux
// ---------------------------------------------------------------------------

stream_demux::stream_demux(sack::delivery_order stream0_order) {
    streams_.emplace(
        0u, std::make_unique<sack::reassembly>(
                stream0_order, [this](std::uint64_t offset, std::uint32_t len) {
                    if (deliver_) deliver_(0, offset, len);
                    if (legacy_deliver_) legacy_deliver_(offset, len);
                }));
}

void stream_demux::on_frame(std::uint32_t id, sack::reliability_mode mode,
                            std::uint64_t offset, std::uint32_t len,
                            bool end_of_stream) {
    if (id >= max_streams) return; // wire decoder already rejects these
    auto it = streams_.find(id);
    if (it == streams_.end()) {
        const auto order = mode == sack::reliability_mode::full
                               ? sack::delivery_order::ordered
                               : sack::delivery_order::immediate;
        it = streams_
                 .emplace(id, std::make_unique<sack::reassembly>(
                                  order, [this, id](std::uint64_t off, std::uint32_t n) {
                                      if (deliver_) deliver_(id, off, n);
                                  }))
                 .first;
        if (on_stream_open_) on_stream_open_(id, mode);
    }
    it->second->on_data(offset, len, end_of_stream);
}

const sack::reassembly* stream_demux::find(std::uint32_t id) const {
    const auto it = streams_.find(id);
    return it == streams_.end() ? nullptr : it->second.get();
}

std::uint64_t stream_demux::delivered_bytes_total() const {
    std::uint64_t total = 0;
    for (const auto& [id, r] : streams_) total += r->delivered_bytes();
    return total;
}

std::size_t stream_demux::state_bytes() const {
    std::size_t total = 0;
    for (const auto& [id, r] : streams_)
        total += sizeof(sack::reassembly) +
                 r->received().range_count() * 2 * sizeof(std::uint64_t);
    return total;
}

} // namespace vtp::stream
