#include "stream/stream_mux.hpp"

#include <algorithm>

namespace vtp::stream {

// ---------------------------------------------------------------------------
// outbound_stream
// ---------------------------------------------------------------------------

outbound_stream::outbound_stream(std::uint32_t id, stream_options opts,
                                 std::uint64_t total_bytes, bool open,
                                 sack::scoreboard_config sb_cfg)
    : id_(id), opts_(opts), total_bytes_(total_bytes), open_(open), was_open_(open),
      scoreboard_(sb_cfg) {
    if (opts_.weight == 0) opts_.weight = 1;
}

void outbound_stream::offer(std::uint64_t n) {
    if (!open_ || unlimited()) return;
    total_bytes_ += n;
}

void outbound_stream::append_payload(const std::uint8_t* data, std::uint64_t n) {
    if (n == 0) return;
    const std::uint64_t start = total_bytes_ - n; // offer() already grew the stream
    if (tx_payload_bytes() == 0) {
        // Empty buffer: re-anchor at the new range.
        tx_buf_.clear();
        tx_head_ = 0;
        tx_base_ = start;
    } else if (start != tx_base_ + tx_payload_bytes()) {
        // A synthetic offer() interleaved with payload offers left a
        // hole whose bytes were never provided. Zero-pad small holes so
        // pending real bytes stay transmittable; a large hole (bulk
        // synthetic interleave) restarts the buffer — the discarded
        // pending bytes and the hole both read back as zeroes and are
        // counted (payload_miss_bytes).
        constexpr std::uint64_t max_pad = 64 * 1024;
        const std::uint64_t tx_end = tx_base_ + tx_payload_bytes();
        const std::uint64_t gap = start > tx_end ? start - tx_end : UINT64_MAX;
        if (gap <= max_pad) {
            // The padded hole transmits as zeroes: count it like any
            // other byte the buffer could not truly provide.
            payload_miss_bytes_ += gap;
            tx_buf_.insert(tx_buf_.end(), static_cast<std::size_t>(gap), 0);
        } else {
            payload_miss_bytes_ += tx_payload_bytes();
            tx_buf_.clear();
            tx_head_ = 0;
            tx_base_ = start;
        }
    }
    carries_payload_ = true;
    tx_buf_.insert(tx_buf_.end(), data, data + n);
}

std::uint32_t outbound_stream::fetch_payload(std::uint64_t offset, std::uint32_t len,
                                             std::uint8_t* out) {
    if (!carries_payload_ || len == 0) return 0;
    const std::uint64_t avail_begin = tx_base_;
    const std::uint64_t avail_end = tx_base_ + tx_payload_bytes();
    const std::uint64_t want_end = offset + len;
    const std::uint64_t lo = std::max<std::uint64_t>(offset, avail_begin);
    const std::uint64_t hi = std::min<std::uint64_t>(want_end, avail_end);
    std::uint32_t copied = 0;
    if (hi > lo) {
        copied = static_cast<std::uint32_t>(hi - lo);
        const std::size_t src = tx_head_ + static_cast<std::size_t>(lo - tx_base_);
        std::copy_n(tx_buf_.data() + src, copied, out + (lo - offset));
    }
    if (copied < len) payload_miss_bytes_ += len - copied;
    return copied;
}

void outbound_stream::trim_tx_buffer(sack::reliability_mode mode) {
    if (!carries_payload_ || tx_payload_bytes() == 0) return;
    // Safe release point: nothing below it can ever be (re)transmitted —
    // it is behind the next unsent byte, every unfinalised transmission
    // and every queued retransmission. Under mode none nothing is
    // tracked, so only unsent bytes are retained.
    std::uint64_t safe = next_offset_;
    if (mode != sack::reliability_mode::none) {
        safe = std::min(safe, scoreboard_.min_outstanding_offset());
        safe = std::min(safe, rtx_queue_.min_pending_offset());
    }
    if (safe <= tx_base_) return;
    const std::uint64_t drop =
        std::min<std::uint64_t>(safe - tx_base_, tx_payload_bytes());
    tx_head_ += static_cast<std::size_t>(drop);
    tx_base_ += drop;
    // Compact once the dead prefix dominates, keeping the copy amortized.
    if (tx_head_ > 4096 && tx_head_ * 2 >= tx_buf_.size()) {
        tx_buf_.erase(tx_buf_.begin(),
                      tx_buf_.begin() + static_cast<std::ptrdiff_t>(tx_head_));
        tx_head_ = 0;
    }
}

util::sim_time outbound_stream::earliest_deadline() const {
    util::sim_time earliest = rtx_queue_.earliest_deadline();
    // A message already on the wire keeps its deadline for the bytes of
    // it still unsent; a not-yet-started message cannot be late (its
    // clock starts at first transmission).
    if (has_new_data() && opts_.message_size > 0 &&
        current_message_deadline_ != util::time_never &&
        next_offset_ % opts_.message_size != 0 &&
        current_message_deadline_ < earliest)
        earliest = current_message_deadline_;
    return earliest;
}

std::optional<payload_pick> outbound_stream::next_payload(
    util::sim_time now, const sack::reliability_policy& policy,
    sack::reliability_mode mode, std::uint64_t seq, std::uint32_t packet_size) {
    payload_pick pick;
    pick.stream_id = id_;
    pick.mode = mode;

    // Retransmissions first (within this stream's turn).
    if (mode != sack::reliability_mode::none) {
        if (auto rec = rtx_queue_.pop(now, policy)) {
            pick.byte_offset = rec->byte_offset;
            pick.payload_len = rec->length;
            pick.message_id = rec->message_id;
            pick.deadline = rec->deadline;
            pick.is_retransmission = true;
            rtx_bytes_sent_ += rec->length;

            sack::transmission_record again = *rec;
            again.seq = seq;
            again.sent_at = now;
            ++again.transmit_count;
            scoreboard_.record(again);
            return pick;
        }
    }

    if (has_new_data()) {
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(packet_size, total_bytes_ - next_offset_));
        pick.byte_offset = next_offset_;
        pick.payload_len = len;
        pick.end_of_stream =
            next_offset_ + len >= total_bytes_ && !unlimited() && !open_;

        if (opts_.message_size > 0) {
            const std::uint32_t msg =
                static_cast<std::uint32_t>(next_offset_ / opts_.message_size);
            if (msg != current_message_id_ ||
                current_message_deadline_ == util::time_never) {
                current_message_id_ = msg;
                current_message_deadline_ = opts_.message_deadline == util::time_never
                                                ? util::time_never
                                                : now + opts_.message_deadline;
            }
            pick.message_id = msg;
            pick.deadline = current_message_deadline_;
        }

        next_offset_ += len;
        if (pick.end_of_stream) eos_sent_ = true;

        if (mode != sack::reliability_mode::none) {
            sack::transmission_record rec;
            rec.seq = seq;
            rec.byte_offset = pick.byte_offset;
            rec.length = pick.payload_len;
            rec.message_id = pick.message_id;
            rec.deadline = pick.deadline;
            rec.sent_at = now;
            scoreboard_.record(rec);
        }
        return pick;
    }

    if (eos_marker_pending()) {
        // Zero-payload marker announcing the final stream length.
        pick.byte_offset = next_offset_;
        pick.payload_len = 0;
        pick.end_of_stream = true;
        eos_sent_ = true;
        return pick;
    }

    return std::nullopt; // only expired retransmissions were pending
}

void outbound_stream::on_sack(const packet::sack_feedback_segment& fb,
                              const sack::reliability_policy& policy) {
    std::vector<sack::transmission_record> lost;
    scoreboard_.on_sack(fb, lost);
    for (const auto& rec : lost) rtx_queue_.push(rec, policy);
}

bool outbound_stream::done(sack::reliability_mode mode) const {
    if (open_ || unlimited()) return false;
    if (mode == sack::reliability_mode::full) {
        if (next_offset_ < total_bytes_) return false;
        // Only bytes sent while reliability was active gate completion.
        if (reliable_from_offset_ >= total_bytes_) return true;
        return scoreboard_.delivered().contains(reliable_from_offset_, total_bytes_);
    }
    // Under mode none the retransmission queue is dead weight — nothing
    // pops or refills it (a full/partial -> none renegotiation may leave
    // entries behind) — so it must not gate completion.
    if (mode == sack::reliability_mode::none) return next_offset_ >= total_bytes_;
    return next_offset_ >= total_bytes_ && rtx_queue_.empty();
}

stream_info outbound_stream::info(sack::reliability_mode profile_mode) const {
    stream_info i;
    i.id = id_;
    i.open = open_;
    i.reliability = effective_mode(profile_mode);
    i.weight = opts_.weight;
    i.bytes_offered = unlimited() ? 0 : total_bytes_;
    i.bytes_sent = next_offset_;
    i.bytes_acked = scoreboard_.delivered_bytes();
    i.rtx_bytes_sent = rtx_bytes_sent_;
    i.abandoned_bytes = rtx_queue_.abandoned_bytes();
    return i;
}

// ---------------------------------------------------------------------------
// stream_mux
// ---------------------------------------------------------------------------

stream_mux::stream_mux(stream_options stream0_opts, std::uint64_t total_bytes, bool open,
                       sack::scoreboard_config sb_cfg, stream_scheduler_config sched_cfg)
    : sb_cfg_(sb_cfg), sched_(sched_cfg) {
    stream0_opts.follow_profile = true;
    streams_.push_back(
        std::make_unique<outbound_stream>(0, stream0_opts, total_bytes, open, sb_cfg_));
}

void stream_mux::set_profile_mode(sack::reliability_mode mode) {
    if (mode == profile_mode_) return;
    // Bytes sent under the previous mode keep its semantics; the
    // scoreboard of every profile-following stream restarts its coverage
    // at the switch point (see connection_sender::apply_profile).
    for (auto& s : streams_)
        if (s->options().follow_profile && s->effective_mode(profile_mode_) != mode)
            s->reset_reliable_from();
    profile_mode_ = mode;
}

std::uint32_t stream_mux::open_stream(const stream_options& opts) {
    if (streams_.size() >= max_streams) return invalid_stream;
    const auto id = static_cast<std::uint32_t>(streams_.size());
    streams_.push_back(std::make_unique<outbound_stream>(
        id, opts, /*total_bytes=*/0, /*open=*/true, sb_cfg_));
    return id;
}

std::uint64_t stream_mux::offer(std::uint32_t id, std::uint64_t n,
                                std::uint64_t max_buffered) {
    outbound_stream* s = find(id);
    if (s == nullptr || !s->open() || s->unlimited()) return 0;
    std::uint64_t accepted = n;
    if (max_buffered != 0) {
        const std::uint64_t buffered = buffered_bytes();
        accepted = buffered >= max_buffered
                       ? 0
                       : std::min<std::uint64_t>(n, max_buffered - buffered);
    }
    s->offer(accepted);
    return accepted;
}

std::uint64_t stream_mux::offer_bytes(std::uint32_t id, const std::uint8_t* data,
                                      std::uint64_t n, std::uint64_t max_buffered) {
    const std::uint64_t accepted = offer(id, n, max_buffered);
    if (accepted > 0) streams_[id]->append_payload(data, accepted);
    return accepted;
}

std::uint32_t stream_mux::fetch_payload(const payload_pick& pick, std::uint8_t* out) {
    outbound_stream* s = find(pick.stream_id);
    return s != nullptr ? s->fetch_payload(pick.byte_offset, pick.payload_len, out) : 0;
}

bool stream_mux::any_payload() const {
    return std::any_of(streams_.begin(), streams_.end(),
                       [](const auto& s) { return s->carries_payload(); });
}

std::uint64_t stream_mux::payload_miss_bytes_total() const {
    std::uint64_t total = 0;
    for (const auto& s : streams_) total += s->payload_miss_bytes();
    return total;
}

void stream_mux::finish(std::uint32_t id) {
    if (outbound_stream* s = find(id)) s->finish();
}

void stream_mux::finish_all() {
    for (auto& s : streams_) s->finish();
}

outbound_stream* stream_mux::find(std::uint32_t id) {
    return id < streams_.size() ? streams_[id].get() : nullptr;
}

const outbound_stream* stream_mux::find(std::uint32_t id) const {
    return id < streams_.size() ? streams_[id].get() : nullptr;
}

bool stream_mux::any_open() const {
    return std::any_of(streams_.begin(), streams_.end(),
                       [](const auto& s) { return s->open(); });
}

bool stream_mux::has_payload_work() const {
    return std::any_of(streams_.begin(), streams_.end(), [this](const auto& s) {
        return s->has_work(s->effective_mode(profile_mode_));
    });
}

bool stream_mux::probe_needed() const {
    return std::any_of(streams_.begin(), streams_.end(), [this](const auto& s) {
        return s->effective_mode(profile_mode_) != sack::reliability_mode::none &&
               s->reliability().outstanding() > 0;
    });
}

bool stream_mux::all_done() const {
    return std::all_of(streams_.begin(), streams_.end(), [this](const auto& s) {
        return s->done(s->effective_mode(profile_mode_));
    });
}

std::uint64_t stream_mux::buffered_bytes() const {
    std::uint64_t total = 0;
    for (const auto& s : streams_) total += s->buffered_bytes();
    return total;
}

sack::reliability_policy stream_mux::policy_for(const outbound_stream& s,
                                                const send_policy& pol) const {
    sack::reliability_policy p;
    p.mode = s.effective_mode(profile_mode_);
    p.partial_margin = pol.partial_margin;
    p.max_transmissions = s.options().max_transmissions;
    return p;
}

std::optional<payload_pick> stream_mux::next_payload(util::sim_time now,
                                                     const send_policy& pol,
                                                     std::uint64_t seq) {
    std::vector<stream_scheduler::candidate> cands;
    cands.reserve(streams_.size());
    for (const auto& s : streams_) {
        if (s->has_work(s->effective_mode(profile_mode_))) {
            cands.push_back({s->id(), s->options().weight, s->earliest_deadline()});
        } else {
            sched_.trim_idle(s->id());
        }
    }
    while (!cands.empty()) {
        const std::uint32_t id = sched_.pick(cands, now);
        outbound_stream& s = *streams_[id];
        if (auto pick = s.next_payload(now, policy_for(s, pol),
                                       s.effective_mode(profile_mode_), seq,
                                       pol.packet_size)) {
            sched_.charge(id, pick->payload_len);
            return pick;
        }
        // The stream's pending work was all expired retransmissions:
        // drop it from this slot's candidates and re-arbitrate.
        cands.erase(std::find_if(cands.begin(), cands.end(),
                                 [id](const auto& c) { return c.id == id; }));
        sched_.trim_idle(id);
    }
    return std::nullopt;
}

void stream_mux::on_sack(const packet::sack_feedback_segment& fb,
                         const send_policy& pol) {
    for (auto& s : streams_) {
        const sack::reliability_mode mode = s->effective_mode(profile_mode_);
        if (mode == sack::reliability_mode::none) continue;
        s->on_sack(fb, policy_for(*s, pol));
        s->trim_tx_buffer(mode);
    }
}

void stream_mux::trim_after_send(std::uint32_t id) {
    if (outbound_stream* s = find(id)) s->trim_tx_buffer(s->effective_mode(profile_mode_));
}

std::uint64_t stream_mux::rtx_bytes_sent_total() const {
    std::uint64_t total = 0;
    for (const auto& s : streams_) total += s->rtx_bytes_sent();
    return total;
}

std::vector<stream_info> stream_mux::infos() const {
    std::vector<stream_info> out;
    out.reserve(streams_.size());
    for (const auto& s : streams_) out.push_back(s->info(profile_mode_));
    return out;
}

// ---------------------------------------------------------------------------
// stream_demux
// ---------------------------------------------------------------------------

stream_demux::stream_demux(sack::delivery_order stream0_order) {
    streams_.emplace(0u, std::make_unique<inbound_stream>(stream0_order));
}

stream_demux::inbound_stream& stream_demux::entry_at(std::uint32_t id,
                                                     sack::delivery_order order,
                                                     bool& created) {
    auto it = streams_.find(id);
    created = it == streams_.end();
    if (created) it = streams_.emplace(id, std::make_unique<inbound_stream>(order)).first;
    return *it->second;
}

void stream_demux::release_staged_prefix(inbound_stream& s, std::uint64_t upto) {
    auto it = s.staged.begin();
    while (it != s.staged.end() && it->first + it->second.size() <= upto) {
        buffered_payload_ -= it->second.size();
        it = s.staged.erase(it);
    }
}

bool stream_demux::stage_payload(inbound_stream& s, std::uint64_t offset,
                                 const std::uint8_t* payload, std::uint32_t len) {
    // Staged bytes count against the same cap as ready chunks: a
    // head-of-line gap must not let out-of-order payload grow receiver
    // memory without bound.
    auto it = s.staged.find(offset);
    const std::uint64_t replaced = it != s.staged.end() ? it->second.size() : 0;
    if (store_limit_ != 0 && buffered_payload_ - replaced + len > store_limit_) {
        payload_dropped_ += len;
        return false;
    }
    buffered_payload_ -= replaced;
    buffered_payload_ += len;
    if (it != s.staged.end())
        it->second.assign(payload, payload + len);
    else
        s.staged.emplace(offset, std::vector<std::uint8_t>(payload, payload + len));
    return true;
}

std::vector<std::uint8_t> stream_demux::extract_staged(inbound_stream& s,
                                                       std::uint64_t offset,
                                                       std::uint64_t len) {
    // Gaps that were never staged (length-only frames mixed into a
    // payload stream) read as zeroes — payload_len and delivery
    // accounting stay authoritative either way.
    std::vector<std::uint8_t> out(static_cast<std::size_t>(len), 0);
    auto it = s.staged.upper_bound(offset);
    if (it != s.staged.begin()) --it;
    const std::uint64_t end = offset + len;
    while (it != s.staged.end() && it->first < end) {
        const std::uint64_t c_begin = it->first;
        const std::uint64_t c_end = c_begin + it->second.size();
        const std::uint64_t lo = std::max(c_begin, offset);
        const std::uint64_t hi = std::min(c_end, end);
        if (hi > lo)
            std::copy_n(it->second.data() + (lo - c_begin), hi - lo,
                        out.data() + (lo - offset));
        ++it;
    }
    release_staged_prefix(s, end);
    return out;
}

bool stream_demux::store_chunk(inbound_stream& s, std::uint64_t offset,
                               std::vector<std::uint8_t>&& bytes, util::sim_time now) {
    if (store_limit_ != 0 && buffered_payload_ + bytes.size() > store_limit_) {
        payload_dropped_ += bytes.size();
        return false;
    }
    buffered_payload_ += bytes.size();
    s.ready.push_back(ready_chunk{offset, now, std::move(bytes)});
    return true;
}

stream_demux::frame_result stream_demux::on_frame(std::uint32_t id,
                                                  sack::reliability_mode mode,
                                                  std::uint64_t offset, std::uint32_t len,
                                                  bool end_of_stream,
                                                  const std::uint8_t* payload,
                                                  util::sim_time now) {
    frame_result res;
    if (id >= max_streams) return res; // wire decoder already rejects these
    const auto order = mode == sack::reliability_mode::full
                           ? sack::delivery_order::ordered
                           : sack::delivery_order::immediate;
    bool created = false;
    inbound_stream& s = entry_at(id, order, created);
    if (created) {
        res.opened = true;
        if (on_stream_open_) on_stream_open_(id, mode);
    }

    // Stage real payload of not-yet-deliverable ordered data before the
    // reassembly decides; immediate-mode frames deliver right away and
    // skip the detour, as does the common in-order case — a frame
    // landing exactly at the delivery point with nothing received beyond
    // it delivers itself verbatim, no staging round-trip.
    const bool ordered = s.ra.order() == sack::delivery_order::ordered;
    const bool consume_at_callback = deliver_ || (id == 0 && legacy_deliver_);
    const bool in_order_fast =
        ordered && payload != nullptr && s.staged.empty() &&
        offset == s.ra.in_order_point() &&
        s.ra.received().range_count() == (offset > 0 ? 1u : 0u);
    if (payload != nullptr && len > 0 && ordered && !consume_at_callback &&
        !in_order_fast && !s.ra.received().contains(offset, offset + len))
        stage_payload(s, offset, payload, len);

    res.delivered = s.ra.on_data(offset, len, end_of_stream);
    if (res.delivered.any()) {
        if (deliver_)
            deliver_(id, res.delivered.offset,
                     static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(res.delivered.length, UINT32_MAX)));
        if (id == 0 && legacy_deliver_)
            legacy_deliver_(res.delivered.offset,
                            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                                res.delivered.length, UINT32_MAX)));
        if (consume_at_callback) {
            // Legacy delivery: payload is consumed at the callback, so
            // anything staged before the callback was registered is dead.
            release_staged_prefix(s, res.delivered.offset + res.delivered.length);
        } else if (payload != nullptr || (ordered && !s.staged.empty())) {
            // Park the delivered bytes for recv(): the frame itself in
            // immediate mode, the assembled prefix in ordered mode. The
            // staged check covers a length-only frame releasing a prefix
            // that contains earlier *payload* frames — those bytes must
            // reach recv() even though this frame carried none.
            std::vector<std::uint8_t> bytes =
                ordered && !in_order_fast
                    ? extract_staged(s, res.delivered.offset, res.delivered.length)
                    : std::vector<std::uint8_t>(payload, payload + len);
            const bool was_empty = s.ready.empty();
            if (store_chunk(s, res.delivered.offset, std::move(bytes), now) &&
                was_empty && !s.readable_signalled) {
                s.readable_signalled = true;
                res.became_readable = true;
            }
        }
    }
    if (!s.fin_reported && s.ra.complete()) {
        s.fin_reported = true;
        res.finished = true;
    }
    return res;
}

std::size_t stream_demux::read(std::uint32_t id, std::uint8_t* out, std::size_t cap) {
    const auto it = streams_.find(id);
    if (it == streams_.end()) return 0;
    inbound_stream& s = *it->second;
    std::size_t copied = 0;
    while (copied < cap && !s.ready.empty()) {
        ready_chunk& front = s.ready.front();
        const std::size_t avail = front.bytes.size() - s.front_consumed;
        const std::size_t take = std::min(avail, cap - copied);
        std::copy_n(front.bytes.data() + s.front_consumed, take, out + copied);
        copied += take;
        s.front_consumed += take;
        buffered_payload_ -= take;
        if (s.front_consumed == front.bytes.size()) {
            s.ready.pop_front();
            s.front_consumed = 0;
        }
    }
    if (s.ready.empty()) s.readable_signalled = false;
    return copied;
}

bool stream_demux::pop_chunk(std::uint32_t id, ready_chunk& out) {
    const auto it = streams_.find(id);
    if (it == streams_.end()) return false;
    inbound_stream& s = *it->second;
    if (s.ready.empty()) return false;
    out = std::move(s.ready.front());
    s.ready.pop_front();
    if (s.front_consumed > 0) {
        // A partial read() consumed the chunk's head: hand back the rest.
        out.bytes.erase(out.bytes.begin(),
                        out.bytes.begin() + static_cast<std::ptrdiff_t>(s.front_consumed));
        out.offset += s.front_consumed;
        s.front_consumed = 0;
    }
    buffered_payload_ -= out.bytes.size();
    if (s.ready.empty()) s.readable_signalled = false;
    return true;
}

bool stream_demux::pop_chunk_any(std::uint32_t& id_out, ready_chunk& out) {
    for (auto& [id, s] : streams_) {
        if (s->ready.empty()) continue;
        id_out = id;
        return pop_chunk(id, out);
    }
    return false;
}

void stream_demux::unpop_chunk(std::uint32_t id, ready_chunk&& chunk) {
    const auto it = streams_.find(id);
    if (it == streams_.end()) return;
    inbound_stream& s = *it->second;
    // pop_chunk folded any partially-read prefix away, so the chunk goes
    // back whole at the front; no front_consumed adjustment needed.
    buffered_payload_ += chunk.bytes.size();
    s.ready.push_front(std::move(chunk));
    s.readable_signalled = true; // still buffered; no new edge owed
}

void stream_demux::clear_readable_signal(std::uint32_t id) {
    const auto it = streams_.find(id);
    if (it != streams_.end()) it->second->readable_signalled = false;
}

std::uint64_t stream_demux::readable_bytes(std::uint32_t id) const {
    const auto it = streams_.find(id);
    if (it == streams_.end()) return 0;
    std::uint64_t total = 0;
    for (const auto& c : it->second->ready) total += c.bytes.size();
    return total - it->second->front_consumed;
}

const sack::reassembly* stream_demux::find(std::uint32_t id) const {
    const auto it = streams_.find(id);
    return it == streams_.end() ? nullptr : &it->second->ra;
}

std::uint64_t stream_demux::delivered_bytes_total() const {
    std::uint64_t total = 0;
    for (const auto& [id, s] : streams_) total += s->ra.delivered_bytes();
    return total;
}

std::size_t stream_demux::state_bytes() const {
    std::size_t total = 0;
    for (const auto& [id, s] : streams_) {
        total += sizeof(inbound_stream) +
                 s->ra.received().range_count() * 2 * sizeof(std::uint64_t);
        for (const auto& [off, bytes] : s->staged) total += bytes.size();
        for (const auto& c : s->ready) total += c.bytes.size();
    }
    return total;
}

} // namespace vtp::stream
