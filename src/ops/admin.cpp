#include "ops/admin.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "cc/algorithm_id.hpp"

namespace vtp::ops {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

http_response json_response(int status, const std::string& body) {
    http_response r;
    r.status = status;
    r.content_type = "application/json";
    r.body = body;
    return r;
}

http_response json_error(int status, const std::string& message) {
    return json_response(status,
                         "{\"error\":\"" + json_escape(message) + "\"}\n");
}

/// Parse "<flow>" as decimal or 0x-prefixed hex; 0/failure -> false.
bool parse_flow(const std::string& s, std::uint32_t& out) {
    if (s.empty()) return false;
    char* end = nullptr;
    const unsigned long v = std::strtoul(s.c_str(), &end, 0);
    if (end == nullptr || *end != '\0' || v == 0 || v > 0xfffffffful)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

void append_session_json(std::ostringstream& os, const vtp::session_snapshot& sn) {
    const vtp::session_stats& st = sn.stats;
    os << "{\"flow\":" << sn.flow << ",\"shard\":" << sn.shard
       << ",\"role\":\"" << (sn.sender_role ? "sender" : "receiver")
       << "\",\"established\":" << (st.established ? "true" : "false")
       << ",\"closed\":" << (st.closed ? "true" : "false")
       << ",\"half_open\":" << (sn.half_open ? "true" : "false")
       << ",\"cc\":\"" << cc::to_string(st.cc_algorithm)
       << "\",\"cc_swaps\":" << st.cc_swaps_applied
       << ",\"streams\":" << st.streams
       << ",\"renegotiations\":" << st.renegotiations
       << ",\"reneg_rate_limited\":" << st.reneg_rate_limited
       << ",\"bytes_queued\":" << st.stream_bytes_queued
       << ",\"bytes_sent\":" << st.stream_bytes_sent
       << ",\"bytes_acked\":" << st.stream_bytes_acked
       << ",\"rtx_bytes\":" << st.rtx_bytes_sent
       << ",\"packets_sent\":" << st.packets_sent
       << ",\"allowed_rate_bps\":" << fmt_double(st.allowed_rate_bps)
       << ",\"loss_event_rate\":" << fmt_double(st.loss_event_rate)
       << ",\"rtt_ms\":" << fmt_double(static_cast<double>(st.rtt) / 1e6)
       << ",\"bandwidth_estimate_bps\":" << fmt_double(st.bandwidth_estimate_bps)
       << ",\"bytes_received\":" << st.bytes_received
       << ",\"packets_received\":" << st.packets_received
       << ",\"bytes_delivered\":" << st.bytes_delivered
       << ",\"feedback_sent\":" << st.feedback_sent
       << ",\"events_dropped\":" << st.events_dropped
       << ",\"trace_recorded\":" << st.trace_events_recorded
       << ",\"trace_dropped\":" << st.trace_events_dropped
       << ",\"path_migrations\":" << st.path.migrations
       << ",\"active_path\":" << st.active_path_remote << ",\"paths\":[";
    for (std::size_t i = 0; i < sn.paths.size(); ++i) {
        const path::path_info& p = sn.paths[i];
        if (i != 0) os << ',';
        os << "{\"remote\":" << p.remote << ",\"state\":\"" << path::to_string(p.state)
           << "\",\"active\":" << (p.active ? "true" : "false")
           << ",\"srtt_ms\":" << fmt_double(static_cast<double>(p.srtt) / 1e6)
           << ",\"bytes_sent\":" << p.bytes_sent
           << ",\"bytes_received\":" << p.bytes_received
           << ",\"packets_acked\":" << p.packets_acked
           << ",\"packets_lost\":" << p.packets_lost
           << ",\"delivery_rate_bps\":" << fmt_double(p.delivery_rate_bps)
           << ",\"loss_rate\":" << fmt_double(p.loss_rate) << '}';
    }
    os << "]}";
}

} // namespace

admin_server::admin_server(engine::server& eng, admin_config cfg)
    : eng_(eng), cfg_(std::move(cfg)) {
    http_ = std::make_unique<http_server>(
        cfg_.port, [this](const http_request& req) { return route(req); });
}

admin_server::~admin_server() {
    // Detach every live tap on its owner shard before the writers die:
    // a reaped or torn-down connection flushes its tracer into the tap
    // sink, so the writer must not be destroyed while a session still
    // points at it.
    std::map<std::uint32_t, std::unique_ptr<trace::async_writer>> taps;
    {
        std::lock_guard<std::mutex> lock(taps_mu_);
        taps.swap(taps_);
    }
    for (auto& [flow, writer] : taps) {
        run_on_shard(eng_.owner_of(flow), [flow = flow](vtp::server& srv) {
            if (vtp::session* s = srv.find(flow)) s->trace_stop();
        });
    }
    http_.reset(); // join the HTTP thread before the writers destruct
}

http_response admin_server::route(const http_request& req) {
    const std::string& p = req.path;
    if (req.method == "GET") {
        if (p == "/" || p.empty()) return index();
        if (p == "/metrics") return metrics();
        if (p == "/sessions") return sessions(0, false);
        if (p.rfind("/sessions/", 0) == 0) {
            std::uint32_t flow = 0;
            if (!parse_flow(p.substr(10), flow))
                return json_error(400, "bad flow id");
            return sessions(flow, true);
        }
        if (p == "/shards") return shards();
        if (p == "/healthz") return healthz();
        if (p.rfind("/trace/", 0) == 0)
            return json_error(405, "trace control is POST-only");
        return json_error(404, "unknown endpoint (GET / lists them)");
    }
    if (req.method == "POST") {
        if (p.rfind("/trace/", 0) == 0) {
            const std::string rest = p.substr(7); // "<flow>/start|stop"
            const std::size_t slash = rest.find('/');
            if (slash == std::string::npos)
                return json_error(400, "use /trace/<flow>/start|stop");
            std::uint32_t flow = 0;
            if (!parse_flow(rest.substr(0, slash), flow))
                return json_error(400, "bad flow id");
            const std::string verb = rest.substr(slash + 1);
            if (verb == "start") return trace_cmd(flow, true);
            if (verb == "stop") return trace_cmd(flow, false);
            return json_error(400, "use /trace/<flow>/start|stop");
        }
        return json_error(404, "unknown endpoint");
    }
    return json_error(405, "unsupported method");
}

http_response admin_server::index() const {
    http_response r;
    r.body =
        "vtp admin plane\n"
        "  GET  /metrics              Prometheus exposition\n"
        "  GET  /sessions             all hosted sessions (JSON)\n"
        "  GET  /sessions/<flow>      one session (JSON)\n"
        "  GET  /shards               per-shard datapath counters (JSON)\n"
        "  GET  /healthz              ok|degraded|failing + reasons (JSON)\n"
        "  POST /trace/<flow>/start   attach a flight-recorder tap\n"
        "  POST /trace/<flow>/stop    flush and close the tap\n";
    return r;
}

http_response admin_server::metrics() const {
    http_response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = eng_.metrics_text();
    return r;
}

http_response admin_server::sessions(std::uint32_t only_flow, bool single) {
    std::vector<vtp::session_snapshot> snaps = eng_.snapshot_sessions(only_flow);
    std::ostringstream os;
    if (single) {
        if (snaps.empty()) return json_error(404, "no such flow");
        append_session_json(os, snaps.front());
        os << '\n';
        return json_response(200, os.str());
    }
    os << "{\"count\":" << snaps.size() << ",\"sessions\":[";
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        if (i != 0) os << ',';
        append_session_json(os, snaps[i]);
    }
    os << "]}\n";
    return json_response(200, os.str());
}

http_response admin_server::shards() const {
    const std::vector<engine::shard_stats> per = eng_.per_shard_stats();
    std::ostringstream os;
    os << "{\"shards\":[";
    for (std::size_t i = 0; i < per.size(); ++i) {
        const engine::shard_stats& s = per[i];
        if (i != 0) os << ',';
        os << "{\"index\":" << i << ",\"datagrams_rx\":" << s.datagrams_rx
           << ",\"datagrams_tx\":" << s.datagrams_tx
           << ",\"sessions\":" << s.sessions << ",\"accepted\":" << s.accepted
           << ",\"half_open\":" << s.half_open
           << ",\"events_dropped\":" << s.events_dropped
           << ",\"handoff_dropped\":" << s.handoff_dropped
           << ",\"tx_dropped\":" << s.tx_dropped
           << ",\"decode_errors\":" << s.decode_errors << '}';
    }
    os << "]}\n";
    return json_response(200, os.str());
}

admin_server::health admin_server::evaluate_health() const {
    health h;
    h.status = "ok";
    const trace::window_delta d = eng_.merged_window(cfg_.health_window_ns);
    const engine::engine_stats st = eng_.stats();
    h.half_open = st.half_open;
    if (d.span_ns == 0) {
        h.reasons.push_back("warming: telemetry window has <2 snapshots");
        return h;
    }
    h.window_s = static_cast<double>(d.span_ns) / 1e9;
    h.events_dropped_rate = d.rate_per_s("vtp_events_dropped_total");
    h.handoff_dropped_rate = d.rate_per_s("vtp_handoff_dropped_total");
    h.commands_dropped_rate = d.rate_per_s("vtp_commands_dropped_total");
    if (const trace::window_hist_delta* t = d.hist("vtp_timer_fire_latency_ns"))
        h.timer_fire_p99_ns = t->percentile(0.99);
    if (const trace::window_hist_delta* ho = d.hist("vtp_half_open_sessions_turns"))
        h.half_open_peak = ho->max_upper();

    int level = 0; // 0 ok, 1 degraded, 2 failing
    const auto raise = [&](int to, const std::string& why) {
        if (to > level) level = to;
        h.reasons.push_back(why);
    };
    const auto judge_drops = [&](double rate, const char* what) {
        if (rate >= cfg_.failing_drop_rate_per_s)
            raise(2, std::string(what) + " dropping at " + fmt_double(rate) + "/s");
        else if (rate >= cfg_.degraded_drop_rate_per_s)
            raise(1, std::string(what) + " dropping at " + fmt_double(rate) + "/s");
    };
    judge_drops(h.events_dropped_rate, "session events");
    judge_drops(h.handoff_dropped_rate, "cross-shard handoffs");
    judge_drops(h.commands_dropped_rate, "app commands");
    if (h.timer_fire_p99_ns >= cfg_.failing_timer_p99_ns)
        raise(2, "timer fire p99 " +
                     std::to_string(h.timer_fire_p99_ns / 1000000) + "ms");
    else if (h.timer_fire_p99_ns >= cfg_.degraded_timer_p99_ns)
        raise(1, "timer fire p99 " +
                     std::to_string(h.timer_fire_p99_ns / 1000000) + "ms");
    const std::size_t cap = eng_.config().accept.max_half_open;
    if (cap > 0) {
        const double frac =
            static_cast<double>(std::max(h.half_open, h.half_open_peak)) /
            static_cast<double>(cap);
        if (frac >= cfg_.failing_half_open_frac)
            raise(2, "half-open at " + fmt_double(frac * 100) + "% of cap");
        else if (frac >= cfg_.degraded_half_open_frac)
            raise(1, "half-open at " + fmt_double(frac * 100) + "% of cap");
    }
    h.status = level == 0 ? "ok" : level == 1 ? "degraded" : "failing";
    return h;
}

http_response admin_server::healthz() const {
    const health h = evaluate_health();
    std::ostringstream os;
    os << "{\"status\":\"" << h.status << "\",\"reasons\":[";
    for (std::size_t i = 0; i < h.reasons.size(); ++i) {
        if (i != 0) os << ',';
        os << '"' << json_escape(h.reasons[i]) << '"';
    }
    os << "],\"signals\":{\"events_dropped_rate\":"
       << fmt_double(h.events_dropped_rate)
       << ",\"handoff_dropped_rate\":" << fmt_double(h.handoff_dropped_rate)
       << ",\"commands_dropped_rate\":" << fmt_double(h.commands_dropped_rate)
       << ",\"timer_fire_p99_ns\":" << h.timer_fire_p99_ns
       << ",\"half_open\":" << h.half_open
       << ",\"half_open_peak\":" << h.half_open_peak
       << ",\"window_s\":" << fmt_double(h.window_s) << "}}\n";
    return json_response(h.status == "failing" ? 503 : 200, os.str());
}

bool admin_server::run_on_shard(std::size_t idx,
                                std::function<void(vtp::server&)> fn) {
    struct rendezvous {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
    };
    auto ctx = std::make_shared<rendezvous>();
    eng_.with_server(idx, [ctx, fn = std::move(fn)](vtp::server& srv) {
        fn(srv);
        std::lock_guard<std::mutex> lock(ctx->mu);
        ctx->done = true;
        ctx->cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(ctx->mu);
    return ctx->cv.wait_for(lock, std::chrono::seconds(2),
                            [&] { return ctx->done; });
}

http_response admin_server::trace_cmd(std::uint32_t flow, bool start) {
    const std::size_t owner = eng_.owner_of(flow);
    if (!start) {
        std::unique_ptr<trace::async_writer> writer;
        {
            std::lock_guard<std::mutex> lock(taps_mu_);
            const auto it = taps_.find(flow);
            if (it == taps_.end()) return json_error(404, "no tap on this flow");
            writer = std::move(it->second);
            taps_.erase(it);
        }
        // Detach on the owner shard first (flushes the ring into the
        // writer), then let the writer destruct (drains its queue). On a
        // timeout the detach may still run later, so the writer goes
        // back into taps_ to stay alive for it.
        if (!run_on_shard(owner, [flow](vtp::server& srv) {
                if (vtp::session* s = srv.find(flow)) s->trace_stop();
            })) {
            std::lock_guard<std::mutex> lock(taps_mu_);
            taps_[flow] = std::move(writer);
            return json_error(503, "shard did not answer (engine stopped?)");
        }
        const std::uint64_t records = writer->records();
        writer.reset();
        return json_response(
            200, "{\"tracing\":\"stopped\",\"flow\":" + std::to_string(flow) +
                     ",\"records\":" + std::to_string(records) + "}\n");
    }
    {
        std::lock_guard<std::mutex> lock(taps_mu_);
        if (taps_.count(flow) != 0)
            return json_error(400, "tap already active on this flow");
    }
    std::error_code ec;
    std::filesystem::create_directories(cfg_.trace_tap_dir, ec);
    const std::string path =
        cfg_.trace_tap_dir + "/tap-" + std::to_string(flow) + ".vtpt";
    auto writer = std::make_unique<trace::async_writer>(path);
    if (!writer->ok()) return json_error(500, "cannot open " + path);
    trace::sink* sink = writer.get();
    // Shared flag: on a rendezvous timeout the closure may still run
    // later, after this frame is gone.
    auto attached_flag = std::make_shared<std::atomic<bool>>(false);
    const std::size_t ring = cfg_.tap_ring_records;
    if (!run_on_shard(owner, [flow, sink, ring, attached_flag](vtp::server& srv) {
            if (vtp::session* s = srv.find(flow)) {
                s->trace_start(ring, sink);
                attached_flag->store(true, std::memory_order_relaxed);
            }
        })) {
        // The closure may still attach later; keep the writer alive in
        // taps_ so the sink pointer stays valid either way.
        std::lock_guard<std::mutex> lock(taps_mu_);
        taps_[flow] = std::move(writer);
        return json_error(503, "shard did not answer (engine stopped?)");
    }
    if (!attached_flag->load(std::memory_order_relaxed)) {
        writer.reset();
        std::filesystem::remove(path, ec);
        return json_error(404, "no such flow");
    }
    {
        std::lock_guard<std::mutex> lock(taps_mu_);
        taps_[flow] = std::move(writer);
    }
    return json_response(200, "{\"tracing\":\"started\",\"flow\":" +
                                  std::to_string(flow) + ",\"path\":\"" +
                                  json_escape(path) + "\"}\n");
}

} // namespace vtp::ops
