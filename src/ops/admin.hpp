// ops::admin_server — the engine's live operations plane.
//
// One loopback HTTP endpoint per engine::server, serving pull-based
// introspection while traffic flows:
//
//   GET  /                      endpoint catalogue (human aid)
//   GET  /metrics               Prometheus text exposition (HELP/TYPE,
//                               plus windowed vtp_*_rate / vtp_*_p99_60s)
//   GET  /sessions              JSON snapshot of every hosted session
//   GET  /sessions/<flow>       one session (decimal or 0x hex flow id)
//   GET  /shards                JSON per-shard datapath counters
//   GET  /healthz               SLO verdict: ok | degraded | failing,
//                               with reasons (HTTP 503 when failing)
//   POST /trace/<flow>/start    attach a flight-recorder tap: the live
//                               session's transport events spill to
//                               <trace_tap_dir>/tap-<flow>.vtpt
//   POST /trace/<flow>/stop     flush and close the tap
//
// Session state is never read across threads: /sessions and the trace
// endpoints post closures to the owner shard (engine::server's
// with_server mailbox) and rendezvous with a timeout. Everything else
// reads atomics or the sliding telemetry window.
//
// Health model (/healthz), judged over the telemetry window:
//   - drop pressure: events/handoff/commands dropped per second.
//     Above `degraded_drop_rate_per_s` -> degraded; above
//     `failing_drop_rate_per_s` -> failing. Losing exported events or
//     datagrams is the first thing an overloaded engine does.
//   - timer health: windowed p99 of vtp_timer_fire_latency_ns. A late
//     wheel means pacing and feedback clocks are slipping.
//   - half-open pressure: current + windowed-peak half-open population
//     against the accept cap (engine_config::accept.max_half_open) —
//     the SYN-flood early-warning. Unlimited caps skip this probe.
// Fewer than two window snapshots -> "ok" with a "warming" reason.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/server.hpp"
#include "ops/http.hpp"
#include "trace/writer.hpp"
#include "util/time.hpp"

namespace vtp::ops {

struct admin_config {
    std::uint16_t port = 0; ///< 0 = kernel-assigned (see admin_server::port)
    /// Where POST /trace/<flow>/start writes tap-<flow>.vtpt.
    std::string trace_tap_dir = ".";
    /// Health judgements look this far back (engine telemetry window).
    std::uint64_t health_window_ns = 60ull * 1000 * 1000 * 1000;
    /// Tap ring size (records) for runtime-attached tracers.
    std::size_t tap_ring_records = 4096;

    // SLO thresholds (see the health model above).
    double degraded_drop_rate_per_s = 1.0;
    double failing_drop_rate_per_s = 1000.0;
    std::uint64_t degraded_timer_p99_ns = util::milliseconds(10);
    std::uint64_t failing_timer_p99_ns = util::milliseconds(100);
    double degraded_half_open_frac = 0.5;
    double failing_half_open_frac = 0.9;
};

class admin_server {
public:
    /// Binds immediately (throws std::runtime_error on failure); the
    /// engine must outlive this object. Destroy before engine shutdown
    /// completes — engine::server::stop() does this for the plane it
    /// owns — so live taps can detach on still-running shard threads.
    admin_server(engine::server& eng, admin_config cfg);
    ~admin_server();

    admin_server(const admin_server&) = delete;
    admin_server& operator=(const admin_server&) = delete;

    std::uint16_t port() const { return http_->port(); }

    /// The verdict /healthz serves (exposed for tests and vtptop).
    struct health {
        std::string status; ///< "ok" | "degraded" | "failing"
        std::vector<std::string> reasons;
        double events_dropped_rate = 0.0;
        double handoff_dropped_rate = 0.0;
        double commands_dropped_rate = 0.0;
        std::uint64_t timer_fire_p99_ns = 0;
        std::uint64_t half_open = 0;
        std::uint64_t half_open_peak = 0;
        double window_s = 0.0;
    };
    health evaluate_health() const;

private:
    http_response route(const http_request& req);
    http_response index() const;
    http_response metrics() const;
    http_response sessions(std::uint32_t only_flow, bool single);
    http_response shards() const;
    http_response healthz() const;
    http_response trace_cmd(std::uint32_t flow, bool start);
    /// Run `fn` on shard `idx` and wait (bounded); false on timeout.
    bool run_on_shard(std::size_t idx, std::function<void(vtp::server&)> fn);

    engine::server& eng_;
    admin_config cfg_;
    std::mutex taps_mu_;
    std::map<std::uint32_t, std::unique_ptr<trace::async_writer>> taps_;
    std::unique_ptr<http_server> http_; ///< last: handler uses the above
};

} // namespace vtp::ops
