// Minimal loopback HTTP/1.0 server for the in-process admin plane.
//
// Deliberately primitive: plain blocking sockets, one dedicated thread,
// serial request handling, Connection: close on every response. The
// admin plane serves a handful of operator scrapes per second, not
// traffic — simplicity and zero dependencies beat throughput here. The
// listener binds 127.0.0.1 only; exposing it beyond the host is the
// operator's job (and problem).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace vtp::ops {

struct http_request {
    std::string method; ///< "GET", "POST", ...
    std::string path;   ///< request target, e.g. "/metrics"
    std::string body;
};

struct http_response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

class http_server {
public:
    using handler_fn = std::function<http_response(const http_request&)>;

    /// Bind 127.0.0.1:`port` (0 = kernel-assigned, see port()) and serve
    /// requests on a dedicated thread until destruction. Throws
    /// std::runtime_error when the socket cannot be bound.
    http_server(std::uint16_t port, handler_fn handler);
    ~http_server();

    http_server(const http_server&) = delete;
    http_server& operator=(const http_server&) = delete;

    std::uint16_t port() const { return port_; }

private:
    void loop();
    void serve(int fd);

    handler_fn handler_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// One-shot loopback HTTP request (the client side vtptop and the tests
/// use). Returns false on connect/IO/parse failure; on success fills
/// `status_out` and `body_out`.
bool http_fetch(std::uint16_t port, const std::string& method,
                const std::string& path, int& status_out, std::string& body_out);

} // namespace vtp::ops
