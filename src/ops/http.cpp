#include "ops/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace vtp::ops {

namespace {

constexpr std::size_t max_request_bytes = 64 * 1024;

const char* status_text(int status) {
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
    }
}

void set_io_timeout(int fd) {
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool write_all(int fd, const char* data, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n <= 0) return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

http_server::http_server(std::uint16_t port, handler_fn handler)
    : handler_(std::move(handler)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("ops: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ops: cannot bind 127.0.0.1:" +
                                 std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { loop(); });
}

http_server::~http_server() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

void http_server::loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int r = ::poll(&pfd, 1, 200); // bounded: re-check stop_
        if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        set_io_timeout(fd);
        serve(fd);
        ::close(fd);
    }
}

void http_server::serve(int fd) {
    std::string buf;
    char chunk[4096];
    std::size_t header_end = std::string::npos;
    while (buf.size() < max_request_bytes) {
        header_end = buf.find("\r\n\r\n");
        if (header_end != std::string::npos) break;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (header_end == std::string::npos) return;

    http_request req;
    {
        const std::size_t line_end = buf.find("\r\n");
        std::istringstream line(buf.substr(0, line_end));
        std::string version;
        line >> req.method >> req.path >> version;
    }
    // Content-Length (case-insensitive scan of the header block).
    std::size_t body_len = 0;
    {
        std::string headers = buf.substr(0, header_end);
        for (char& c : headers) c = static_cast<char>(std::tolower(c));
        const std::size_t pos = headers.find("content-length:");
        if (pos != std::string::npos)
            body_len = std::strtoul(headers.c_str() + pos + 15, nullptr, 10);
    }
    if (body_len > max_request_bytes) return;
    std::size_t body_start = header_end + 4;
    while (buf.size() < body_start + body_len) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    req.body = buf.substr(body_start, body_len);

    http_response resp;
    if (req.method.empty() || req.path.empty()) {
        resp.status = 400;
        resp.body = "malformed request\n";
    } else {
        resp = handler_(req);
    }

    std::ostringstream os;
    os << "HTTP/1.0 " << resp.status << ' ' << status_text(resp.status)
       << "\r\nContent-Type: " << resp.content_type
       << "\r\nContent-Length: " << resp.body.size()
       << "\r\nConnection: close\r\n\r\n";
    const std::string head = os.str();
    if (write_all(fd, head.data(), head.size()))
        write_all(fd, resp.body.data(), resp.body.size());
}

bool http_fetch(std::uint16_t port, const std::string& method,
                const std::string& path, int& status_out,
                std::string& body_out) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    set_io_timeout(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return false;
    }
    std::ostringstream os;
    os << method << ' ' << path
       << " HTTP/1.0\r\nHost: 127.0.0.1\r\nContent-Length: 0\r\n\r\n";
    const std::string req = os.str();
    if (!write_all(fd, req.data(), req.size())) {
        ::close(fd);
        return false;
    }
    std::string buf;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        buf.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);
    // "HTTP/1.0 200 OK\r\n...\r\n\r\n<body>"
    if (buf.rfind("HTTP/", 0) != 0) return false;
    const std::size_t sp = buf.find(' ');
    if (sp == std::string::npos) return false;
    status_out = std::atoi(buf.c_str() + sp + 1);
    const std::size_t hdr_end = buf.find("\r\n\r\n");
    if (hdr_end == std::string::npos) return false;
    body_out = buf.substr(hdr_end + 4);
    return true;
}

} // namespace vtp::ops
