// Sender-side SACK scoreboard.
//
// QTP retransmissions carry *new* sequence numbers (TFRC needs every
// packet numbered once for loss estimation), so the scoreboard maps each
// transmitted sequence to the byte range it carried. SACK feedback marks
// sequences received; once the highest reported sequence is
// `finalize_horizon` past an outstanding one, its fate is final — if the
// byte range it carried has not been delivered by any other sequence, it
// is reported lost so the reliability policy can decide on
// retransmission.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "packet/segment.hpp"
#include "sack/reassembly.hpp"
#include "util/time.hpp"

namespace vtp::sack {

/// One data transmission: which bytes went out under which sequence.
struct transmission_record {
    std::uint64_t seq = 0;
    std::uint64_t byte_offset = 0;
    std::uint32_t length = 0;
    std::uint32_t message_id = 0;
    util::sim_time deadline = util::time_never;
    util::sim_time sent_at = 0;
    std::uint32_t transmit_count = 1; ///< 1 = first transmission
};

struct scoreboard_config {
    /// A sequence is finalised once highest reported - seq >= horizon.
    std::uint64_t finalize_horizon = 16;
};

class scoreboard {
public:
    explicit scoreboard(scoreboard_config cfg = {});

    /// Register a data transmission (sequence numbers strictly increase).
    void record(const transmission_record& rec);

    /// Ingest SACK feedback. Byte ranges that are now finally lost (and
    /// not covered by another delivered transmission) are appended to
    /// `lost_out`.
    void on_sack(const packet::sack_feedback_segment& fb,
                 std::vector<transmission_record>& lost_out);

    /// Bytes acknowledged as delivered (union of acked transmissions).
    std::uint64_t delivered_bytes() const { return delivered_.total(); }
    const interval_set& delivered() const { return delivered_; }

    std::size_t outstanding() const { return outstanding_.size(); }
    std::uint64_t acked_sequences() const { return acked_sequences_; }
    std::uint64_t lost_sequences() const { return lost_sequences_; }

    /// Lowest byte offset still referenced by an unfinalised
    /// transmission (UINT64_MAX when nothing is outstanding). Bytes below
    /// both this and every queued retransmission can never be sent again,
    /// so the payload send buffer may release them.
    std::uint64_t min_outstanding_offset() const;

private:
    scoreboard_config cfg_;
    std::map<std::uint64_t, transmission_record> outstanding_; ///< seq -> record
    interval_set delivered_;
    std::uint64_t highest_reported_ = 0;
    bool any_feedback_ = false;
    std::uint64_t acked_sequences_ = 0;
    std::uint64_t lost_sequences_ = 0;
};

} // namespace vtp::sack
