#include "sack/retransmit.hpp"

namespace vtp::sack {

bool retransmit_queue::expired(const transmission_record& rec, util::sim_time now,
                               const reliability_policy& policy) const {
    if (policy.mode == reliability_mode::partial) {
        if (rec.deadline != util::time_never && rec.deadline - now <= policy.partial_margin)
            return true;
    }
    if (policy.max_transmissions != 0 && rec.transmit_count >= policy.max_transmissions)
        return true;
    return false;
}

void retransmit_queue::push(const transmission_record& lost,
                            const reliability_policy& policy) {
    if (policy.mode == reliability_mode::none) return;
    ++queued_ranges_;
    queue_.push_back(lost);
}

util::sim_time retransmit_queue::earliest_deadline() const {
    util::sim_time earliest = util::time_never;
    for (const auto& rec : queue_)
        if (rec.deadline != util::time_never && rec.deadline < earliest)
            earliest = rec.deadline;
    return earliest;
}

std::uint64_t retransmit_queue::min_pending_offset() const {
    std::uint64_t lowest = UINT64_MAX;
    for (const auto& rec : queue_) lowest = std::min(lowest, rec.byte_offset);
    return lowest;
}

std::optional<transmission_record> retransmit_queue::pop(util::sim_time now,
                                                         const reliability_policy& policy) {
    while (!queue_.empty()) {
        transmission_record rec = queue_.front();
        queue_.pop_front();
        if (expired(rec, now, policy)) {
            ++abandoned_ranges_;
            abandoned_bytes_ += rec.length;
            continue;
        }
        return rec;
    }
    return std::nullopt;
}

} // namespace vtp::sack
