#include "sack/scoreboard.hpp"

#include <algorithm>

namespace vtp::sack {

scoreboard::scoreboard(scoreboard_config cfg) : cfg_(cfg) {}

void scoreboard::record(const transmission_record& rec) {
    outstanding_.emplace(rec.seq, rec);
}

void scoreboard::on_sack(const packet::sack_feedback_segment& fb,
                         std::vector<transmission_record>& lost_out) {
    any_feedback_ = true;

    // Mark acked sequences delivered.
    for (const auto& block : fb.blocks) {
        if (block.begin >= block.end) continue;
        highest_reported_ =
            std::max(highest_reported_, block.end - 1);
        auto it = outstanding_.lower_bound(block.begin);
        while (it != outstanding_.end() && it->first < block.end) {
            const transmission_record& rec = it->second;
            delivered_.add(rec.byte_offset, rec.byte_offset + rec.length);
            ++acked_sequences_;
            it = outstanding_.erase(it);
        }
    }

    // Finalise sequences the receiver has definitively moved past.
    if (highest_reported_ < cfg_.finalize_horizon) return;
    const std::uint64_t limit = highest_reported_ - cfg_.finalize_horizon;
    auto it = outstanding_.begin();
    while (it != outstanding_.end() && it->first <= limit) {
        transmission_record rec = it->second;
        it = outstanding_.erase(it);
        ++lost_sequences_;
        // Only report the loss if those bytes never made it another way.
        if (!delivered_.contains(rec.byte_offset, rec.byte_offset + rec.length)) {
            lost_out.push_back(rec);
        }
    }
}

std::uint64_t scoreboard::min_outstanding_offset() const {
    std::uint64_t lowest = UINT64_MAX;
    for (const auto& [seq, rec] : outstanding_)
        lowest = std::min(lowest, rec.byte_offset);
    return lowest;
}

} // namespace vtp::sack
