#include "sack/reassembly.hpp"

#include <algorithm>

namespace vtp::sack {

void interval_set::add(std::uint64_t begin, std::uint64_t end) {
    if (begin >= end) return;

    // Find the first range that could overlap or touch [begin, end).
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= begin) it = prev;
    }

    std::uint64_t new_begin = begin;
    std::uint64_t new_end = end;
    while (it != ranges_.end() && it->first <= new_end) {
        new_begin = std::min(new_begin, it->first);
        new_end = std::max(new_end, it->second);
        total_ -= it->second - it->first;
        it = ranges_.erase(it);
    }
    ranges_.emplace(new_begin, new_end);
    total_ += new_end - new_begin;
}

void interval_set::remove(std::uint64_t begin, std::uint64_t end) {
    if (begin >= end) return;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > begin) it = prev;
    }
    while (it != ranges_.end() && it->first < end) {
        const std::uint64_t r_begin = it->first;
        const std::uint64_t r_end = it->second;
        total_ -= r_end - r_begin;
        it = ranges_.erase(it);
        if (r_begin < begin) {
            ranges_.emplace(r_begin, begin);
            total_ += begin - r_begin;
        }
        if (r_end > end) {
            ranges_.emplace(end, r_end);
            total_ += r_end - end;
        }
    }
}

bool interval_set::contains(std::uint64_t begin, std::uint64_t end) const {
    if (begin >= end) return true;
    auto it = ranges_.upper_bound(begin);
    if (it == ranges_.begin()) return false;
    --it;
    return it->first <= begin && end <= it->second;
}

std::uint64_t interval_set::covered_in(std::uint64_t begin, std::uint64_t end) const {
    if (begin >= end) return 0;
    std::uint64_t covered = 0;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) --it;
    for (; it != ranges_.end() && it->first < end; ++it) {
        const std::uint64_t lo = std::max(begin, it->first);
        const std::uint64_t hi = std::min(end, it->second);
        if (hi > lo) covered += hi - lo;
    }
    return covered;
}

std::uint64_t interval_set::prefix_end() const {
    auto it = ranges_.find(0);
    // The first range must start at exactly 0.
    if (it == ranges_.end()) {
        it = ranges_.begin();
        if (it == ranges_.end() || it->first != 0) return 0;
    }
    return it->second;
}

std::uint64_t interval_set::first_gap(std::uint64_t from) const {
    std::uint64_t point = from;
    auto it = ranges_.upper_bound(point);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > point) point = prev->second;
    }
    while (it != ranges_.end() && it->first <= point) {
        point = std::max(point, it->second);
        ++it;
    }
    return point;
}

reassembly::reassembly(delivery_order order, deliver_fn deliver)
    : order_(order), deliver_(std::move(deliver)) {}

delivered_range reassembly::on_data(std::uint64_t offset, std::uint32_t len,
                                    bool end_of_stream) {
    if (end_of_stream) {
        stream_length_known_ = true;
        stream_length_ = offset + len;
    }
    if (len == 0) return {};

    if (received_.contains(offset, offset + len)) {
        duplicate_bytes_ += len;
        return {};
    }
    received_.add(offset, offset + len);

    if (order_ == delivery_order::immediate) {
        delivered_bytes_ += len;
        if (deliver_) deliver_(offset, len);
        return {offset, len};
    }

    // Ordered: release the newly contiguous prefix.
    const std::uint64_t point = received_.prefix_end();
    if (point > ordered_delivered_to_) {
        const std::uint64_t newly = point - ordered_delivered_to_;
        if (deliver_)
            deliver_(ordered_delivered_to_, static_cast<std::uint32_t>(
                                                std::min<std::uint64_t>(newly, UINT32_MAX)));
        const delivered_range out{ordered_delivered_to_, newly};
        ordered_delivered_to_ = point;
        delivered_bytes_ += newly;
        return out;
    }
    return {};
}

bool reassembly::complete() const {
    return stream_length_known_ && received_.contains(0, stream_length_);
}

} // namespace vtp::sack
