// Receiver-side reliability: byte-interval bookkeeping and stream
// reassembly.
//
// `interval_set` is the shared primitive (also used by the sender
// scoreboard): a merged, ordered set of half-open byte ranges.
//
// `reassembly` tracks the received byte ranges of a stream and delivers
// to the application either in order (full reliability — delivery stalls
// at a gap until retransmission fills it) or immediately (partial /
// no reliability — streaming delivery, gaps are the application's
// problem, which is exactly what a deadline-driven media codec wants).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

namespace vtp::sack {

/// Ordered set of disjoint half-open ranges [begin, end) over uint64.
class interval_set {
public:
    /// Insert [begin, end), merging with neighbours. No-op if begin >= end.
    void add(std::uint64_t begin, std::uint64_t end);

    /// Remove [begin, end) from the set (splitting ranges as needed).
    void remove(std::uint64_t begin, std::uint64_t end);

    /// True if [begin, end) is entirely covered.
    bool contains(std::uint64_t begin, std::uint64_t end) const;

    /// Number of covered bytes within [begin, end).
    std::uint64_t covered_in(std::uint64_t begin, std::uint64_t end) const;

    /// Sum of covered lengths.
    std::uint64_t total() const { return total_; }

    /// End of the contiguous prefix starting at 0 (0 if 0 uncovered).
    std::uint64_t prefix_end() const;

    std::size_t range_count() const { return ranges_.size(); }
    bool empty() const { return ranges_.empty(); }

    /// First uncovered point at or after `from`.
    std::uint64_t first_gap(std::uint64_t from) const;

    const std::map<std::uint64_t, std::uint64_t>& ranges() const { return ranges_; }

private:
    std::map<std::uint64_t, std::uint64_t> ranges_; ///< begin -> end
    std::uint64_t total_ = 0;
};

enum class delivery_order {
    ordered,   ///< contiguous prefix only (full reliability)
    immediate, ///< deliver on arrival (streaming / partial reliability)
};

/// What one reassembly::on_data call released to the application:
/// nothing (duplicate / gap stall), or one contiguous range. In
/// immediate mode the range is the arriving frame itself; in ordered
/// mode it is the newly contiguous prefix (which may span several
/// previously buffered frames).
struct delivered_range {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    bool any() const { return length > 0; }
};

class reassembly {
public:
    /// (offset, length) of bytes handed to the application.
    using deliver_fn = std::function<void(std::uint64_t, std::uint32_t)>;

    explicit reassembly(delivery_order order, deliver_fn deliver = {});

    /// Data for [offset, offset+len) arrived; `end_of_stream` marks the
    /// final segment (stream length = offset + len). Returns what became
    /// deliverable (also reported through the deliver hook when set —
    /// the poll-based API uses the return value instead, keeping the
    /// per-packet path free of std::function dispatch).
    delivered_range on_data(std::uint64_t offset, std::uint32_t len, bool end_of_stream);

    std::uint64_t received_bytes() const { return received_.total(); }
    std::uint64_t delivered_bytes() const { return delivered_bytes_; }
    std::uint64_t duplicate_bytes() const { return duplicate_bytes_; }
    /// In-order delivery point (ordered mode).
    std::uint64_t in_order_point() const { return received_.prefix_end(); }

    delivery_order order() const { return order_; }
    bool stream_length_known() const { return stream_length_known_; }
    std::uint64_t stream_length() const { return stream_length_; }
    /// All bytes of a finished stream received.
    bool complete() const;

    const interval_set& received() const { return received_; }

private:
    delivery_order order_;
    deliver_fn deliver_;
    interval_set received_;
    std::uint64_t delivered_bytes_ = 0;
    std::uint64_t duplicate_bytes_ = 0;
    std::uint64_t ordered_delivered_to_ = 0;
    bool stream_length_known_ = false;
    std::uint64_t stream_length_ = 0;
};

} // namespace vtp::sack
