// Retransmission queue + reliability policy.
//
// The paper's framework negotiates reliability per connection: none
// (pure TFRC streaming), full (QTPAF: every lost byte is retransmitted
// until delivered), or partial (QTPlight media mode: a loss is
// retransmitted only while it can still arrive before its message
// deadline — stale media is not worth a retransmission).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "sack/scoreboard.hpp"
#include "util/time.hpp"

namespace vtp::sack {

enum class reliability_mode : std::uint8_t {
    none = 0,
    full = 1,
    partial = 2,
};

struct reliability_policy {
    reliability_mode mode = reliability_mode::none;
    /// partial mode: retransmit only if deadline - now > margin (the
    /// expected one-way delivery delay, typically RTT/2 + jitter slack).
    util::sim_time partial_margin = util::milliseconds(0);
    /// Abandon a byte range after this many transmissions (0 = unlimited).
    std::uint32_t max_transmissions = 0;
};

class retransmit_queue {
public:
    /// Offer a lost range for retransmission (ignored in mode none).
    void push(const transmission_record& lost, const reliability_policy& policy);

    /// Next range worth retransmitting at `now`; expired entries are
    /// dropped and counted as abandoned.
    std::optional<transmission_record> pop(util::sim_time now,
                                           const reliability_policy& policy);

    bool empty() const { return queue_.empty(); }
    std::size_t pending() const { return queue_.size(); }
    /// Earliest deadline among queued ranges (util::time_never when none
    /// carries one); drives deadline-first scheduler promotion.
    util::sim_time earliest_deadline() const;
    /// Lowest byte offset among queued ranges (UINT64_MAX when empty);
    /// bounds how far the payload send buffer may be released.
    std::uint64_t min_pending_offset() const;
    std::uint64_t abandoned_ranges() const { return abandoned_ranges_; }
    std::uint64_t abandoned_bytes() const { return abandoned_bytes_; }
    std::uint64_t queued_ranges() const { return queued_ranges_; }

private:
    bool expired(const transmission_record& rec, util::sim_time now,
                 const reliability_policy& policy) const;

    std::deque<transmission_record> queue_;
    std::uint64_t abandoned_ranges_ = 0;
    std::uint64_t abandoned_bytes_ = 0;
    std::uint64_t queued_ranges_ = 0;
};

} // namespace vtp::sack
