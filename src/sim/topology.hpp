// Canonical experiment topologies.
//
// The dumbbell (n left hosts, n right hosts, one shared bottleneck) is
// the workhorse of every evaluation in the paper's lineage: TFRC
// friendliness, DiffServ bandwidth assurance, wireless loss. The builder
// owns the scheduler, nodes, links and hosts, and wires static routes.
//
//   left[0] ---\                      /--- right[0]
//   left[1] ----+-- RL ====bn==== RR +---- right[1]
//   ...        /                      \...
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/node.hpp"
#include "sim/queue.hpp"
#include "sim/scheduler.hpp"

namespace vtp::sim {

using queue_factory = std::function<std::unique_ptr<queue_discipline>()>;

struct dumbbell_config {
    std::size_t pairs = 2;

    double access_rate_bps = 100e6;
    sim_time access_delay = util::milliseconds(1);
    /// Optional per-pair access delay (left side), for RTT heterogeneity.
    std::vector<sim_time> per_pair_access_delay;

    double bottleneck_rate_bps = 10e6;
    sim_time bottleneck_delay = util::milliseconds(20);

    /// Queue for the congested (left->right) bottleneck direction; the
    /// default is a DropTail of `bottleneck_queue_packets` 1500B packets.
    queue_factory bottleneck_queue;
    std::size_t bottleneck_queue_packets = 50;

    /// Access queues; default DropTail deep enough never to drop.
    queue_factory access_queue;

    std::uint64_t seed = 1;
};

class dumbbell {
public:
    explicit dumbbell(dumbbell_config cfg);

    scheduler& sched() { return sched_; }

    std::size_t pairs() const { return cfg_.pairs; }
    host& left_host(std::size_t i) { return *left_hosts_.at(i); }
    host& right_host(std::size_t i) { return *right_hosts_.at(i); }
    std::uint32_t left_addr(std::size_t i) const { return static_cast<std::uint32_t>(i); }
    std::uint32_t right_addr(std::size_t i) const {
        return static_cast<std::uint32_t>(cfg_.pairs + i);
    }

    /// Congested direction (left -> right).
    link& forward_bottleneck() { return *bn_forward_; }
    /// Ack path (right -> left).
    link& reverse_bottleneck() { return *bn_reverse_; }

    node& left_router() { return *nodes_[router_left_index_]; }
    node& right_router() { return *nodes_[router_right_index_]; }
    node& left_node(std::size_t i) { return *nodes_.at(i); }
    node& right_node(std::size_t i) { return *nodes_.at(cfg_.pairs + i); }

    /// Pair i's access links (for interposing NATs or impairments on one
    /// endpoint's attachment rather than the shared bottleneck).
    link& left_uplink(std::size_t i) { return *links_.at(2 + 4 * i); }   ///< left[i] -> RL
    link& left_downlink(std::size_t i) { return *links_.at(3 + 4 * i); } ///< RL -> left[i]

    /// RTT (propagation only) for pair i.
    sim_time base_rtt(std::size_t i) const;

private:
    dumbbell_config cfg_;
    scheduler sched_;
    std::vector<std::unique_ptr<node>> nodes_;
    std::vector<std::unique_ptr<link>> links_;
    std::vector<std::unique_ptr<host>> left_hosts_;
    std::vector<std::unique_ptr<host>> right_hosts_;
    link* bn_forward_ = nullptr;
    link* bn_reverse_ = nullptr;
    std::size_t router_left_index_ = 0;
    std::size_t router_right_index_ = 0;
};

} // namespace vtp::sim
