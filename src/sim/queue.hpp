// Queue disciplines for simulated links.
//
// A queue discipline decides, per arriving packet, whether to accept or
// drop it, and hands packets back to the link in service order. DropTail
// and RED live here; the DiffServ RIO queue builds on sim/red.hpp and
// lives in src/diffserv.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "packet/segment.hpp"
#include "util/time.hpp"

namespace vtp::sim {

using util::sim_time;

/// Cumulative drop/acceptance counters every discipline maintains.
struct queue_stats {
    std::uint64_t enqueued_packets = 0;
    std::uint64_t enqueued_bytes = 0;
    std::uint64_t dropped_packets = 0;
    std::uint64_t dropped_bytes = 0;
    std::uint64_t dequeued_packets = 0;
    std::uint64_t dequeued_bytes = 0;

    double drop_ratio() const {
        const auto offered = enqueued_packets + dropped_packets;
        return offered == 0 ? 0.0 : static_cast<double>(dropped_packets) / offered;
    }
};

class queue_discipline {
public:
    virtual ~queue_discipline() = default;

    /// Offer a packet; returns true if accepted. Drops are counted.
    virtual bool enqueue(packet::packet pkt, sim_time now) = 0;

    /// Remove the next packet to serve, if any.
    virtual std::optional<packet::packet> dequeue(sim_time now) = 0;

    virtual std::size_t byte_length() const = 0;
    virtual std::size_t packet_length() const = 0;
    virtual std::string name() const = 0;

    const queue_stats& stats() const { return stats_; }

protected:
    void count_enqueue(const packet::packet& pkt) {
        ++stats_.enqueued_packets;
        stats_.enqueued_bytes += pkt.size_bytes;
    }
    void count_drop(const packet::packet& pkt) {
        ++stats_.dropped_packets;
        stats_.dropped_bytes += pkt.size_bytes;
    }
    void count_dequeue(const packet::packet& pkt) {
        ++stats_.dequeued_packets;
        stats_.dequeued_bytes += pkt.size_bytes;
    }

    queue_stats stats_;
};

/// FIFO with a byte-capacity limit (classic DropTail).
class drop_tail_queue : public queue_discipline {
public:
    explicit drop_tail_queue(std::size_t capacity_bytes);

    bool enqueue(packet::packet pkt, sim_time now) override;
    std::optional<packet::packet> dequeue(sim_time now) override;
    std::size_t byte_length() const override { return bytes_; }
    std::size_t packet_length() const override { return fifo_.size(); }
    std::string name() const override { return "droptail"; }

private:
    std::size_t capacity_bytes_;
    std::size_t bytes_ = 0;
    std::deque<packet::packet> fifo_;
};

/// Convenience: capacity expressed as a number of `packet_size`-byte
/// packets (how queue sizes are quoted in the literature).
std::unique_ptr<drop_tail_queue> make_drop_tail(std::size_t packets, std::size_t packet_size);

} // namespace vtp::sim
