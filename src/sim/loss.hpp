// Link-level loss models for wireless/multi-hop experiments.
//
// These model non-congestion loss (corruption, fading): the packet is
// dropped after it has been serviced by the queue, exactly as a corrupted
// frame would be discarded by the receiving NIC.
//
// RNG contract (scenario reproducibility): every model owns its own
// explicitly seeded `util::rng` and must never draw from a host or
// global generator — a model's decision sequence depends on its seed
// alone, regardless of what else the simulation samples in between.
// sim/impairment.hpp extends the same rule to per-stage forked streams;
// tests/sim_loss_test.cpp (loss_rng_isolation_test) locks it in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "packet/segment.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace vtp::sim {

class loss_model {
public:
    virtual ~loss_model() = default;
    /// Decide whether this transmission is lost.
    virtual bool should_drop(const packet::packet& pkt, util::sim_time now) = 0;
    virtual std::string name() const = 0;
};

/// No loss (default on every link).
class no_loss : public loss_model {
public:
    bool should_drop(const packet::packet&, util::sim_time) override { return false; }
    std::string name() const override { return "none"; }
};

/// Independent (Bernoulli) loss with fixed probability.
class bernoulli_loss : public loss_model {
public:
    bernoulli_loss(double probability, std::uint64_t seed);
    bool should_drop(const packet::packet& pkt, util::sim_time now) override;
    std::string name() const override { return "bernoulli"; }
    double probability() const { return probability_; }

private:
    double probability_;
    util::rng rng_;
};

/// Two-state Gilbert–Elliott bursty loss. State transitions are evaluated
/// per transmission; `loss_good`/`loss_bad` are the per-packet loss
/// probabilities within each state.
class gilbert_elliott_loss : public loss_model {
public:
    struct params {
        double p_good_to_bad = 0.01; ///< transition probability G->B per packet
        double p_bad_to_good = 0.3;  ///< transition probability B->G per packet
        double loss_good = 0.0;      ///< loss prob in Good state
        double loss_bad = 0.5;       ///< loss prob in Bad state
    };

    gilbert_elliott_loss(params p, std::uint64_t seed);
    bool should_drop(const packet::packet& pkt, util::sim_time now) override;
    std::string name() const override { return "gilbert-elliott"; }

    bool in_bad_state() const { return bad_; }
    /// Long-run average loss probability implied by the parameters.
    double steady_state_loss() const;

private:
    params params_;
    bool bad_ = false;
    util::rng rng_;
};

} // namespace vtp::sim
