// Multi-hop chain topology: src — r1 — r2 — … — rN — dst.
//
// Models the multi-hop ad hoc paths of the paper's §2 motivation: every
// hop is a (typically lossy, moderate-rate) link, so end-to-end loss
// compounds per hop and the RTT grows with hop count. Loss models can be
// installed per hop in both directions.
#pragma once

#include <memory>
#include <vector>

#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/node.hpp"
#include "sim/queue.hpp"
#include "sim/scheduler.hpp"

namespace vtp::sim {

struct chain_config {
    std::size_t hops = 3; ///< number of links end-to-end (>= 1)
    double link_rate_bps = 11e6;
    sim_time link_delay = util::milliseconds(4);
    /// Per-packet extra delay, uniform in [0, link_jitter], on every hop
    /// (wireless MAC contention; can reorder deliveries).
    sim_time link_jitter = 0;
    std::size_t queue_packets = 50;
    std::uint64_t seed = 1;
};

class chain {
public:
    explicit chain(chain_config cfg);

    scheduler& sched() { return sched_; }

    host& src_host() { return *src_host_; }
    host& dst_host() { return *dst_host_; }
    std::uint32_t src_addr() const { return 0; }
    std::uint32_t dst_addr() const { return static_cast<std::uint32_t>(cfg_.hops); }

    std::size_t hops() const { return cfg_.hops; }

    /// Forward-direction link of hop i (0-based, src side first).
    link& forward_link(std::size_t i) { return *forward_.at(i); }
    link& reverse_link(std::size_t i) { return *reverse_.at(i); }

    /// Install independent Bernoulli loss `p` on every forward hop
    /// (end-to-end survival probability = (1-p)^hops).
    void set_per_hop_loss(double p, std::uint64_t seed_base);

    /// Propagation-only RTT.
    sim_time base_rtt() const {
        return 2 * static_cast<sim_time>(cfg_.hops) * cfg_.link_delay;
    }

private:
    chain_config cfg_;
    scheduler sched_;
    std::vector<std::unique_ptr<node>> nodes_; ///< 0 = src, hops = dst
    std::vector<std::unique_ptr<link>> forward_;
    std::vector<std::unique_ptr<link>> reverse_;
    std::unique_ptr<host> src_host_;
    std::unique_ptr<host> dst_host_;
};

} // namespace vtp::sim
