#include "sim/red.hpp"

#include <algorithm>
#include <cmath>

namespace vtp::sim {

void red_state::update_average(double queue_bytes, util::sim_time now,
                               util::sim_time idle_since) {
    if (idle_since != util::time_never && queue_bytes <= 0.0) {
        // Queue idle: decay the average as if m small packets had been
        // serviced while it was empty (RFC 2309 / Floyd's idle fix).
        const double idle = static_cast<double>(now - idle_since);
        const double m = idle / static_cast<double>(params_.mean_packet_time);
        if (m > 0) avg_ *= std::pow(1.0 - params_.weight, std::min(m, 1e6));
    } else {
        avg_ = (1.0 - params_.weight) * avg_ + params_.weight * queue_bytes;
    }
}

bool red_state::should_drop(util::rng& rng) {
    if (avg_ < params_.min_th) {
        count_ = -1;
        return false;
    }

    double pb;
    if (avg_ < params_.max_th) {
        pb = params_.max_p * (avg_ - params_.min_th) / (params_.max_th - params_.min_th);
    } else if (params_.gentle && avg_ < 2.0 * params_.max_th) {
        pb = params_.max_p +
             (1.0 - params_.max_p) * (avg_ - params_.max_th) / params_.max_th;
    } else {
        count_ = 0;
        return true; // forced drop region
    }

    ++count_;
    double pa = pb;
    const double denom = 1.0 - static_cast<double>(count_) * pb;
    if (denom > 0.0)
        pa = pb / denom;
    else
        pa = 1.0;

    if (rng.bernoulli(pa)) {
        count_ = 0;
        return true;
    }
    return false;
}

red_queue::red_queue(red_params params, std::size_t capacity_bytes, std::uint64_t seed)
    : red_(params), capacity_bytes_(capacity_bytes), rng_(seed) {}

bool red_queue::enqueue(packet::packet pkt, sim_time now) {
    red_.update_average(static_cast<double>(bytes_), now,
                        fifo_.empty() ? idle_since_ : util::time_never);
    const bool early = red_.should_drop(rng_);
    const bool overflow = bytes_ + pkt.size_bytes > capacity_bytes_;
    if (early || overflow) {
        if (overflow)
            ++forced_drops_;
        else
            ++early_drops_;
        count_drop(pkt);
        return false;
    }
    pkt.enqueued_at = now;
    bytes_ += pkt.size_bytes;
    count_enqueue(pkt);
    fifo_.push_back(std::move(pkt));
    return true;
}

std::optional<packet::packet> red_queue::dequeue(sim_time now) {
    if (fifo_.empty()) return std::nullopt;
    packet::packet pkt = std::move(fifo_.front());
    fifo_.pop_front();
    bytes_ -= pkt.size_bytes;
    if (fifo_.empty()) idle_since_ = now;
    count_dequeue(pkt);
    return pkt;
}

red_params default_red_params(std::size_t capacity_packets, std::size_t packet_size) {
    red_params p;
    const double cap = static_cast<double>(capacity_packets * packet_size);
    p.min_th = 0.2 * cap;
    p.max_th = 0.6 * cap;
    p.max_p = 0.1;
    p.weight = 0.002;
    p.gentle = true;
    return p;
}

} // namespace vtp::sim
