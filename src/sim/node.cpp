#include "sim/node.hpp"

#include "sim/link.hpp"
#include "util/logging.hpp"

namespace vtp::sim {

void node::receive(packet::packet pkt) {
    if (filter_) filter_(pkt);
    if (pkt.dst == id_) {
        ++delivered_;
        if (delivery_) delivery_(std::move(pkt));
        return;
    }
    link* out = default_route_;
    if (auto it = routes_.find(pkt.dst); it != routes_.end()) out = it->second;
    if (out == nullptr) {
        ++routeless_drops_;
        util::log(util::log_level::warn, "node",
                  "node ", id_, " has no route for dst ", pkt.dst);
        return;
    }
    ++forwarded_;
    out->transmit(std::move(pkt));
}

} // namespace vtp::sim
