// A network node: static routing table plus optional local delivery.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "packet/segment.hpp"

namespace vtp::sim {

class link;

class node {
public:
    explicit node(std::uint32_t id) : id_(id) {}
    virtual ~node() = default;

    std::uint32_t id() const { return id_; }

    /// Route packets destined to `dst` out of `out`.
    void add_route(std::uint32_t dst, link* out) { routes_[dst] = out; }

    /// Fallback route when no specific entry matches.
    void set_default_route(link* out) { default_route_ = out; }

    /// Invoked for packets addressed to this node (host attach point).
    void set_delivery(std::function<void(packet::packet)> fn) { delivery_ = std::move(fn); }

    /// Ingress filter applied to every packet entering this node (local
    /// injections included) before routing; DiffServ edge conditioners
    /// install their marker here.
    void set_filter(std::function<void(packet::packet&)> fn) { filter_ = std::move(fn); }

    /// A packet arriving from a link (or locally injected): deliver it
    /// here if addressed to us, otherwise forward along the route.
    /// Virtual so impairment nodes (sim/impairment.hpp) can interpose on
    /// the datapath between a link and its destination.
    virtual void receive(packet::packet pkt);

    /// Entry point for locally originated packets.
    void inject(packet::packet pkt) { receive(std::move(pkt)); }

    std::uint64_t forwarded() const { return forwarded_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t routeless_drops() const { return routeless_drops_; }

private:
    std::uint32_t id_;
    std::unordered_map<std::uint32_t, link*> routes_;
    link* default_route_ = nullptr;
    std::function<void(packet::packet)> delivery_;
    std::function<void(packet::packet&)> filter_;
    std::uint64_t forwarded_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t routeless_drops_ = 0;
};

} // namespace vtp::sim
