#include "sim/topology.hpp"

namespace vtp::sim {

namespace {
constexpr std::size_t deep_queue_bytes = 64 * 1024 * 1024;
} // namespace

dumbbell::dumbbell(dumbbell_config cfg) : cfg_(std::move(cfg)) {
    const std::size_t n = cfg_.pairs;

    auto make_access_queue = [this]() -> std::unique_ptr<queue_discipline> {
        if (cfg_.access_queue) return cfg_.access_queue();
        return std::make_unique<drop_tail_queue>(deep_queue_bytes);
    };
    auto make_bottleneck_queue = [this]() -> std::unique_ptr<queue_discipline> {
        if (cfg_.bottleneck_queue) return cfg_.bottleneck_queue();
        return make_drop_tail(cfg_.bottleneck_queue_packets, 1500);
    };

    // Nodes: left 0..n-1, right n..2n-1, routers 2n and 2n+1.
    nodes_.reserve(2 * n + 2);
    for (std::size_t i = 0; i < 2 * n + 2; ++i)
        nodes_.push_back(std::make_unique<node>(static_cast<std::uint32_t>(i)));
    router_left_index_ = 2 * n;
    router_right_index_ = 2 * n + 1;

    node& rl = *nodes_[router_left_index_];
    node& rr = *nodes_[router_right_index_];

    auto pair_access_delay = [this](std::size_t i) {
        if (i < cfg_.per_pair_access_delay.size()) return cfg_.per_pair_access_delay[i];
        return cfg_.access_delay;
    };

    // Bottleneck links.
    {
        link::config bn{cfg_.bottleneck_rate_bps, cfg_.bottleneck_delay};
        auto fwd = std::make_unique<link>(sched_, bn, make_bottleneck_queue());
        fwd->set_destination(&rr);
        bn_forward_ = fwd.get();
        links_.push_back(std::move(fwd));

        auto rev = std::make_unique<link>(sched_, bn, make_access_queue());
        rev->set_destination(&rl);
        bn_reverse_ = rev.get();
        links_.push_back(std::move(rev));
    }
    rl.set_default_route(bn_forward_);
    rr.set_default_route(bn_reverse_);

    // Access links + hosts.
    for (std::size_t i = 0; i < n; ++i) {
        node& left = *nodes_[i];
        node& right = *nodes_[n + i];
        const link::config access_left{cfg_.access_rate_bps, pair_access_delay(i)};
        const link::config access_right{cfg_.access_rate_bps, cfg_.access_delay};

        auto up_l = std::make_unique<link>(sched_, access_left, make_access_queue());
        up_l->set_destination(&rl);
        left.set_default_route(up_l.get());
        links_.push_back(std::move(up_l));

        auto down_l = std::make_unique<link>(sched_, access_left, make_access_queue());
        down_l->set_destination(&left);
        rl.add_route(left.id(), down_l.get());
        links_.push_back(std::move(down_l));

        auto up_r = std::make_unique<link>(sched_, access_right, make_access_queue());
        up_r->set_destination(&rr);
        right.set_default_route(up_r.get());
        links_.push_back(std::move(up_r));

        auto down_r = std::make_unique<link>(sched_, access_right, make_access_queue());
        down_r->set_destination(&right);
        links_.push_back(std::move(down_r));
        rr.add_route(right.id(), links_.back().get());

        left_hosts_.push_back(
            std::make_unique<host>(sched_, left, cfg_.seed * 1000003ULL + i * 2));
        right_hosts_.push_back(
            std::make_unique<host>(sched_, right, cfg_.seed * 1000003ULL + i * 2 + 1));
    }
}

sim_time dumbbell::base_rtt(std::size_t i) const {
    const sim_time access = i < cfg_.per_pair_access_delay.size()
                                ? cfg_.per_pair_access_delay[i]
                                : cfg_.access_delay;
    // left access + bottleneck + right access, both directions.
    return 2 * (access + cfg_.bottleneck_delay + cfg_.access_delay);
}

} // namespace vtp::sim
