// Unidirectional link: rate-limited serialization, propagation delay,
// a queue discipline and an optional loss model.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/loss.hpp"
#include "sim/queue.hpp"
#include "sim/scheduler.hpp"

namespace vtp::sim {

class node;

class link {
public:
    struct config {
        double rate_bps = 10e6;
        sim_time propagation_delay = util::milliseconds(10);
        /// Extra per-packet delay, uniform in [0, jitter]. Nonzero jitter
        /// can reorder deliveries (wireless/multi-path realism); the
        /// transports' reorder tolerance is what copes with it.
        sim_time jitter = 0;
        std::uint64_t jitter_seed = 1;
    };

    link(scheduler& sched, config cfg, std::unique_ptr<queue_discipline> queue);

    /// The node packets arrive at after traversing this link.
    void set_destination(node* destination) { destination_ = destination; }

    /// Install a loss model (applied post-service, i.e. on the wire).
    void set_loss_model(std::unique_ptr<loss_model> model) { loss_ = std::move(model); }

    /// Runtime reconfiguration (handover support, sim/handover.hpp): the
    /// new rate/delay apply from the next packet serviced; a transmission
    /// already in service completes under the old parameters, exactly as
    /// a radio handover would leave the in-flight frame on the old link.
    void set_rate(double bps);
    void set_propagation_delay(sim_time delay) { cfg_.propagation_delay = delay; }

    /// Offer a packet for transmission (may be dropped by the queue).
    void transmit(packet::packet pkt);

    queue_discipline& queue() { return *queue_; }
    const queue_discipline& queue() const { return *queue_; }
    const config& cfg() const { return cfg_; }

    std::uint64_t delivered_packets() const { return delivered_packets_; }
    std::uint64_t delivered_bytes() const { return delivered_bytes_; }
    std::uint64_t wire_losses() const { return wire_losses_; }

    /// Utilisation: busy time / elapsed time since creation.
    double utilisation(sim_time now) const;

private:
    void start_service();
    void finish_service(packet::packet pkt);
    sim_time service_time(const packet::packet& pkt) const;

    scheduler& sched_;
    config cfg_;
    std::unique_ptr<queue_discipline> queue_;
    std::unique_ptr<loss_model> loss_;
    util::rng jitter_rng_;
    node* destination_ = nullptr;
    bool busy_ = false;
    sim_time busy_accum_ = 0;
    std::uint64_t delivered_packets_ = 0;
    std::uint64_t delivered_bytes_ = 0;
    std::uint64_t wire_losses_ = 0;
};

} // namespace vtp::sim
