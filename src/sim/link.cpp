#include "sim/link.hpp"

#include <cassert>
#include <cmath>

#include "sim/node.hpp"

namespace vtp::sim {

link::link(scheduler& sched, config cfg, std::unique_ptr<queue_discipline> queue)
    : sched_(sched),
      cfg_(cfg),
      queue_(std::move(queue)),
      loss_(std::make_unique<no_loss>()),
      jitter_rng_(cfg.jitter_seed) {
    assert(cfg_.rate_bps > 0);
}

void link::set_rate(double bps) {
    assert(bps > 0);
    cfg_.rate_bps = bps;
}

sim_time link::service_time(const packet::packet& pkt) const {
    const double seconds = static_cast<double>(pkt.size_bytes) * 8.0 / cfg_.rate_bps;
    return util::from_seconds(seconds);
}

void link::transmit(packet::packet pkt) {
    if (!queue_->enqueue(std::move(pkt), sched_.now())) return; // queue counted the drop
    if (!busy_) start_service();
}

void link::start_service() {
    auto next = queue_->dequeue(sched_.now());
    if (!next) {
        busy_ = false;
        return;
    }
    busy_ = true;
    const sim_time tx = service_time(*next);
    busy_accum_ += tx;
    sched_.after(tx, [this, pkt = std::move(*next)]() mutable { finish_service(std::move(pkt)); });
}

void link::finish_service(packet::packet pkt) {
    if (loss_->should_drop(pkt, sched_.now())) {
        ++wire_losses_;
    } else {
        ++delivered_packets_;
        delivered_bytes_ += pkt.size_bytes;
        if (destination_ != nullptr) {
            sim_time delay = cfg_.propagation_delay;
            if (cfg_.jitter > 0)
                delay += jitter_rng_.uniform_int(0, cfg_.jitter);
            sched_.after(delay, [dst = destination_, pkt = std::move(pkt)]() mutable {
                dst->receive(std::move(pkt));
            });
        }
    }
    start_service();
}

double link::utilisation(sim_time now) const {
    if (now <= 0) return 0.0;
    return static_cast<double>(busy_accum_) / static_cast<double>(now);
}

} // namespace vtp::sim
