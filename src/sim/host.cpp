#include "sim/host.hpp"

#include "util/logging.hpp"

namespace vtp::sim {

host::host(scheduler& sched, node& n, std::uint64_t rng_seed)
    : sched_(sched), node_(n), rng_(rng_seed) {
    node_.set_delivery([this](packet::packet pkt) { deliver(std::move(pkt)); });
}

void host::attach_erased(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a) {
    qtp::agent* raw = a.get();
    agents_[flow_id] = std::move(a);
    raw->start(*this);
}

void host::detach(std::uint32_t flow_id) { agents_.erase(flow_id); }

void host::add_observer(std::function<void(const packet::packet&)> fn) {
    observers_.push_back(std::move(fn));
}

void host::attach_alias(node& alias) {
    alias.set_delivery([this](packet::packet pkt) { deliver(std::move(pkt)); });
}

qtp::timer_id host::schedule(util::sim_time delay, std::function<void()> fn) {
    return sched_.after(delay, std::move(fn));
}

void host::cancel(qtp::timer_id id) { sched_.cancel(id); }

void host::send(packet::packet pkt) {
    pkt.src = node_.id();
    pkt.sent_at = sched_.now();
    ++sent_packets_;
    node_.inject(std::move(pkt));
}

void host::deliver(packet::packet pkt) {
    ++received_packets_;
    for (const auto& obs : observers_) obs(pkt);
    auto it = agents_.find(pkt.flow_id);
    if (it == agents_.end()) {
        if (default_agent_ != nullptr) {
            default_agent_->on_packet(pkt);
            return;
        }
        ++undeliverable_;
        util::log(util::log_level::debug, "host",
                  "node ", node_.id(), ": no agent for flow ", pkt.flow_id);
        return;
    }
    it->second->on_packet(pkt);
}

} // namespace vtp::sim
