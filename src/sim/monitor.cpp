#include "sim/monitor.hpp"

namespace vtp::sim {

periodic_sampler::periodic_sampler(scheduler& sched, sim_time interval,
                                   std::function<double()> probe)
    : sched_(sched), interval_(interval), probe_(std::move(probe)) {}

void periodic_sampler::begin() {
    if (running_) return;
    running_ = true;
    sched_.after(interval_, [this] { tick(); });
}

void periodic_sampler::tick() {
    if (!running_) return;
    series_.add(probe_());
    sched_.after(interval_, [this] { tick(); });
}

void flow_accounting::on_bytes(std::uint32_t flow_id, std::size_t bytes) {
    entry& e = flows_[flow_id];
    e.bytes += bytes;
    ++e.packets;
}

std::uint64_t flow_accounting::bytes(std::uint32_t flow_id) const {
    auto it = flows_.find(flow_id);
    return it == flows_.end() ? 0 : it->second.bytes;
}

std::uint64_t flow_accounting::packets(std::uint32_t flow_id) const {
    auto it = flows_.find(flow_id);
    return it == flows_.end() ? 0 : it->second.packets;
}

void flow_accounting::snapshot(std::uint32_t flow_id) {
    entry& e = flows_[flow_id];
    e.snapshot_bytes = e.bytes;
}

double flow_accounting::delta_bits_per_second(std::uint32_t flow_id, sim_time t0,
                                              sim_time t1) const {
    auto it = flows_.find(flow_id);
    if (it == flows_.end() || t1 <= t0) return 0.0;
    const double delta_bytes =
        static_cast<double>(it->second.bytes - it->second.snapshot_bytes);
    return delta_bytes * 8.0 / util::to_seconds(t1 - t0);
}

double flow_accounting::mean_bits_per_second(std::uint32_t flow_id, sim_time duration) const {
    if (duration <= 0) return 0.0;
    return static_cast<double>(bytes(flow_id)) * 8.0 / util::to_seconds(duration);
}

} // namespace vtp::sim
