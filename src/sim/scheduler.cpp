#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace vtp::sim {

scheduler::event_id scheduler::at(sim_time t, callback fn) {
    assert(t >= now_ && "cannot schedule in the past");
    const event_id id = next_id_++;
    queue_.push(event{t < now_ ? now_ : t, id, std::move(fn)});
    queued_ids_.insert(id);
    return id;
}

scheduler::event_id scheduler::after(sim_time delay, callback fn) {
    return at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void scheduler::cancel(event_id id) {
    // Cancelling an already-fired or unknown id must be a no-op.
    if (queued_ids_.count(id) != 0) cancelled_.insert(id);
}

bool scheduler::step() {
    while (!queue_.empty()) {
        event ev = queue_.top();
        queue_.pop();
        queued_ids_.erase(ev.id);
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = ev.at;
        ++executed_;
        ev.fn();
        return true;
    }
    return false;
}

void scheduler::run(std::uint64_t limit) {
    for (std::uint64_t i = 0; i < limit && step(); ++i) {
    }
}

void scheduler::run_until(sim_time t) {
    while (!queue_.empty()) {
        if (queue_.top().at > t) break;
        event ev = queue_.top();
        queue_.pop();
        queued_ids_.erase(ev.id);
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = ev.at;
        ++executed_;
        ev.fn();
    }
    if (now_ < t) now_ = t;
}

} // namespace vtp::sim
