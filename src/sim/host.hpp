// Simulator-side implementation of the transport environment.
//
// A host sits on an endpoint node, owns the transport agents terminating
// there, dispatches arriving packets to them by flow id, and provides the
// clock/timer/send/random services of qtp::environment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/environment.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace vtp::sim {

class host : public qtp::environment {
public:
    host(scheduler& sched, node& n, std::uint64_t rng_seed);

    /// Attach an agent terminating `flow_id` on this host; starts it.
    /// The host owns the agent.
    template <typename agent_type>
    agent_type* attach(std::uint32_t flow_id, std::unique_ptr<agent_type> a) {
        agent_type* raw = a.get();
        attach_erased(flow_id, std::move(a));
        return raw;
    }

    void detach(std::uint32_t flow_id);

    /// Packets for flows with no attached agent go here (listener hook).
    void set_default_agent(qtp::agent* a) override { default_agent_ = a; }

    /// Observe every packet delivered to this host (monitoring taps;
    /// called before agent dispatch).
    void add_observer(std::function<void(const packet::packet&)> fn);

    /// Multi-homing: also accept packets delivered at `alias` (a second
    /// node, reached over its own links) into this host's flow demux.
    /// Models a dual-homed endpoint — one transport terminus, two
    /// network attachment points — for the multipath scenarios. The
    /// alias node must outlive the host's packet flow.
    void attach_alias(node& alias);

    // --- qtp::environment ---
    util::sim_time now() const override { return sched_.now(); }
    qtp::timer_id schedule(util::sim_time delay, std::function<void()> fn) override;
    void cancel(qtp::timer_id id) override;
    void send(packet::packet pkt) override;
    std::uint32_t local_addr() const override { return node_.id(); }
    util::rng& random() override { return rng_; }
    void attach_dynamic(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a) override {
        attach_erased(flow_id, std::move(a));
    }
    void detach_dynamic(std::uint32_t flow_id) override { detach(flow_id); }

    std::uint64_t sent_packets() const { return sent_packets_; }
    std::uint64_t received_packets() const { return received_packets_; }
    std::uint64_t undeliverable_packets() const { return undeliverable_; }

private:
    void attach_erased(std::uint32_t flow_id, std::unique_ptr<qtp::agent> a);
    void deliver(packet::packet pkt);

    scheduler& sched_;
    node& node_;
    util::rng rng_;
    qtp::agent* default_agent_ = nullptr;
    std::unordered_map<std::uint32_t, std::unique_ptr<qtp::agent>> agents_;
    std::vector<std::function<void(const packet::packet&)>> observers_;
    std::uint64_t sent_packets_ = 0;
    std::uint64_t received_packets_ = 0;
    std::uint64_t undeliverable_ = 0;
};

} // namespace vtp::sim
