// Mid-flow link handover: drive a link through rate/delay/loss regimes.
//
// Models a mobile endpoint switching between access links (WLAN -> 3G,
// ethernet -> wireless): at each phase boundary the link's service rate,
// propagation delay and loss regime all change at once, while packets in
// flight complete under the old parameters. The transport on top is what
// has to cope — RTT spikes, rate cliffs, sudden burst loss — without
// tearing the connection down (the paper's versatility claim).
//
// A `handover_link` is a controller over existing sim::link objects (the
// forward direction, and optionally the reverse so the ack path follows
// the same radio), not a link itself: topology wiring stays untouched.
// Phases are applied by scheduler events, so two runs with the same seed
// hand over at identical instants.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/link.hpp"
#include "sim/scheduler.hpp"

namespace vtp::sim {

struct handover_phase {
    sim_time at = 0;             ///< absolute switch time
    double rate_bps = 0.0;       ///< 0 keeps the current rate
    sim_time delay = 0;          ///< 0 keeps the current propagation delay
    bool replace_loss = false;   ///< install (or clear) the loss model below
    /// New loss regime for this phase; null with replace_loss clears loss.
    /// A factory (not a model) so forward and reverse get independent
    /// instances with their own RNG state.
    std::function<std::unique_ptr<loss_model>()> loss;
};

class handover_link {
public:
    /// `reverse` may be null (impair only the data direction).
    handover_link(scheduler& sched, link& forward, link* reverse = nullptr)
        : sched_(sched), forward_(forward), reverse_(reverse) {}

    void add_phase(handover_phase p) { phases_.push_back(std::move(p)); }

    /// Schedule every phase; call once after all add_phase() calls.
    void start();

    std::uint32_t handovers() const { return handovers_; }

private:
    void apply(const handover_phase& p);

    scheduler& sched_;
    link& forward_;
    link* reverse_;
    std::vector<handover_phase> phases_;
    std::uint32_t handovers_ = 0;
};

} // namespace vtp::sim
