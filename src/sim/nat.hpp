// Address-rewriting NAT for deterministic migration scenarios.
//
// Sits on an endpoint's access links (both directions) and models the
// event that kills a classical transport session: the endpoint's public
// address changes mid-flow. Before activation the NAT is a transparent
// wire. After `activate()` (typically fired by a scheduler event at the
// spec's rebind time):
//
//   outbound  packets whose src is the internal address leave with
//             src = external (the rebound public mapping)
//   inbound   packets addressed to the external address are rewritten
//             to the internal one and handed to the inside hop, so the
//             endpoint keeps receiving without learning anything changed
//
// Inbound translation is installed from construction (the external
// address simply attracts no traffic until the peer discovers it), so
// activation is one boolean flip — exactly the instant a real NAT drops
// and re-creates a UDP mapping. The transport on top must detect the new
// 4-tuple, validate it (path_challenge/path_response) and re-point its
// reply path; the NAT itself stays dumb.
//
// Wiring (see testing/scenario_runner.cpp):
//   uplink.set_destination(&nat);   nat.set_outside(&router);
//   downlink.set_destination(&nat); nat.set_inside(&endpoint_node);
//   router.add_route(external, &downlink);
#pragma once

#include <cstdint>

#include "sim/node.hpp"

namespace vtp::sim {

class nat_node : public node {
public:
    /// `id` must not collide with routed node ids (the NAT is transparent
    /// and never delivers locally). `internal` is the endpoint's real
    /// address, `external` the post-rebind public one.
    nat_node(std::uint32_t id, std::uint32_t internal, std::uint32_t external)
        : node(id), internal_(internal), external_(external) {}

    void set_inside(node* n) { inside_ = n; }
    void set_outside(node* n) { outside_ = n; }

    /// Flip the mapping: outbound packets now carry the external source.
    void activate() { active_ = true; }
    bool active() const { return active_; }

    void receive(packet::packet pkt) override;

    std::uint64_t translated_out() const { return translated_out_; }
    std::uint64_t translated_in() const { return translated_in_; }

private:
    std::uint32_t internal_;
    std::uint32_t external_;
    node* inside_ = nullptr;
    node* outside_ = nullptr;
    bool active_ = false;
    std::uint64_t translated_out_ = 0;
    std::uint64_t translated_in_ = 0;
};

} // namespace vtp::sim
