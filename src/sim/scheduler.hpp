// Discrete-event scheduler.
//
// Events execute in (time, insertion-order) order, which makes every
// simulation deterministic: two runs with the same seed produce the same
// event trace bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace vtp::sim {

using util::sim_time;

class scheduler {
public:
    using callback = std::function<void()>;
    using event_id = std::uint64_t;

    /// Current simulation time. Starts at 0.
    sim_time now() const { return now_; }

    /// Schedule `fn` at absolute time `t` (>= now). Returns a cancellable id.
    event_id at(sim_time t, callback fn);

    /// Schedule `fn` after `delay` (>= 0) from now.
    event_id after(sim_time delay, callback fn);

    /// Cancel a pending event. Cancelling an already-fired or unknown id
    /// is a harmless no-op.
    void cancel(event_id id);

    /// Execute a single event; returns false when the queue is empty.
    bool step();

    /// Run until the queue is empty or `limit` events executed.
    void run(std::uint64_t limit = UINT64_MAX);

    /// Run all events with time <= t, then set now() = t.
    void run_until(sim_time t);

    std::size_t pending() const { return queue_.size() - cancelled_.size(); }
    std::uint64_t executed() const { return executed_; }

private:
    struct event {
        sim_time at;
        event_id id;
        callback fn;
    };
    struct later {
        bool operator()(const event& a, const event& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.id > b.id; // same-time events fire in insertion order
        }
    };

    sim_time now_ = 0;
    event_id next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<event, std::vector<event>, later> queue_;
    std::unordered_set<event_id> queued_ids_; ///< ids still in the queue
    std::unordered_set<event_id> cancelled_;
};

} // namespace vtp::sim
