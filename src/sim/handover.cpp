#include "sim/handover.hpp"

namespace vtp::sim {

void handover_link::start() {
    for (const auto& p : phases_) {
        // By value: a later add_phase() may reallocate phases_ under a
        // captured reference.
        sched_.at(p.at, [this, phase = p] { apply(phase); });
    }
}

void handover_link::apply(const handover_phase& p) {
    ++handovers_;
    if (p.rate_bps > 0) {
        forward_.set_rate(p.rate_bps);
        if (reverse_ != nullptr) reverse_->set_rate(p.rate_bps);
    }
    if (p.delay > 0) {
        forward_.set_propagation_delay(p.delay);
        if (reverse_ != nullptr) reverse_->set_propagation_delay(p.delay);
    }
    if (p.replace_loss) {
        forward_.set_loss_model(p.loss ? p.loss() : std::make_unique<no_loss>());
        if (reverse_ != nullptr)
            reverse_->set_loss_model(p.loss ? p.loss() : std::make_unique<no_loss>());
    }
}

} // namespace vtp::sim
