// Measurement instruments: periodic samplers and per-flow accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/scheduler.hpp"
#include "util/stats.hpp"

namespace vtp::sim {

/// Samples `probe()` every `interval` and records the series; used for
/// throughput/queue-occupancy traces (e.g. the smoothness figure E2).
class periodic_sampler {
public:
    periodic_sampler(scheduler& sched, sim_time interval, std::function<double()> probe);

    /// Begin sampling at now()+interval; safe to call once.
    void begin();
    void stop() { running_ = false; }

    const util::sample_series& series() const { return series_; }
    sim_time interval() const { return interval_; }

private:
    void tick();

    scheduler& sched_;
    sim_time interval_;
    std::function<double()> probe_;
    util::sample_series series_;
    bool running_ = false;
};

/// Byte/packet accounting per flow with interval-based throughput.
class flow_accounting {
public:
    void on_bytes(std::uint32_t flow_id, std::size_t bytes);

    std::uint64_t bytes(std::uint32_t flow_id) const;
    std::uint64_t packets(std::uint32_t flow_id) const;

    /// Mean application throughput in bit/s over [t0, t1], based on the
    /// byte counter delta recorded by snapshot()/delta_bits_per_second.
    void snapshot(std::uint32_t flow_id);
    double delta_bits_per_second(std::uint32_t flow_id, sim_time t0, sim_time t1) const;

    /// Total throughput over the whole run.
    double mean_bits_per_second(std::uint32_t flow_id, sim_time duration) const;

private:
    struct entry {
        std::uint64_t bytes = 0;
        std::uint64_t packets = 0;
        std::uint64_t snapshot_bytes = 0;
    };
    std::unordered_map<std::uint32_t, entry> flows_;
};

} // namespace vtp::sim
