// Random Early Detection (Floyd & Jacobson 1993), with the "gentle"
// variant, factored so the DiffServ RIO queue can reuse the estimator.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "sim/queue.hpp"
#include "util/rng.hpp"

namespace vtp::sim {

/// Parameters of one RED drop profile. Thresholds are in bytes.
struct red_params {
    double min_th = 0;         ///< below: never drop
    double max_th = 0;         ///< above: drop with prob 1 (or gentle ramp)
    double max_p = 0.1;        ///< drop probability at max_th
    double weight = 0.002;     ///< EWMA weight w_q
    bool gentle = true;        ///< ramp max_p..1 over [max_th, 2*max_th]
    util::sim_time mean_packet_time = util::microseconds(120); ///< idle-decay granularity
};

/// The reusable estimator/dropper: maintains the EWMA of a queue length
/// and answers "should this arrival be dropped?".
class red_state {
public:
    explicit red_state(red_params params) : params_(params) {}

    /// Update the average for an arrival seeing instantaneous length
    /// `queue_bytes`; `idle_since` is the time the (physical) queue went
    /// empty, or time_never if it is busy.
    void update_average(double queue_bytes, util::sim_time now, util::sim_time idle_since);

    /// Early-drop decision for one arrival (call after update_average).
    bool should_drop(util::rng& rng);

    double average() const { return avg_; }
    const red_params& params() const { return params_; }

private:
    red_params params_;
    double avg_ = 0.0;
    std::int64_t count_ = -1; ///< packets since last drop, -1 = below min_th
};

/// Single-profile RED queue discipline with a hard byte capacity.
class red_queue : public queue_discipline {
public:
    red_queue(red_params params, std::size_t capacity_bytes, std::uint64_t seed);

    bool enqueue(packet::packet pkt, sim_time now) override;
    std::optional<packet::packet> dequeue(sim_time now) override;
    std::size_t byte_length() const override { return bytes_; }
    std::size_t packet_length() const override { return fifo_.size(); }
    std::string name() const override { return "red"; }

    double average() const { return red_.average(); }
    std::uint64_t early_drops() const { return early_drops_; }
    std::uint64_t forced_drops() const { return forced_drops_; }

private:
    red_state red_;
    std::size_t capacity_bytes_;
    std::size_t bytes_ = 0;
    std::deque<packet::packet> fifo_;
    util::rng rng_;
    util::sim_time idle_since_ = 0; ///< queue empty since t=0
    std::uint64_t early_drops_ = 0;
    std::uint64_t forced_drops_ = 0;
};

/// Conventional RED configuration for a bottleneck of `capacity_packets`
/// packets of `packet_size` bytes: min_th = 20%, max_th = 60% of capacity.
red_params default_red_params(std::size_t capacity_packets, std::size_t packet_size);

} // namespace vtp::sim
