#include "sim/queue.hpp"

namespace vtp::sim {

drop_tail_queue::drop_tail_queue(std::size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

bool drop_tail_queue::enqueue(packet::packet pkt, sim_time now) {
    if (bytes_ + pkt.size_bytes > capacity_bytes_) {
        count_drop(pkt);
        return false;
    }
    pkt.enqueued_at = now;
    bytes_ += pkt.size_bytes;
    count_enqueue(pkt);
    fifo_.push_back(std::move(pkt));
    return true;
}

std::optional<packet::packet> drop_tail_queue::dequeue(sim_time) {
    if (fifo_.empty()) return std::nullopt;
    packet::packet pkt = std::move(fifo_.front());
    fifo_.pop_front();
    bytes_ -= pkt.size_bytes;
    count_dequeue(pkt);
    return pkt;
}

std::unique_ptr<drop_tail_queue> make_drop_tail(std::size_t packets, std::size_t packet_size) {
    return std::make_unique<drop_tail_queue>(packets * packet_size);
}

} // namespace vtp::sim
