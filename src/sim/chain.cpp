#include "sim/chain.hpp"

#include <cassert>

#include "sim/loss.hpp"

namespace vtp::sim {

chain::chain(chain_config cfg) : cfg_(cfg) {
    assert(cfg_.hops >= 1);
    const std::size_t n_nodes = cfg_.hops + 1;
    nodes_.reserve(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i)
        nodes_.push_back(std::make_unique<node>(static_cast<std::uint32_t>(i)));

    for (std::size_t i = 0; i < cfg_.hops; ++i) {
        link::config hop_cfg{cfg_.link_rate_bps, cfg_.link_delay,
                             cfg_.link_jitter, cfg_.seed * 101 + i};
        auto fwd = std::make_unique<link>(
            sched_, hop_cfg, make_drop_tail(cfg_.queue_packets, 1500));
        fwd->set_destination(nodes_[i + 1].get());
        forward_.push_back(std::move(fwd));

        hop_cfg.jitter_seed = cfg_.seed * 101 + 50 + i;
        auto rev = std::make_unique<link>(
            sched_, hop_cfg, make_drop_tail(cfg_.queue_packets, 1500));
        rev->set_destination(nodes_[i].get());
        reverse_.push_back(std::move(rev));
    }

    // Static routing: downstream packets (dst id > node id) go forward,
    // everything else goes back toward the source.
    for (std::size_t i = 0; i < n_nodes; ++i) {
        for (std::size_t target = 0; target < n_nodes; ++target) {
            if (target == i) continue;
            if (target > i)
                nodes_[i]->add_route(static_cast<std::uint32_t>(target),
                                     forward_[i].get());
            else
                nodes_[i]->add_route(static_cast<std::uint32_t>(target),
                                     reverse_[i - 1].get());
        }
    }

    src_host_ = std::make_unique<host>(sched_, *nodes_.front(), cfg_.seed * 31 + 1);
    dst_host_ = std::make_unique<host>(sched_, *nodes_.back(), cfg_.seed * 31 + 2);
}

void chain::set_per_hop_loss(double p, std::uint64_t seed_base) {
    for (std::size_t i = 0; i < forward_.size(); ++i) {
        forward_[i]->set_loss_model(
            std::make_unique<bernoulli_loss>(p, seed_base + i));
    }
}

} // namespace vtp::sim
