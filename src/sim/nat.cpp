#include "sim/nat.hpp"

namespace vtp::sim {

void nat_node::receive(packet::packet pkt) {
    // Inbound: anything addressed to either face of the mapping goes to
    // the inside hop; only the external face needs rewriting.
    if (pkt.dst == internal_ || pkt.dst == external_) {
        if (pkt.dst == external_) {
            pkt.dst = internal_;
            ++translated_in_;
        }
        if (inside_ != nullptr) inside_->receive(std::move(pkt));
        return;
    }
    // Outbound: once active, the endpoint's packets leave under the
    // rebound public address.
    if (active_ && pkt.src == internal_) {
        pkt.src = external_;
        ++translated_out_;
    }
    if (outside_ != nullptr) outside_->receive(std::move(pkt));
}

} // namespace vtp::sim
