// Adversarial network impairments beyond plain loss.
//
// The existing datapath can only *drop* packets (bernoulli/Gilbert–
// Elliott loss on links, RED/RIO in queues). Real paths also reorder,
// duplicate and corrupt — the behaviours that break transports (see the
// reordering/partial-delivery corner cases catalogued by the transport
// survey literature). An `impairment_node` interposes between a link and
// its destination node and applies, per packet and in this order:
//
//   1. loss      — any sim::loss_model (Gilbert–Elliott for burst loss)
//   2. corrupt   — encode the segment with the *real* wire codec
//                  (packet/wire.hpp), flip random bits, decode. The
//                  decode exercises the codec against every mutant (it
//                  must reject or survive, never crash or hang); whether
//                  a decoder-accepted mutant is then forwarded into the
//                  transport or dropped as a checksum casualty is the
//                  `deliver_mutants` policy (see corrupt_params).
//   3. duplicate — forward an extra copy (optionally delayed)
//   4. reorder   — hold the packet back by a random extra delay, letting
//                  later packets overtake it
//
// Determinism: every stage draws from its own forked child of the node's
// seed RNG, so enabling one impairment never perturbs another stage's
// random stream, and two runs with the same seed produce bit-identical
// impairment decisions (the reproducibility contract scenario tests rely
// on). No stage ever touches a host or global RNG.
//
// Wiring (see testing/scenario_runner.cpp):
//   link.set_destination(&imp);   // imp forwards to the real next hop
//   imp.set_downstream(&router);
#pragma once

#include <cstdint>
#include <memory>

#include "sim/loss.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace vtp::sim {

class impairment_node : public node {
public:
    struct reorder_params {
        double probability = 0.0; ///< chance a packet is held back
        sim_time min_delay = 0;   ///< extra delay, uniform in [min, max]
        sim_time max_delay = 0;
    };
    struct duplicate_params {
        double probability = 0.0; ///< chance a packet is cloned
        sim_time copy_delay = 0;  ///< extra delay on the clone
    };
    struct corrupt_params {
        double probability = 0.0; ///< chance a packet's header is mutated
        int max_bit_flips = 4;    ///< 1..max flips per corrupted packet
        /// Every corrupted packet is run through the real wire decoder
        /// (crash/hang net for the codec). By default the packet is then
        /// dropped either way — modelling the UDP/link-layer checksum
        /// that discards corrupted datagrams before the transport sees
        /// them. Setting `deliver_mutants` forwards decoder-*accepted*
        /// mutants into the transport instead: the uTCP-style adversarial
        /// mode. Without wire-level integrity protection a mutated
        /// seq/offset can defeat full-reliability byte-exactness (phantom
        /// acks) and poison the TFRC feedback loop, so scenarios using it
        /// assert liveness, not byte-exactness.
        bool deliver_mutants = false;
    };

    /// `id` must not collide with routed node ids; impairment nodes are
    /// transparent (they forward everything to `downstream`, never
    /// deliver locally). All randomness derives from `seed`.
    impairment_node(std::uint32_t id, scheduler& sched, std::uint64_t seed);

    /// The real next hop packets continue to after impairment.
    void set_downstream(node* n) { downstream_ = n; }

    /// Install a drop model (e.g. gilbert_elliott_loss for burst loss).
    void set_loss_model(std::unique_ptr<loss_model> model) { loss_ = std::move(model); }
    void set_reorder(reorder_params p) { reorder_ = p; }
    void set_duplicate(duplicate_params p) { duplicate_ = p; }
    void set_corrupt(corrupt_params p) { corrupt_ = p; }

    /// Impair only within [start, stop); outside the window packets pass
    /// through untouched (impairment schedules, e.g. a loss episode).
    void set_active_window(sim_time start, sim_time stop) {
        window_start_ = start;
        window_stop_ = stop;
    }

    void receive(packet::packet pkt) override;

    std::uint64_t passed() const { return passed_; }
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t reordered() const { return reordered_; }
    std::uint64_t duplicated() const { return duplicated_; }
    /// Mutated and still decodable: forwarded with altered header fields.
    std::uint64_t corrupted_forwarded() const { return corrupted_forwarded_; }
    /// Mutated into something the decoder rejects: dropped at the "NIC".
    std::uint64_t corrupted_dropped() const { return corrupted_dropped_; }

private:
    bool active() const;
    void forward(packet::packet pkt);
    /// Returns false when the mutation made the packet undecodable.
    bool mutate(packet::packet& pkt);

    scheduler& sched_;
    node* downstream_ = nullptr;
    std::unique_ptr<loss_model> loss_;
    reorder_params reorder_{};
    duplicate_params duplicate_{};
    corrupt_params corrupt_{};
    sim_time window_start_ = 0;
    sim_time window_stop_ = util::time_never;

    // Stage-local random streams, forked once at construction so stages
    // never perturb each other (see file comment).
    util::rng reorder_rng_;
    util::rng duplicate_rng_;
    util::rng corrupt_rng_;

    std::uint64_t passed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t reordered_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t corrupted_forwarded_ = 0;
    std::uint64_t corrupted_dropped_ = 0;
};

} // namespace vtp::sim
