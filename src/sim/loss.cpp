#include "sim/loss.hpp"

namespace vtp::sim {

bernoulli_loss::bernoulli_loss(double probability, std::uint64_t seed)
    : probability_(probability), rng_(seed) {}

bool bernoulli_loss::should_drop(const packet::packet&, util::sim_time) {
    return rng_.bernoulli(probability_);
}

gilbert_elliott_loss::gilbert_elliott_loss(params p, std::uint64_t seed)
    : params_(p), rng_(seed) {}

bool gilbert_elliott_loss::should_drop(const packet::packet&, util::sim_time) {
    // Transition first, then sample loss in the (possibly new) state.
    if (bad_) {
        if (rng_.bernoulli(params_.p_bad_to_good)) bad_ = false;
    } else {
        if (rng_.bernoulli(params_.p_good_to_bad)) bad_ = true;
    }
    return rng_.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
}

double gilbert_elliott_loss::steady_state_loss() const {
    const double denom = params_.p_good_to_bad + params_.p_bad_to_good;
    if (denom <= 0.0) return params_.loss_good;
    const double pi_bad = params_.p_good_to_bad / denom;
    return pi_bad * params_.loss_bad + (1.0 - pi_bad) * params_.loss_good;
}

} // namespace vtp::sim
