#include "sim/impairment.hpp"

#include "packet/wire.hpp"
#include "util/bytes.hpp"

namespace vtp::sim {

impairment_node::impairment_node(std::uint32_t id, scheduler& sched, std::uint64_t seed)
    : node(id), sched_(sched) {
    util::rng root(seed);
    reorder_rng_ = root.fork();
    duplicate_rng_ = root.fork();
    corrupt_rng_ = root.fork();
}

bool impairment_node::active() const {
    const sim_time now = sched_.now();
    return now >= window_start_ && now < window_stop_;
}

void impairment_node::receive(packet::packet pkt) {
    if (downstream_ == nullptr) return;
    if (!active()) {
        ++passed_;
        downstream_->receive(std::move(pkt));
        return;
    }

    if (loss_ && loss_->should_drop(pkt, sched_.now())) {
        ++dropped_;
        return;
    }

    if (corrupt_.probability > 0 && corrupt_rng_.bernoulli(corrupt_.probability)) {
        if (!mutate(pkt)) {
            ++corrupted_dropped_;
            return;
        }
        ++corrupted_forwarded_;
    }

    if (duplicate_.probability > 0 && duplicate_rng_.bernoulli(duplicate_.probability)) {
        ++duplicated_;
        packet::packet copy = pkt; // segment body is shared, the copy is cheap
        if (duplicate_.copy_delay > 0) {
            sched_.after(duplicate_.copy_delay,
                         [this, copy = std::move(copy)]() mutable { forward(std::move(copy)); });
        } else {
            forward(std::move(copy));
        }
    }

    if (reorder_.probability > 0 && reorder_rng_.bernoulli(reorder_.probability)) {
        ++reordered_;
        const sim_time extra =
            reorder_.max_delay > reorder_.min_delay
                ? reorder_.min_delay +
                      reorder_rng_.uniform_int(0, reorder_.max_delay - reorder_.min_delay)
                : reorder_.min_delay;
        sched_.after(extra,
                     [this, pkt = std::move(pkt)]() mutable { forward(std::move(pkt)); });
        return;
    }

    ++passed_;
    forward(std::move(pkt));
}

void impairment_node::forward(packet::packet pkt) { downstream_->receive(std::move(pkt)); }

bool impairment_node::mutate(packet::packet& pkt) {
    if (!pkt.body) return false;
    // Run the packet through the *real* wire codec: corruption happens to
    // encoded bytes, and the decoder decides what survives — exactly the
    // path a live datagram takes through net::udp_host.
    auto bytes = packet::encode_segment(*pkt.body);
    if (bytes.empty()) return false;
    const int flips = 1 + static_cast<int>(corrupt_rng_.uniform_int(
                              0, corrupt_.max_bit_flips > 1 ? corrupt_.max_bit_flips - 1 : 0));
    for (int f = 0; f < flips; ++f) {
        const auto byte = static_cast<std::size_t>(
            corrupt_rng_.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
        bytes[byte] ^= static_cast<std::uint8_t>(1u << corrupt_rng_.uniform_int(0, 7));
    }
    try {
        auto decoded = std::make_shared<const packet::segment>(packet::decode_segment(bytes));
        if (!corrupt_.deliver_mutants) return false; // checksum catches it anyway
        pkt.body = std::move(decoded);
    } catch (const util::decode_error&) {
        return false; // the decoder rejects the mangled frame
    }
    return true;
}

} // namespace vtp::sim
