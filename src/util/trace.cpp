#include "util/trace.hpp"

#include <cstdio>

namespace vtp::util {

csv_trace::csv_trace(const std::string& path, const std::vector<std::string>& columns)
    : out_(path), columns_(columns.size()) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i) out_ << ',';
        out_ << columns[i];
    }
    out_ << '\n';
}

void csv_trace::row(const std::vector<double>& values) {
    char buf[64];
    for (std::size_t i = 0; i < values.size() && i < columns_; ++i) {
        if (i) out_ << ',';
        std::snprintf(buf, sizeof buf, "%.6g", values[i]);
        out_ << buf;
    }
    out_ << '\n';
    ++rows_;
}

void csv_trace::row_text(const std::vector<std::string>& values) {
    for (std::size_t i = 0; i < values.size() && i < columns_; ++i) {
        if (i) out_ << ',';
        out_ << values[i];
    }
    out_ << '\n';
    ++rows_;
}

} // namespace vtp::util
