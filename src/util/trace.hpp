// CSV trace writer for experiment post-processing.
//
// Columns are declared once; rows are appended as the simulation runs;
// the result is a plot-ready CSV (gnuplot/matplotlib). Used by the
// vtpsim CLI tool and available to any experiment harness.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace vtp::util {

class csv_trace {
public:
    /// Opens `path` for writing and emits the header row. Check ok().
    csv_trace(const std::string& path, const std::vector<std::string>& columns);

    bool ok() const { return out_.good(); }
    std::size_t rows_written() const { return rows_; }

    /// Append one row; values are rendered with %.6g.
    void row(const std::vector<double>& values);

    /// Mixed row (strings pass through, useful for labels).
    void row_text(const std::vector<std::string>& values);

    void flush() { out_.flush(); }

private:
    std::ofstream out_;
    std::size_t columns_ = 0;
    std::size_t rows_ = 0;
};

} // namespace vtp::util
