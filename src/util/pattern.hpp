// Deterministic payload patterns for end-to-end verification.
//
// One definition shared by every sender/verifier pair (the scenario
// harness's poll-API runs, vtpload --payload): a byte is a pure function
// of (flow, stream, offset), so a receiver can check any chunk without
// materializing the expected buffer — and the two sides can never
// desynchronize across tools.
#pragma once

#include <cstdint>
#include <vector>

namespace vtp::util {

inline std::uint8_t pattern_byte(std::uint32_t flow_id, std::uint32_t stream,
                                 std::uint64_t offset) {
    std::uint64_t x = (static_cast<std::uint64_t>(flow_id) << 40) ^
                      (static_cast<std::uint64_t>(stream) << 32) ^ offset;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return static_cast<std::uint8_t>(x);
}

inline std::vector<std::uint8_t> pattern_buffer(std::uint32_t flow_id,
                                                std::uint32_t stream,
                                                std::uint64_t bytes) {
    std::vector<std::uint8_t> out(static_cast<std::size_t>(bytes));
    for (std::uint64_t i = 0; i < bytes; ++i)
        out[static_cast<std::size_t>(i)] = pattern_byte(flow_id, stream, i);
    return out;
}

} // namespace vtp::util
