#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace vtp::util {

void running_stats::add(double x) {
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double running_stats::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::cov() const {
    const double m = mean();
    return m == 0.0 ? 0.0 : stddev() / m;
}

void running_stats::reset() {
    count_ = 0;
    mean_ = m2_ = min_ = max_ = sum_ = 0.0;
}

double sample_series::mean() const {
    if (samples_.empty()) return 0.0;
    double total = 0.0;
    for (double s : samples_) total += s;
    return total / static_cast<double>(samples_.size());
}

double sample_series::stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double m2 = 0.0;
    for (double s : samples_) m2 += (s - m) * (s - m);
    return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double sample_series::cov() const {
    const double m = mean();
    return m == 0.0 ? 0.0 : stddev() / m;
}

double sample_series::percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(q, 0.0, 100.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

double sample_series::min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double sample_series::max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void ewma::add(double x) {
    if (!initialised_) {
        value_ = x;
        initialised_ = true;
        return;
    }
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
}

void rate_meter::add(std::size_t bytes, sim_time at) {
    events_.push_back({at, bytes});
}

void rate_meter::expire(sim_time now) const {
    const sim_time cutoff = now - window_;
    auto first_live = std::find_if(events_.begin(), events_.end(),
                                   [cutoff](const event& e) { return e.at >= cutoff; });
    events_.erase(events_.begin(), first_live);
}

double rate_meter::bits_per_second(sim_time now) const {
    expire(now);
    if (events_.empty()) return 0.0;
    std::size_t total = 0;
    for (const event& e : events_) total += e.bytes;
    const double window_s = to_seconds(window_);
    return window_s <= 0.0 ? 0.0 : static_cast<double>(total) * 8.0 / window_s;
}

double jain_fairness(const std::vector<double>& throughputs) {
    if (throughputs.empty()) return 0.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : throughputs) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0.0) return 1.0;
    return sum * sum / (static_cast<double>(throughputs.size()) * sum_sq);
}

} // namespace vtp::util
