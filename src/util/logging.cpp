#include "util/logging.hpp"

#include <cstdio>

#include "util/time.hpp"

namespace vtp::util {

namespace {
log_level g_level = log_level::none;

const char* level_name(log_level level) {
    switch (level) {
    case log_level::error: return "ERROR";
    case log_level::warn: return "WARN";
    case log_level::info: return "INFO";
    case log_level::debug: return "DEBUG";
    case log_level::none: return "NONE";
    }
    return "?";
}
} // namespace

void set_log_level(log_level level) { g_level = level; }
log_level get_log_level() { return g_level; }

void log_line(log_level level, const std::string& component, const std::string& message) {
    if (level > g_level) return;
    std::fprintf(stderr, "[%-5s] %-10s %s\n", level_name(level), component.c_str(),
                 message.c_str());
}

std::string format_time(sim_time t) {
    char buf[32];
    if (t == time_never) return "never";
    if (t >= seconds(1)) {
        std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(t));
    } else if (t >= milliseconds(1)) {
        std::snprintf(buf, sizeof buf, "%.3fms", to_milliseconds(t));
    } else {
        std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t));
    }
    return buf;
}

} // namespace vtp::util
