// Deterministic pseudo-random number generation.
//
// Every stochastic element in the library (loss models, traffic
// generators, jitter) draws from an explicitly seeded `rng`. The
// generator is xoshiro256++ seeded through splitmix64, which is fast,
// has no observable linear artefacts in the outputs we use, and — unlike
// std::mt19937 across standard libraries — produces an implementation-
// independent stream for a given seed.
#pragma once

#include <array>
#include <cstdint>

namespace vtp::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ deterministic generator.
class rng {
public:
    /// Seed the full 256-bit state from one 64-bit seed via splitmix64.
    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Next raw 64-bit output.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p);

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /// Standard normal via Box–Muller (cached pair for efficiency).
    double normal(double mean = 0.0, double stddev = 1.0);

    /// Pareto distributed value with given shape (>0) and scale (>0);
    /// used for heavy-tailed flow sizes in background traffic.
    double pareto(double shape, double scale);

    /// Fork a statistically independent child stream (for per-flow RNGs).
    rng fork();

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace vtp::util
