// Fixed-point simulation time.
//
// All protocol and simulator code measures time in integer nanoseconds so
// that event ordering is exact and runs are reproducible bit-for-bit.
// Floating-point seconds appear only at the API edges (configuration and
// reporting).
#pragma once

#include <cstdint>
#include <string>

namespace vtp::util {

/// Absolute simulation time or duration, in nanoseconds.
using sim_time = std::int64_t;

inline constexpr sim_time nanoseconds(std::int64_t n) { return n; }
inline constexpr sim_time microseconds(std::int64_t u) { return u * 1'000; }
inline constexpr sim_time milliseconds(std::int64_t m) { return m * 1'000'000; }
inline constexpr sim_time seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Largest representable time; used as "never".
inline constexpr sim_time time_never = INT64_MAX;

/// Convert a floating-point duration in seconds to sim_time (rounds to
/// nearest nanosecond; negative durations are allowed for deltas).
constexpr sim_time from_seconds(double s) {
    return static_cast<sim_time>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Convert sim_time to floating-point seconds (for reporting/maths only).
constexpr double to_seconds(sim_time t) { return static_cast<double>(t) * 1e-9; }

constexpr double to_milliseconds(sim_time t) { return static_cast<double>(t) * 1e-6; }

/// Render as "12.345ms" / "1.234s" for logs and traces.
std::string format_time(sim_time t);

} // namespace vtp::util
