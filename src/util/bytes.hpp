// Byte-order-safe serialization primitives (network byte order).
//
// Used by packet/wire.cpp to encode segments for the live UDP datapath
// and by the serialization round-trip tests/fuzz suites.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace vtp::util {

/// Append-only big-endian writer over a growable byte vector.
class byte_writer {
public:
    void put_u8(std::uint8_t v) { buf_.push_back(v); }

    void put_u16(std::uint16_t v) {
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
        buf_.push_back(static_cast<std::uint8_t>(v));
    }

    void put_u32(std::uint32_t v) {
        put_u16(static_cast<std::uint16_t>(v >> 16));
        put_u16(static_cast<std::uint16_t>(v));
    }

    void put_u64(std::uint64_t v) {
        put_u32(static_cast<std::uint32_t>(v >> 32));
        put_u32(static_cast<std::uint32_t>(v));
    }

    void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

    /// IEEE-754 binary64 bits, big-endian.
    void put_f64(double v) {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        put_u64(bits);
    }

    void put_bytes(const std::uint8_t* data, std::size_t len) {
        buf_.insert(buf_.end(), data, data + len);
    }

    const std::vector<std::uint8_t>& data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Append-only big-endian writer over a caller-provided fixed buffer.
/// Overflow throws std::length_error — size the buffer for the largest
/// segment (engine::max_datagram is ample). Same interface as
/// byte_writer so encoders can be written once against either.
class fixed_writer {
public:
    fixed_writer(std::uint8_t* buf, std::size_t cap) : buf_(buf), cap_(cap) {}

    void put_u8(std::uint8_t v) {
        if (pos_ >= cap_) throw std::length_error("fixed_writer overflow");
        buf_[pos_++] = v;
    }

    void put_u16(std::uint16_t v) {
        put_u8(static_cast<std::uint8_t>(v >> 8));
        put_u8(static_cast<std::uint8_t>(v));
    }

    void put_u32(std::uint32_t v) {
        put_u16(static_cast<std::uint16_t>(v >> 16));
        put_u16(static_cast<std::uint16_t>(v));
    }

    void put_u64(std::uint64_t v) {
        put_u32(static_cast<std::uint32_t>(v >> 32));
        put_u32(static_cast<std::uint32_t>(v));
    }

    void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

    /// IEEE-754 binary64 bits, big-endian.
    void put_f64(double v) {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        put_u64(bits);
    }

    void put_bytes(const std::uint8_t* data, std::size_t len) {
        if (cap_ - pos_ < len) throw std::length_error("fixed_writer overflow");
        std::memcpy(buf_ + pos_, data, len);
        pos_ += len;
    }

    std::size_t size() const { return pos_; }

private:
    std::uint8_t* buf_;
    std::size_t cap_;
    std::size_t pos_ = 0;
};

/// Thrown by byte_reader on truncated input.
class decode_error : public std::runtime_error {
public:
    explicit decode_error(const std::string& what) : std::runtime_error(what) {}
};

/// Bounds-checked big-endian reader over a byte span.
class byte_reader {
public:
    byte_reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
    explicit byte_reader(const std::vector<std::uint8_t>& buf)
        : byte_reader(buf.data(), buf.size()) {}

    std::uint8_t get_u8() {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t get_u16() {
        need(2);
        const std::uint16_t v = static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
        pos_ += 2;
        return v;
    }

    std::uint32_t get_u32() {
        const std::uint32_t hi = get_u16();
        return (hi << 16) | get_u16();
    }

    std::uint64_t get_u64() {
        const std::uint64_t hi = get_u32();
        return (hi << 32) | get_u32();
    }

    std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

    double get_f64() {
        const std::uint64_t bits = get_u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    void get_bytes(std::uint8_t* out, std::size_t len) {
        need(len);
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
    }

    std::size_t remaining() const { return len_ - pos_; }
    bool done() const { return pos_ == len_; }

private:
    void need(std::size_t n) const {
        if (len_ - pos_ < n) throw decode_error("truncated buffer");
    }

    const std::uint8_t* data_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

} // namespace vtp::util
