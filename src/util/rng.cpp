#include "util/rng.hpp"

#include <cmath>

namespace vtp::util {

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
} // namespace

rng::rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t rng::next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64()); // full range
    // Unbiased rejection sampling (Lemire-style threshold).
    const std::uint64_t threshold = (0 - span) % span;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
    }
}

bool rng::bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double rng::exponential(double mean) {
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double rng::normal(double mean, double stddev) {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return mean + stddev * cached_normal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return mean + stddev * radius * std::cos(angle);
}

double rng::pareto(double shape, double scale) {
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return scale / std::pow(u, 1.0 / shape);
}

rng rng::fork() { return rng(next_u64()); }

} // namespace vtp::util
