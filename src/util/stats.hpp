// Online statistics used by flow monitors, benchmarks and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace vtp::util {

/// Welford online mean/variance plus min/max. O(1) per sample.
class running_stats {
public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    double variance() const;
    double stddev() const;
    /// Coefficient of variation: stddev / mean (0 when mean == 0).
    double cov() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    void reset();

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Retains all samples; supports exact percentiles. Use for bounded-size
/// series (per-interval rate samples, latency samples in tests/benches).
class sample_series {
public:
    void add(double x) { samples_.push_back(x); }
    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double stddev() const;
    double cov() const;
    /// Exact percentile by nearest-rank on a sorted copy; q in [0,100].
    double percentile(double q) const;
    double min() const;
    double max() const;
    const std::vector<double>& samples() const { return samples_; }
    void clear() { samples_.clear(); }

private:
    std::vector<double> samples_;
};

/// Exponentially weighted moving average.
class ewma {
public:
    /// alpha in (0,1]: weight of the newest sample.
    explicit ewma(double alpha) : alpha_(alpha) {}
    void add(double x);
    double value() const { return value_; }
    bool empty() const { return !initialised_; }
    void reset() { initialised_ = false; value_ = 0.0; }

private:
    double alpha_;
    double value_ = 0.0;
    bool initialised_ = false;
};

/// Windowed byte-rate meter: add(bytes, at) then rate over trailing window.
class rate_meter {
public:
    explicit rate_meter(sim_time window = milliseconds(500)) : window_(window) {}

    void add(std::size_t bytes, sim_time at);
    /// Bits per second over [now - window, now].
    double bits_per_second(sim_time now) const;
    void clear() { events_.clear(); }

private:
    struct event {
        sim_time at;
        std::size_t bytes;
    };
    void expire(sim_time now) const;

    sim_time window_;
    mutable std::vector<event> events_; // kept sorted by time; pruned lazily
};

/// Jain's fairness index over per-flow throughputs: (Σx)² / (n·Σx²).
double jain_fairness(const std::vector<double>& throughputs);

} // namespace vtp::util
