// Minimal leveled logger.
//
// Logging is off by default (level none) so simulations stay fast and
// benchmark output clean; examples raise the level to show protocol
// behaviour.
#pragma once

#include <sstream>
#include <string>

namespace vtp::util {

enum class log_level { none = 0, error = 1, warn = 2, info = 3, debug = 4 };

/// Process-wide log threshold.
void set_log_level(log_level level);
log_level get_log_level();

/// Emit one line at `level` (no-op when above the threshold).
void log_line(log_level level, const std::string& component, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename head, typename... tail>
void append_all(std::ostringstream& out, const head& h, const tail&... t) {
    out << h;
    append_all(out, t...);
}
} // namespace detail

/// Variadic convenience: log(info, "tfrc", "rate=", x, "bps").
template <typename... parts>
void log(log_level level, const std::string& component, const parts&... p) {
    if (level > get_log_level()) return;
    std::ostringstream out;
    detail::append_all(out, p...);
    log_line(level, component, out.str());
}

} // namespace vtp::util
