#include "packet/segment.hpp"

#include <sstream>

namespace vtp::packet {

std::string to_string(dscp d) {
    switch (d) {
    case dscp::best_effort: return "BE";
    case dscp::af11: return "AF11";
    case dscp::af12: return "AF12";
    case dscp::af13: return "AF13";
    case dscp::ef: return "EF";
    }
    return "DSCP?";
}

namespace {

// Header sizes equal the exact byte counts wire.cpp emits (asserted by
// tests/packet_wire_test), so simulated sizes match the live datapath.
constexpr std::uint32_t data_header_bytes = 50;
constexpr std::uint32_t data_stream_header_bytes = 52;
constexpr std::uint32_t tfrc_feedback_bytes = 41;
constexpr std::uint32_t sack_feedback_fixed_bytes = 44;
constexpr std::uint32_t sack_block_bytes = 16;
constexpr std::uint32_t handshake_bytes = 26;
constexpr std::uint32_t tcp_fixed_bytes = 39;
constexpr std::uint32_t path_probe_bytes = 10; ///< kind + token + check fold

struct size_visitor {
    std::uint32_t operator()(const data_segment&) const { return data_header_bytes; }
    std::uint32_t operator()(const data_stream_segment&) const {
        return data_stream_header_bytes;
    }
    std::uint32_t operator()(const tfrc_feedback_segment&) const { return tfrc_feedback_bytes; }
    std::uint32_t operator()(const sack_feedback_segment& s) const {
        return sack_feedback_fixed_bytes +
               sack_block_bytes * static_cast<std::uint32_t>(s.blocks.size());
    }
    std::uint32_t operator()(const handshake_segment&) const { return handshake_bytes; }
    std::uint32_t operator()(const tcp_segment& s) const {
        return tcp_fixed_bytes + sack_block_bytes * static_cast<std::uint32_t>(s.sack.size());
    }
    std::uint32_t operator()(const path_challenge_segment&) const { return path_probe_bytes; }
    std::uint32_t operator()(const path_response_segment&) const { return path_probe_bytes; }
};

struct payload_visitor {
    std::uint32_t operator()(const data_segment& s) const { return s.payload_len; }
    std::uint32_t operator()(const data_stream_segment& s) const { return s.payload_len; }
    std::uint32_t operator()(const tcp_segment& s) const { return s.payload_len; }
    template <typename other>
    std::uint32_t operator()(const other&) const {
        return 0;
    }
};

struct describe_visitor {
    std::string operator()(const data_segment& s) const {
        std::ostringstream out;
        out << "DATA seq=" << s.seq << " off=" << s.byte_offset << " len=" << s.payload_len;
        if (s.is_retransmission) out << " rtx";
        if (s.end_of_stream) out << " eos";
        return out.str();
    }
    std::string operator()(const data_stream_segment& s) const {
        std::ostringstream out;
        out << "DATA-STREAM sid=" << s.stream_id << " seq=" << s.seq
            << " off=" << s.stream_offset << " len=" << s.payload_len;
        if (s.is_retransmission) out << " rtx";
        if (s.end_of_stream) out << " eos";
        return out.str();
    }
    std::string operator()(const tfrc_feedback_segment& s) const {
        std::ostringstream out;
        out << "TFRC-FB p=" << s.p << " x_recv=" << s.x_recv << " hseq=" << s.highest_seq;
        return out.str();
    }
    std::string operator()(const sack_feedback_segment& s) const {
        std::ostringstream out;
        out << "SACK-FB cum=" << s.cum_ack << " blocks=[";
        for (std::size_t i = 0; i < s.blocks.size(); ++i) {
            if (i) out << ",";
            out << s.blocks[i].begin << "-" << s.blocks[i].end;
        }
        out << "] x_recv=" << s.x_recv;
        return out.str();
    }
    std::string operator()(const handshake_segment& s) const {
        static const char* names[] = {"SYN",   "SYN-ACK", "FIN",  "FIN-ACK",
                                      "RENEG", "RENEG-ACK", "RETRY"};
        std::ostringstream out;
        out << names[static_cast<int>(s.type)] << " profile=0x" << std::hex << s.profile_bits;
        if (s.type == handshake_segment::kind::reneg ||
            s.type == handshake_segment::kind::reneg_ack) {
            out << std::dec << " token=" << s.token;
            if (s.type == handshake_segment::kind::reneg_ack)
                out << " boundary=" << s.boundary_seq;
        }
        if (s.type == handshake_segment::kind::retry)
            out << std::dec << " cookie=0x" << std::hex << s.boundary_seq;
        return out.str();
    }
    std::string operator()(const path_challenge_segment& s) const {
        std::ostringstream out;
        out << "PATH-CHALLENGE token=0x" << std::hex << s.token;
        return out.str();
    }
    std::string operator()(const path_response_segment& s) const {
        std::ostringstream out;
        out << "PATH-RESPONSE token=0x" << std::hex << s.token;
        return out.str();
    }
    std::string operator()(const tcp_segment& s) const {
        std::ostringstream out;
        out << "TCP";
        if (s.syn) out << " SYN";
        if (s.fin) out << " FIN";
        if (s.is_ack) out << " ack=" << s.ack;
        if (s.payload_len) out << " seq=" << s.seq << " len=" << s.payload_len;
        for (const auto& b : s.sack) out << " sack=" << b.begin << "-" << b.end;
        return out.str();
    }
};

} // namespace

std::uint32_t header_size(const segment& s) { return std::visit(size_visitor{}, s); }

std::uint32_t wire_size(const segment& s) {
    return header_size(s) + std::visit(payload_visitor{}, s);
}

std::string describe(const segment& s) { return std::visit(describe_visitor{}, s); }

packet make_packet(std::uint32_t flow_id, std::uint32_t src, std::uint32_t dst, segment body,
                   dscp ds) {
    packet p;
    p.flow_id = flow_id;
    p.src = src;
    p.dst = dst;
    p.ds = ds;
    p.size_bytes = wire_size(body);
    p.body = std::make_shared<const segment>(std::move(body));
    return p;
}

} // namespace vtp::packet
