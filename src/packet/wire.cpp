#include "packet/wire.hpp"

#include "util/bytes.hpp"

namespace vtp::packet {

using util::byte_reader;
using util::byte_writer;
using util::decode_error;

namespace {

constexpr std::uint8_t data_flag_rtx = 0x01;
constexpr std::uint8_t data_flag_eos = 0x02;
// Payload-present: `payload_len` application bytes follow the header.
// Absent on length-only frames (simulated synthetic sources), so the
// pre-payload wire format is a strict subset of this one.
constexpr std::uint8_t data_flag_payload = 0x04;
// data_stream frames keep the rtx/eos bits and add the stream's
// reliability mode in bits 2-3 (value 3 unassigned -> decode_error);
// their payload-present flag lives above the reliability bits.
constexpr int data_stream_reliability_shift = 2;
constexpr std::uint8_t data_stream_flag_payload = 0x10;

constexpr std::uint8_t tcp_flag_ack = 0x01;
constexpr std::uint8_t tcp_flag_syn = 0x02;
constexpr std::uint8_t tcp_flag_fin = 0x04;

template <typename writer>
struct encode_visitor {
    writer& out;

    void operator()(const data_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::data));
        std::uint8_t flags = 0;
        if (s.is_retransmission) flags |= data_flag_rtx;
        if (s.end_of_stream) flags |= data_flag_eos;
        if (!s.payload.empty()) flags |= data_flag_payload;
        out.put_u8(flags);
        out.put_u32(s.payload_len);
        out.put_u64(s.seq);
        out.put_u64(s.byte_offset);
        out.put_i64(s.ts);
        out.put_i64(s.rtt_estimate);
        out.put_u32(s.message_id);
        out.put_i64(s.deadline);
        if (!s.payload.empty()) out.put_bytes(s.payload.data(), s.payload.size());
    }

    void operator()(const data_stream_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::data_stream));
        std::uint8_t flags = 0;
        if (s.is_retransmission) flags |= data_flag_rtx;
        if (s.end_of_stream) flags |= data_flag_eos;
        flags |= static_cast<std::uint8_t>((s.reliability & stream_reliability_mask)
                                           << data_stream_reliability_shift);
        if (!s.payload.empty()) flags |= data_stream_flag_payload;
        out.put_u8(flags);
        out.put_u16(static_cast<std::uint16_t>(s.stream_id));
        out.put_u32(s.payload_len);
        out.put_u64(s.seq);
        out.put_u64(s.stream_offset);
        out.put_i64(s.ts);
        out.put_i64(s.rtt_estimate);
        out.put_u32(s.message_id);
        out.put_i64(s.deadline);
        if (!s.payload.empty()) out.put_bytes(s.payload.data(), s.payload.size());
    }

    void operator()(const tfrc_feedback_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::tfrc_feedback));
        out.put_i64(s.ts_echo);
        out.put_i64(s.t_delay);
        out.put_f64(s.x_recv);
        out.put_f64(s.p);
        out.put_u64(s.highest_seq);
    }

    void operator()(const sack_feedback_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::sack_feedback));
        out.put_u8(s.has_p ? 1 : 0);
        out.put_u64(s.cum_ack);
        out.put_i64(s.ts_echo);
        out.put_i64(s.t_delay);
        out.put_f64(s.x_recv);
        out.put_f64(s.p);
        const auto count = static_cast<std::uint16_t>(
            s.blocks.size() > max_wire_sack_blocks ? max_wire_sack_blocks : s.blocks.size());
        out.put_u16(count);
        for (std::uint16_t i = 0; i < count; ++i) {
            out.put_u64(s.blocks[i].begin);
            out.put_u64(s.blocks[i].end);
        }
    }

    void operator()(const handshake_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::handshake));
        out.put_u8(static_cast<std::uint8_t>(s.type));
        out.put_u32(s.profile_bits);
        out.put_f64(s.target_rate_bps);
        out.put_u32(s.token);
        out.put_u64(s.boundary_seq);
    }

    void operator()(const path_challenge_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::path_challenge));
        out.put_u64(s.token);
        out.put_u8(path_token_check(s.token));
    }

    void operator()(const path_response_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::path_response));
        out.put_u64(s.token);
        out.put_u8(path_token_check(s.token));
    }

    void operator()(const tcp_segment& s) const {
        out.put_u8(static_cast<std::uint8_t>(wire_kind::tcp));
        std::uint8_t flags = 0;
        if (s.is_ack) flags |= tcp_flag_ack;
        if (s.syn) flags |= tcp_flag_syn;
        if (s.fin) flags |= tcp_flag_fin;
        out.put_u8(flags);
        out.put_u64(s.seq);
        out.put_u32(s.payload_len);
        out.put_u64(s.ack);
        out.put_i64(s.ts);
        out.put_i64(s.ts_echo);
        const auto count = static_cast<std::uint8_t>(
            s.sack.size() > max_wire_sack_blocks ? max_wire_sack_blocks : s.sack.size());
        out.put_u8(count);
        for (std::uint8_t i = 0; i < count; ++i) {
            out.put_u64(s.sack[i].begin);
            out.put_u64(s.sack[i].end);
        }
    }
};

// Payload bytes follow the header when the payload flag is set; a
// payload_len exceeding what the datagram actually carries is truncation
// (or a corrupted length field) and throws through byte_reader::need.
void decode_payload(byte_reader& in, std::uint32_t payload_len,
                    std::vector<std::uint8_t>& out) {
    if (payload_len > in.remaining()) throw decode_error("truncated payload");
    out.resize(payload_len);
    if (payload_len > 0) in.get_bytes(out.data(), payload_len);
}

data_segment decode_data(byte_reader& in) {
    data_segment s;
    const std::uint8_t flags = in.get_u8();
    s.is_retransmission = (flags & data_flag_rtx) != 0;
    s.end_of_stream = (flags & data_flag_eos) != 0;
    s.payload_len = in.get_u32();
    if ((flags & data_flag_payload) != 0 && s.payload_len == 0)
        throw decode_error("payload flag on empty frame"); // non-canonical
    s.seq = in.get_u64();
    s.byte_offset = in.get_u64();
    s.ts = in.get_i64();
    s.rtt_estimate = in.get_i64();
    s.message_id = in.get_u32();
    s.deadline = in.get_i64();
    if ((flags & data_flag_payload) != 0) decode_payload(in, s.payload_len, s.payload);
    return s;
}

data_stream_segment decode_data_stream(byte_reader& in) {
    data_stream_segment s;
    const std::uint8_t flags = in.get_u8();
    s.is_retransmission = (flags & data_flag_rtx) != 0;
    s.end_of_stream = (flags & data_flag_eos) != 0;
    s.reliability = (flags >> data_stream_reliability_shift) & stream_reliability_mask;
    if (s.reliability == stream_reliability_mask)
        throw decode_error("unassigned stream reliability mode");
    if ((flags & ~(data_flag_rtx | data_flag_eos | data_stream_flag_payload |
                   (stream_reliability_mask << data_stream_reliability_shift))) != 0)
        throw decode_error("undefined data_stream flag bits");
    s.stream_id = in.get_u16();
    if (s.stream_id >= max_stream_id) throw decode_error("stream id out of range");
    s.payload_len = in.get_u32();
    if ((flags & data_stream_flag_payload) != 0 && s.payload_len == 0)
        throw decode_error("payload flag on empty frame"); // non-canonical
    s.seq = in.get_u64();
    s.stream_offset = in.get_u64();
    s.ts = in.get_i64();
    s.rtt_estimate = in.get_i64();
    s.message_id = in.get_u32();
    s.deadline = in.get_i64();
    if ((flags & data_stream_flag_payload) != 0)
        decode_payload(in, s.payload_len, s.payload);
    return s;
}

tfrc_feedback_segment decode_tfrc_feedback(byte_reader& in) {
    tfrc_feedback_segment s;
    s.ts_echo = in.get_i64();
    s.t_delay = in.get_i64();
    s.x_recv = in.get_f64();
    s.p = in.get_f64();
    s.highest_seq = in.get_u64();
    return s;
}

sack_feedback_segment decode_sack_feedback(byte_reader& in) {
    sack_feedback_segment s;
    s.has_p = in.get_u8() != 0;
    s.cum_ack = in.get_u64();
    s.ts_echo = in.get_i64();
    s.t_delay = in.get_i64();
    s.x_recv = in.get_f64();
    s.p = in.get_f64();
    const std::uint16_t count = in.get_u16();
    if (count > max_wire_sack_blocks) throw decode_error("sack block count out of range");
    s.blocks.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
        sack_block b;
        b.begin = in.get_u64();
        b.end = in.get_u64();
        if (b.end < b.begin) throw decode_error("inverted sack block");
        s.blocks.push_back(b);
    }
    return s;
}

handshake_segment decode_handshake(byte_reader& in) {
    handshake_segment s;
    const std::uint8_t type = in.get_u8();
    if (type > static_cast<std::uint8_t>(handshake_segment::kind::retry))
        throw decode_error("unknown handshake type");
    s.type = static_cast<handshake_segment::kind>(type);
    s.profile_bits = in.get_u32();
    if (!valid_profile_bits(s.profile_bits))
        throw decode_error("malformed profile bits");
    s.target_rate_bps = in.get_f64();
    s.token = in.get_u32();
    s.boundary_seq = in.get_u64();
    return s;
}

// Shared by both probe kinds: a non-zero token whose XOR fold matches
// the trailing check byte. Anything else — zero token (reserved),
// bit-flipped token, truncated frame — is a decode_error, so a mutated
// probe can never present a "valid" token to the path manager.
std::uint64_t decode_path_token(byte_reader& in) {
    const std::uint64_t token = in.get_u64();
    const std::uint8_t check = in.get_u8();
    if (token == 0) throw decode_error("reserved zero path token");
    if (check != path_token_check(token)) throw decode_error("path token check mismatch");
    return token;
}

path_challenge_segment decode_path_challenge(byte_reader& in) {
    path_challenge_segment s;
    s.token = decode_path_token(in);
    return s;
}

path_response_segment decode_path_response(byte_reader& in) {
    path_response_segment s;
    s.token = decode_path_token(in);
    return s;
}

tcp_segment decode_tcp(byte_reader& in) {
    tcp_segment s;
    const std::uint8_t flags = in.get_u8();
    s.is_ack = (flags & tcp_flag_ack) != 0;
    s.syn = (flags & tcp_flag_syn) != 0;
    s.fin = (flags & tcp_flag_fin) != 0;
    s.seq = in.get_u64();
    s.payload_len = in.get_u32();
    s.ack = in.get_u64();
    s.ts = in.get_i64();
    s.ts_echo = in.get_i64();
    const std::uint8_t count = in.get_u8();
    if (count > max_wire_sack_blocks) throw decode_error("tcp sack count out of range");
    s.sack.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) {
        sack_block b;
        b.begin = in.get_u64();
        b.end = in.get_u64();
        if (b.end < b.begin) throw decode_error("inverted tcp sack block");
        s.sack.push_back(b);
    }
    return s;
}

} // namespace

std::vector<std::uint8_t> encode_segment(const segment& s) {
    byte_writer out;
    std::visit(encode_visitor<byte_writer>{out}, s);
    return out.take();
}

std::size_t encode_segment_into(const segment& s, std::uint8_t* out, std::size_t cap) {
    util::fixed_writer w(out, cap);
    std::visit(encode_visitor<util::fixed_writer>{w}, s);
    return w.size();
}

segment decode_segment(const std::uint8_t* data, std::size_t len) {
    byte_reader in(data, len);
    const std::uint8_t kind = in.get_u8();
    switch (static_cast<wire_kind>(kind)) {
    case wire_kind::data: return decode_data(in);
    case wire_kind::tfrc_feedback: return decode_tfrc_feedback(in);
    case wire_kind::sack_feedback: return decode_sack_feedback(in);
    case wire_kind::handshake: return decode_handshake(in);
    case wire_kind::tcp: return decode_tcp(in);
    case wire_kind::data_stream: return decode_data_stream(in);
    case wire_kind::path_challenge: return decode_path_challenge(in);
    case wire_kind::path_response: return decode_path_response(in);
    }
    throw decode_error("unknown segment kind");
}

segment decode_segment(const std::vector<std::uint8_t>& buf) {
    return decode_segment(buf.data(), buf.size());
}

} // namespace vtp::packet
