// Wire encoding of QTP segments (network byte order).
//
// The encoded form is what the live UDP datapath (src/net) puts on the
// wire; `header_size()` in segment.hpp is defined to be exactly the size
// this encoder produces, so simulated packet sizes match reality.
//
// Layout (all integers big-endian):
//   byte 0: segment kind tag
//   then kind-specific fields; see wire.cpp for the field order.
// Data and TCP payload bytes are not part of the header encoding; the
// datapath appends them after the header (payload_len gives the length).
#pragma once

#include <cstdint>
#include <vector>

#include "packet/segment.hpp"

namespace vtp::packet {

/// Kind tags on the wire.
enum class wire_kind : std::uint8_t {
    data = 1,
    tfrc_feedback = 2,
    sack_feedback = 3,
    handshake = 4,
    tcp = 5,
    data_stream = 6,
    path_challenge = 7,
    path_response = 8,
};

/// Encode a segment header to bytes. Never fails.
std::vector<std::uint8_t> encode_segment(const segment& s);

/// Encode a segment header into a caller-provided buffer, returning the
/// encoded size. Allocation-free — this is the server engine's hot
/// transmit path (buffers come from an engine::buffer_pool). Throws
/// std::length_error when `cap` is too small for the segment.
std::size_t encode_segment_into(const segment& s, std::uint8_t* out, std::size_t cap);

/// Decode a segment header. Throws util::decode_error on truncated or
/// malformed input (unknown kind tag, absurd block counts).
segment decode_segment(const std::uint8_t* data, std::size_t len);
segment decode_segment(const std::vector<std::uint8_t>& buf);

/// Maximum SACK blocks the wire format will carry in one segment.
inline constexpr std::size_t max_wire_sack_blocks = 16;

} // namespace vtp::packet
