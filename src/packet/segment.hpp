// Transport segment model.
//
// All transports in the library (QTP instances, the TCP baseline) exchange
// typed segments. In simulation the typed form travels directly inside
// `packet`; on the live UDP datapath the same segments are serialized with
// packet/wire.hpp. Keeping one segment model for both substrates is what
// makes the protocol components substrate-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/time.hpp"

namespace vtp::packet {

using util::sim_time;

/// DiffServ codepoints used by the library. `af11` marks in-profile
/// (green) traffic of AF class 1, `af12` out-of-profile (yellow).
enum class dscp : std::uint8_t {
    best_effort = 0,
    af11 = 10,
    af12 = 12,
    af13 = 14,
    ef = 46,
};

std::string to_string(dscp d);

/// Contiguous range of received packet sequence numbers, [begin, end).
struct sack_block {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    bool operator==(const sack_block&) const = default;
};

/// QTP data segment. Sequence numbers are per-packet (TFRC style); the
/// byte offset locates the payload in the application stream for
/// reliability and reassembly.
struct data_segment {
    std::uint64_t seq = 0;
    std::uint64_t byte_offset = 0;
    std::uint32_t payload_len = 0;
    sim_time ts = 0;             ///< sender clock at transmission
    sim_time rtt_estimate = 0;   ///< sender's current RTT (drives receiver feedback timer)
    std::uint32_t message_id = 0;
    sim_time deadline = util::time_never; ///< partial reliability: drop after this
    bool is_retransmission = false;
    bool end_of_stream = false;
    /// Application bytes carried by this segment. Either empty (the
    /// length-only fast path: `payload_len` synthetic bytes, nothing
    /// allocated or copied — what the discrete-event benches run) or
    /// exactly `payload_len` bytes of real payload, which the wire
    /// encoding appends after the header.
    std::vector<std::uint8_t> payload;

    bool operator==(const data_segment&) const = default;
};

/// Highest stream id carried by the multiplexed `data_stream` segment
/// kind; the wire decoder rejects anything at or above it. Defined here
/// (like the profile bit layout below) so packet/ stays free of a
/// dependency on stream/.
inline constexpr std::uint32_t max_stream_id = 256;

/// Per-stream reliability announced in `data_stream` frames so the
/// receiver can pick the matching delivery order without negotiating
/// each stream. Values mirror sack::reliability_mode; 3 is unassigned
/// and rejected by the decoder.
inline constexpr std::uint8_t stream_reliability_mask = 0x3;

/// Multiplexed QTP data segment: one of up to `max_stream_id` concurrent
/// application streams on the same connection. `seq` stays in the
/// connection-wide TFRC sequence space (loss estimation and SACK
/// feedback are per connection); `stream_offset` locates the payload in
/// that stream's own byte space (reliability and reassembly are per
/// stream). Stream 0 is the legacy single stream and travels as a plain
/// `data_segment` for compatibility.
struct data_stream_segment {
    std::uint64_t seq = 0;           ///< connection-wide packet sequence
    std::uint32_t stream_id = 0;     ///< [1, max_stream_id) on the wire
    std::uint64_t stream_offset = 0; ///< byte offset within the stream
    std::uint32_t payload_len = 0;
    sim_time ts = 0;             ///< sender clock at transmission
    sim_time rtt_estimate = 0;   ///< sender's current RTT (drives receiver feedback timer)
    std::uint32_t message_id = 0;
    sim_time deadline = util::time_never; ///< partial reliability: drop after this
    std::uint8_t reliability = 0; ///< sack::reliability_mode of this stream
    bool is_retransmission = false;
    bool end_of_stream = false; ///< final byte of *this stream* (not the connection)
    /// Application bytes (empty = length-only; see data_segment::payload).
    std::vector<std::uint8_t> payload;

    bool operator==(const data_stream_segment&) const = default;
};

/// Standard RFC 3448 receiver report (receiver-side loss estimation).
struct tfrc_feedback_segment {
    sim_time ts_echo = 0;   ///< timestamp of last data packet received
    sim_time t_delay = 0;   ///< time spent at receiver before sending this report
    double x_recv = 0.0;    ///< receive rate since last report, bytes/s
    double p = 0.0;         ///< receiver-computed loss event rate
    std::uint64_t highest_seq = 0;

    bool operator==(const tfrc_feedback_segment&) const = default;
};

/// SACK feedback: a cumulative ack plus SACK blocks.
///
/// In QTPlight mode this is the entire receiver report — no loss rate is
/// carried; computing it is the sender's job (has_p = false). In QTPAF
/// mode (receiver-side estimation composed with reliability), the
/// receiver additionally reports its RFC 3448 loss event rate (has_p =
/// true), so one segment serves both the rate controller and the
/// retransmission scoreboard.
struct sack_feedback_segment {
    std::uint64_t cum_ack = 0; ///< all seq < cum_ack received
    std::vector<sack_block> blocks;
    sim_time ts_echo = 0;
    sim_time t_delay = 0;
    double x_recv = 0.0; ///< receive rate, bytes/s (cheap byte counter)
    bool has_p = false;  ///< receiver-side estimation: p is meaningful
    double p = 0.0;      ///< receiver-computed loss event rate

    bool operator==(const sack_feedback_segment&) const = default;
};

/// Profile feature bits carried in handshake segments. The semantics live
/// in core/profile.hpp; the layout is defined here so the wire decoder can
/// reject malformed encodings without depending on core/.
inline constexpr std::uint32_t profile_reliability_mask = 0x3; ///< bits 0-1 (value 3 invalid)
inline constexpr std::uint32_t profile_estimation_bit = 1u << 2; ///< 0 = receiver, 1 = sender
inline constexpr std::uint32_t profile_qos_bit = 1u << 3;
/// Congestion-control algorithm, bits 4-5 (0 = tfrc, 1 = newreno,
/// 2 = westwood, value 3 unassigned/invalid). Zero means TFRC so every
/// pre-cc encoding decodes — and re-encodes — unchanged.
inline constexpr std::uint32_t profile_cc_shift = 4;
inline constexpr std::uint32_t profile_cc_mask = 0x3u << profile_cc_shift;
inline constexpr std::uint32_t profile_bits_mask = 0x3F;

constexpr bool valid_profile_bits(std::uint32_t bits) {
    return (bits & ~profile_bits_mask) == 0 &&
           (bits & profile_reliability_mask) != profile_reliability_mask &&
           (bits & profile_cc_mask) != profile_cc_mask;
}

/// Connection management segments; carry the proposed/accepted profile in
/// encoded form (see core/profile.hpp for the bit layout).
///
/// `reneg`/`reneg_ack` renegotiate the profile mid-connection: either side
/// proposes a new profile (`reneg`, identified by `token`); the peer
/// answers with the accepted — possibly downgraded — profile and the data
/// sequence number from which it applies (`reneg_ack`).
///
/// `retry` is the listener's stateless address-validation round (QUIC
/// style): it carries a cookie in `boundary_seq` (a keyed hash of flow
/// id, source address and a coarse time bucket — see
/// core/syn_cookie.hpp) and costs the listener zero per-connection
/// state. The client echoes the cookie in a retried SYN (also in
/// `boundary_seq`, which a plain SYN leaves 0); only a SYN with a valid
/// cookie spawns an endpoint. The wire layout is unchanged — both fields
/// already travel in every handshake segment.
struct handshake_segment {
    enum class kind : std::uint8_t {
        syn = 0,
        syn_ack = 1,
        fin = 2,
        fin_ack = 3,
        reneg = 4,
        reneg_ack = 5,
        retry = 6,
    };
    kind type = kind::syn;
    std::uint32_t profile_bits = 0;
    double target_rate_bps = 0.0; ///< QoS reservation advertised to peer
    std::uint32_t token = 0;      ///< reneg exchange id (matches ack to proposal)
    /// reneg_ack: first seq under the new profile. retry: the stateless
    /// cookie; syn: the echoed cookie (0 = none).
    std::uint64_t boundary_seq = 0;

    bool operator==(const handshake_segment&) const = default;
};

/// Path validation probes (QUIC PATH_CHALLENGE/PATH_RESPONSE style).
///
/// A migrating endpoint — or one that observes a peer's datagrams
/// arriving from a new address — proves the new path forwards in both
/// directions before steering traffic onto it: it sends a challenge
/// carrying a random 8-byte token and only treats the path as validated
/// when a response echoes that exact token. Tokens are never reused and
/// 0 is reserved (rejected on the wire), so a response can only be
/// produced by something that saw the challenge on the path under test.
/// The wire form carries an XOR fold of the token bytes; the decoder
/// rejects frames whose fold does not match, so bit-flipped probes die
/// at the codec instead of reaching the path manager.
struct path_challenge_segment {
    std::uint64_t token = 0; ///< random, non-zero

    bool operator==(const path_challenge_segment&) const = default;
};

/// Echo of a path_challenge token, sent from the challenged endpoint.
struct path_response_segment {
    std::uint64_t token = 0; ///< the challenge token, verbatim

    bool operator==(const path_response_segment&) const = default;
};

/// XOR fold of a path token's bytes, carried on the wire as a cheap
/// integrity check (defined here so the decoder and fuzzers agree).
constexpr std::uint8_t path_token_check(std::uint64_t token) {
    std::uint8_t c = 0;
    for (int i = 0; i < 8; ++i) c ^= static_cast<std::uint8_t>(token >> (8 * i));
    return c;
}

/// Baseline TCP segment (byte sequence space, cumulative + SACK acks).
struct tcp_segment {
    std::uint64_t seq = 0;      ///< first byte carried
    std::uint32_t payload_len = 0;
    std::uint64_t ack = 0;      ///< next byte expected (valid when is_ack)
    bool is_ack = false;
    bool syn = false;
    bool fin = false;
    std::vector<sack_block> sack; ///< byte ranges received above ack
    sim_time ts = 0;
    sim_time ts_echo = 0;

    bool operator==(const tcp_segment&) const = default;
};

using segment = std::variant<data_segment, tfrc_feedback_segment, sack_feedback_segment,
                             handshake_segment, tcp_segment, data_stream_segment,
                             path_challenge_segment, path_response_segment>;

/// Wire header size in bytes for each segment kind (payload excluded).
/// Matches what packet/wire.hpp actually emits, so simulation sizes and
/// live datapath sizes agree.
std::uint32_t header_size(const segment& s);

/// Total wire size: header + payload.
std::uint32_t wire_size(const segment& s);

/// Short human-readable rendering for traces.
std::string describe(const segment& s);

/// A packet in flight. Cheap to copy: the segment body is shared.
struct packet {
    std::uint32_t flow_id = 0;
    std::uint32_t src = 0; ///< source node id
    std::uint32_t dst = 0; ///< destination node id
    std::uint32_t size_bytes = 0;
    dscp ds = dscp::best_effort;
    bool ecn_capable = false;
    bool ecn_ce = false;
    sim_time sent_at = 0;     ///< stamped by the host on transmit
    sim_time enqueued_at = 0; ///< stamped by queues for delay accounting
    std::shared_ptr<const segment> body;
};

/// Build a packet around a segment, computing its wire size.
packet make_packet(std::uint32_t flow_id, std::uint32_t src, std::uint32_t dst, segment body,
                   dscp ds = dscp::best_effort);

} // namespace vtp::packet
