#include "app/sources.hpp"

namespace vtp::app {

namespace {

packet::packet datagram(std::uint32_t flow, std::uint32_t src, std::uint32_t dst,
                        std::uint64_t seq, std::uint32_t payload, util::sim_time now) {
    packet::data_segment d;
    d.seq = seq;
    d.byte_offset = seq * payload;
    d.payload_len = payload;
    d.ts = now;
    return packet::make_packet(flow, src, dst, d);
}

} // namespace

// --- cbr_source -----------------------------------------------------------

cbr_source::cbr_source(cbr_config cfg) : cfg_(cfg) {}

util::sim_time cbr_source::spacing() const {
    const double seconds = static_cast<double>(cfg_.packet_size) * 8.0 / cfg_.rate_bps;
    return util::from_seconds(seconds);
}

void cbr_source::start(qtp::environment& env) {
    env_ = &env;
    env_->schedule(cfg_.start_at, [this] { tick(); });
}

void cbr_source::tick() {
    const util::sim_time now = env_->now();
    if (now >= cfg_.stop_at) return;
    env_->send(datagram(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr, next_seq_++,
                        cfg_.packet_size, now));
    ++packets_sent_;
    bytes_sent_ += cfg_.packet_size;
    env_->schedule(spacing(), [this] { tick(); });
}

// --- poisson_source ---------------------------------------------------------

poisson_source::poisson_source(poisson_config cfg) : cfg_(cfg) {}

void poisson_source::start(qtp::environment& env) {
    env_ = &env;
    tick();
}

void poisson_source::tick() {
    const double mean_spacing_s =
        static_cast<double>(cfg_.packet_size) * 8.0 / cfg_.mean_rate_bps;
    const util::sim_time gap =
        util::from_seconds(env_->random().exponential(mean_spacing_s));
    env_->schedule(gap, [this] {
        env_->send(datagram(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr,
                            next_seq_++, cfg_.packet_size, env_->now()));
        ++packets_sent_;
        tick();
    });
}

// --- onoff_source -----------------------------------------------------------

onoff_source::onoff_source(onoff_config cfg) : cfg_(cfg) {}

void onoff_source::start(qtp::environment& env) {
    env_ = &env;
    toggle(); // begin with an OFF->ON transition draw
}

void onoff_source::toggle() {
    on_ = !on_;
    const double mean_s =
        util::to_seconds(on_ ? cfg_.mean_on : cfg_.mean_off);
    const util::sim_time period =
        util::from_seconds(env_->random().exponential(mean_s));
    env_->schedule(period, [this] { toggle(); });
    if (on_ && send_timer_ == qtp::no_timer) tick();
}

void onoff_source::tick() {
    send_timer_ = qtp::no_timer;
    if (!on_) return;
    env_->send(datagram(cfg_.flow_id, env_->local_addr(), cfg_.peer_addr, next_seq_++,
                        cfg_.packet_size, env_->now()));
    ++packets_sent_;
    bytes_sent_ += cfg_.packet_size;
    const double spacing_s =
        static_cast<double>(cfg_.packet_size) * 8.0 / cfg_.on_rate_bps;
    send_timer_ = env_->schedule(util::from_seconds(spacing_s), [this] { tick(); });
}

// --- sink_agent --------------------------------------------------------------

void sink_agent::on_packet(const packet::packet& pkt) {
    ++packets_;
    if (const auto* data = std::get_if<packet::data_segment>(pkt.body.get())) {
        bytes_ += data->payload_len;
        if (data->ts > 0 && env_ != nullptr)
            delays_.add(util::to_seconds(env_->now() - data->ts));
    }
}

} // namespace vtp::app
