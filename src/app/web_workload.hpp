// Closed-loop web-like background traffic.
//
// A population of emulated users on one dumbbell pair: each user
// repeatedly (1) starts a TCP transfer whose size is Pareto-distributed
// (heavy-tailed, web-like), (2) waits for it to complete, (3) thinks for
// an exponential time, then repeats. This is the standard "realistic
// background" for transport experiments — short flows in slow start mix
// with long-lived ones.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/topology.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "util/rng.hpp"

namespace vtp::app {

struct web_workload_config {
    std::size_t users = 4;
    double pareto_shape = 1.3;           ///< tail index (<2: infinite variance)
    std::uint64_t mean_transfer_bytes = 60'000;
    util::sim_time mean_think = util::seconds(1);
    util::sim_time poll_interval = util::milliseconds(50);
    std::uint32_t first_flow_id = 50'000;
    std::uint64_t seed = 99;
};

/// Drives the workload on dumbbell pair `pair_index`. The object must
/// outlive the simulation run.
class web_workload {
public:
    web_workload(sim::dumbbell& net, std::size_t pair_index, web_workload_config cfg);

    /// Begin all users (call once before running the scheduler).
    void start();

    std::uint64_t transfers_completed() const { return transfers_completed_; }
    std::uint64_t bytes_completed() const { return bytes_completed_; }

private:
    struct user {
        tcp::tcp_sender_agent* sender = nullptr;
        std::uint64_t size = 0;
        bool active = false;
    };

    void start_transfer(std::size_t user_index);
    void poll(std::size_t user_index);
    std::uint64_t draw_size();

    sim::dumbbell& net_;
    std::size_t pair_;
    web_workload_config cfg_;
    util::rng rng_;
    std::uint32_t next_flow_id_;
    std::vector<user> users_;
    std::uint64_t transfers_completed_ = 0;
    std::uint64_t bytes_completed_ = 0;
};

} // namespace vtp::app
