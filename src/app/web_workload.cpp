#include "app/web_workload.hpp"

#include <algorithm>
#include <cmath>

namespace vtp::app {

web_workload::web_workload(sim::dumbbell& net, std::size_t pair_index,
                           web_workload_config cfg)
    : net_(net),
      pair_(pair_index),
      cfg_(cfg),
      rng_(cfg.seed),
      next_flow_id_(cfg.first_flow_id),
      users_(cfg.users) {}

std::uint64_t web_workload::draw_size() {
    // Pareto with the configured mean: scale = mean*(shape-1)/shape.
    const double shape = cfg_.pareto_shape;
    const double scale =
        static_cast<double>(cfg_.mean_transfer_bytes) * (shape - 1.0) / shape;
    const double size = rng_.pareto(shape, std::max(scale, 1000.0));
    return static_cast<std::uint64_t>(std::min(size, 20.0 * 1e6)); // cap at 20 MB
}

void web_workload::start() {
    for (std::size_t u = 0; u < users_.size(); ++u) {
        // Stagger user start times to avoid a synchronised stampede.
        const util::sim_time offset = util::from_seconds(
            rng_.exponential(util::to_seconds(cfg_.mean_think)));
        net_.sched().after(offset, [this, u] { start_transfer(u); });
    }
}

void web_workload::start_transfer(std::size_t user_index) {
    user& u = users_[user_index];
    const std::uint32_t flow = next_flow_id_++;
    u.size = draw_size();
    u.active = true;

    tcp::tcp_sender_config scfg;
    scfg.flow_id = flow;
    scfg.peer_addr = net_.right_addr(pair_);
    scfg.max_bytes = u.size;
    tcp::tcp_receiver_config rcfg;
    rcfg.flow_id = flow;
    rcfg.peer_addr = net_.left_addr(pair_);

    net_.right_host(pair_).attach(flow,
                                  std::make_unique<tcp::tcp_receiver_agent>(rcfg));
    u.sender = net_.left_host(pair_).attach(
        flow, std::make_unique<tcp::tcp_sender_agent>(scfg));

    net_.sched().after(cfg_.poll_interval, [this, user_index] { poll(user_index); });
}

void web_workload::poll(std::size_t user_index) {
    user& u = users_[user_index];
    if (!u.active) return;
    if (u.sender != nullptr && u.sender->completed()) {
        u.active = false;
        ++transfers_completed_;
        bytes_completed_ += u.size;
        const util::sim_time think = util::from_seconds(
            rng_.exponential(util::to_seconds(cfg_.mean_think)));
        net_.sched().after(think, [this, user_index] { start_transfer(user_index); });
        return;
    }
    net_.sched().after(cfg_.poll_interval, [this, user_index] { poll(user_index); });
}

} // namespace vtp::app
