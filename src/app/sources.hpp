// Application-level traffic sources and sinks.
//
// These agents generate open-loop load (no congestion control): constant
// bit rate, Poisson, and exponential on/off — the classic background
// models for transport evaluations — plus a measuring sink that records
// one-way delay and goodput. Closed-loop web-like background (repeated
// TCP transfers with heavy-tailed sizes) lives in app/web_workload.hpp.
#pragma once

#include <cstdint>

#include "core/environment.hpp"
#include "util/stats.hpp"

namespace vtp::app {

struct cbr_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    double rate_bps = 1e6;
    std::uint32_t packet_size = 1000; ///< payload bytes
    util::sim_time start_at = 0;
    util::sim_time stop_at = util::time_never;
};

/// Constant-bit-rate datagram source.
class cbr_source : public qtp::agent {
public:
    explicit cbr_source(cbr_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet&) override {}
    std::string name() const override { return "cbr-source"; }

    std::uint64_t packets_sent() const { return packets_sent_; }
    std::uint64_t bytes_sent() const { return bytes_sent_; }

private:
    void tick();
    util::sim_time spacing() const;

    cbr_config cfg_;
    qtp::environment* env_ = nullptr;
    std::uint64_t next_seq_ = 0;
    std::uint64_t packets_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
};

struct poisson_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    double mean_rate_bps = 1e6;
    std::uint32_t packet_size = 1000;
};

/// Poisson packet arrivals (exponential spacing) at a mean rate.
class poisson_source : public qtp::agent {
public:
    explicit poisson_source(poisson_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet&) override {}
    std::string name() const override { return "poisson-source"; }

    std::uint64_t packets_sent() const { return packets_sent_; }

private:
    void tick();

    poisson_config cfg_;
    qtp::environment* env_ = nullptr;
    std::uint64_t next_seq_ = 0;
    std::uint64_t packets_sent_ = 0;
};

struct onoff_config {
    std::uint32_t flow_id = 0;
    std::uint32_t peer_addr = 0;
    double on_rate_bps = 2e6;           ///< rate while bursting
    std::uint32_t packet_size = 1000;
    util::sim_time mean_on = util::milliseconds(500);
    util::sim_time mean_off = util::milliseconds(500);
};

/// Exponential on/off source (bursty background, VoIP-talkspurt-like).
class onoff_source : public qtp::agent {
public:
    explicit onoff_source(onoff_config cfg);

    void start(qtp::environment& env) override;
    void on_packet(const packet::packet&) override {}
    std::string name() const override { return "onoff-source"; }

    std::uint64_t packets_sent() const { return packets_sent_; }
    std::uint64_t bytes_sent() const { return bytes_sent_; }
    bool bursting() const { return on_; }

private:
    void toggle();
    void tick();

    onoff_config cfg_;
    qtp::environment* env_ = nullptr;
    bool on_ = false;
    std::uint64_t next_seq_ = 0;
    std::uint64_t packets_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
    qtp::timer_id send_timer_ = qtp::no_timer;
};

/// Measuring sink: counts datagram goodput and samples one-way delay
/// (requires synchronised clocks, which simulation has by construction).
class sink_agent : public qtp::agent {
public:
    void start(qtp::environment& env) override { env_ = &env; }
    void on_packet(const packet::packet& pkt) override;
    std::string name() const override { return "sink"; }

    std::uint64_t packets() const { return packets_; }
    std::uint64_t bytes() const { return bytes_; }
    const util::sample_series& delay_seconds() const { return delays_; }

private:
    qtp::environment* env_ = nullptr;
    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
    util::sample_series delays_;
};

} // namespace vtp::app
