// Multi-stream multiplexing: a media stream and a bulk transfer share
// one connection — and one gTFRC congestion state — instead of fighting
// each other from two.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/mux_media_bulk
//
// What it shows:
//  1. one vtp::session carrying two streams with different service
//     profiles: stream 0 = bulk, full reliability; stream 1 = media,
//     partial reliability with 1 kB messages expiring after 120 ms,
//     scheduled at twice the bulk stream's weight,
//  2. per-stream delivery callbacks on the receiving side,
//  3. under 2% loss the bulk stream arrives byte-exact while the media
//     stream sheds only messages whose deadline passed.
#include <cstdio>
#include <map>

#include "api/server.hpp"
#include "api/session.hpp"
#include "sim/topology.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

int main() {
    // Network: 10 Mb/s bottleneck, ~60 ms RTT, 2% loss.
    sim::dumbbell_config net_cfg;
    net_cfg.pairs = 1;
    net_cfg.bottleneck_rate_bps = 10e6;
    net_cfg.bottleneck_delay = milliseconds(28);
    net_cfg.access_delay = milliseconds(1);
    net_cfg.bottleneck_queue_packets = 2000;
    sim::dumbbell net(net_cfg);
    net.forward_bottleneck().set_loss_model(std::make_unique<sim::bernoulli_loss>(0.02, 7));

    // Server: count delivered bytes per stream.
    server srv(net.right_host(0), server_options{});
    std::map<std::uint32_t, std::uint64_t> delivered;
    srv.set_on_session([&](session& s) {
        s.set_on_stream_delivered(
            [&](std::uint32_t id, std::uint64_t, std::uint32_t len) {
                delivered[id] += len;
            });
    });

    // Client: bulk on stream 0 (full reliability via the connection
    // profile), media on a second stream with its own service profile.
    session tx = session::connect(net.left_host(0), net.right_addr(0),
                                  session_options::reliable());

    stream::stream_options media;
    media.reliability = sack::reliability_mode::partial;
    media.weight = 2; // media gets 2/3 of the send slots while backlogged
    media.message_size = 1000;
    media.message_deadline = milliseconds(120);
    const std::uint32_t media_id = tx.open_stream(media);

    constexpr std::uint64_t bulk_bytes = 3'000'000;
    constexpr std::uint64_t media_bytes = 1'000'000;
    tx.send(bulk_bytes);            // stream 0
    tx.send(media_id, media_bytes); // stream 1
    tx.close();

    while (!tx.closed() && net.sched().now() < seconds(120)) {
        net.sched().run_until(net.sched().now() + milliseconds(500));
    }

    const double elapsed = util::to_seconds(net.sched().now());
    std::printf("connection closed : %s after %.1f s (one connection, %zu streams)\n",
                tx.closed() ? "yes" : "no", elapsed, tx.stats().streams);
    for (const auto& info : tx.stream_infos()) {
        const char* kind = info.reliability == sack::reliability_mode::full
                               ? "full   "
                               : info.reliability == sack::reliability_mode::partial
                                     ? "partial"
                                     : "none   ";
        std::printf(
            "stream %u (%s, w=%u): offered %llu, delivered %llu, rtx %llu, "
            "expired %llu bytes\n",
            info.id, kind, info.weight,
            static_cast<unsigned long long>(info.bytes_offered),
            static_cast<unsigned long long>(delivered[info.id]),
            static_cast<unsigned long long>(info.rtx_bytes_sent),
            static_cast<unsigned long long>(info.abandoned_bytes));
    }

    const bool bulk_exact = delivered[0] == bulk_bytes;
    const bool media_shed = delivered[media_id] <= media_bytes;
    std::printf("bulk byte-exact   : %s\n", bulk_exact ? "yes" : "NO");
    std::printf("media shed only expired messages: %s (%.1f%% delivered)\n",
                media_shed ? "yes" : "NO",
                100.0 * delivered[media_id] / media_bytes);
    return tx.closed() && bulk_exact ? 0 : 1;
}
