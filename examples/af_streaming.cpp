// QTPAF in its element: media streaming over a QoS-enabled (DiffServ/AF)
// network — the EuQoS scenario of the paper's §4.
//
// A streaming server contracts a 4 Mb/s committed rate with the network
// edge. The edge token-bucket marks its traffic in/out of profile; the
// core RIO queue protects in-profile packets. Two best-effort TCP bulk
// flows compete for the same 10 Mb/s bottleneck. The QTPAF connection
// (gTFRC + full reliability) must hold the contracted rate; for contrast
// the same scenario is repeated with plain TCP carrying the stream.
#include <cstdio>
#include <functional>

#include "api/server.hpp"
#include "api/session.hpp"
#include "diffserv/conditioner.hpp"
#include "diffserv/rio.hpp"
#include "sim/topology.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

namespace {

constexpr double target_bps = 4e6;

sim::dumbbell make_af_network() {
    sim::dumbbell_config cfg;
    cfg.pairs = 3;
    cfg.bottleneck_rate_bps = 10e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_queue = [] {
        return std::make_unique<diffserv::rio_queue>(
            diffserv::default_rio_params(60, 1050), 42);
    };
    return sim::dumbbell(cfg);
}

void add_background_tcp(sim::dumbbell& net) {
    for (std::size_t i = 1; i <= 2; ++i) {
        tcp::tcp_sender_config s;
        s.flow_id = static_cast<std::uint32_t>(10 + i);
        s.peer_addr = net.right_addr(i);
        tcp::tcp_receiver_config r;
        r.flow_id = s.flow_id;
        r.peer_addr = net.left_addr(i);
        net.right_host(i).attach(s.flow_id, std::make_unique<tcp::tcp_receiver_agent>(r));
        net.left_host(i).attach(s.flow_id, std::make_unique<tcp::tcp_sender_agent>(s));
    }
}

void report_timeline(sim::dumbbell& net, const char* label,
                     const std::function<std::uint64_t()>& bytes) {
    std::printf("%s — achieved rate per 5 s window (target %.1f Mb/s):\n  ", label,
                target_bps / 1e6);
    std::uint64_t last = 0;
    for (int window = 0; window < 12; ++window) {
        net.sched().run_until(net.sched().now() + seconds(5));
        const std::uint64_t now_bytes = bytes();
        std::printf("%.2f ", (now_bytes - last) * 8.0 / 5.0 / 1e6);
        last = now_bytes;
    }
    std::printf(" Mb/s\n");
}

} // namespace

int main() {
    std::printf("AF streaming scenario: 4 Mb/s reservation on a 10 Mb/s RIO\n");
    std::printf("bottleneck against two best-effort TCP bulk flows.\n\n");

    // --- QTPAF carrying the stream -------------------------------------
    {
        sim::dumbbell net = make_af_network();
        diffserv::conditioner edge(net.sched());
        edge.set_profile(1, target_bps, 15'000);
        edge.install_egress(net.left_node(0));
        add_background_tcp(net);

        server srv(net.right_host(0), server_options{});
        session* rx = nullptr;
        srv.set_on_session([&](session& s) { rx = &s; });

        session_options opts = session_options::af(target_bps);
        opts.flow_id = 1; // must match the edge conditioner's profile
        session tx = session::connect(net.left_host(0), net.right_addr(0), opts);
        tx.send(UINT64_MAX / 2); // endless stream

        report_timeline(net, "QTPAF", [&rx] {
            return rx != nullptr ? rx->stats().bytes_received : 0;
        });

        const auto& marks = edge.stats(1);
        std::printf("  edge marking: %llu green / %llu yellow packets\n\n",
                    static_cast<unsigned long long>(marks.green_packets),
                    static_cast<unsigned long long>(marks.yellow_packets));
    }

    // --- plain TCP carrying the stream (same contract) ------------------
    {
        sim::dumbbell net = make_af_network();
        diffserv::conditioner edge(net.sched());
        edge.set_profile(1, target_bps, 15'000);
        edge.install_egress(net.left_node(0));
        add_background_tcp(net);

        tcp::tcp_sender_config s;
        s.flow_id = 1;
        s.peer_addr = net.right_addr(0);
        tcp::tcp_receiver_config r;
        r.flow_id = 1;
        r.peer_addr = net.left_addr(0);
        auto* rx =
            net.right_host(0).attach(1, std::make_unique<tcp::tcp_receiver_agent>(r));
        net.left_host(0).attach(1, std::make_unique<tcp::tcp_sender_agent>(s));

        report_timeline(net, "TCP  ", [rx] { return rx->delivered_bytes(); });
    }

    std::printf("\nQTPAF holds the negotiated rate from the first window; TCP\n");
    std::printf("oscillates below it whenever out-of-profile drops halve its window.\n");
    return 0;
}
