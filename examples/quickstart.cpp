// Quickstart: real payload through the poll-based vtp::session API v2.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart
//
// The same application pattern runs twice:
//  1. over the discrete-event simulator (a lossy dumbbell), and
//  2. over a live 2-shard engine::server on UDP loopback,
// both times transferring a checksummed buffer with *zero* std::function
// callbacks on the data path:
//   - the sender pushes bytes with send(stream, span) and respects
//     backpressure (a clamped send retries after progress / `writable`),
//   - the receiver drains poll() events and recv()s payload bytes,
//   - on the engine, poll_events() merges all shards' events on the
//     application thread and readable events carry the payload chunks.
#include <cstdio>
#include <span>
#include <vector>

#include "api/server.hpp"
#include "api/session.hpp"
#include "engine/server.hpp"
#include "net/event_loop.hpp"
#include "net/udp_host.hpp"
#include "sim/topology.hpp"
#include "util/pattern.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

namespace {

constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ULL;

std::uint64_t fnv1a(std::uint64_t hash, const std::uint8_t* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::vector<std::uint8_t> make_payload(std::size_t n) {
    // The library's shared verification pattern (util/pattern.hpp) —
    // the same bytes vtpload --payload and the scenario harness check.
    return util::pattern_buffer(1, 0, n);
}

// --- 1. simulator: dumbbell with 1% loss ----------------------------------
bool run_sim(const std::vector<std::uint8_t>& payload) {
    sim::dumbbell_config net_cfg;
    net_cfg.pairs = 1;
    net_cfg.bottleneck_rate_bps = 10e6;
    net_cfg.bottleneck_delay = milliseconds(28);
    net_cfg.access_delay = milliseconds(1);
    sim::dumbbell net(net_cfg);
    net.forward_bottleneck().set_loss_model(std::make_unique<sim::bernoulli_loss>(0.01, 7));

    server srv(net.right_host(0), server_options{});
    session* rx = nullptr;
    srv.set_on_session([&](session& s) { rx = &s; }); // control plane only

    session_options opts = session_options::reliable();
    opts.max_buffered_bytes = 256 * 1024; // exercise writable backpressure
    session tx = session::connect(net.left_host(0), net.right_addr(0), opts);

    std::size_t sent = 0;
    bool closed_issued = false;
    std::uint64_t rx_hash = fnv_offset;
    std::uint64_t rx_bytes = 0;
    bool fin_seen = false;
    event evs[32];
    std::uint8_t buf[4096];

    while (!tx.closed() && net.sched().now() < seconds(120)) {
        net.sched().run_until(net.sched().now() + milliseconds(20));

        // Sender: push as much as the buffer cap accepts; a short write
        // simply retries after the transport drained (the `writable`
        // event polls out below — this loop uses it as its pacing tick).
        while (sent < payload.size()) {
            const std::uint64_t n =
                tx.send(0, std::span<const std::uint8_t>(payload).subspan(sent));
            sent += static_cast<std::size_t>(n);
            if (n == 0) break;
        }
        if (sent == payload.size() && !closed_issued) {
            tx.close();
            closed_issued = true;
        }
        tx.poll(evs, 32); // writable / established / closed

        if (rx != nullptr) {
            const std::size_t n = rx->poll(evs, 32);
            for (std::size_t i = 0; i < n; ++i) {
                if (evs[i].type == event_type::readable) {
                    // Edge-triggered: drain until recv() returns 0.
                    while (const std::size_t got =
                               rx->recv(evs[i].stream_id, std::span<std::uint8_t>(buf))) {
                        rx_hash = fnv1a(rx_hash, buf, got);
                        rx_bytes += got;
                    }
                } else if (evs[i].type == event_type::fin) {
                    fin_seen = true;
                }
            }
        }
    }

    const std::uint64_t want = fnv1a(fnv_offset, payload.data(), payload.size());
    const bool ok = tx.closed() && fin_seen && rx_bytes == payload.size() &&
                    rx_hash == want;
    std::printf("[sim]    %s: %llu/%zu bytes in %.1f s, checksum %s "
                "(%llu pkts, %llu rtx bytes)\n",
                ok ? "PASS" : "FAIL", static_cast<unsigned long long>(rx_bytes),
                payload.size(), util::to_seconds(net.sched().now()),
                rx_hash == want ? "ok" : "MISMATCH",
                static_cast<unsigned long long>(tx.stats().packets_sent),
                static_cast<unsigned long long>(tx.stats().rtx_bytes_sent));
    return ok;
}

// --- 2. live: 2-shard engine::server on UDP loopback ----------------------
bool run_engine(const std::vector<std::uint8_t>& payload) {
    engine::engine_config ecfg;
    ecfg.port = 48613;
    ecfg.shards = 2;
    engine::server eng(ecfg);
    try {
        eng.start();
    } catch (const std::exception& e) {
        std::printf("[engine] SKIP: cannot start engine (%s)\n", e.what());
        return true;
    }

    net::event_loop loop;
    net::udp_host client(loop, 48614, /*rng_seed=*/1);
    session_options opts = session_options::reliable();
    opts.packet_size = 1200;
    session tx = session::connect(client, ecfg.port, opts);

    std::size_t sent = 0;
    bool closed_issued = false;
    std::uint64_t rx_hash = fnv_offset;
    std::uint64_t rx_bytes = 0;
    std::uint64_t next_offset = 0;
    bool fin_seen = false;
    bool in_order = true;
    engine::engine_event evs[64];
    const util::sim_time deadline = loop.now() + seconds(30);

    while (!(tx.closed() && fin_seen) && loop.now() < deadline) {
        loop.run(milliseconds(2)); // client-side I/O + timers

        while (sent < payload.size()) {
            const std::uint64_t n =
                tx.send(0, std::span<const std::uint8_t>(payload).subspan(sent));
            sent += static_cast<std::size_t>(n);
            if (n == 0) break;
        }
        if (sent == payload.size() && !closed_issued) {
            tx.close();
            closed_issued = true;
        }

        // Application thread: one poll loop serves every shard's
        // sessions; readable events carry the delivered payload chunk.
        const std::size_t n = eng.poll_events(evs, 64);
        for (std::size_t i = 0; i < n; ++i) {
            const engine::engine_event& e = evs[i];
            if (e.ev.type == event_type::readable) {
                if (e.ev.offset != next_offset) in_order = false;
                next_offset = e.ev.offset + e.payload.size();
                rx_hash = fnv1a(rx_hash, e.payload.data(), e.payload.size());
                rx_bytes += e.payload.size();
            } else if (e.ev.type == event_type::fin) {
                fin_seen = true;
            }
        }
    }

    const std::uint64_t want = fnv1a(fnv_offset, payload.data(), payload.size());
    const engine::engine_stats st = eng.stats();
    const bool ok = tx.closed() && fin_seen && rx_bytes == payload.size() &&
                    rx_hash == want && in_order;
    std::printf("[engine] %s: %llu/%zu bytes over %zu shards, checksum %s, "
                "in-order %s (rx %llu dgrams, events dropped %llu)\n",
                ok ? "PASS" : "FAIL", static_cast<unsigned long long>(rx_bytes),
                payload.size(), eng.shard_count(), rx_hash == want ? "ok" : "MISMATCH",
                in_order ? "yes" : "NO",
                static_cast<unsigned long long>(st.datagrams_rx),
                static_cast<unsigned long long>(st.events_dropped));
    eng.stop();
    return ok;
}

} // namespace

int main() {
    const std::vector<std::uint8_t> payload = make_payload(2'000'000);
    const bool sim_ok = run_sim(payload);
    const bool engine_ok = run_engine(payload);
    return sim_ok && engine_ok ? 0 : 1;
}
