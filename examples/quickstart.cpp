// Quickstart: a reliable QTP transfer over a simulated network in ~60
// lines of application code.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// What it shows:
//  1. building a topology (a dumbbell with one sender/receiver pair),
//  2. opening a QTP connection with a negotiated profile
//     (full reliability + classic TFRC congestion control),
//  3. pushing a 5 MB stream through a lossy bottleneck,
//  4. reading the connection statistics afterwards.
#include <cstdio>

#include "core/qtp.hpp"
#include "sim/topology.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

int main() {
    // 1. Network: 1 pair, 10 Mb/s bottleneck, 60 ms base RTT, 1% loss.
    sim::dumbbell_config net_cfg;
    net_cfg.pairs = 1;
    net_cfg.bottleneck_rate_bps = 10e6;
    net_cfg.bottleneck_delay = milliseconds(28);
    net_cfg.access_delay = milliseconds(1);
    sim::dumbbell net(net_cfg);
    net.forward_bottleneck().set_loss_model(std::make_unique<sim::bernoulli_loss>(0.01, 7));

    // 2. A QTP connection: QTPAF profile with no QoS target degenerates
    //    to "TFRC congestion control + full SACK reliability".
    qtp::connection_config app;
    app.total_bytes = 5'000'000;
    qtp::connection_pair pair =
        qtp::make_connection(/*flow*/ 1, net.left_addr(0), net.right_addr(0),
                             qtp::qtp_af_profile(/*target rate*/ 0.0),
                             qtp::capabilities{}, app);

    // 3. Attach the endpoints and run until the transfer completes.
    auto* receiver = net.right_host(0).attach(1, std::move(pair.receiver));
    auto* sender = net.left_host(0).attach(1, std::move(pair.sender));

    while (!sender->transfer_complete() && net.sched().now() < seconds(120)) {
        net.sched().run_until(net.sched().now() + milliseconds(500));
    }

    // 4. Report.
    const double elapsed = util::to_seconds(net.sched().now());
    std::printf("profile          : %s\n", sender->active_profile().describe().c_str());
    std::printf("transfer complete: %s after %.1f s\n",
                sender->transfer_complete() ? "yes" : "no", elapsed);
    std::printf("stream received  : %llu / %llu bytes (complete=%s, in order)\n",
                static_cast<unsigned long long>(receiver->stream().received_bytes()),
                static_cast<unsigned long long>(app.total_bytes),
                receiver->stream().complete() ? "yes" : "no");
    std::printf("goodput          : %.2f Mb/s\n",
                receiver->stream().received_bytes() * 8.0 / elapsed / 1e6);
    std::printf("packets sent     : %llu (%llu bytes retransmitted)\n",
                static_cast<unsigned long long>(sender->packets_sent()),
                static_cast<unsigned long long>(sender->rtx_bytes_sent()));
    std::printf("loss event rate  : %.4f (receiver-side estimate)\n",
                receiver->history().loss_event_rate());
    return sender->transfer_complete() ? 0 : 1;
}
