// Quickstart: a reliable QTP transfer over a simulated network through
// the socket-style vtp::session API.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart
//
// What it shows:
//  1. building a topology (a dumbbell with one sender/receiver pair),
//  2. a vtp::server accepting connections on the right-hand host,
//  3. vtp::session::connect() proposing a negotiated profile
//     (full reliability + classic TFRC congestion control),
//  4. pushing a 5 MB stream through a lossy bottleneck with send()/close(),
//  5. reading the session statistics afterwards.
#include <cstdio>

#include "api/server.hpp"
#include "api/session.hpp"
#include "sim/topology.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

int main() {
    // 1. Network: 1 pair, 10 Mb/s bottleneck, 60 ms base RTT, 1% loss.
    sim::dumbbell_config net_cfg;
    net_cfg.pairs = 1;
    net_cfg.bottleneck_rate_bps = 10e6;
    net_cfg.bottleneck_delay = milliseconds(28);
    net_cfg.access_delay = milliseconds(1);
    sim::dumbbell net(net_cfg);
    net.forward_bottleneck().set_loss_model(std::make_unique<sim::bernoulli_loss>(0.01, 7));

    // 2. A server accepting QTP connections on the right-hand host.
    server srv(net.right_host(0), server_options{});
    std::uint64_t delivered = 0;
    srv.set_on_session([&](session& s) {
        s.set_on_delivered(
            [&](std::uint64_t, std::uint32_t len) { delivered += len; });
    });

    // 3. Connect. session_options::reliable() proposes the QTPAF
    //    composition with no QoS contract: "TFRC congestion control +
    //    full SACK reliability".
    session tx = session::connect(net.left_host(0), net.right_addr(0),
                                  session_options::reliable());

    // 4. Queue the whole transfer and half-close; the FIN goes out once
    //    every byte is delivered.
    constexpr std::uint64_t stream_bytes = 5'000'000;
    tx.send(stream_bytes);
    tx.close();

    while (!tx.closed() && net.sched().now() < seconds(120)) {
        net.sched().run_until(net.sched().now() + milliseconds(500));
    }

    // 5. Report.
    const session_stats st = tx.stats();
    const double elapsed = util::to_seconds(net.sched().now());
    std::printf("profile          : %s\n", st.profile.describe().c_str());
    std::printf("transfer complete: %s after %.1f s\n", tx.closed() ? "yes" : "no",
                elapsed);
    std::printf("stream delivered : %llu / %llu bytes (in order)\n",
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(stream_bytes));
    std::printf("goodput          : %.2f Mb/s\n", delivered * 8.0 / elapsed / 1e6);
    std::printf("packets sent     : %llu (%llu bytes retransmitted)\n",
                static_cast<unsigned long long>(st.packets_sent),
                static_cast<unsigned long long>(st.rtx_bytes_sent));
    std::printf("loss event rate  : %.4f\n", st.loss_event_rate);
    return tx.closed() ? 0 : 1;
}
