// QTPlight in its element: a resource-limited mobile receiver, through
// the vtp::session API.
//
// The "phone" runs a vtp::server whose capability policy refuses
// receiver-side loss estimation; profile negotiation therefore lands on
// QTPlight — the content server rebuilds the loss history from the
// phone's SACK feedback. The stream uses partial reliability with
// per-message deadlines: stale media is never retransmitted.
//
// The example prints the negotiated profile (watch the estimation
// placement flip), the phone's resident transport state, and what the
// sender learned about the path — all while the phone did nothing but
// merge ranges and echo timestamps.
#include <cstdio>

#include "api/server.hpp"
#include "api/session.hpp"
#include "sim/topology.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

int main() {
    // A wireless-ish path: 8 Mb/s, 80 ms RTT, bursty loss.
    sim::dumbbell_config net_cfg;
    net_cfg.pairs = 1;
    net_cfg.bottleneck_rate_bps = 8e6;
    net_cfg.bottleneck_delay = milliseconds(38);
    net_cfg.access_delay = milliseconds(1);
    sim::dumbbell net(net_cfg);
    sim::gilbert_elliott_loss::params channel;
    channel.p_good_to_bad = 0.005;
    channel.p_bad_to_good = 0.2;
    channel.loss_bad = 0.4;
    net.forward_bottleneck().set_loss_model(
        std::make_unique<sim::gilbert_elliott_loss>(channel, 99));

    // The phone: a passive endpoint that will not maintain a loss
    // history, whatever the sender proposes.
    server_options phone_opts;
    phone_opts.capabilities.support_receiver_estimation = false;
    server phone(net.right_host(0), phone_opts);
    session* phone_side = nullptr;
    phone.set_on_session([&](session& s) { phone_side = &s; });

    // The content server asks for partial reliability (300 ms deadlines
    // on 1 kB media messages); the phone's capabilities force sender-side
    // estimation during the handshake.
    session_options opts;
    opts.profile = qtp::qtp_light_profile(sack::reliability_mode::partial);
    opts.profile.estimation = tfrc::estimation_mode::receiver_side; // ask anyway
    opts.message_size = 1000;
    opts.message_deadline = milliseconds(300);
    session media = session::connect(net.left_host(0), net.right_addr(0), opts);
    media.send(UINT64_MAX / 2); // endless media stream

    net.sched().run_until(seconds(30));

    const session_stats tx = media.stats();
    const session_stats rx = phone_side->stats();
    std::printf("negotiated profile : %s\n", tx.profile.describe().c_str());
    std::printf("stream received    : %.2f MB over 30 s (%.2f Mb/s)\n",
                rx.bytes_received / 1e6, rx.bytes_received * 8.0 / 30e6);
    std::printf("\n--- what the phone had to do ---\n");
    std::printf("resident transport state : %zu bytes (no loss-interval history)\n",
                phone_side->receiver()->state_bytes());
    std::printf("feedback sent            : %llu packets, %llu bytes (one per RTT)\n",
                static_cast<unsigned long long>(rx.feedback_sent),
                static_cast<unsigned long long>(
                    phone_side->receiver()->feedback_bytes()));
    std::printf("loss events it tracked   : %llu (none: that is the point)\n",
                static_cast<unsigned long long>(
                    phone_side->receiver()->history().loss_events()));
    std::printf("\n--- what the server worked out on its own ---\n");
    std::printf("loss events reconstructed: %llu\n",
                static_cast<unsigned long long>(
                    media.sender()->estimator().history().loss_events()));
    std::printf("loss event rate          : %.4f\n", tx.loss_event_rate);
    std::printf("allowed rate             : %.2f Mb/s\n", tx.allowed_rate_bps / 1e6);
    std::printf("retransmitted            : %llu bytes (deadline-aware)\n",
                static_cast<unsigned long long>(tx.rtx_bytes_sent));
    std::printf("abandoned as stale       : %llu bytes\n",
                static_cast<unsigned long long>(
                    media.sender()->retransmissions().abandoned_bytes()));
    return 0;
}
