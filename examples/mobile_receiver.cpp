// QTPlight in its element: a resource-limited mobile receiver.
//
// The "phone" advertises that it cannot run receiver-side loss
// estimation; profile negotiation therefore lands on QTPlight — the
// sender rebuilds the loss history from the phone's SACK feedback. The
// stream uses partial reliability with per-message deadlines: stale
// media is never retransmitted.
//
// The example prints the negotiated profile (watch the estimation
// placement flip), the phone's resident transport state, and what the
// sender learned about the path — all while the phone did nothing but
// merge ranges and echo timestamps.
#include <cstdio>

#include "core/qtp.hpp"
#include "sim/topology.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

int main() {
    // A wireless-ish path: 8 Mb/s, 80 ms RTT, bursty loss.
    sim::dumbbell_config net_cfg;
    net_cfg.pairs = 1;
    net_cfg.bottleneck_rate_bps = 8e6;
    net_cfg.bottleneck_delay = milliseconds(38);
    net_cfg.access_delay = milliseconds(1);
    sim::dumbbell net(net_cfg);
    sim::gilbert_elliott_loss::params channel;
    channel.p_good_to_bad = 0.005;
    channel.p_bad_to_good = 0.2;
    channel.loss_bad = 0.4;
    net.forward_bottleneck().set_loss_model(
        std::make_unique<sim::gilbert_elliott_loss>(channel, 99));

    // The application asks for partial reliability (300 ms deadlines on
    // 1 kB media messages); the phone's capabilities force sender-side
    // estimation during the handshake.
    qtp::connection_config app;
    app.message_size = 1000;
    app.message_deadline = milliseconds(300);
    qtp::connection_pair pair = qtp::make_qtp_light(
        1, net.left_addr(0), net.right_addr(0), sack::reliability_mode::partial, app);

    auto* phone = net.right_host(0).attach(1, std::move(pair.receiver));
    auto* server = net.left_host(0).attach(1, std::move(pair.sender));

    net.sched().run_until(seconds(30));

    std::printf("negotiated profile : %s\n", server->active_profile().describe().c_str());
    std::printf("stream received    : %.2f MB over 30 s (%.2f Mb/s)\n",
                phone->received_bytes() / 1e6, phone->received_bytes() * 8.0 / 30e6);
    std::printf("\n--- what the phone had to do ---\n");
    std::printf("resident transport state : %zu bytes (no loss-interval history)\n",
                phone->state_bytes());
    std::printf("feedback sent            : %llu packets, %llu bytes (one per RTT)\n",
                static_cast<unsigned long long>(phone->feedback_sent()),
                static_cast<unsigned long long>(phone->feedback_bytes()));
    std::printf("loss events it tracked   : %llu (none: that is the point)\n",
                static_cast<unsigned long long>(phone->history().loss_events()));
    std::printf("\n--- what the server worked out on its own ---\n");
    std::printf("loss events reconstructed: %llu\n",
                static_cast<unsigned long long>(
                    server->estimator().history().loss_events()));
    std::printf("loss event rate          : %.4f\n",
                server->estimator().loss_event_rate());
    std::printf("allowed rate             : %.2f Mb/s\n",
                server->rate().allowed_rate() * 8.0 / 1e6);
    std::printf("retransmitted            : %llu bytes (deadline-aware)\n",
                static_cast<unsigned long long>(server->rtx_bytes_sent()));
    std::printf("abandoned as stale       : %llu bytes\n",
                static_cast<unsigned long long>(
                    server->retransmissions().abandoned_bytes()));
    return 0;
}
