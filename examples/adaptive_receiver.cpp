// Runtime renegotiation in action: a receiver downgrades the connection
// profile live when the loss regime changes — no teardown, no handshake
// rerun, congestion state intact.
//
// Timeline (one simulated minute):
//   t = 0 s   clean 10 Mb/s path. The client connects with the default
//             profile: no reliability, receiver-side (RFC 3448) loss
//             estimation — the receiver maintains the loss history.
//   t = 20 s  the path turns wireless-bad (bursty Gilbert-Elliott loss).
//             The receiver — imagine battery pressure plus a loss storm —
//             renegotiates to the QTPlight composition: *sender-side*
//             estimation (it drops its loss history) and *partial*
//             reliability so fresh losses are repaired while stale data
//             is never retransmitted.
//   t = 60 s  report: the profile switch is visible on both endpoints,
//             the stream kept flowing across the switch, and the
//             receiver's resident state shrank.
//
// This is the scenario the paper motivates QTPlight with — except here
// the composition changes *mid-connection* through the reneg/reneg_ack
// exchange instead of being fixed at the SYN.
#include <cstdio>

#include "api/server.hpp"
#include "api/session.hpp"
#include "sim/topology.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

int main() {
    sim::dumbbell_config net_cfg;
    net_cfg.pairs = 1;
    net_cfg.bottleneck_rate_bps = 10e6;
    net_cfg.bottleneck_delay = milliseconds(30);
    net_cfg.access_delay = milliseconds(1);
    sim::dumbbell net(net_cfg);

    // The receiving endpoint accepts anything and watches its own stream.
    server srv(net.right_host(0), server_options{});
    session* rx = nullptr;
    std::uint64_t delivered = 0;
    srv.set_on_session([&](session& s) {
        rx = &s;
        s.set_on_delivered([&](std::uint64_t, std::uint32_t len) { delivered += len; });
    });

    // Media sender: 1 kB messages, 400 ms playout deadline (only relevant
    // once the profile switches to partial reliability).
    session_options opts;
    opts.message_size = 1000;
    opts.message_deadline = milliseconds(400);
    session tx = session::connect(net.left_host(0), net.right_addr(0), opts);
    tx.send(UINT64_MAX / 2); // endless stream

    tx.set_on_profile_changed([&](const qtp::profile& p) {
        std::printf("[%5.1f s] sender   switched to { %s } from seq %llu\n",
                    util::to_seconds(net.sched().now()), p.describe().c_str(),
                    static_cast<unsigned long long>(tx.sender()->last_reneg_boundary()));
    });

    net.sched().run_until(seconds(20));
    const session_stats before = rx->stats();
    const std::size_t state_before = rx->receiver()->state_bytes();
    std::printf("[%5.1f s] clean phase: %s\n", 20.0, tx.active_profile().describe().c_str());
    std::printf("          delivered %.2f MB, receiver state %zu bytes "
                "(loss history resident)\n",
                before.bytes_delivered / 1e6, state_before);

    // The loss regime flips: bursty wireless loss from t = 20 s.
    sim::gilbert_elliott_loss::params storm;
    storm.p_good_to_bad = 0.01;
    storm.p_bad_to_good = 0.15;
    storm.loss_bad = 0.35;
    net.forward_bottleneck().set_loss_model(
        std::make_unique<sim::gilbert_elliott_loss>(storm, 4242));

    // The receiver reacts: drop to QTPlight — sender-side estimation,
    // partial (deadline-aware) reliability.
    rx->set_on_profile_changed([&](const qtp::profile& p) {
        std::printf("[%5.1f s] receiver switched to { %s }\n",
                    util::to_seconds(net.sched().now()), p.describe().c_str());
    });
    rx->renegotiate(qtp::qtp_light_profile(sack::reliability_mode::partial));

    net.sched().run_until(seconds(60));

    const session_stats tx_st = tx.stats();
    const session_stats rx_st = rx->stats();
    std::printf("\n--- after the storm (t = 60 s) ---\n");
    std::printf("active profile (sender)   : %s\n", tx.active_profile().describe().c_str());
    std::printf("active profile (receiver) : %s\n", rx->active_profile().describe().c_str());
    std::printf("renegotiations            : %u (boundary seq %llu)\n",
                tx_st.renegotiations,
                static_cast<unsigned long long>(tx.sender()->last_reneg_boundary()));
    std::printf("delivered                 : %.2f MB total (%.2f MB after the switch)\n",
                rx_st.bytes_delivered / 1e6,
                (rx_st.bytes_delivered - before.bytes_delivered) / 1e6);
    std::printf("receiver state            : %zu -> %zu bytes "
                "(loss-interval history no longer maintained)\n",
                state_before, rx->receiver()->state_bytes());
    std::printf("sender loss estimate      : %.4f (rebuilt from SACK vectors)\n",
                tx_st.loss_event_rate);
    std::printf("retransmitted             : %llu bytes, abandoned as stale: %llu\n",
                static_cast<unsigned long long>(tx_st.rtx_bytes_sent),
                static_cast<unsigned long long>(
                    tx.sender()->retransmissions().abandoned_bytes()));

    const bool switched = tx.active_profile() == rx->active_profile() &&
                          tx.active_profile().estimation ==
                              tfrc::estimation_mode::sender_side &&
                          tx_st.renegotiations == 1;
    std::printf("\n%s\n", switched ? "profile switch verified on both endpoints"
                                   : "ERROR: endpoints disagree on the profile");
    return switched ? 0 : 1;
}
