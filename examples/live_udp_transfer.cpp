// The same protocol stack on real sockets: a vtp::session transfer over
// UDP loopback — no simulator involved.
//
// Both endpoints live in one process for convenience (two udp_hosts on
// one event loop); the session/server code is byte-identical to what the
// simulator examples run, demonstrating the transport/substrate
// separation that makes the protocol "versatile".
#include <cstdio>

#include "api/server.hpp"
#include "api/session.hpp"
#include "net/udp_host.hpp"

using namespace vtp;
using util::milliseconds;

int main() {
    constexpr std::uint16_t server_port = 47001;
    constexpr std::uint16_t client_port = 47002;
    constexpr std::uint64_t stream_bytes = 2'000'000;

    net::event_loop loop;
    try {
        net::udp_host receiver_host(loop, server_port, 1);
        net::udp_host sender_host(loop, client_port, 2);

        // The receiving end is a vtp::server: it accepts the connection
        // and counts what the transport hands the application.
        server srv(receiver_host, server_options{});
        std::uint64_t delivered = 0;
        srv.set_on_session([&](session& s) {
            s.set_on_delivered(
                [&](std::uint64_t, std::uint32_t len) { delivered += len; });
        });

        // The sending end connects with full reliability and streams.
        session tx = session::connect(sender_host, server_port,
                                      session_options::reliable());
        tx.send(stream_bytes);
        tx.close();

        std::printf("transferring %.1f MB over UDP loopback %u -> %u ...\n",
                    stream_bytes / 1e6, client_port, server_port);

        const auto started = loop.now();
        while (!tx.closed() && loop.now() - started < util::seconds(30)) {
            loop.run(milliseconds(100));
        }
        const double elapsed = util::to_seconds(loop.now() - started);

        std::printf("complete   : %s in %.2f s\n", tx.closed() ? "yes" : "no", elapsed);
        std::printf("delivered  : %llu bytes\n",
                    static_cast<unsigned long long>(delivered));
        std::printf("goodput    : %.2f Mb/s\n", delivered * 8.0 / elapsed / 1e6);
        std::printf("datagrams  : %llu sent by sender, %llu by receiver (feedback)\n",
                    static_cast<unsigned long long>(sender_host.sent_datagrams()),
                    static_cast<unsigned long long>(receiver_host.sent_datagrams()));
        return tx.closed() ? 0 : 1;
    } catch (const std::exception& e) {
        std::printf("skipped: %s (sockets unavailable in this environment)\n", e.what());
        return 0;
    }
}
