// The same protocol stack on real sockets: a QTP transfer over UDP
// loopback — no simulator involved.
//
// Both endpoints live in one process for convenience (two udp_hosts on
// one event loop); the agents are byte-identical to the ones the
// simulator runs, demonstrating the transport/substrate separation that
// makes the protocol "versatile".
#include <cstdio>

#include "core/qtp.hpp"
#include "net/udp_host.hpp"

using namespace vtp;
using util::milliseconds;

int main() {
    constexpr std::uint16_t server_port = 47001;
    constexpr std::uint16_t client_port = 47002;
    constexpr std::uint64_t stream_bytes = 2'000'000;

    net::event_loop loop;
    try {
        net::udp_host server(loop, server_port, 1);
        net::udp_host client(loop, client_port, 2);

        qtp::connection_config app;
        app.total_bytes = stream_bytes;
        auto pair = qtp::make_connection(7, server_port, client_port,
                                         qtp::qtp_af_profile(0.0), qtp::capabilities{},
                                         app);
        auto* rx = client.attach(7, std::move(pair.receiver));
        auto* tx = server.attach(7, std::move(pair.sender));

        std::printf("transferring %.1f MB over UDP loopback %u -> %u ...\n",
                    stream_bytes / 1e6, server_port, client_port);

        const auto started = loop.now();
        while (!tx->transfer_complete() && loop.now() - started < util::seconds(30)) {
            loop.run(milliseconds(100));
        }
        const double elapsed = util::to_seconds(loop.now() - started);

        std::printf("complete   : %s in %.2f s\n",
                    tx->transfer_complete() ? "yes" : "no", elapsed);
        std::printf("received   : %llu bytes (stream complete: %s)\n",
                    static_cast<unsigned long long>(rx->stream().received_bytes()),
                    rx->stream().complete() ? "yes" : "no");
        std::printf("goodput    : %.2f Mb/s\n",
                    rx->stream().received_bytes() * 8.0 / elapsed / 1e6);
        std::printf("datagrams  : %llu sent by server, %llu by client (feedback)\n",
                    static_cast<unsigned long long>(server.sent_datagrams()),
                    static_cast<unsigned long long>(client.sent_datagrams()));
        return tx->transfer_complete() ? 0 : 1;
    } catch (const std::exception& e) {
        std::printf("skipped: %s (sockets unavailable in this environment)\n", e.what());
        return 0;
    }
}
