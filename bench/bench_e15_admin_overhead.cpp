// E15 — live-ops plane overhead: what the admin plane costs a shard
// turn when it is enabled but nobody scrapes it.
//
// The plane's only datapath footprint is (a) the per-turn half-open
// gauge sample into a log-linear histogram and (b) the sliding-window
// snapshot captured at each reap tick, amortized over the turns in
// between. The HTTP thread itself idles in poll() off the shard
// threads, so it contributes nothing until a request arrives.
//
// A wall-clock A/B of two engine runs cannot resolve a <=2% effect
// above scheduler noise, so — like E14's disabled-hook budget — the
// bound is computed analytically: both costs are microbenched, the
// capture cost is amortized with the observed turns-per-reap-tick from
// a real loaded run (admin plane attached and idle), and the total is
// expressed as a percentage of that run's mean shard-turn time.
//
// Gate: --max-admin-pct P fails the run when the computed overhead
// exceeds P percent (CI uses 2.0). --json emits
// BENCH_e15_admin_overhead.json for the perf trajectory.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "bench_json.hpp"
#include "engine/server.hpp"
#include "net/udp_host.hpp"
#include "ops/admin.hpp"
#include "trace/metrics.hpp"
#include "trace/window.hpp"
#include "util/pattern.hpp"

using namespace vtp;
using util::milliseconds;

namespace {

constexpr std::uint16_t engine_port = 49150;
constexpr int n_clients = 40;
constexpr std::uint64_t bytes_per_client = 150'000;

struct run_result {
    double elapsed_s = 0.0;
    std::uint64_t turns = 0;
    double mean_turn_ns = 0.0;
    std::uint64_t reap_ticks = 0; ///< elapsed / reap_interval (capture sites)
    bool completed = false;
};

/// One loaded engine run with the admin plane attached and idle: the
/// denominator of the overhead bound.
run_result run_loaded_engine() {
    engine::engine_config cfg;
    cfg.port = engine_port;
    cfg.shards = 2;
    cfg.reap_interval = milliseconds(250);
    cfg.event_queue_capacity = 1 << 15;
    cfg.rng_seed = 15;
    engine::server srv(cfg);
    srv.start();
    ops::admin_server admin(srv, {}); // ephemeral port, never scraped

    net::event_loop loop;
    std::vector<std::unique_ptr<net::udp_host>> hosts;
    for (int h = 0; h < n_clients / 20 + 1; ++h)
        hosts.push_back(std::make_unique<net::udp_host>(
            loop, static_cast<std::uint16_t>(engine_port + 1 + h),
            static_cast<std::uint64_t>(500 + h)));
    std::vector<vtp::session> sessions;
    std::vector<std::uint8_t> payload(bytes_per_client);
    for (int i = 1; i <= n_clients; ++i) {
        session_options so = session_options::reliable();
        so.flow_id = static_cast<std::uint32_t>(i);
        so.packet_size = 600;
        vtp::session s =
            vtp::session::connect(*hosts[static_cast<std::size_t>(i - 1) / 20],
                                  engine_port, so);
        for (std::uint64_t off = 0; off < bytes_per_client; ++off)
            payload[static_cast<std::size_t>(off)] =
                util::pattern_byte(so.flow_id, 0, off);
        s.send(0, std::span<const std::uint8_t>(payload));
        s.close();
        sessions.push_back(std::move(s));
    }

    std::vector<engine::engine_event> evs(256);
    const util::sim_time t0 = loop.now();
    run_result res;
    for (int r = 0; r < 3000 && !res.completed; ++r) {
        loop.run(milliseconds(10));
        while (srv.poll_events(evs.data(), evs.size()) != 0) {
        }
        res.completed = true;
        for (const auto& s : sessions)
            if (!s.closed()) {
                res.completed = false;
                break;
            }
    }
    res.elapsed_s = util::to_seconds(loop.now() - t0);
    const std::unique_ptr<trace::registry> reg = srv.metrics();
    const trace::histogram& turn = reg->get_histogram("vtp_shard_turn_ns");
    res.turns = turn.count();
    res.mean_turn_ns = res.turns > 0 ? static_cast<double>(turn.sum()) /
                                           static_cast<double>(res.turns)
                                     : 0.0;
    res.reap_ticks = static_cast<std::uint64_t>(
        res.elapsed_s / util::to_seconds(cfg.reap_interval) *
        static_cast<double>(cfg.shards));
    srv.stop();
    return res;
}

/// Cost (a): the per-turn half-open sample — one relaxed atomic load
/// plus one histogram observe. Runs every shard turn.
double turn_sample_ns() {
    std::atomic<std::uint64_t> gauge{3};
    trace::histogram h;
    constexpr int iters = 20'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        h.observe(gauge.load(std::memory_order_relaxed));
    const auto t1 = std::chrono::steady_clock::now();
    if (h.count() != iters) std::printf("?");
    return std::chrono::duration<double>(t1 - t0).count() / iters * 1e9;
}

/// Cost (b): one sliding-window capture — snapshotting a registry
/// shaped like a busy shard's (the engine's histogram set, well
/// populated) plus the ten named counters the reaper passes in.
double window_capture_ns() {
    trace::registry reg;
    for (const char* name :
         {"vtp_shard_turn_ns", "vtp_timer_fire_latency_ns", "vtp_rtt_ns",
          "vtp_event_ring_occupancy", "vtp_handoff_ring_occupancy",
          "vtp_half_open_sessions_turns"}) {
        trace::histogram& h = reg.get_histogram(name);
        for (std::uint64_t v = 1; v < 1'000'000; v *= 3) h.observe(v);
    }
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const char* name :
         {"vtp_datagrams_rx_total", "vtp_datagrams_tx_total",
          "vtp_tx_dropped_total", "vtp_handoff_dropped_total",
          "vtp_decode_errors_total", "vtp_events_dropped_total",
          "vtp_accepted_total", "vtp_synflood_retries_sent_total",
          "vtp_synflood_sheds_total", "vtp_reneg_rate_limited_total"})
        counters.emplace_back(name, 12345);

    trace::window_ring ring(60ull * 1000 * 1000 * 1000, 128);
    constexpr int iters = 20'000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        ring.capture(static_cast<std::uint64_t>(i) * 250'000'000, reg, counters);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / iters * 1e9;
}

} // namespace

int main(int argc, char** argv) {
    double max_admin_pct = 0.0;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--max-admin-pct")
            max_admin_pct = std::atof(argv[i + 1]);
    const std::string json = bench::json_path_arg(argc, argv);

    run_result run;
    try {
        run = run_loaded_engine();
    } catch (const std::exception& e) {
        // No sockets in this sandbox: the analytic bound still needs a
        // turn-time denominator, so there is nothing to gate against.
        std::printf("# E15 — skipped: %s\n", e.what());
        return 0;
    }

    const double sample_ns = turn_sample_ns();
    const double capture_ns = window_capture_ns();
    const double turns_per_tick =
        run.reap_ticks > 0 ? static_cast<double>(run.turns) /
                                 static_cast<double>(run.reap_ticks)
                           : 0.0;
    const double capture_amortized_ns =
        turns_per_tick > 0 ? capture_ns / turns_per_tick : 0.0;
    const double admin_pct =
        run.mean_turn_ns > 0
            ? (sample_ns + capture_amortized_ns) / run.mean_turn_ns * 100.0
            : 0.0;

    std::printf("# E15 — admin-plane overhead (enabled, idle)\n");
    std::printf("loaded run           %.2f s, %llu turns, mean turn %.0f ns\n",
                run.elapsed_s, static_cast<unsigned long long>(run.turns),
                run.mean_turn_ns);
    std::printf("per-turn sample      %.2f ns (half-open gauge -> histogram)\n",
                sample_ns);
    std::printf("window capture       %.0f ns/tick, %.0f turns/tick -> "
                "%.3f ns/turn amortized\n",
                capture_ns, turns_per_tick, capture_amortized_ns);
    std::printf("admin overhead       %.4f%% of mean shard-turn time\n",
                admin_pct);

    bool ok = run.completed && run.turns > 0;
    if (!ok) std::printf("FAIL: load run incomplete\n");
    if (max_admin_pct > 0 && admin_pct > max_admin_pct) {
        std::printf("FAIL: admin overhead %.4f%% exceeds --max-admin-pct %.2f\n",
                    admin_pct, max_admin_pct);
        ok = false;
    }

    if (!json.empty()) {
        bench::json_report rep("bench_e15_admin_overhead");
        rep.add("clients", static_cast<std::uint64_t>(n_clients));
        rep.add("bytes_per_client", bytes_per_client);
        rep.add("elapsed_s", run.elapsed_s);
        rep.add("shard_turns", run.turns);
        rep.add("mean_turn_ns", run.mean_turn_ns);
        rep.add("turn_sample_ns", sample_ns);
        rep.add("window_capture_ns", capture_ns);
        rep.add("turns_per_reap_tick", turns_per_tick);
        rep.add("capture_amortized_ns_per_turn", capture_amortized_ns);
        rep.add("admin_overhead_pct", admin_pct);
        rep.add("pass", ok);
        if (!rep.write(json))
            std::fprintf(stderr, "bench_e15: could not write %s\n", json.c_str());
    }
    return ok ? 0 : 1;
}
