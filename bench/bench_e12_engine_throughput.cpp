// E12 — server engine datapath throughput vs. the legacy udp_host path.
//
// Three datapaths move the same traffic — datapath-framed data segments
// ([flow:u32][src:u32] + wire header) one way across UDP loopback, the
// receiver decoding every segment and dispatching it through a flow-id
// map — under the same server-scale timer load (armed_timers pacing/
// feedback timers, the standing load of ~500 connections). Each path
// pays its own host-runtime costs per packet:
//
//   seed     a frozen copy of the seed's event loop, the baseline the
//            engine was built against: one datagram per sendto/recv
//            syscall, heap-allocating encode, a fresh pollfd rebuild
//            per turn, and std::map timers scanned TWICE per loop turn
//            (earliest-deadline scan + due-collection scan). Per-packet
//            pacing means one loop turn per packet, so every packet
//            pays O(n) in the armed-timer count. Kept verbatim in this
//            bench so the baseline cannot drift as src/net improves.
//   legacy   today's net::udp_host on net::event_loop (satellite fix
//            applied: deadline-heap timers, epoll reactor) — still one
//            datagram per syscall, one loop turn per packet.
//   engine   the shard runtime hot path driven inline: timer wheel
//            advance + epoll turn, pool buffer + encode_segment_into
//            (zero allocation), sendmmsg/recvmmsg in tx_batch flushes —
//            a fully backlogged shard turn.
//
// Reports packets/sec for each; the acceptance gate is engine vs. the
// seed's one-datagram-per-syscall path (--min-ratio, default 5).
// --json <path> emits every series for the perf trajectory.
#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "engine/buffer_pool.hpp"
#include "engine/reactor.hpp"
#include "engine/timer_wheel.hpp"
#include "engine/udp_io.hpp"
#include "net/udp_host.hpp"
#include "packet/wire.hpp"

using namespace vtp;
using util::milliseconds;

namespace {

constexpr std::uint16_t port_base = 48411; ///< six consecutive ports
constexpr std::uint32_t flow = 7;
constexpr util::sim_time run_for = milliseconds(1000);
/// Standing timer load: ~500 connections x (pacing + nofeedback).
constexpr std::size_t armed_timers = 1000;

util::sim_time now_ns() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<util::sim_time>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

packet::segment make_payload_segment() {
    packet::data_segment d;
    d.seq = 1;
    d.byte_offset = 0;
    d.payload_len = 1000;
    d.ts = 0;
    return d;
}

/// Counts packets delivered through the normal agent dispatch path.
struct sink_agent final : qtp::agent {
    std::uint64_t packets = 0;
    void start(qtp::environment&) override {}
    void on_packet(const packet::packet&) override { ++packets; }
    std::string name() const override { return "bench-sink"; }
};

std::vector<std::uint8_t> encode_dgram_heap(const packet::segment& seg,
                                            std::uint32_t src) {
    // The seed/legacy transmit path: header + heap-encoded body.
    std::vector<std::uint8_t> dgram;
    dgram.reserve(8 + 64);
    for (int shift = 24; shift >= 0; shift -= 8)
        dgram.push_back(static_cast<std::uint8_t>(flow >> shift));
    for (int shift = 24; shift >= 0; shift -= 8)
        dgram.push_back(static_cast<std::uint8_t>(src >> shift));
    const std::vector<std::uint8_t> body = packet::encode_segment(seg);
    dgram.insert(dgram.end(), body.begin(), body.end());
    return dgram;
}

void dispatch_dgram(const std::uint8_t* d, std::size_t len, sink_agent& sink) {
    if (len < 8) return;
    std::uint32_t f = 0;
    for (int b = 0; b < 4; ++b) f = (f << 8) | d[b];
    packet::packet pkt;
    pkt.flow_id = f;
    pkt.body = std::make_shared<const packet::segment>(
        packet::decode_segment(d + 8, len - 8));
    pkt.size_bytes = packet::wire_size(*pkt.body);
    if (f == flow) sink.on_packet(pkt);
}

// ---------------------------------------------------------------------------
// Seed baseline: verbatim reproduction of the pre-engine event loop
// (poll(2), per-turn pollfd rebuild, std::map timer store scanned twice
// per turn) driving one-datagram-per-syscall sockets.
// ---------------------------------------------------------------------------

double seed_pps(util::sim_time duration) {
    const int rx_fd = engine::open_udp_socket(port_base, false);
    const int tx_fd = engine::open_udp_socket(port_base + 1, false);
    const sockaddr_in to = engine::loopback_addr(port_base);

    struct timer_entry {
        util::sim_time deadline;
        std::function<void()> fn;
    };
    std::map<std::uint64_t, timer_entry> timers; // the seed's timer store
    std::uint64_t next_id = 1;
    const util::sim_time t0 = now_ns();

    // The standing per-connection timers (far deadlines, never due).
    for (std::size_t i = 0; i < armed_timers; ++i)
        timers[next_id++] =
            timer_entry{t0 + util::seconds(3600), [] {}};

    sink_agent sink;
    const packet::segment seg = make_payload_segment();
    bool done = false;

    // One packet per timer fire — the pacing model of the seed datapath.
    std::function<void()> pump = [&] {
        if (now_ns() - t0 >= duration) {
            done = true;
            return;
        }
        const std::vector<std::uint8_t> dgram =
            encode_dgram_heap(seg, port_base + 1);
        ::sendto(tx_fd, dgram.data(), dgram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&to), sizeof to);
        timers[next_id++] = timer_entry{now_ns() - t0, pump};
    };
    timers[next_id++] = timer_entry{0, pump};

    std::uint8_t rbuf[2048];
    while (!done) {
        // next_timer_delay(): full scan for the earliest deadline.
        util::sim_time earliest = util::time_never;
        for (const auto& [id, t] : timers) earliest = std::min(earliest, t.deadline);
        const util::sim_time wait = std::max<util::sim_time>(
            earliest - (now_ns() - t0), 0);
        const int timeout_ms =
            static_cast<int>(std::min<util::sim_time>(wait / 1'000'000, 1000));

        pollfd pfds[2] = {{rx_fd, POLLIN, 0}, {tx_fd, POLLIN, 0}};
        const int ready = ::poll(pfds, 2, timeout_ms);
        if (ready > 0 && (pfds[0].revents & POLLIN) != 0) {
            // udp_host receive: one recv syscall per datagram.
            for (;;) {
                const ssize_t n = ::recv(rx_fd, rbuf, sizeof rbuf, MSG_DONTWAIT);
                if (n < 0) break;
                dispatch_dgram(rbuf, static_cast<std::size_t>(n), sink);
            }
        }

        // fire_due_timers(): full scan collecting due ids, then run.
        const util::sim_time t = now_ns() - t0;
        std::vector<std::uint64_t> due;
        for (const auto& [id, entry] : timers)
            if (entry.deadline <= t) due.push_back(id);
        for (const std::uint64_t id : due) {
            auto it = timers.find(id);
            if (it == timers.end()) continue;
            auto fn = std::move(it->second.fn);
            timers.erase(it);
            fn();
        }
    }

    const double elapsed = util::to_seconds(now_ns() - t0);
    ::close(rx_fd);
    ::close(tx_fd);
    return static_cast<double>(sink.packets) / elapsed;
}

// ---------------------------------------------------------------------------
// Legacy path as it is in the tree today: udp_host on event_loop (heap
// timers + epoll after the satellite fix), still 1 datagram/syscall.
// ---------------------------------------------------------------------------

double legacy_pps(util::sim_time duration) {
    net::event_loop loop;
    net::udp_host rx(loop, port_base + 2, 1);
    net::udp_host tx(loop, port_base + 3, 2);
    sink_agent* sink = rx.attach(flow, std::make_unique<sink_agent>());

    for (std::size_t i = 0; i < armed_timers; ++i)
        loop.schedule_after(util::seconds(3600), [] {});

    const packet::segment seg = make_payload_segment();
    const auto body = std::make_shared<const packet::segment>(seg);
    const util::sim_time t0 = loop.now();

    // One packet per timer fire, matching the seed pump's pacing model.
    std::function<void()> pump = [&] {
        if (loop.now() - t0 >= duration) {
            loop.stop();
            return;
        }
        packet::packet pkt;
        pkt.flow_id = flow;
        pkt.src = port_base + 3;
        pkt.dst = port_base + 2;
        pkt.body = body;
        pkt.size_bytes = packet::wire_size(seg);
        tx.send(pkt);
        loop.schedule_after(0, pump);
    };
    loop.schedule_after(0, pump);
    loop.run(duration + milliseconds(200));

    const double elapsed = util::to_seconds(loop.now() - t0);
    return static_cast<double>(sink->packets) / elapsed;
}

// ---------------------------------------------------------------------------
// Engine path: a fully backlogged shard turn driven inline — timer
// wheel + epoll reactor + buffer pool + encode_segment_into + mmsg
// batches (the exact shard::turn()/shard::send() hot path).
// ---------------------------------------------------------------------------

double engine_pps(util::sim_time duration) {
    const int rx_fd =
        engine::open_udp_socket(port_base + 4, false, 1 << 21, 1 << 21);
    const int tx_fd =
        engine::open_udp_socket(port_base + 5, false, 1 << 21, 1 << 21);

    constexpr std::size_t batch = 64;
    engine::buffer_pool pool(batch, engine::max_datagram);
    engine::rx_batch rxb(batch);
    std::vector<engine::tx_item> pending;
    pending.reserve(batch);
    const sockaddr_in to = engine::loopback_addr(port_base + 4);

    engine::timer_wheel wheel(now_ns());
    for (std::size_t i = 0; i < armed_timers; ++i)
        wheel.schedule_at(now_ns() + util::seconds(3600), [] {});
    engine::reactor reactor;
    bool rx_ready = false;
    reactor.add_fd(rx_fd, [&rx_ready] { rx_ready = true; });

    sink_agent sink;
    const packet::segment seg = make_payload_segment();

    const auto flush = [&] {
        if (pending.empty()) return;
        engine::send_batch(tx_fd, pending.data(), pending.size());
        for (const engine::tx_item& it : pending)
            pool.release(const_cast<std::uint8_t*>(it.data));
        pending.clear();
    };
    const auto drain = [&] {
        for (;;) {
            const std::size_t n = engine::recv_batch(rx_fd, rxb);
            if (n == 0) break;
            for (std::size_t i = 0; i < n; ++i)
                dispatch_dgram(rxb.data(i), rxb.len(i), sink);
        }
    };

    const util::sim_time t0 = now_ns();
    while (now_ns() - t0 < duration) {
        // One shard turn: timers, a non-blocking reactor poll, then a
        // backlogged burst of transmissions flushed through sendmmsg.
        wheel.advance(now_ns());
        rx_ready = false;
        reactor.poll_once(0);
        for (std::size_t i = 0; i < 256; ++i) {
            std::uint8_t* buf = pool.acquire();
            if (buf == nullptr) {
                flush();
                buf = pool.acquire();
            }
            for (int b = 0; b < 4; ++b)
                buf[b] = static_cast<std::uint8_t>(flow >> (24 - 8 * b));
            const std::uint32_t src = port_base + 5;
            for (int b = 0; b < 4; ++b)
                buf[4 + b] = static_cast<std::uint8_t>(src >> (24 - 8 * b));
            const std::size_t n =
                packet::encode_segment_into(seg, buf + 8, engine::max_datagram - 8);
            pending.push_back(engine::tx_item{buf, 8 + n, to});
            if (pending.size() >= batch) flush();
        }
        flush();
        drain();
    }
    drain();
    const double elapsed = util::to_seconds(now_ns() - t0);

    reactor.remove_fd(rx_fd);
    const double pps = static_cast<double>(sink.packets) / elapsed;
    ::close(rx_fd);
    ::close(tx_fd);
    return pps;
}

} // namespace

int main(int argc, char** argv) {
    double min_ratio = 5.0;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--min-ratio") min_ratio = std::atof(argv[i + 1]);

    // Skip (exit 0) only when the environment has no UDP sockets at all
    // (sandboxed build hosts). Anything else — a taken port, a bind
    // failure mid-run — must FAIL the gate, not silently green it.
    try {
        const int probe = engine::open_udp_socket(0, false);
        ::close(probe);
    } catch (const std::exception& e) {
        std::printf("# E12 — skipped, no socket support (%s)\n", e.what());
        return 0;
    }

    double seed = 0.0;
    double legacy = 0.0;
    double batched = 0.0;
    try {
        // Warm-up settles cpufreq and page-cache noise.
        engine_pps(milliseconds(100));
        seed = seed_pps(run_for);
        legacy = legacy_pps(run_for);
        batched = engine_pps(run_for);
    } catch (const std::exception& e) {
        std::printf("# E12 — FAILED to run (%s)\n", e.what());
        return 1;
    }

    const double vs_seed = seed > 0.0 ? batched / seed : 0.0;
    const double vs_legacy = legacy > 0.0 ? batched / legacy : 0.0;

    std::printf("\n# E12 — engine datapath throughput, UDP loopback "
                "(1 s pumps, %zu armed timers, decode+dispatch per packet)\n",
                armed_timers);
    bench::table tbl({"path", "packets/sec", "vs seed"});
    tbl.add_row({"seed loop (1 dgram/syscall, O(n) timer scans)",
                 bench::fmt("%.0f", seed), "1.00x"});
    tbl.add_row({"legacy udp_host (heap timers, 1 dgram/syscall)",
                 bench::fmt("%.0f", legacy),
                 bench::fmt("%.2fx", seed > 0.0 ? legacy / seed : 0.0)});
    tbl.add_row({"engine shard turn (wheel + pool + mmsg batch 64)",
                 bench::fmt("%.0f", batched), bench::fmt("%.2fx", vs_seed)});
    tbl.print();
    std::printf("engine vs seed one-dgram-per-syscall path: %.2fx (floor %.1fx)\n",
                vs_seed, min_ratio);
    std::printf("engine vs current legacy event loop:       %.2fx\n", vs_legacy);

    const std::string json = bench::json_path_arg(argc, argv);
    if (!json.empty()) {
        bench::json_report rep("bench_e12_engine_throughput");
        rep.add("seed_pps", seed);
        rep.add("legacy_pps", legacy);
        rep.add("engine_pps", batched);
        rep.add("speedup_vs_seed", vs_seed);
        rep.add("speedup_vs_legacy", vs_legacy);
        rep.add("armed_timers", static_cast<std::uint64_t>(armed_timers));
        rep.add("min_ratio", min_ratio);
        rep.add("pass", vs_seed >= min_ratio);
        if (!rep.write(json)) std::printf("could not write %s\n", json.c_str());
    }
    return vs_seed >= min_ratio ? 0 : 1;
}
