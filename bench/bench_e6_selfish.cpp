// E6 — selfish receiver figure.
//
// Paper claim (§3): shifting loss estimation to the sender "offers a
// robust protection against selfish receivers ... the sender is no
// longer dependent of the accuracy and the veracity of the information
// given by the receiver as it computes itself the packet loss rate"
// (attack model of Georg & Gorinsky, ICAS/ICNS 2005).
//
// Workload: two flows share a 10 Mb/s bottleneck. Flow A's receiver is
// selfish: it scales its reported loss-event rate by an attack factor
// (1.0 = honest, 0 = "I saw no loss"). Flow B is honest classic TFRC.
// With classic TFRC the attacker steals bandwidth as the factor shrinks;
// with QTPlight (sender-side estimation) there is no p to lie about and
// the share stays fair by construction.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace vtp;
using namespace vtp::bench;
using util::milliseconds;
using util::seconds;

sim::dumbbell make_net(std::uint64_t seed) {
    sim::dumbbell_config cfg;
    cfg.pairs = 2;
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_rate_bps = 10e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.bottleneck_queue_packets = 60;
    cfg.seed = seed;
    return sim::dumbbell(cfg);
}

struct share {
    double attacker_mbps;
    double honest_mbps;
};

share run_classic(double attack_factor) {
    sim::dumbbell net = make_net(31);
    auto attacker = add_tfrc_flow(net, 0, 1, /*misreport_p=*/attack_factor);
    auto honest = add_tfrc_flow(net, 1, 2);
    net.sched().run_until(seconds(60));
    return {goodput_mbps(attacker.received_bytes(), seconds(60)),
            goodput_mbps(honest.received_bytes(), seconds(60))};
}

share run_qtplight(double /*attack_factor — nothing to forge*/) {
    // Under QTPlight the feedback carries no loss estimate at all; the
    // "attack" degenerates to honest SACK feedback.
    sim::dumbbell net = make_net(31);
    auto attacker = add_tfrc_light_flow(net, 0, 1);
    auto honest = add_tfrc_flow(net, 1, 2);
    net.sched().run_until(seconds(60));
    return {goodput_mbps(attacker.received_bytes(), seconds(60)),
            goodput_mbps(honest.received_bytes(), seconds(60))};
}

} // namespace

int main() {
    std::printf("E6: selfish receiver under-reporting loss — attacker vs honest\n");
    std::printf("flow on a 10 Mb/s bottleneck (60 s). Attack factor scales the\n");
    std::printf("receiver-reported loss event rate.\n\n");

    table t({"attack factor", "protocol", "attacker [Mb/s]", "honest [Mb/s]",
             "attacker share"});
    for (double factor : {1.0, 0.5, 0.2, 0.0}) {
        const share classic = run_classic(factor);
        t.add_row({fmt("%.1f", factor), "TFRC (recv-side p)",
                   fmt("%.3f", classic.attacker_mbps), fmt("%.3f", classic.honest_mbps),
                   fmt("%.2f",
                       classic.attacker_mbps / (classic.attacker_mbps + classic.honest_mbps))});
    }
    for (double factor : {1.0, 0.0}) {
        const share light = run_qtplight(factor);
        t.add_row({fmt("%.1f", factor), "QTPlight (send-side p)",
                   fmt("%.3f", light.attacker_mbps), fmt("%.3f", light.honest_mbps),
                   fmt("%.2f",
                       light.attacker_mbps / (light.attacker_mbps + light.honest_mbps))});
    }
    t.print();

    std::printf("\nExpected shape: with receiver-side TFRC the attacker's share grows\n");
    std::printf("towards monopoly as the factor drops to 0; with QTPlight the share\n");
    std::printf("stays ~0.5 regardless — the estimate is computed by the sender.\n");
    return 0;
}
