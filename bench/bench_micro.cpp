// Micro-benchmarks (google-benchmark).
//
// E4 — the QTPlight receiver-load claim (§3): per-packet processing cost
// and feedback-generation cost of the classic RFC 3448 receiver (full
// loss-interval bookkeeping) vs the QTPlight receiver (range merge only),
// plus the resident-state comparison printed before the timing runs.
//
// A2 — loss-interval history depth ablation (4 / 8 / 16 intervals).
//
// Plus component benchmarks: throughput equation, equation inversion,
// interval_set, scoreboard, RED enqueue, scheduler churn, wire codec.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/environment.hpp"
#include "packet/wire.hpp"
#include "sack/reassembly.hpp"
#include "sack/scoreboard.hpp"
#include "sim/red.hpp"
#include "sim/scheduler.hpp"
#include "tfrc/equation.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/receiver.hpp"
#include "tfrc/sender_estimator.hpp"
#include "util/rng.hpp"

namespace {

using namespace vtp;
using util::milliseconds;

// Inert environment: time advances manually, sends are counted, timers
// never fire (receivers then only do their per-packet data-path work).
class null_env : public qtp::environment {
public:
    util::sim_time now() const override { return now_; }
    qtp::timer_id schedule(util::sim_time, std::function<void()>) override {
        return ++next_timer_;
    }
    void cancel(qtp::timer_id) override {}
    void send(packet::packet pkt) override {
        sent_bytes_ += pkt.size_bytes;
        ++sent_;
    }
    std::uint32_t local_addr() const override { return 0; }
    util::rng& random() override { return rng_; }
    void attach_dynamic(std::uint32_t, std::unique_ptr<qtp::agent>) override {}

    void advance(util::sim_time dt) { now_ += dt; }
    std::uint64_t sent_ = 0;
    std::uint64_t sent_bytes_ = 0;

private:
    util::sim_time now_ = 0;
    qtp::timer_id next_timer_ = 0;
    util::rng rng_{1};
};

packet::packet make_data(std::uint64_t seq) {
    packet::data_segment d;
    d.seq = seq;
    d.byte_offset = seq * 1000;
    d.payload_len = 1000;
    d.ts = static_cast<util::sim_time>(seq) * milliseconds(1);
    d.rtt_estimate = milliseconds(80);
    return packet::make_packet(1, 9, 0, d);
}

// --------------------------------------------------------------------------
// E4: receiver per-packet processing cost
// --------------------------------------------------------------------------
//
// Packet construction is hoisted out of the timed region (manual timing
// over pre-built batches), so the numbers are the receiver data path
// alone: loss-interval bookkeeping for the classic receiver vs range
// merging for the QTPlight receiver.

template <typename receiver_type>
void run_receiver_batches(benchmark::State& state, receiver_type& recv, null_env& env,
                          double loss) {
    util::rng rng(42);
    std::uint64_t seq = 0;
    constexpr int batch_size = 1024;
    std::vector<packet::packet> batch;
    batch.reserve(batch_size);
    for (auto _ : state) {
        batch.clear();
        for (int i = 0; i < batch_size; ++i) {
            if (loss > 0 && rng.bernoulli(loss)) ++seq; // wire drop
            batch.push_back(make_data(seq++));
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto& pkt : batch) {
            recv.on_packet(pkt);
            env.advance(milliseconds(1));
        }
        const auto t1 = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    }
    state.SetItemsProcessed(state.iterations() * batch_size);
}

void bm_e4_classic_receiver_per_packet(benchmark::State& state) {
    const double loss = static_cast<double>(state.range(0)) / 1000.0;
    null_env env;
    tfrc::receiver_config cfg;
    cfg.flow_id = 1;
    tfrc::receiver_agent recv(cfg);
    recv.start(env);
    run_receiver_batches(state, recv, env, loss);
    state.counters["state_bytes"] =
        static_cast<double>(recv.history().state_bytes());
}
BENCHMARK(bm_e4_classic_receiver_per_packet)->Arg(0)->Arg(20)->UseManualTime();

void bm_e4_light_receiver_per_packet(benchmark::State& state) {
    const double loss = static_cast<double>(state.range(0)) / 1000.0;
    null_env env;
    tfrc::light_receiver_config cfg;
    cfg.flow_id = 1;
    tfrc::light_receiver_agent recv(cfg);
    recv.start(env);
    run_receiver_batches(state, recv, env, loss);
    state.counters["state_bytes"] = static_cast<double>(recv.state_bytes());
}
BENCHMARK(bm_e4_light_receiver_per_packet)->Arg(0)->Arg(20)->UseManualTime();

// E4: feedback generation — the periodic cost besides the per-packet path.
void bm_e4_classic_feedback_computation(benchmark::State& state) {
    // Populated history: the weighted-average loss rate is recomputed for
    // every report.
    tfrc::loss_history history;
    util::rng rng(7);
    std::uint64_t seq = 0;
    util::sim_time t = 0;
    for (int i = 0; i < 5000; ++i) {
        if (rng.bernoulli(0.01)) ++seq;
        history.on_packet(seq++, t += milliseconds(1), milliseconds(80));
    }
    for (auto _ : state) {
        packet::tfrc_feedback_segment fb;
        fb.ts_echo = t;
        fb.t_delay = milliseconds(1);
        fb.x_recv = 1e6;
        fb.p = history.loss_event_rate();
        fb.highest_seq = seq;
        benchmark::DoNotOptimize(fb);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_e4_classic_feedback_computation);

void bm_e4_light_feedback_assembly(benchmark::State& state) {
    // Typical post-pruning tracking state: a handful of recent ranges.
    std::deque<packet::sack_block> ranges;
    for (std::uint64_t i = 0; i < 3; ++i) ranges.push_back({i * 100, i * 100 + 60});
    for (auto _ : state) {
        packet::sack_feedback_segment fb;
        fb.ts_echo = 1;
        fb.t_delay = milliseconds(1);
        fb.x_recv = 1e6;
        const std::size_t first = ranges.size() > 16 ? ranges.size() - 16 : 0;
        for (std::size_t i = first; i < ranges.size(); ++i) fb.blocks.push_back(ranges[i]);
        benchmark::DoNotOptimize(fb);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_e4_light_feedback_assembly);

// --------------------------------------------------------------------------
// A2: loss-interval history depth ablation
// --------------------------------------------------------------------------

void bm_a2_history_depth(benchmark::State& state) {
    tfrc::loss_history_config cfg;
    cfg.num_intervals = static_cast<std::size_t>(state.range(0));
    tfrc::loss_history history(cfg);
    util::rng rng(11);
    std::uint64_t seq = 0;
    util::sim_time t = 0;
    for (auto _ : state) {
        if (rng.bernoulli(0.02)) ++seq;
        history.on_packet(seq++, t += milliseconds(1), milliseconds(80));
        benchmark::DoNotOptimize(history.loss_event_rate());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_a2_history_depth)->Arg(4)->Arg(8)->Arg(16);

// --------------------------------------------------------------------------
// Component micro-benchmarks
// --------------------------------------------------------------------------

void bm_equation(benchmark::State& state) {
    tfrc::equation_params eq;
    double p = 1e-4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tfrc::throughput_bytes_per_second(eq, 0.08, p));
        p = p < 0.5 ? p * 1.01 : 1e-4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_equation);

void bm_equation_inversion(benchmark::State& state) {
    tfrc::equation_params eq;
    double x = 1e4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tfrc::loss_rate_for_throughput(eq, 0.08, x));
        x = x < 1e8 ? x * 1.1 : 1e4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_equation_inversion);

void bm_sender_estimator_feedback(benchmark::State& state) {
    tfrc::sender_estimator est;
    std::uint64_t seq = 0;
    util::sim_time t = 0;
    packet::sack_feedback_segment fb;
    for (auto _ : state) {
        for (int i = 0; i < 7; ++i) est.on_send(seq++, t += milliseconds(1));
        fb.blocks.clear();
        fb.blocks.push_back({seq > 200 ? seq - 200 : 0, seq - 2});
        est.on_feedback(fb, t, milliseconds(80));
    }
    state.SetItemsProcessed(state.iterations() * 7);
}
BENCHMARK(bm_sender_estimator_feedback);

void bm_interval_set_add(benchmark::State& state) {
    sack::interval_set set;
    util::rng rng(5);
    for (auto _ : state) {
        const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
        set.add(b, b + 1000);
        if (set.range_count() > 10000) set = sack::interval_set{};
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_interval_set_add);

void bm_scoreboard_sack(benchmark::State& state) {
    sack::scoreboard sb;
    std::uint64_t seq = 0;
    std::vector<sack::transmission_record> lost;
    for (auto _ : state) {
        for (int i = 0; i < 7; ++i) {
            sack::transmission_record rec;
            rec.seq = seq;
            rec.byte_offset = seq * 1000;
            rec.length = 1000;
            sb.record(rec);
            ++seq;
        }
        packet::sack_feedback_segment fb;
        fb.blocks.push_back({seq > 100 ? seq - 100 : 0, seq});
        lost.clear();
        sb.on_sack(fb, lost);
    }
    state.SetItemsProcessed(state.iterations() * 7);
}
BENCHMARK(bm_scoreboard_sack);

void bm_red_enqueue_dequeue(benchmark::State& state) {
    sim::red_queue q(sim::default_red_params(100, 1000), 100 * 1000, 3);
    util::sim_time t = 0;
    std::uint64_t seq = 0;
    for (auto _ : state) {
        q.enqueue(make_data(seq++), t += util::microseconds(100));
        if (q.packet_length() > 50) (void)q.dequeue(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_red_enqueue_dequeue);

void bm_scheduler_churn(benchmark::State& state) {
    sim::scheduler sched;
    for (auto _ : state) {
        sched.after(milliseconds(1), [] {});
        sched.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_scheduler_churn);

void bm_wire_encode_data(benchmark::State& state) {
    const packet::segment seg = [] {
        packet::data_segment d;
        d.seq = 123456;
        d.byte_offset = 123456000;
        d.payload_len = 1000;
        d.ts = milliseconds(5000);
        d.rtt_estimate = milliseconds(80);
        return packet::segment{d};
    }();
    for (auto _ : state) benchmark::DoNotOptimize(packet::encode_segment(seg));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_wire_encode_data);

void bm_wire_decode_sack(benchmark::State& state) {
    packet::sack_feedback_segment fb;
    for (std::uint64_t i = 0; i < 8; ++i) fb.blocks.push_back({i * 100, i * 100 + 50});
    const auto bytes = packet::encode_segment(packet::segment{fb});
    for (auto _ : state) benchmark::DoNotOptimize(packet::decode_segment(bytes));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_wire_decode_sack);

// Resident-state comparison for the E4 table, printed once up front.
void print_e4_state_comparison() {
    null_env env_a;
    tfrc::receiver_config classic_cfg;
    tfrc::receiver_agent classic(classic_cfg);
    classic.start(env_a);

    null_env env_b;
    tfrc::light_receiver_config light_cfg;
    tfrc::light_receiver_agent light(light_cfg);
    light.start(env_b);

    util::rng rng(4);
    std::uint64_t seq = 0;
    for (int i = 0; i < 200000; ++i) {
        if (rng.bernoulli(0.01)) ++seq;
        const auto pkt = make_data(seq++);
        classic.on_packet(pkt);
        light.on_packet(pkt);
        env_a.advance(milliseconds(1));
        env_b.advance(milliseconds(1));
    }
    std::printf("E4 resident estimation state after 200k packets @1%% loss:\n");
    std::printf("  classic TFRC receiver : %zu bytes (loss-interval history)\n",
                classic.history().state_bytes());
    std::printf("  QTPlight receiver     : %zu bytes (range list only)\n\n",
                light.state_bytes());
}

} // namespace

int main(int argc, char** argv) {
    print_e4_state_comparison();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
