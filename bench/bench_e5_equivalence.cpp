// E5 — sender-side estimation equivalence figure.
//
// Paper claim (§3): moving the loss-rate estimation to the sender needs
// only "few changes" and keeps TFRC behaviour intact; QTPlight's rate
// must match classic TFRC's.
//
// Workload: identical lossy paths; one run with the classic receiver-side
// estimator, one with the QTPlight sender-side estimator. Reported, per
// loss rate: the loss-event rate each estimator converged to, goodput of
// both variants, and their ratio. Expected shape: near-identical p and
// goodput across the sweep.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace vtp;
using namespace vtp::bench;
using util::milliseconds;
using util::seconds;

sim::dumbbell make_net(std::uint64_t seed) {
    sim::dumbbell_config cfg;
    cfg.pairs = 1;
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_rate_bps = 20e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.bottleneck_queue_packets = 100;
    cfg.seed = seed;
    return sim::dumbbell(cfg);
}

struct run_outcome {
    double goodput_mbps_value;
    double p_estimate;
};

run_outcome run_classic(double loss, std::uint64_t seed) {
    sim::dumbbell net = make_net(seed);
    net.forward_bottleneck().set_loss_model(
        std::make_unique<sim::bernoulli_loss>(loss, 1000 + seed));
    auto flow = add_tfrc_flow(net, 0, 1);
    net.sched().run_until(seconds(60));
    return {goodput_mbps(flow.received_bytes(), seconds(60)),
            flow.receiver->history().loss_event_rate()};
}

run_outcome run_light(double loss, std::uint64_t seed) {
    sim::dumbbell net = make_net(seed);
    net.forward_bottleneck().set_loss_model(
        std::make_unique<sim::bernoulli_loss>(loss, 1000 + seed));
    auto flow = add_tfrc_light_flow(net, 0, 1);
    net.sched().run_until(seconds(60));
    return {goodput_mbps(flow.received_bytes(), seconds(60)),
            flow.sender->estimator().loss_event_rate()};
}

} // namespace

int main() {
    std::printf("E5: receiver-side vs sender-side (QTPlight) loss estimation —\n");
    std::printf("identical 20 Mb/s lossy paths, 60 s runs.\n\n");

    table t({"loss p [%]", "p_recv-side", "p_send-side", "classic [Mb/s]",
             "QTPlight [Mb/s]", "rate ratio"});
    for (double loss : {0.002, 0.005, 0.01, 0.02, 0.05}) {
        const run_outcome classic = run_classic(loss, 21);
        const run_outcome light = run_light(loss, 21);
        t.add_row({fmt("%.1f", loss * 100), fmt("%.4f", classic.p_estimate),
                   fmt("%.4f", light.p_estimate), fmt("%.3f", classic.goodput_mbps_value),
                   fmt("%.3f", light.goodput_mbps_value),
                   fmt("%.2f", light.goodput_mbps_value / classic.goodput_mbps_value)});
    }
    t.print();

    std::printf("\nExpected shape: p estimates and goodput curves coincide\n");
    std::printf("(ratio ~1.0 across the sweep) — the estimator placement is\n");
    std::printf("transparent to the congestion control.\n");
    return 0;
}
