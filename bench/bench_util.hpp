// Shared helpers for the experiment harnesses (bench_e*): flow setup on
// dumbbells and aligned table printing. Each bench binary regenerates one
// table/figure from EXPERIMENTS.md and prints the series to stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/server.hpp"
#include "api/session.hpp"
#include "core/qtp.hpp"
#include "diffserv/conditioner.hpp"
#include "diffserv/rio.hpp"
#include "sim/topology.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "tfrc/receiver.hpp"
#include "tfrc/sender.hpp"

namespace vtp::bench {

struct tfrc_flow {
    tfrc::sender_agent* sender = nullptr;
    tfrc::receiver_agent* receiver = nullptr;
    tfrc::light_receiver_agent* light_receiver = nullptr;

    std::uint64_t received_bytes() const {
        if (receiver != nullptr) return receiver->received_bytes();
        if (light_receiver != nullptr) return light_receiver->received_bytes();
        return 0;
    }
};

inline tfrc_flow add_tfrc_flow(sim::dumbbell& net, std::size_t i, std::uint32_t flow_id,
                               double misreport_p = 1.0, double misreport_x = 1.0) {
    tfrc::sender_config scfg;
    scfg.flow_id = flow_id;
    scfg.peer_addr = net.right_addr(i);
    scfg.mode = tfrc::estimation_mode::receiver_side;

    tfrc::receiver_config rcfg;
    rcfg.flow_id = flow_id;
    rcfg.peer_addr = net.left_addr(i);
    rcfg.misreport_p_factor = misreport_p;
    rcfg.misreport_x_factor = misreport_x;

    tfrc_flow flow;
    flow.receiver =
        net.right_host(i).attach(flow_id, std::make_unique<tfrc::receiver_agent>(rcfg));
    flow.sender =
        net.left_host(i).attach(flow_id, std::make_unique<tfrc::sender_agent>(scfg));
    return flow;
}

inline tfrc_flow add_tfrc_light_flow(sim::dumbbell& net, std::size_t i,
                                     std::uint32_t flow_id) {
    tfrc::sender_config scfg;
    scfg.flow_id = flow_id;
    scfg.peer_addr = net.right_addr(i);
    scfg.mode = tfrc::estimation_mode::sender_side;

    tfrc::light_receiver_config rcfg;
    rcfg.flow_id = flow_id;
    rcfg.peer_addr = net.left_addr(i);

    tfrc_flow flow;
    flow.light_receiver = net.right_host(i).attach(
        flow_id, std::make_unique<tfrc::light_receiver_agent>(rcfg));
    flow.sender =
        net.left_host(i).attach(flow_id, std::make_unique<tfrc::sender_agent>(scfg));
    return flow;
}

struct tcp_flow {
    tcp::tcp_sender_agent* sender = nullptr;
    tcp::tcp_receiver_agent* receiver = nullptr;
};

inline tcp_flow add_tcp_flow(sim::dumbbell& net, std::size_t i, std::uint32_t flow_id,
                             std::uint64_t max_bytes = UINT64_MAX) {
    tcp::tcp_sender_config scfg;
    scfg.flow_id = flow_id;
    scfg.peer_addr = net.right_addr(i);
    scfg.max_bytes = max_bytes;

    tcp::tcp_receiver_config rcfg;
    rcfg.flow_id = flow_id;
    rcfg.peer_addr = net.left_addr(i);

    tcp_flow flow;
    flow.receiver =
        net.right_host(i).attach(flow_id, std::make_unique<tcp::tcp_receiver_agent>(rcfg));
    flow.sender =
        net.left_host(i).attach(flow_id, std::make_unique<tcp::tcp_sender_agent>(scfg));
    return flow;
}

/// A vtp::session flow — the full public-API QTP stack, congestion
/// control selected through the negotiated profile — on dumbbell pair
/// `i`. Owns the accept-side vtp::server; the transfer is open-ended (a
/// large stream-0 backlog), so the flow is long-lived like the raw
/// agents above and per-algorithm benches compare like with like.
struct session_flow {
    std::unique_ptr<vtp::server> server;
    vtp::session client;
    vtp::session* accepted = nullptr;

    std::uint64_t delivered_bytes() const {
        return accepted != nullptr ? accepted->stats().bytes_delivered : 0;
    }
    /// All bytes the sender pushed to the wire (first transmissions +
    /// retransmissions) — the send-rate signal a codec would see.
    std::uint64_t sent_bytes() const {
        const session_stats st = client.stats();
        return st.stream_bytes_sent + st.rtx_bytes_sent;
    }
};

inline std::unique_ptr<session_flow> add_session_flow(
    sim::dumbbell& net, std::size_t i, std::uint32_t flow_id, cc::algorithm_id alg,
    std::uint64_t backlog = 1'000'000'000) {
    auto flow = std::make_unique<session_flow>();
    session_flow* raw = flow.get();
    flow->server = std::make_unique<vtp::server>(net.right_host(i), vtp::server_options{});
    flow->server->set_on_session([raw](vtp::session& s) { raw->accepted = &s; });
    vtp::session_options opts = vtp::session_options::reliable().with_cc(alg);
    opts.flow_id = flow_id;
    flow->client = vtp::session::connect(net.left_host(i), net.right_addr(i), opts);
    flow->client.send(backlog);
    return flow;
}

struct qtp_flow {
    qtp::connection_sender* sender = nullptr;
    qtp::connection_receiver* receiver = nullptr;
};

inline qtp_flow add_qtp_flow(sim::dumbbell& net, std::size_t i, std::uint32_t flow_id,
                             qtp::connection_pair pair) {
    qtp_flow flow;
    flow.receiver = net.right_host(i).attach(flow_id, std::move(pair.receiver));
    flow.sender = net.left_host(i).attach(flow_id, std::move(pair.sender));
    return flow;
}

inline double goodput_mbps(std::uint64_t bytes, util::sim_time duration) {
    return static_cast<double>(bytes) * 8.0 / util::to_seconds(duration) / 1e6;
}

/// Column-aligned table printer.
class table {
public:
    explicit table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size(), 0);
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string>& cells) {
            std::printf("|");
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                const std::string& cell = c < cells.size() ? cells[c] : std::string{};
                std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::printf("|");
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
        }
        std::printf("\n");
        for (const auto& row : rows_) print_row(row);
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, format, value);
    return buf;
}

inline std::string fmt_u64(std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    return buf;
}

} // namespace vtp::bench
