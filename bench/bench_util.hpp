// Shared helpers for the experiment harnesses (bench_e*): flow setup on
// dumbbells and aligned table printing. Each bench binary regenerates one
// table/figure from EXPERIMENTS.md and prints the series to stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/qtp.hpp"
#include "diffserv/conditioner.hpp"
#include "diffserv/rio.hpp"
#include "sim/topology.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "tfrc/receiver.hpp"
#include "tfrc/sender.hpp"

namespace vtp::bench {

struct tfrc_flow {
    tfrc::sender_agent* sender = nullptr;
    tfrc::receiver_agent* receiver = nullptr;
    tfrc::light_receiver_agent* light_receiver = nullptr;

    std::uint64_t received_bytes() const {
        if (receiver != nullptr) return receiver->received_bytes();
        if (light_receiver != nullptr) return light_receiver->received_bytes();
        return 0;
    }
};

inline tfrc_flow add_tfrc_flow(sim::dumbbell& net, std::size_t i, std::uint32_t flow_id,
                               double misreport_p = 1.0, double misreport_x = 1.0) {
    tfrc::sender_config scfg;
    scfg.flow_id = flow_id;
    scfg.peer_addr = net.right_addr(i);
    scfg.mode = tfrc::estimation_mode::receiver_side;

    tfrc::receiver_config rcfg;
    rcfg.flow_id = flow_id;
    rcfg.peer_addr = net.left_addr(i);
    rcfg.misreport_p_factor = misreport_p;
    rcfg.misreport_x_factor = misreport_x;

    tfrc_flow flow;
    flow.receiver =
        net.right_host(i).attach(flow_id, std::make_unique<tfrc::receiver_agent>(rcfg));
    flow.sender =
        net.left_host(i).attach(flow_id, std::make_unique<tfrc::sender_agent>(scfg));
    return flow;
}

inline tfrc_flow add_tfrc_light_flow(sim::dumbbell& net, std::size_t i,
                                     std::uint32_t flow_id) {
    tfrc::sender_config scfg;
    scfg.flow_id = flow_id;
    scfg.peer_addr = net.right_addr(i);
    scfg.mode = tfrc::estimation_mode::sender_side;

    tfrc::light_receiver_config rcfg;
    rcfg.flow_id = flow_id;
    rcfg.peer_addr = net.left_addr(i);

    tfrc_flow flow;
    flow.light_receiver = net.right_host(i).attach(
        flow_id, std::make_unique<tfrc::light_receiver_agent>(rcfg));
    flow.sender =
        net.left_host(i).attach(flow_id, std::make_unique<tfrc::sender_agent>(scfg));
    return flow;
}

struct tcp_flow {
    tcp::tcp_sender_agent* sender = nullptr;
    tcp::tcp_receiver_agent* receiver = nullptr;
};

inline tcp_flow add_tcp_flow(sim::dumbbell& net, std::size_t i, std::uint32_t flow_id,
                             std::uint64_t max_bytes = UINT64_MAX) {
    tcp::tcp_sender_config scfg;
    scfg.flow_id = flow_id;
    scfg.peer_addr = net.right_addr(i);
    scfg.max_bytes = max_bytes;

    tcp::tcp_receiver_config rcfg;
    rcfg.flow_id = flow_id;
    rcfg.peer_addr = net.left_addr(i);

    tcp_flow flow;
    flow.receiver =
        net.right_host(i).attach(flow_id, std::make_unique<tcp::tcp_receiver_agent>(rcfg));
    flow.sender =
        net.left_host(i).attach(flow_id, std::make_unique<tcp::tcp_sender_agent>(scfg));
    return flow;
}

struct qtp_flow {
    qtp::connection_sender* sender = nullptr;
    qtp::connection_receiver* receiver = nullptr;
};

inline qtp_flow add_qtp_flow(sim::dumbbell& net, std::size_t i, std::uint32_t flow_id,
                             qtp::connection_pair pair) {
    qtp_flow flow;
    flow.receiver = net.right_host(i).attach(flow_id, std::move(pair.receiver));
    flow.sender = net.left_host(i).attach(flow_id, std::move(pair.sender));
    return flow;
}

inline double goodput_mbps(std::uint64_t bytes, util::sim_time duration) {
    return static_cast<double>(bytes) * 8.0 / util::to_seconds(duration) / 1e6;
}

/// Column-aligned table printer.
class table {
public:
    explicit table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size(), 0);
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string>& cells) {
            std::printf("|");
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                const std::string& cell = c < cells.size() ? cells[c] : std::string{};
                std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::printf("|");
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
        }
        std::printf("\n");
        for (const auto& row : rows_) print_row(row);
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, format, value);
    return buf;
}

inline std::string fmt_u64(std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    return buf;
}

} // namespace vtp::bench
