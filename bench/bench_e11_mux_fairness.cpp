// E11 — stream multiplexing: scheduler fairness and overhead.
//
// One connection carries several backlogged streams with configured
// weights; the deficit-round-robin scheduler must hold each stream's
// share of the TFRC-paced send slots within ±10% of its weight share —
// on the simulator and over live UDP loopback. A second table measures
// the mux's per-packet overhead by comparing simulator wall-clock per
// sent packet at 1 vs 8 concurrent streams.
//
// Exit status is non-zero when fairness leaves the ±10% band, so the
// perf trajectory picks regressions up.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "api/server.hpp"
#include "api/session.hpp"
#include "bench_json.hpp"
#include "bench_util.hpp"
#include "net/udp_host.hpp"
#include "sim/topology.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

namespace {

struct share_row {
    std::uint32_t id;
    std::uint32_t weight;
    double target;
    double achieved;
    double error; ///< relative, |achieved-target|/target
};

bool report_shares(bench::table& tbl, const std::vector<stream::stream_info>& infos,
                   double& max_err) {
    std::uint64_t total_sent = 0;
    std::uint32_t total_weight = 0;
    for (const auto& i : infos) {
        total_sent += i.bytes_sent;
        total_weight += i.weight;
    }
    bool ok = true;
    for (const auto& i : infos) {
        share_row row;
        row.id = i.id;
        row.weight = i.weight;
        row.target = static_cast<double>(i.weight) / total_weight;
        row.achieved = total_sent > 0
                           ? static_cast<double>(i.bytes_sent) / total_sent
                           : 0.0;
        row.error = std::abs(row.achieved - row.target) / row.target;
        max_err = std::max(max_err, row.error);
        if (row.error > 0.10) ok = false;
        tbl.add_row({bench::fmt_u64(row.id), bench::fmt_u64(row.weight),
                     bench::fmt("%.3f", row.target), bench::fmt("%.3f", row.achieved),
                     bench::fmt("%.1f", row.error * 100.0)});
    }
    return ok;
}

bool sim_fairness(double& max_err) {
    sim::dumbbell_config cfg;
    cfg.pairs = 1;
    cfg.bottleneck_rate_bps = 10e6;
    cfg.bottleneck_delay = milliseconds(20);
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_queue_packets = 2000;
    sim::dumbbell net(cfg);

    server srv(net.right_host(0), server_options{});
    session tx = session::connect(net.left_host(0), net.right_addr(0),
                                  session_options::reliable());
    const std::vector<std::uint32_t> weights = {1, 2, 4};
    // Stream 0 has weight 1; open two more with heavier weights.
    for (std::size_t k = 1; k < weights.size(); ++k) {
        stream::stream_options o;
        o.reliability = sack::reliability_mode::full;
        o.weight = weights[k];
        tx.open_stream(o);
    }
    for (std::uint32_t id = 0; id < weights.size(); ++id) tx.send(id, 50'000'000);
    net.sched().run_until(seconds(8));

    std::printf("\n# E11a — weighted share, simulator (8 s, 10 Mb/s, 3 streams)\n");
    bench::table tbl({"stream", "weight", "target", "achieved", "err%"});
    const bool ok = report_shares(tbl, tx.stream_infos(), max_err);
    tbl.print();
    std::printf("fairness within +/-10%%: %s\n", ok ? "yes" : "NO");
    return ok;
}

double sim_overhead_us_per_packet(std::size_t streams) {
    sim::dumbbell_config cfg;
    cfg.pairs = 1;
    cfg.bottleneck_rate_bps = 50e6;
    cfg.bottleneck_delay = milliseconds(5);
    cfg.bottleneck_queue_packets = 2000;
    sim::dumbbell net(cfg);
    server srv(net.right_host(0), server_options{});
    session tx = session::connect(net.left_host(0), net.right_addr(0),
                                  session_options::reliable());
    for (std::size_t k = 1; k < streams; ++k) {
        stream::stream_options o;
        o.reliability = sack::reliability_mode::full;
        tx.open_stream(o);
    }
    for (std::uint32_t id = 0; id < streams; ++id) tx.send(id, 50'000'000);

    const auto t0 = std::chrono::steady_clock::now();
    net.sched().run_until(seconds(5));
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
    const std::uint64_t pkts = tx.stats().packets_sent;
    return pkts > 0 ? us / static_cast<double>(pkts) : 0.0;
}

bool udp_fairness(double& max_err) {
    net::event_loop loop;
    std::unique_ptr<net::udp_host> server_host;
    std::unique_ptr<net::udp_host> client_host;
    try {
        server_host = std::make_unique<net::udp_host>(loop, 48301, 1);
        client_host = std::make_unique<net::udp_host>(loop, 48302, 2);
    } catch (const std::exception& e) {
        std::printf("\n# E11c — UDP loopback: skipped (%s)\n", e.what());
        return true;
    }

    server srv(*server_host, server_options{});
    session tx = session::connect(*client_host, 48301, session_options::reliable());
    stream::stream_options heavy;
    heavy.reliability = sack::reliability_mode::full;
    heavy.weight = 3;
    tx.open_stream(heavy);
    // Loopback moves tens of MB/s: give both streams backlogs deep
    // enough that neither drains, and sample the shares mid-transfer.
    tx.send(0, 1'000'000'000);
    tx.send(1, 1'000'000'000);

    const auto started = loop.now();
    const auto total_sent = [&] {
        std::uint64_t sum = 0;
        for (const auto& i : tx.stream_infos()) sum += i.bytes_sent;
        return sum;
    };
    while (total_sent() < 30'000'000 && loop.now() - started < seconds(10))
        loop.run(milliseconds(50));

    std::printf("\n# E11c — weighted share, UDP loopback (30 MB mid-transfer, "
                "weights 1:3)\n");
    bench::table tbl({"stream", "weight", "target", "achieved", "err%"});
    const bool ok = report_shares(tbl, tx.stream_infos(), max_err);
    tbl.print();
    std::printf("fairness within +/-10%%: %s\n", ok ? "yes" : "NO");
    return ok;
}

} // namespace

int main(int argc, char** argv) {
    double sim_max_err = 0.0;
    double udp_max_err = 0.0;
    const bool sim_ok = sim_fairness(sim_max_err);

    std::printf("\n# E11b — mux overhead, simulator wall-clock per sent packet\n");
    bench::table tbl({"streams", "us/packet"});
    const double one = sim_overhead_us_per_packet(1);
    const double eight = sim_overhead_us_per_packet(8);
    tbl.add_row({"1", bench::fmt("%.2f", one)});
    tbl.add_row({"8", bench::fmt("%.2f", eight)});
    tbl.print();
    if (one > 0.0)
        std::printf("overhead ratio 8/1 streams: %.2fx\n", eight / one);

    const bool udp_ok = udp_fairness(udp_max_err);

    const std::string json = bench::json_path_arg(argc, argv);
    if (!json.empty()) {
        bench::json_report rep("bench_e11_mux_fairness");
        rep.add("sim_fairness_max_err", sim_max_err);
        rep.add("udp_fairness_max_err", udp_max_err);
        rep.add("overhead_us_per_packet_1stream", one);
        rep.add("overhead_us_per_packet_8streams", eight);
        rep.add("overhead_ratio_8_vs_1", one > 0.0 ? eight / one : 0.0);
        rep.add("pass", sim_ok && udp_ok);
        if (!rep.write(json)) std::printf("could not write %s\n", json.c_str());
    }
    return sim_ok && udp_ok ? 0 : 1;
}
