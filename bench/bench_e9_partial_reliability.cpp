// E9 — partial reliability figure.
//
// Paper claim (§1, negotiable feature (1)): the framework negotiates
// "partial/full reliability" per connection — media flows should spend
// retransmissions only on data that can still arrive before its playout
// deadline.
//
// Workload: QTPlight streaming 1000-byte messages over a lossy path; each
// message expires `deadline` after first transmission. Reliability modes:
// none, partial (deadline-aware), full. Two deadline regimes: tight
// (100 ms < RTT + recovery time, retransmission can never help) and loose
// (400 ms, one recovery round fits). Reported: fraction of messages
// delivered before their deadline, retransmitted bytes, abandoned bytes.
#include <cstdio>
#include <unordered_set>

#include "api/server.hpp"
#include "api/session.hpp"
#include "bench_util.hpp"

namespace {

using namespace vtp;
using namespace vtp::bench;
using util::milliseconds;
using util::seconds;

struct outcome {
    double in_time_fraction;
    std::uint64_t rtx_bytes;
    std::uint64_t abandoned_bytes;
};

outcome run(sack::reliability_mode mode, util::sim_time deadline, double loss,
            std::uint64_t seed) {
    sim::dumbbell_config cfg;
    cfg.pairs = 1;
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_rate_bps = 20e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.bottleneck_queue_packets = 100;
    cfg.seed = seed;
    sim::dumbbell net(cfg);
    net.forward_bottleneck().set_loss_model(
        std::make_unique<sim::bernoulli_loss>(loss, seed + 7));

    // QTPlight through the facade: the receiving server refuses
    // receiver-side estimation (resource-limited device), the sender
    // streams deadline-framed messages.
    vtp::server_options srv_opts;
    srv_opts.capabilities.support_receiver_estimation = false;
    vtp::server srv(net.right_host(0), srv_opts);

    vtp::session_options opts;
    opts.flow_id = 1;
    opts.profile = qtp::qtp_light_profile(mode);
    opts.message_size = 1000; // one packet per message
    opts.message_deadline = deadline;
    vtp::session tx = vtp::session::connect(net.left_host(0), net.right_addr(0), opts);
    tx.send(UINT64_MAX / 2); // unlimited media source

    // Observer: a message counts if any copy of it arrives by its deadline.
    std::unordered_set<std::uint32_t> in_time;
    net.right_host(0).add_observer([&](const packet::packet& pkt) {
        const auto* data = std::get_if<packet::data_segment>(pkt.body.get());
        if (data == nullptr || data->payload_len == 0) return;
        if (data->deadline == util::time_never || net.sched().now() <= data->deadline)
            in_time.insert(data->message_id);
    });

    const util::sim_time duration = seconds(60);
    net.sched().run_until(duration);

    const std::uint64_t messages_sent = tx.stats().stream_bytes_sent / 1000;
    // Ignore the trailing second of messages that may still be in flight.
    const std::uint64_t counted =
        messages_sent > 2000 ? messages_sent - 2000 : messages_sent;
    std::uint64_t delivered_in_time = 0;
    for (std::uint32_t m = 0; m < counted; ++m)
        if (in_time.count(m) != 0) ++delivered_in_time;

    outcome o;
    o.in_time_fraction =
        counted == 0 ? 0.0
                     : static_cast<double>(delivered_in_time) / static_cast<double>(counted);
    o.rtx_bytes = tx.stats().rtx_bytes_sent;
    o.abandoned_bytes = tx.sender()->retransmissions().abandoned_bytes();
    return o;
}

const char* mode_name(sack::reliability_mode m) {
    switch (m) {
    case sack::reliability_mode::none: return "none";
    case sack::reliability_mode::full: return "full";
    case sack::reliability_mode::partial: return "partial";
    }
    return "?";
}

} // namespace

int main() {
    std::printf("E9: reliability modes for deadline media — 1 kB messages over a\n");
    std::printf("lossy 20 Mb/s path (60 ms RTT, 60 s runs).\n\n");

    for (util::sim_time deadline : {milliseconds(100), milliseconds(400)}) {
        std::printf("Message deadline = %.0f ms:\n", util::to_milliseconds(deadline));
        table t({"loss [%]", "reliability", "in-time msgs", "rtx [kB]", "abandoned [kB]"});
        for (double loss : {0.01, 0.03, 0.05}) {
            for (auto mode : {sack::reliability_mode::none, sack::reliability_mode::partial,
                              sack::reliability_mode::full}) {
                const outcome o = run(mode, deadline, loss, 23);
                t.add_row({fmt("%.0f", loss * 100), mode_name(mode),
                           fmt("%.4f", o.in_time_fraction),
                           fmt("%.0f", static_cast<double>(o.rtx_bytes) / 1000.0),
                           fmt("%.0f", static_cast<double>(o.abandoned_bytes) / 1000.0)});
            }
        }
        t.print();
        std::printf("\n");
    }

    std::printf("Expected shape: with the tight deadline, partial abandons everything\n");
    std::printf("(rtx ~0) and matches 'none' on in-time delivery while 'full' burns\n");
    std::printf("retransmissions on messages that arrive too late; with the loose\n");
    std::printf("deadline, partial recovers in-time delivery like 'full' at similar\n");
    std::printf("retransmission cost.\n");
    return 0;
}
