// E8 — reliable QoS transport table.
//
// Paper claim (§4): "QTPAF appears to be the first reliable transport
// protocol really adapted to carry efficiently QoS traffic" — i.e. the
// composition gTFRC + SACK delivers *all* bytes *at* the committed rate.
//
// Workload: the E7 AF network (RIO bottleneck, 2 TCP competitors) plus
// 0.5% non-congestion loss on the bottleneck; the measured flow holds a
// g = 4 Mb/s contract and pushes a finite 25 MB stream. Contenders:
// QTPAF (full reliability), TCP (reliable baseline, same contract), and
// unreliable gTFRC (reliability ablation). Reported: transfer time,
// achieved rate vs g, delivery completeness and retransmission overhead.
#include <cstdio>

#include "api/server.hpp"
#include "api/session.hpp"
#include "bench_util.hpp"

namespace {

using namespace vtp;
using namespace vtp::bench;
using util::milliseconds;
using util::seconds;

constexpr double target_bps = 4e6;
constexpr std::uint64_t transfer_bytes = 25'000'000;

sim::dumbbell make_net(std::uint64_t seed) {
    sim::dumbbell_config cfg;
    cfg.pairs = 3;
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_rate_bps = 10e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.seed = seed;
    cfg.bottleneck_queue = [seed] {
        return std::make_unique<diffserv::rio_queue>(
            diffserv::default_rio_params(60, 1050), seed * 7 + 3);
    };
    sim::dumbbell net(cfg);
    net.forward_bottleneck().set_loss_model(
        std::make_unique<sim::bernoulli_loss>(0.005, seed + 100));
    return net;
}

struct outcome {
    double transfer_time_s = 0.0; ///< 0 = did not finish
    double achieved_mbps = 0.0;
    double completeness = 0.0; ///< delivered bytes / offered bytes
    double rtx_overhead = 0.0; ///< retransmitted bytes / stream bytes
};

void setup_competition(sim::dumbbell& net, diffserv::conditioner& cond) {
    cond.set_profile(1, target_bps, static_cast<std::size_t>(target_bps / 8.0 * 0.03));
    cond.install_egress(net.left_node(0));
    add_tcp_flow(net, 1, 2);
    add_tcp_flow(net, 2, 3);
}

outcome run_qtp(bool reliable, std::uint64_t seed) {
    sim::dumbbell net = make_net(seed);
    diffserv::conditioner cond(net.sched());
    setup_competition(net, cond);

    // The measured flow runs through the vtp::session facade: a server
    // accepts on the right-hand host, the sender connects with the QTPAF
    // profile (reliability ablated for the unreliable contender).
    vtp::server srv(net.right_host(0), vtp::server_options{});
    vtp::session* rx = nullptr;
    srv.set_on_session([&](vtp::session& s) { rx = &s; });

    vtp::session_options opts;
    opts.flow_id = 1; // must match the conditioner's marked profile
    opts.profile = qtp::qtp_af_profile(target_bps);
    if (!reliable) opts.profile.reliability = sack::reliability_mode::none;
    vtp::session tx = vtp::session::connect(net.left_host(0), net.right_addr(0), opts);
    tx.send(transfer_bytes);
    tx.close();

    const util::sim_time limit = seconds(180);
    util::sim_time finished_at = 0;
    while (net.sched().now() < limit) {
        net.sched().run_until(net.sched().now() + milliseconds(250));
        const bool done = reliable ? tx.stats().stream_bytes_acked >= transfer_bytes
                                   : tx.stats().stream_bytes_sent >= transfer_bytes;
        if (done) {
            finished_at = net.sched().now();
            break;
        }
    }
    if (!reliable && finished_at != 0) {
        // Let the unreliable tail drain so completeness is fair.
        net.sched().run_until(finished_at + seconds(1));
    }

    outcome o;
    const util::sim_time elapsed = finished_at != 0 ? finished_at : limit;
    o.transfer_time_s = finished_at != 0 ? util::to_seconds(finished_at) : 0.0;
    const std::uint64_t received =
        rx != nullptr ? rx->receiver()->stream().received_bytes() : 0;
    o.achieved_mbps = goodput_mbps(received, elapsed);
    o.completeness =
        static_cast<double>(received) / static_cast<double>(transfer_bytes);
    o.rtx_overhead = static_cast<double>(tx.stats().rtx_bytes_sent) /
                     static_cast<double>(transfer_bytes);
    return o;
}

outcome run_tcp(std::uint64_t seed) {
    sim::dumbbell net = make_net(seed);
    diffserv::conditioner cond(net.sched());
    setup_competition(net, cond);

    auto flow = add_tcp_flow(net, 0, 1, transfer_bytes);
    const util::sim_time limit = seconds(180);
    util::sim_time finished_at = 0;
    while (net.sched().now() < limit) {
        net.sched().run_until(net.sched().now() + milliseconds(250));
        if (flow.sender->completed()) {
            finished_at = net.sched().now();
            break;
        }
    }
    outcome o;
    const util::sim_time elapsed = finished_at != 0 ? finished_at : limit;
    o.transfer_time_s = finished_at != 0 ? util::to_seconds(finished_at) : 0.0;
    o.achieved_mbps = goodput_mbps(flow.receiver->delivered_bytes(), elapsed);
    o.completeness = static_cast<double>(flow.receiver->delivered_bytes()) /
                     static_cast<double>(transfer_bytes);
    o.rtx_overhead =
        static_cast<double>(flow.sender->retransmitted_segments() * 1000) /
        static_cast<double>(transfer_bytes);
    return o;
}

std::string time_or_dnf(double t) { return t > 0 ? fmt("%.1f", t) : "DNF"; }

} // namespace

int main() {
    std::printf("E8: reliable transfer over the AF network — 25 MB stream with a\n");
    std::printf("g = 4 Mb/s contract, 0.5%% wireless loss, 2 TCP competitors.\n");
    std::printf("Ideal transfer time at g: %.1f s.\n\n", transfer_bytes * 8.0 / target_bps);

    const outcome qtp_af = run_qtp(true, 19);
    const outcome gtfrc_unrel = run_qtp(false, 19);
    const outcome tcp = run_tcp(19);

    table t({"protocol", "transfer time [s]", "achieved [Mb/s]", "achieved/g",
             "completeness", "rtx overhead"});
    t.add_row({"QTPAF (gTFRC+SACK)", time_or_dnf(qtp_af.transfer_time_s),
               fmt("%.3f", qtp_af.achieved_mbps), fmt("%.2f", qtp_af.achieved_mbps / 4.0),
               fmt("%.4f", qtp_af.completeness), fmt("%.4f", qtp_af.rtx_overhead)});
    t.add_row({"TCP (same contract)", time_or_dnf(tcp.transfer_time_s),
               fmt("%.3f", tcp.achieved_mbps), fmt("%.2f", tcp.achieved_mbps / 4.0),
               fmt("%.4f", tcp.completeness), fmt("%.4f", tcp.rtx_overhead)});
    t.add_row({"gTFRC unreliable", time_or_dnf(gtfrc_unrel.transfer_time_s),
               fmt("%.3f", gtfrc_unrel.achieved_mbps),
               fmt("%.2f", gtfrc_unrel.achieved_mbps / 4.0),
               fmt("%.4f", gtfrc_unrel.completeness),
               fmt("%.4f", gtfrc_unrel.rtx_overhead)});
    t.print();

    std::printf("\nExpected shape: QTPAF completes at ~g with completeness 1.0;\n");
    std::printf("TCP is slower (achieved/g < 1 under out-profile drops + loss);\n");
    std::printf("unreliable gTFRC holds the rate but completeness < 1 (gaps stay).\n");
    return 0;
}
