// E1 — TCP-friendliness table.
//
// Paper claim (§3): "TFRC is considered as the current congestion control
// mechanism that offers the best trade-off between TCP fairness and the
// smooth throughput required by multimedia flows."
//
// Workload: dumbbell, 10 Mb/s bottleneck, 60 ms base RTT, n TFRC flows
// vs n TCP flows sharing the link, n in {1, 2, 4, 8}. Reported: mean
// per-flow goodput per protocol class, the TFRC/TCP ratio (1.0 = perfect
// friendliness; TFRC is considered TCP-friendly within a factor ~2), and
// Jain's fairness index across all flows.
//
// Two queue regimes, as in the TFRC literature: RED (the canonical
// fairness setting — drops are desynchronised and the standing queue is
// small) and DropTail (adversarial for TFRC: the standing queue inflates
// its RTT estimate, which enters the equation, while TCP's ack clock
// self-adjusts — the known worst case for equation-based control).
//
// Per-algorithm section (pluggable cc): the same contest re-run through
// vtp::session flows with each negotiable send algorithm — TFRC via the
// send_algorithm interface, NewReno, Westwood. The TFRC row doubles as a
// regression gate: its goodput must stay within 5% of the frozen
// baseline measured when the interface refactor landed (the trace-hash
// oracle proves wire identity; this pins the bench harness itself).
// --json <path> emits the per-algorithm series (BENCH_e1_cc.json in CI);
// exit status 1 when the gate fails.
#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "sim/red.hpp"
#include "util/stats.hpp"

namespace {

using namespace vtp;
using namespace vtp::bench;
using util::milliseconds;
using util::seconds;

struct result {
    double tfrc_mean_mbps;
    double tcp_mean_mbps;
    double jain;
};

result run(std::size_t n_per_class, bool red) {
    sim::dumbbell_config cfg;
    cfg.pairs = 2 * n_per_class;
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_rate_bps = 10e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.bottleneck_queue_packets = 60;
    if (red) {
        cfg.bottleneck_queue = [] {
            return std::make_unique<sim::red_queue>(
                sim::default_red_params(60, 1050), 60 * 1050, 991);
        };
    }
    cfg.seed = 11 + n_per_class;
    sim::dumbbell net(cfg);

    std::vector<tfrc_flow> tfrc_flows;
    std::vector<tcp_flow> tcp_flows;
    for (std::size_t i = 0; i < n_per_class; ++i)
        tfrc_flows.push_back(add_tfrc_flow(net, i, static_cast<std::uint32_t>(i + 1)));
    for (std::size_t i = 0; i < n_per_class; ++i)
        tcp_flows.push_back(add_tcp_flow(net, n_per_class + i,
                                         static_cast<std::uint32_t>(100 + i)));

    const util::sim_time duration = seconds(60);
    net.sched().run_until(duration);

    result r{};
    std::vector<double> all;
    for (const auto& f : tfrc_flows) {
        const double g = goodput_mbps(f.received_bytes(), duration);
        r.tfrc_mean_mbps += g;
        all.push_back(g);
    }
    for (const auto& f : tcp_flows) {
        const double g = goodput_mbps(f.receiver->delivered_bytes(), duration);
        r.tcp_mean_mbps += g;
        all.push_back(g);
    }
    r.tfrc_mean_mbps /= static_cast<double>(n_per_class);
    r.tcp_mean_mbps /= static_cast<double>(n_per_class);
    r.jain = util::jain_fairness(all);
    return r;
}

/// Session-API contest: n vtp::session flows (algorithm `alg`) vs n TCP
/// on the RED bottleneck — the canonical fairness regime.
result run_cc(cc::algorithm_id alg, std::size_t n_per_class) {
    sim::dumbbell_config cfg;
    cfg.pairs = 2 * n_per_class;
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_rate_bps = 10e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.bottleneck_queue_packets = 60;
    cfg.bottleneck_queue = [] {
        return std::make_unique<sim::red_queue>(sim::default_red_params(60, 1050),
                                                60 * 1050, 991);
    };
    cfg.seed = 211 + n_per_class;
    sim::dumbbell net(cfg);

    std::vector<std::unique_ptr<session_flow>> vtp_flows;
    std::vector<tcp_flow> tcp_flows;
    for (std::size_t i = 0; i < n_per_class; ++i)
        vtp_flows.push_back(
            add_session_flow(net, i, static_cast<std::uint32_t>(i + 1), alg));
    for (std::size_t i = 0; i < n_per_class; ++i)
        tcp_flows.push_back(
            add_tcp_flow(net, n_per_class + i, static_cast<std::uint32_t>(100 + i)));

    const util::sim_time duration = seconds(60);
    net.sched().run_until(duration);

    result r{};
    std::vector<double> all;
    for (const auto& f : vtp_flows) {
        const double g = goodput_mbps(f->delivered_bytes(), duration);
        r.tfrc_mean_mbps += g;
        all.push_back(g);
    }
    for (const auto& f : tcp_flows) {
        const double g = goodput_mbps(f.receiver->delivered_bytes(), duration);
        r.tcp_mean_mbps += g;
        all.push_back(g);
    }
    r.tfrc_mean_mbps /= static_cast<double>(n_per_class);
    r.tcp_mean_mbps /= static_cast<double>(n_per_class);
    r.jain = util::jain_fairness(all);
    return r;
}

/// Frozen TFRC-via-interface baseline (2+2 on RED, seed 213): measured
/// when the pluggable-cc subsystem landed. The simulator is
/// deterministic, so a healthy tree reproduces these exactly; the 5%
/// band only absorbs deliberate, documented re-freezes.
constexpr double frozen_tfrc_mean_mbps = 1.824;
constexpr double frozen_tcp_mean_mbps = 2.583;
constexpr double gate_tolerance = 0.05;

bool within(double measured, double frozen) {
    return measured >= frozen * (1.0 - gate_tolerance) &&
           measured <= frozen * (1.0 + gate_tolerance);
}

} // namespace

int main(int argc, char** argv) {
    std::printf("E1: TCP-friendliness — n TFRC vs n TCP on a 10 Mb/s bottleneck (60 s)\n");
    std::printf("Expected shape: ratio within ~[0.5, 2.0]; fairness index near 1.\n\n");

    for (const bool red : {true, false}) {
        std::printf("%s bottleneck:\n", red ? "RED" : "DropTail");
        table t({"n TFRC + n TCP", "TFRC mean [Mb/s]", "TCP mean [Mb/s]",
                 "TFRC/TCP ratio", "Jain index"});
        for (std::size_t n : {1u, 2u, 4u, 8u}) {
            const result r = run(n, red);
            t.add_row({fmt_u64(n) + "+" + fmt_u64(n), fmt("%.3f", r.tfrc_mean_mbps),
                       fmt("%.3f", r.tcp_mean_mbps),
                       fmt("%.2f", r.tfrc_mean_mbps / r.tcp_mean_mbps),
                       fmt("%.3f", r.jain)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape: near-equal shares under RED; under DropTail the\n");
    std::printf("standing queue penalises TFRC (RTT-inflated equation) toward the\n");
    std::printf("low edge of the friendly band — the literature's known worst case.\n");

    // --- per-algorithm session-API contest (2+2 on RED) ------------------
    std::printf("\nPer-algorithm (vtp::session, negotiated cc): 2 flows vs 2 TCP, RED\n");
    table t({"algorithm", "VTP mean [Mb/s]", "TCP mean [Mb/s]", "VTP/TCP ratio",
             "Jain index"});
    const cc::algorithm_id algs[] = {cc::algorithm_id::tfrc, cc::algorithm_id::newreno,
                                     cc::algorithm_id::westwood};
    result by_alg[3];
    for (std::size_t a = 0; a < 3; ++a) {
        by_alg[a] = run_cc(algs[a], 2);
        t.add_row({cc::to_string(algs[a]), fmt("%.3f", by_alg[a].tfrc_mean_mbps),
                   fmt("%.3f", by_alg[a].tcp_mean_mbps),
                   fmt("%.2f", by_alg[a].tfrc_mean_mbps / by_alg[a].tcp_mean_mbps),
                   fmt("%.3f", by_alg[a].jain)});
    }
    t.print();

    const bool gate_ok = within(by_alg[0].tfrc_mean_mbps, frozen_tfrc_mean_mbps) &&
                         within(by_alg[0].tcp_mean_mbps, frozen_tcp_mean_mbps);
    std::printf("\nTFRC-via-interface gate: measured %.3f/%.3f Mb/s vs frozen %.3f/%.3f "
                "(+/-5%%) — %s\n",
                by_alg[0].tfrc_mean_mbps, by_alg[0].tcp_mean_mbps, frozen_tfrc_mean_mbps,
                frozen_tcp_mean_mbps, gate_ok ? "PASS" : "FAIL");

    const std::string json = bench::json_path_arg(argc, argv);
    if (!json.empty()) {
        bench::json_report rep("bench_e1_friendliness");
        for (std::size_t a = 0; a < 3; ++a) {
            const std::string key = cc::to_string(algs[a]);
            rep.add(key + "_mean_mbps", by_alg[a].tfrc_mean_mbps);
            rep.add(key + "_tcp_mean_mbps", by_alg[a].tcp_mean_mbps);
            rep.add(key + "_jain", by_alg[a].jain);
        }
        rep.add("frozen_tfrc_mean_mbps", frozen_tfrc_mean_mbps);
        rep.add("gate_tolerance", gate_tolerance);
        rep.add("pass", gate_ok);
        if (!rep.write(json)) std::printf("could not write %s\n", json.c_str());
    }
    return gate_ok ? 0 : 1;
}
