// E1 — TCP-friendliness table.
//
// Paper claim (§3): "TFRC is considered as the current congestion control
// mechanism that offers the best trade-off between TCP fairness and the
// smooth throughput required by multimedia flows."
//
// Workload: dumbbell, 10 Mb/s bottleneck, 60 ms base RTT, n TFRC flows
// vs n TCP flows sharing the link, n in {1, 2, 4, 8}. Reported: mean
// per-flow goodput per protocol class, the TFRC/TCP ratio (1.0 = perfect
// friendliness; TFRC is considered TCP-friendly within a factor ~2), and
// Jain's fairness index across all flows.
//
// Two queue regimes, as in the TFRC literature: RED (the canonical
// fairness setting — drops are desynchronised and the standing queue is
// small) and DropTail (adversarial for TFRC: the standing queue inflates
// its RTT estimate, which enters the equation, while TCP's ack clock
// self-adjusts — the known worst case for equation-based control).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/red.hpp"
#include "util/stats.hpp"

namespace {

using namespace vtp;
using namespace vtp::bench;
using util::milliseconds;
using util::seconds;

struct result {
    double tfrc_mean_mbps;
    double tcp_mean_mbps;
    double jain;
};

result run(std::size_t n_per_class, bool red) {
    sim::dumbbell_config cfg;
    cfg.pairs = 2 * n_per_class;
    cfg.access_rate_bps = 100e6;
    cfg.access_delay = milliseconds(1);
    cfg.bottleneck_rate_bps = 10e6;
    cfg.bottleneck_delay = milliseconds(28);
    cfg.bottleneck_queue_packets = 60;
    if (red) {
        cfg.bottleneck_queue = [] {
            return std::make_unique<sim::red_queue>(
                sim::default_red_params(60, 1050), 60 * 1050, 991);
        };
    }
    cfg.seed = 11 + n_per_class;
    sim::dumbbell net(cfg);

    std::vector<tfrc_flow> tfrc_flows;
    std::vector<tcp_flow> tcp_flows;
    for (std::size_t i = 0; i < n_per_class; ++i)
        tfrc_flows.push_back(add_tfrc_flow(net, i, static_cast<std::uint32_t>(i + 1)));
    for (std::size_t i = 0; i < n_per_class; ++i)
        tcp_flows.push_back(add_tcp_flow(net, n_per_class + i,
                                         static_cast<std::uint32_t>(100 + i)));

    const util::sim_time duration = seconds(60);
    net.sched().run_until(duration);

    result r{};
    std::vector<double> all;
    for (const auto& f : tfrc_flows) {
        const double g = goodput_mbps(f.received_bytes(), duration);
        r.tfrc_mean_mbps += g;
        all.push_back(g);
    }
    for (const auto& f : tcp_flows) {
        const double g = goodput_mbps(f.receiver->delivered_bytes(), duration);
        r.tcp_mean_mbps += g;
        all.push_back(g);
    }
    r.tfrc_mean_mbps /= static_cast<double>(n_per_class);
    r.tcp_mean_mbps /= static_cast<double>(n_per_class);
    r.jain = util::jain_fairness(all);
    return r;
}

} // namespace

int main() {
    std::printf("E1: TCP-friendliness — n TFRC vs n TCP on a 10 Mb/s bottleneck (60 s)\n");
    std::printf("Expected shape: ratio within ~[0.5, 2.0]; fairness index near 1.\n\n");

    for (const bool red : {true, false}) {
        std::printf("%s bottleneck:\n", red ? "RED" : "DropTail");
        table t({"n TFRC + n TCP", "TFRC mean [Mb/s]", "TCP mean [Mb/s]",
                 "TFRC/TCP ratio", "Jain index"});
        for (std::size_t n : {1u, 2u, 4u, 8u}) {
            const result r = run(n, red);
            t.add_row({fmt_u64(n) + "+" + fmt_u64(n), fmt("%.3f", r.tfrc_mean_mbps),
                       fmt("%.3f", r.tcp_mean_mbps),
                       fmt("%.2f", r.tfrc_mean_mbps / r.tcp_mean_mbps),
                       fmt("%.3f", r.jain)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape: near-equal shares under RED; under DropTail the\n");
    std::printf("standing queue penalises TFRC (RTT-inflated equation) toward the\n");
    std::printf("low edge of the friendly band — the literature's known worst case.\n");
    return 0;
}
