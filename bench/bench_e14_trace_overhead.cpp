// E14 — flight-recorder overhead: what tracing costs the datapath.
//
// Three configurations of the identical 8 MB reliable transfer over a
// clean simulated dumbbell (both endpoints traced when tracing is on):
//   disabled : trace_ring_records = 0 — the hooks compile to one
//              never-taken null test per event site.
//   ring     : 4096-record flight recorder, no sink (overwrite mode).
//   spill    : same ring spilling frames to an in-memory sink (the
//              engine's async_writer path minus the disk).
//
// Gates:
//  --max-enabled-ratio R  : fail when wall(ring)/wall(disabled) > R
//                           (CI uses 1.15 — tracing on costs <= 15%).
//  --max-disabled-pct P   : the compiled-but-disabled budget. A transfer
//                           cannot resolve a sub-1% effect above sim
//                           noise, so the bound is computed analytically:
//                           hook-guard ns/site (microbenched) x observed
//                           record sites per packet, as a percentage of
//                           the disabled run's per-packet processing
//                           time. CI uses 2.0.
//
// --json emits BENCH_e14_trace_overhead.json for the perf trajectory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "api/server.hpp"
#include "api/session.hpp"
#include "bench_json.hpp"
#include "sim/topology.hpp"
#include "trace/tracer.hpp"
#include "util/pattern.hpp"

using namespace vtp;
using util::milliseconds;
using util::seconds;

namespace {

constexpr std::uint64_t transfer_bytes = 8'000'000;

enum class mode { disabled, ring, spill };

struct transfer_result {
    double wall_s = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t packets = 0;
    std::uint64_t records = 0;
};

transfer_result run_transfer(mode m, const std::vector<std::uint8_t>& payload) {
    sim::dumbbell_config cfg;
    cfg.pairs = 1;
    cfg.bottleneck_rate_bps = 200e6;
    cfg.bottleneck_delay = milliseconds(5);
    cfg.access_delay = milliseconds(1);
    sim::dumbbell net(cfg);

    trace::memory_sink sink;
    const std::size_t ring = m == mode::disabled ? 0 : 4096;
    trace::sink* out = m == mode::spill ? &sink : nullptr;

    server_options sopts{};
    sopts.trace_ring_records = ring;
    sopts.trace_sink = out;
    vtp::server srv(net.right_host(0), sopts);
    transfer_result res;
    srv.set_on_session([&](session& s) {
        s.set_on_stream_delivered([&res](std::uint32_t, std::uint64_t,
                                         std::uint32_t len) { res.delivered += len; });
    });

    session_options copts = session_options::reliable();
    copts.trace_ring_records = ring;
    copts.trace_sink = out;
    session tx = session::connect(net.left_host(0), net.right_addr(0), copts);
    tx.send(0, std::span<const std::uint8_t>(payload));
    tx.close();

    const auto t0 = std::chrono::steady_clock::now();
    while (!tx.closed() && net.sched().now() < seconds(120))
        net.sched().run_until(net.sched().now() + milliseconds(20));
    const auto t1 = std::chrono::steady_clock::now();
    res.wall_s = std::chrono::duration<double>(t1 - t0).count();
    const auto st = tx.stats();
    res.packets = st.packets_sent;
    res.records = st.trace_events_recorded;
    return res;
}

/// Best (minimum) wall time of `reps` runs — the noise-robust estimator.
transfer_result best_of(mode m, int reps, const std::vector<std::uint8_t>& payload) {
    transfer_result best = run_transfer(m, payload);
    for (int i = 1; i < reps; ++i) {
        const transfer_result r = run_transfer(m, payload);
        if (r.wall_s < best.wall_s) best = r;
    }
    return best;
}

/// Cost of one disabled hook: the `if (tracer_)` null test every event
/// site pays when tracing is off. Measured on a pointer the optimizer
/// cannot prove null.
double hook_guard_ns() {
    trace::tracer* t = nullptr;
    volatile std::uintptr_t hide = reinterpret_cast<std::uintptr_t>(t);
    constexpr int iters = 50'000'000;
    std::uint64_t hits = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        auto* p = reinterpret_cast<trace::tracer*>(hide);
        if (p != nullptr) ++hits;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (hits != 0) std::printf("?");
    return std::chrono::duration<double>(t1 - t0).count() / iters * 1e9;
}

} // namespace

int main(int argc, char** argv) {
    double max_enabled_ratio = 0.0;
    double max_disabled_pct = 0.0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--max-enabled-ratio")
            max_enabled_ratio = std::atof(argv[i + 1]);
        if (std::string(argv[i]) == "--max-disabled-pct")
            max_disabled_pct = std::atof(argv[i + 1]);
    }
    const std::string json = bench::json_path_arg(argc, argv);

    const std::vector<std::uint8_t> payload =
        util::pattern_buffer(1, 0, static_cast<std::size_t>(transfer_bytes));

    // Warm each configuration once, then race best-of-3.
    (void)run_transfer(mode::disabled, payload);
    (void)run_transfer(mode::ring, payload);
    (void)run_transfer(mode::spill, payload);
    const transfer_result off = best_of(mode::disabled, 3, payload);
    const transfer_result ring = best_of(mode::ring, 3, payload);
    const transfer_result spill = best_of(mode::spill, 3, payload);

    const double enabled_ratio = off.wall_s > 0 ? ring.wall_s / off.wall_s : 0.0;
    const double spill_ratio = off.wall_s > 0 ? spill.wall_s / off.wall_s : 0.0;

    const double guard_ns = hook_guard_ns();
    const double records_per_packet =
        ring.packets > 0
            ? static_cast<double>(ring.records) / static_cast<double>(ring.packets)
            : 0.0;
    const double packet_ns =
        off.packets > 0 ? off.wall_s * 1e9 / static_cast<double>(off.packets) : 0.0;
    const double disabled_pct =
        packet_ns > 0 ? guard_ns * records_per_packet / packet_ns * 100.0 : 0.0;

    std::printf("# E14 — flight-recorder overhead (8 MB clean-path transfer)\n");
    std::printf("disabled             %.3f s wall (%llu packets)\n", off.wall_s,
                static_cast<unsigned long long>(off.packets));
    std::printf("ring (no sink)       %.3f s wall (%llu records)  ratio %.3fx\n",
                ring.wall_s, static_cast<unsigned long long>(ring.records),
                enabled_ratio);
    std::printf("ring + spill sink    %.3f s wall (%llu records)  ratio %.3fx\n",
                spill.wall_s, static_cast<unsigned long long>(spill.records),
                spill_ratio);
    std::printf("hook guard           %.2f ns/site, %.1f record sites/packet\n",
                guard_ns, records_per_packet);
    std::printf("disabled overhead    %.4f%% of per-packet processing (%.0f ns)\n",
                disabled_pct, packet_ns);

    bool ok = off.delivered == transfer_bytes && ring.delivered == transfer_bytes &&
              spill.delivered == transfer_bytes && ring.records > 0;
    if (!ok) std::printf("FAIL: incomplete transfer or no trace records\n");
    if (max_enabled_ratio > 0 && enabled_ratio > max_enabled_ratio) {
        std::printf("FAIL: enabled ratio %.3f exceeds --max-enabled-ratio %.2f\n",
                    enabled_ratio, max_enabled_ratio);
        ok = false;
    }
    if (max_disabled_pct > 0 && disabled_pct > max_disabled_pct) {
        std::printf("FAIL: disabled overhead %.3f%% exceeds --max-disabled-pct %.2f\n",
                    disabled_pct, max_disabled_pct);
        ok = false;
    }

    if (!json.empty()) {
        bench::json_report rep("bench_e14_trace_overhead");
        rep.add("transfer_bytes", transfer_bytes);
        rep.add("disabled_wall_s", off.wall_s);
        rep.add("ring_wall_s", ring.wall_s);
        rep.add("spill_wall_s", spill.wall_s);
        rep.add("enabled_ratio", enabled_ratio);
        rep.add("spill_ratio", spill_ratio);
        rep.add("hook_guard_ns", guard_ns);
        rep.add("records_per_packet", records_per_packet);
        rep.add("disabled_overhead_pct", disabled_pct);
        rep.add("trace_records", ring.records);
        rep.add("pass", ok);
        if (!rep.write(json))
            std::fprintf(stderr, "bench_e14: could not write %s\n", json.c_str());
    }
    return ok ? 0 : 1;
}
